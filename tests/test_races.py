"""The lockset + happens-before label-race detector (repro.analysis.races)."""

from repro.analysis import detect_races
from repro.jit.parser import parse_program


def races_of(source: str):
    return detect_races(parse_program(source))


class TestFixtures:
    def test_label_race_fixture_is_lam007(self):
        report = races_of(open("tests/fixtures/label_race.ir").read())
        assert "LAM007" in {d.code for d in report.diagnostics}
        assert report.implicated

    def test_region_write_race_fixture_is_lam008(self):
        report = races_of(open("tests/fixtures/region_write_race.ir").read())
        codes = {d.code for d in report.diagnostics}
        assert "LAM008" in codes
        assert "LAM007" not in codes


class TestHappensBefore:
    def test_join_before_access_is_not_a_race(self):
        report = races_of("""
        class Cell { val }
        method snoop(c) {
        entry:
          getfield v, c, val
          print v
          ret
        }
        region method tally(c) secrecy(pay) {
        entry:
          getfield x, c, val
          ret
        }
        method main() {
        entry:
          new c, Cell
          const s, 7
          putfield c, val, s
          spawn h, snoop, c
          join h
          call _, tally, c
          ret
        }
        """)
        assert report.diagnostics == []
        assert not report.implicated

    def test_access_while_pending_is_a_race(self):
        report = races_of("""
        class Cell { val }
        method snoop(c) {
        entry:
          getfield v, c, val
          print v
          ret
        }
        region method tally(c) secrecy(pay) {
        entry:
          getfield x, c, val
          const y, 1
          ret
        }
        method main() {
        entry:
          new c, Cell
          const s, 7
          putfield c, val, s
          spawn h, snoop, c
          call _, tally, c
          join h
          ret
        }
        """)
        # Read/read on c.val is not a conflict, but main's putfield
        # races with... nothing (putfield happens before spawn), and
        # snoop never writes.  The label contexts differ (snoop is
        # label-free, tally governed by pay) but with no write there is
        # no race at all.
        assert report.diagnostics == []

    def test_write_while_pending_differing_contexts_is_lam007(self):
        report = races_of("""
        class Cell { val }
        method scrub(c) {
        entry:
          const z, 0
          putfield c, val, z
          ret
        }
        region method tally(c) secrecy(pay) {
        entry:
          getfield x, c, val
          ret
        }
        method main() {
        entry:
          new c, Cell
          const s, 7
          putfield c, val, s
          spawn h, scrub, c
          call _, tally, c
          join h
          ret
        }
        """)
        codes = {d.code for d in report.diagnostics}
        assert "LAM007" in codes
        assert {"scrub", "tally"} <= set(report.implicated)

    def test_spawn_in_loop_is_self_concurrent(self):
        report = races_of("""
        class Cell { val }
        method bump(c) {
        entry:
          getfield v, c, val
          const one, 1
          binop w, add, v, one
          putfield c, val, w
          ret
        }
        method main() {
        entry:
          new c, Cell
          const i, 0
          const n, 3
          jmp head
        head:
          binop go, lt, i, n
          br go, body, done
        body:
          spawn h, bump, c
          const one, 1
          binop i, add, i, one
          jmp head
        done:
          ret
        }
        """)
        # Two unjoined bump instances race with each other; both label
        # contexts are empty, so this is a plain data race, not a label
        # race — no LAM007/LAM008 diagnostic, but still implicated.
        assert {d.code for d in report.diagnostics} <= {"LAM007", "LAM008"}
        assert report.plain_races
        assert "bump" in report.implicated


class TestLocksets:
    RACY = """
    class Cell { val }
    method scrub(c) {
    entry:
      const z, 0
      putfield c, val, z
      ret
    }
    region method tally(c) secrecy(pay) {
    entry:
      getfield x, c, val
      ret
    }
    method main() {
    entry:
      new c, Cell
      const s, 7
      putfield c, val, s
      spawn h, scrub, c
      call _, tally, c
      join h
      ret
    }
    """

    LOCKED = """
    class Cell { val }
    method scrub(c) {
    entry:
      lock c
      const z, 0
      putfield c, val, z
      unlock c
      ret
    }
    region method tally(c) secrecy(pay) {
    entry:
      lock c
      getfield x, c, val
      unlock c
      ret
    }
    method main() {
    entry:
      new c, Cell
      const s, 7
      putfield c, val, s
      spawn h, scrub, c
      call _, tally, c
      join h
      ret
    }
    """

    def test_common_lock_suppresses_the_race(self):
        assert races_of(self.RACY).diagnostics
        report = races_of(self.LOCKED)
        assert report.diagnostics == []
        assert not report.implicated

    def test_disjoint_locks_do_not_suppress(self):
        # Heap objids are conflated by canonical(), so use a static-named
        # lock on one side — statics stay exact — against the cell lock
        # on the other: provably disjoint, so the race survives.
        report = races_of("""
        class Cell { val }
        method scrub(c) {
        entry:
          getstatic g, G
          lock g
          const z, 0
          putfield c, val, z
          unlock g
          ret
        }
        region method tally(c) secrecy(pay) {
        entry:
          lock c
          getfield x, c, val
          unlock c
          ret
        }
        method main() {
        entry:
          new c, Cell
          const s, 7
          putfield c, val, s
          spawn h, scrub, c
          call _, tally, c
          join h
          ret
        }
        """)
        assert "LAM007" in {d.code for d in report.diagnostics}


class TestImplicatedMap:
    def test_implicated_carries_human_notes(self):
        report = races_of(open("tests/fixtures/label_race.ir").read())
        for method, notes in report.implicated.items():
            assert notes, method
            assert all(isinstance(n, str) for n in notes)
