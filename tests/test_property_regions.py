"""Stateful property testing of security regions.

A hypothesis state machine drives one VM thread through random region
entries (random label/capability combinations over a small tag pool),
labeled allocations, reads, copyAndLabel attempts, and exits, checking the
runtime's core invariants after every step:

* the thread's labels always equal the innermost frame's (or empty);
* region exit always restores the previous labels and capability cache,
  even when the region lacked minus capabilities for its own labels;
* every *successful* labeled read satisfied the secrecy rule at that
  moment (oracle re-check);
* every successful copyAndLabel was justified by the label-change rule
  under the thread's effective capabilities at that moment;
* the kernel task's labels are empty whenever the thread is outside all
  regions (the lazy-sync/TCB-restore contract).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
import hypothesis.strategies as st

from repro.core import (
    CapabilitySet,
    IFCViolation,
    Label,
    LabelPair,
    can_change_label,
    secrecy_allows,
)
from repro.osim import Kernel
from repro.runtime import LaminarAPI, LaminarVM

N_TAGS = 3

tag_subsets = st.sets(st.integers(0, N_TAGS - 1), max_size=N_TAGS)


class RegionMachine(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.kernel = Kernel()
        self.vm = LaminarVM(self.kernel)
        self.api = LaminarAPI(self.vm)
        self.tags = [
            self.api.create_and_add_capability(f"r{i}") for i in range(N_TAGS)
        ]
        self.thread = self.vm.main_thread
        #: stack of SecurityRegion objects we have entered
        self.regions = []
        #: expected label stack (oracle-side mirror)
        self.expected = []
        self.objects = []

    def _label(self, indices) -> Label:
        return Label.of(*(self.tags[i] for i in indices))

    def _caps(self, plus, minus) -> CapabilitySet:
        return CapabilitySet.plus(*(self.tags[i] for i in plus)).union(
            CapabilitySet.minus(*(self.tags[i] for i in minus))
        )

    # -- rules -------------------------------------------------------------

    @rule(secrecy=tag_subsets, plus=tag_subsets, minus=tag_subsets)
    def enter_region(self, secrecy, plus, minus):
        if len(self.regions) >= 6:
            return
        caps = self._caps(plus, minus)
        region = self.vm.region(
            secrecy=self._label(secrecy), caps=caps, name="prop"
        )
        try:
            region.__enter__()
        except IFCViolation:
            return  # rejected entries leave no trace (checked by invariant)
        self.regions.append(region)
        self.expected.append(self._label(secrecy))

    @rule()
    def exit_region(self):
        if not self.regions:
            return
        region = self.regions.pop()
        self.expected.pop()
        region.__exit__(None, None, None)

    @rule()
    def allocate(self):
        if not self.regions:
            return
        obj = self.vm.alloc({"v": len(self.objects)})
        assert obj.labels.secrecy == self.thread.labels.secrecy
        self.objects.append(obj)

    @rule(index=st.integers(0, 50))
    def read_object(self, index):
        if not self.objects:
            return
        obj = self.objects[index % len(self.objects)]
        try:
            obj.get("v")
        except IFCViolation:
            return
        # oracle: the read was legal at this instant
        assert secrecy_allows(obj.labels.secrecy, self.thread.labels.secrecy)
        assert self.thread.in_region or obj.labels.is_empty

    @rule(index=st.integers(0, 50), dest=tag_subsets)
    def copy_and_label(self, index, dest):
        if not self.objects or not self.regions:
            return
        obj = self.objects[index % len(self.objects)]
        new_secrecy = self._label(dest)
        caps = self.thread.capabilities
        try:
            copy = self.api.copy_and_label(obj, secrecy=new_secrecy)
        except IFCViolation:
            assert not can_change_label(
                obj.labels.secrecy, new_secrecy, caps
            )
            return
        assert can_change_label(obj.labels.secrecy, new_secrecy, caps)
        assert copy.labels.secrecy == new_secrecy
        self.objects.append(copy)

    @rule()
    def syscall_inside(self):
        if not self.regions:
            return
        self.vm.syscall("stat", "/tmp")
        assert self.thread.task.labels == self.thread.labels

    # -- invariants ------------------------------------------------------------

    @invariant()
    def labels_match_expected_stack(self):
        if not hasattr(self, "vm"):
            return
        if self.expected:
            assert self.thread.labels.secrecy == self.expected[-1]
        else:
            assert self.thread.labels.is_empty

    @invariant()
    def depth_matches(self):
        if not hasattr(self, "vm"):
            return
        assert self.thread.depth == len(self.regions)

    @invariant()
    def kernel_clean_outside_regions(self):
        if not hasattr(self, "vm"):
            return
        if not self.regions:
            assert self.thread.task.labels.is_empty

    def teardown(self):
        while self.regions:
            self.exit_region()


RegionMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestRegionStateMachine = RegionMachine.TestCase
