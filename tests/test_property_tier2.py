"""Property-based equivalence sweep: tier-2 ≡ interpreter.

Hypothesis generates the same random programs as
:mod:`tests.test_property_jit` (straight-line/branchy arithmetic and heap
traffic, and security-region programs with a shared helper and catch
handlers), runs each one through the interpreter and through the tiered
engine with aggressive promotion thresholds (so even tiny methods reach
tier 2 / OSR), and asserts the full observable record is identical:

* return value (or escaped exception type),
* printed output,
* enforcement counters (:meth:`BarrierStats.enforcement` — barrier
  executions, dynamic dispatches, label/space checks, verdict-cache
  traffic),
* the audit log, byte for byte,
* ``executed`` instruction counts (on non-faulting runs; a fault inside
  a fused superinstruction pair legitimately attributes both of the
  pair's instructions at once).

Both fusion settings are swept, and region programs run under both the
static and dynamic barrier configurations.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings

from repro.core import CapabilitySet
from repro.jit import Compiler, Interpreter, JITConfig, TierPolicy
from repro.osim import Kernel, LaminarSecurityModule
from repro.osim.filesystem import Inode
from repro.runtime import LaminarVM
from repro.runtime.heap import ObjectHeader

from .test_property_jit import random_program, region_program

#: Everything is hot: methods compile on their first call, loops OSR
#: almost immediately, and a single opposite-context call already clones.
AGGRESSIVE = TierPolicy(
    invocation_threshold=1, backedge_threshold=2, deopt_recompile_threshold=1
)
AGGRESSIVE_NOFUSE = TierPolicy(
    invocation_threshold=1, backedge_threshold=2, deopt_recompile_threshold=1,
    fusion=False,
)


def _reset_id_counters() -> None:
    Inode._ino_counter = itertools.count(1)
    ObjectHeader._oid_counter = itertools.count(1)


def _observe(source, config, policy, **compile_kw):
    _reset_id_counters()
    program, _ = Compiler(config, **compile_kw).compile(source)
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    if program.tags:
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    interp = Interpreter(program, vm, tier2=policy)
    try:
        result = interp.run("main")
        exc = None
    except Exception as error:  # noqa: BLE001 - differential capture
        result = None
        exc = type(error).__name__
    return {
        "result": result,
        "exc": exc,
        "output": tuple(interp.output),
        "executed": interp.executed,
        "enforcement": vm.barriers.stats.enforcement(),
        "audit": tuple(str(entry) for entry in kernel.audit.entries()),
    }


def _assert_equivalent(cold, hot, source):
    assert hot["exc"] == cold["exc"], (
        f"tier-2 changed the escaped exception on:\n{source}"
    )
    assert hot["result"] == cold["result"], (
        f"tier-2 changed the result on:\n{source}"
    )
    assert hot["output"] == cold["output"], (
        f"tier-2 changed printed output on:\n{source}"
    )
    assert hot["enforcement"] == cold["enforcement"], (
        f"tier-2 changed enforcement counters on:\n{source}"
    )
    assert hot["audit"] == cold["audit"], (
        f"tier-2 changed the audit log on:\n{source}"
    )
    if cold["exc"] is None:
        assert hot["executed"] == cold["executed"], (
            f"tier-2 changed the executed-instruction count on:\n{source}"
        )


class TestPlainProgramEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_static_config(self, source):
        cold = _observe(source, JITConfig.STATIC, None)
        hot = _observe(source, JITConfig.STATIC, AGGRESSIVE)
        _assert_equivalent(cold, hot, source)

    @settings(max_examples=30, deadline=None)
    @given(random_program())
    def test_dynamic_config_without_fusion(self, source):
        cold = _observe(source, JITConfig.DYNAMIC, None)
        hot = _observe(source, JITConfig.DYNAMIC, AGGRESSIVE_NOFUSE)
        _assert_equivalent(cold, hot, source)

    @settings(max_examples=30, deadline=None)
    @given(random_program())
    def test_baseline_config_uninstrumented(self, source):
        cold = _observe(source, JITConfig.BASELINE, None)
        hot = _observe(source, JITConfig.BASELINE, AGGRESSIVE)
        _assert_equivalent(cold, hot, source)


class TestRegionProgramEquivalence:
    """Region programs are where the specialization could go wrong: the
    compiled body bakes the observed label pair, the shared helper is
    called from both contexts (deopt + clone territory), and IFC
    violations must surface identically — including the suppressed
    exception text landing in the audit log."""

    @settings(max_examples=40, deadline=None)
    @given(region_program())
    def test_dynamic_config(self, source):
        cold = _observe(source, JITConfig.DYNAMIC, None, inline=False)
        hot = _observe(source, JITConfig.DYNAMIC, AGGRESSIVE, inline=False)
        _assert_equivalent(cold, hot, source)

    @settings(max_examples=30, deadline=None)
    @given(region_program())
    def test_static_config(self, source):
        cold = _observe(source, JITConfig.STATIC, None, inline=False)
        hot = _observe(source, JITConfig.STATIC, AGGRESSIVE, inline=False)
        _assert_equivalent(cold, hot, source)

    @settings(max_examples=20, deadline=None)
    @given(region_program())
    def test_dynamic_config_without_fusion(self, source):
        cold = _observe(source, JITConfig.DYNAMIC, None, inline=False)
        hot = _observe(source, JITConfig.DYNAMIC, AGGRESSIVE_NOFUSE,
                       inline=False)
        _assert_equivalent(cold, hot, source)

    @settings(max_examples=20, deadline=None)
    @given(region_program())
    def test_never_raises_stale_compilation(self, source):
        hot = _observe(source, JITConfig.STATIC, AGGRESSIVE, inline=False)
        assert hot["exc"] != "StaleCompilationError", (
            f"tier-2 leaked a stale static barrier on:\n{source}"
        )


class TestAmbientRegionContext:
    """The same compiled program, entered from inside an ambient region:
    the context key (thread labels at entry) must route to a different
    variant and the record must still match the interpreter."""

    @settings(max_examples=25, deadline=None)
    @given(random_program())
    def test_in_region_entry_matches_interpreter(self, source):
        from repro.runtime import LaminarAPI

        def observe(policy):
            _reset_id_counters()
            program, _ = Compiler(JITConfig.DYNAMIC).compile(source)
            kernel = Kernel(LaminarSecurityModule())
            vm = LaminarVM(kernel)
            api = LaminarAPI(vm)
            tag = api.create_and_add_capability("ambient")
            interp = Interpreter(program, vm, tier2=policy)
            from repro.core import Label

            with vm.region(secrecy=Label.of(tag),
                           caps=CapabilitySet.dual(tag)):
                try:
                    result = interp.run("main")
                    exc = None
                except Exception as error:  # noqa: BLE001
                    result = None
                    exc = type(error).__name__
            return (
                result, exc, tuple(interp.output),
                vm.barriers.stats.enforcement(),
                tuple(str(entry) for entry in kernel.audit.entries()),
            )

        assert observe(None) == observe(AGGRESSIVE), (
            f"tier-2 diverged under an ambient region on:\n{source}"
        )
