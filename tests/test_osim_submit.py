"""Batched submission (``sys_submit``), vectored I/O, and their contract:
byte-identical security observables to sequential issue.

The equivalence property is the heart of it: for ANY sequence of
batchable operations, running them through ``sys_submit`` (under any
partition into batches) must produce the same completions, the same
audit log, the same denial counters, the same LSM hook counts, and the
same per-opcode syscall counts (modulo the ``submit`` entries
themselves) as issuing them one by one.  Batching may only change how
much *overhead* is paid, never what any check decides or records.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Label, LabelPair
from repro.osim import (
    Cqe,
    EACCES,
    EBADF,
    EINVAL,
    Kernel,
    LaminarSecurityModule,
    Sqe,
    SyscallError,
)
from repro.osim.filesystem import Inode


def fresh_kernel() -> Kernel:
    """A kernel with a deterministic inode numbering, so stat results and
    audit details are comparable across twin kernels."""
    Inode._ino_counter = itertools.count(1)
    return Kernel(LaminarSecurityModule())


def build_scenario(kernel: Kernel):
    """One task, a plain file, a secrecy-labeled file (reads denied), and
    a pipe — the object mix every generated program runs against."""
    owner = kernel.spawn_task("owner")
    tag, _ = kernel.sys_alloc_tag(owner, "s")
    secret = LabelPair(Label.of(tag))
    kernel.sys_mkdir(owner, "/tmp/eq")
    fd = kernel.sys_creat(owner, "/tmp/eq/plain")
    kernel.sys_write(owner, fd, b"0123456789abcdef")
    kernel.sys_close(owner, fd)
    fd = kernel.sys_create_file_labeled(owner, "/tmp/eq/secret", secret)
    kernel.sys_write(owner, fd, b"classified")
    kernel.sys_close(owner, fd)

    actor = kernel.spawn_task("actor")  # unlabeled: reads of secret deny
    plain = kernel.sys_open(actor, "/tmp/eq/plain", "r+")
    hush = kernel.sys_open(actor, "/tmp/eq/secret", "w")  # write-up is legal
    pr, pw = kernel.sys_pipe(actor)
    return actor, {"plain": plain, "hush": hush, "pr": pr, "pw": pw}


def run_sequential(kernel: Kernel, task, ops) -> list[Cqe]:
    """The reference semantics: each op as its own syscall, completions
    recorded exactly as sys_submit records them."""
    cqes = []
    for op, args in ops:
        fn = getattr(kernel, f"sys_{op}", None)
        try:
            if fn is None:
                raise SyscallError(EINVAL, f"op {op!r} is not batchable")
            result = fn(task, *args)
        except SyscallError as exc:
            cqes.append(Cqe(op, None, exc.errno))
        else:
            cqes.append(Cqe(op, result, 0))
    return cqes


def observables(kernel: Kernel) -> dict:
    counts = dict(kernel.syscall_counts)
    counts.pop("submit", None)
    return {
        "audit": [str(e) for e in kernel.audit],
        "denials": dict(kernel.security.denials),
        "hooks": dict(kernel.security.hook_calls),
        "syscalls": counts,
    }


# -- the hypothesis program generator ----------------------------------------

FD_NAMES = ("plain", "hush", "pr", "pw")


def _ops_strategy():
    fd = st.sampled_from(FD_NAMES)
    data = st.sampled_from([b"", b"x", b"hello", b"0" * 32])
    count = st.sampled_from([-1, 0, 1, 7, 64])
    return st.lists(
        st.one_of(
            st.tuples(st.just("read"), st.tuples(fd, count)),
            st.tuples(st.just("write"), st.tuples(fd, data)),
            st.tuples(st.just("lseek"), st.tuples(fd, st.sampled_from([0, 3, 99]))),
            st.tuples(
                st.just("readv"),
                st.tuples(fd, st.lists(count, min_size=1, max_size=3)),
            ),
            st.tuples(
                st.just("writev"),
                st.tuples(fd, st.lists(data, min_size=1, max_size=3)),
            ),
            st.tuples(
                st.just("stat"),
                st.tuples(
                    st.sampled_from(
                        ["/tmp/eq/plain", "/tmp/eq/secret", "/tmp/eq/nope"]
                    )
                ),
            ),
            st.tuples(
                st.just("open"),
                st.tuples(
                    st.sampled_from(["/tmp/eq/plain", "/tmp/eq/new"]),
                    st.sampled_from(["r", "w", "r+"]),
                ),
            ),
            st.tuples(st.just("close"), st.tuples(fd)),
            st.tuples(st.just("unlink"), st.tuples(st.just("/tmp/eq/new"))),
            st.tuples(st.just("frobnicate"), st.tuples()),  # not batchable
        ),
        min_size=1,
        max_size=24,
    )


def _resolve(ops, fds):
    """Replace symbolic fd names with the scenario's real numbers."""
    out = []
    for op, args in ops:
        out.append((op, tuple(fds.get(a, a) if isinstance(a, str) else a for a in args)))
    return out


@settings(max_examples=60, deadline=None)
@given(ops=_ops_strategy(), splits=st.lists(st.integers(1, 6), max_size=8))
def test_batched_equals_sequential(ops, splits):
    """THE equivalence property: same completions, same audit, same
    denials, same hook counts, same syscall counts — under any batch
    partition of any generated program."""
    seq_kernel = fresh_kernel()
    task_a, fds_a = build_scenario(seq_kernel)
    resolved_a = _resolve(ops, fds_a)
    seq_cqes = run_sequential(seq_kernel, task_a, resolved_a)

    bat_kernel = fresh_kernel()
    task_b, fds_b = build_scenario(bat_kernel)
    resolved_b = _resolve(ops, fds_b)
    assert resolved_a == resolved_b  # twin setups really are twins

    bat_cqes: list[Cqe] = []
    remaining = list(resolved_b)
    split_iter = itertools.chain(splits, itertools.repeat(6))
    while remaining:
        size = next(split_iter)
        chunk, remaining = remaining[:size], remaining[size:]
        sqes = [Sqe(op, *args) for op, args in chunk]
        bat_cqes.extend(bat_kernel.sys_submit(task_b, sqes))

    assert bat_cqes == seq_cqes
    assert observables(bat_kernel) == observables(seq_kernel)
    # Data-plane state converged too, not just the security record.
    plain_a = seq_kernel.fs.resolve("/tmp/eq/plain")
    plain_b = bat_kernel.fs.resolve("/tmp/eq/plain")
    assert bytes(plain_a.data) == bytes(plain_b.data)


# -- directed units ----------------------------------------------------------


class TestSubmitBasics:
    def test_error_entry_does_not_abort_batch(self, kernel):
        task = kernel.spawn_task("t")
        fd = kernel.sys_open(task, "/tmp/x", "w+")
        cqes = kernel.sys_submit(
            task,
            [
                Sqe("write", fd, b"ok"),
                Sqe("read", 999),  # EBADF
                Sqe("lseek", fd, 0),
                Sqe("read", fd),
            ],
        )
        assert [c.errno for c in cqes] == [0, EBADF, 0, 0]
        assert cqes[1].result is None
        assert cqes[3].result == b"ok"
        assert cqes[0].ok and not cqes[1].ok

    def test_non_batchable_op_gets_einval(self, kernel):
        task = kernel.spawn_task("t")
        cqes = kernel.sys_submit(
            task, [Sqe("set_task_label"), Sqe("fork"), Sqe("exit")]
        )
        assert [c.errno for c in cqes] == [EINVAL, EINVAL, EINVAL]

    def test_denials_are_never_memoized(self, kernel):
        """Every denied read in a batch hits the full hook path: the
        denial counter and audit log record each one."""
        owner = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(owner, "s")
        fd0 = kernel.sys_create_file_labeled(
            owner, "/tmp/sec", LabelPair(Label.of(tag))
        )
        kernel.sys_close(owner, fd0)
        actor = kernel.spawn_task("actor")
        fd = kernel.sys_open(actor, "/tmp/sec", "w")
        before = len(kernel.audit.denials())
        cqes = kernel.sys_submit(actor, [Sqe("read", fd)] * 4)
        assert [c.errno for c in cqes] == [EACCES] * 4
        assert len(kernel.audit.denials()) == before + 4

    def test_fd_memo_dropped_on_close(self, kernel):
        """A close inside the batch invalidates the fd cache: a later
        entry reusing the number sees the *new* description, and a read
        of the stale number fails."""
        task = kernel.spawn_task("t")
        fd = kernel.sys_open(task, "/tmp/a", "w+")
        kernel.sys_write(task, fd, b"first")
        cqes = kernel.sys_submit(
            task,
            [
                Sqe("lseek", fd, 0),
                Sqe("read", fd),
                Sqe("close", fd),
                Sqe("read", fd),  # stale: EBADF
                Sqe("open", "/tmp/a", "r"),  # reuses the lowest free fd
                Sqe("read", fd),  # the NEW description, offset 0
            ],
        )
        assert cqes[1].result == b"first"
        assert cqes[3].errno == EBADF
        assert cqes[4].result == fd  # lowest-free-fd reuse
        assert cqes[5].result == b"first"

    def test_batch_charges_less_simulated_work(self, kernel):
        """The point of the exercise: the per-entry work charged inside a
        batch is SYSCALL_WORK minus the entry crossing."""
        assert kernel._batch_work["read"] == (
            kernel.SYSCALL_WORK["read"] - kernel.SYSCALL_ENTRY_WORK
        )
        assert kernel._batch_work["close"] == 0  # mostly crossing cost


class TestVectoredIO:
    def test_readv_scatter(self, kernel):
        task = kernel.spawn_task("t")
        fd = kernel.sys_open(task, "/tmp/v", "w+")
        kernel.sys_write(task, fd, b"abcdefgh")
        kernel.sys_lseek(task, fd, 0)
        assert kernel.sys_readv(task, fd, [3, 2, 99]) == [b"abc", b"de", b"fgh"]

    def test_writev_gather(self, kernel):
        task = kernel.spawn_task("t")
        fd = kernel.sys_open(task, "/tmp/v", "w+")
        assert kernel.sys_writev(task, fd, [b"ab", b"", b"cde"]) == 5
        kernel.sys_lseek(task, fd, 0)
        assert kernel.sys_read(task, fd) == b"abcde"

    def test_vectored_file_io_checks_permission_once(self, kernel):
        task = kernel.spawn_task("t")
        fd = kernel.sys_open(task, "/tmp/v", "w+")
        before = kernel.security.hook_calls["file_permission"]
        kernel.sys_writev(task, fd, [b"a", b"b", b"c", b"d"])
        assert kernel.security.hook_calls["file_permission"] == before + 1

    def test_pipe_writev_is_per_message(self, kernel):
        """On pipes each segment is one message with its own mediation —
        vectorization must not fuse silently-droppable messages."""
        task = kernel.spawn_task("t")
        pr, pw = kernel.sys_pipe(task)
        hooks_before = kernel.security.hook_calls["pipe_write"]
        assert kernel.sys_writev(task, pw, [b"x", b"y"]) == 2
        assert kernel.security.hook_calls["pipe_write"] == hooks_before + 2
        assert kernel.sys_readv(task, pr, [1, 1, 1]) == [b"x", b"y", b""]

    def test_lseek_rejects_pipes_and_negative(self, kernel):
        task = kernel.spawn_task("t")
        pr, _pw = kernel.sys_pipe(task)
        with pytest.raises(SyscallError) as e:
            kernel.sys_lseek(task, pr, 0)
        assert e.value.errno == EINVAL
        fd = kernel.sys_open(task, "/tmp/s", "w")
        with pytest.raises(SyscallError):
            kernel.sys_lseek(task, fd, -1)


class TestSubmitMemoEpochs:
    """The persistent allowed-verdict memo keys on (shard, fd-epoch): a
    verdict proved on one shard, or before a replication event landed,
    must be unreachable afterwards."""

    def _booted(self, shard_id: int = 0):
        Inode._ino_counter = itertools.count(1)
        kernel = Kernel(LaminarSecurityModule(), shard_id=shard_id)
        task = kernel.spawn_task("gw")
        fd = kernel.sys_open(task, "/tmp/m", "w+")
        return kernel, task, fd

    def test_memo_keys_carry_shard_and_fd_epoch(self):
        kernel, task, fd = self._booted(shard_id=7)
        kernel.sys_submit(task, [Sqe("write", fd, b"x")])
        assert kernel._submit_memo
        for key in kernel._submit_memo:
            shard, fd_epoch, tid, label_epoch, _inode, _is_write = key
            assert shard == 7
            assert fd_epoch == kernel.fd_epoch == 0
            assert tid == task.tid
            assert label_epoch == task.security.label_epoch
        # The same verdict proved on a different shard lives under a
        # different key: migrated memo state can never collide.
        other, task2, fd2 = self._booted(shard_id=8)
        other.sys_submit(task2, [Sqe("write", fd2, b"x")])
        assert not (set(kernel._submit_memo) & set(other._submit_memo))

    def test_memo_not_replayed_across_replication_lag(self):
        """The ISSUE's directed scenario: a memo recorded before a
        capability-store replication event must not replay after it.

        The sharp case: replication *rebuilds* the principal's security
        field from the wire image, so the rebuilt ``label_epoch`` restarts
        at exactly the value the memo was recorded under, and the inode's
        label object is untouched — neither the epoch in the key nor the
        identity revalidation can catch the change.  Only the fd-epoch
        component (bumped by ``apply_replication``) keeps the stale allow
        verdict unreachable."""
        from repro.core import CapabilitySet
        from repro.core.principal import Principal

        kernel, task, fd = self._booted()
        kernel.sys_submit(task, [Sqe("write", fd, b"x")])
        hooks = kernel.security.hook_calls["file_permission"]
        kernel.sys_submit(task, [Sqe("write", fd, b"x")])
        # Replay accounting: the memo hit still counts the hook.
        assert kernel.security.hook_calls["file_permission"] == hooks + 1
        assert kernel._submit_memo

        # Replication lands: the authoritative capability store says gw is
        # now tainted with a secrecy tag it cannot shed.  The sync path
        # materializes a fresh Principal from the frame — label_epoch
        # restarts at 0, colliding with the epoch the memo recorded.
        tag = kernel.tags.alloc("s")
        assert task.security.label_epoch == 0
        task.security = Principal(
            task.name, LabelPair(Label.of(tag)), CapabilitySet.EMPTY
        )
        assert task.security.label_epoch == 0  # the collision
        assert kernel.apply_replication(1)
        assert kernel.fd_epoch == 1

        denials = len(kernel.audit.denials())
        cqes = kernel.sys_submit(task, [Sqe("write", fd, b"x")])
        # Without the (shard, fd-epoch) keying this replays the stale
        # allow; with it, the full hook runs and denies the write-down.
        assert cqes[0].errno == EACCES
        assert len(kernel.audit.denials()) == denials + 1

    def test_stale_replication_is_rejected(self):
        kernel, task, fd = self._booted()
        assert kernel.apply_replication(3)
        epoch_after = kernel.fd_epoch
        assert not kernel.apply_replication(3)  # re-delivered frame
        assert not kernel.apply_replication(1)  # reordered older frame
        assert kernel.fd_epoch == epoch_after
        assert kernel.apply_replication(4)
        assert kernel.fd_epoch == epoch_after + 1
