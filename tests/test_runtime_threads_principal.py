"""Unit tests for Principal state machine and SimThread frame mechanics."""

import pytest

from repro.core import (
    Capability,
    CapabilityViolation,
    CapabilitySet,
    CapType,
    Label,
    LabelChangeViolation,
    LabelPair,
    LabelType,
    Principal,
    Tag,
)
from repro.osim.task import Task
from repro.runtime.threads import RegionFrame, SimThread

A, B = Tag(21, "a"), Tag(22, "b")


class TestPrincipal:
    def test_checked_label_change(self):
        p = Principal("p", caps=CapabilitySet.dual(A))
        p.set_label(LabelType.SECRECY, Label.of(A))
        assert p.secrecy == Label.of(A)
        p.set_label(LabelType.SECRECY, Label.EMPTY)

    def test_checked_change_denied(self):
        p = Principal("p")
        with pytest.raises(LabelChangeViolation):
            p.set_label(LabelType.SECRECY, Label.of(A))

    def test_unchecked_setter_for_trusted_callers(self):
        p = Principal("p")
        p.set_labels_unchecked(LabelPair(Label.of(A), Label.of(B)))
        assert p.labels == LabelPair(Label.of(A), Label.of(B))

    def test_grant_and_drop(self):
        p = Principal("p")
        p.grant(CapabilitySet.dual(A))
        assert p.capabilities.can_add(A)
        p.drop_capability(A, CapType.BOTH)
        assert not p.capabilities.can_add(A)

    def test_require_capability(self):
        p = Principal("p", caps=CapabilitySet.plus(A))
        p.require_capability(A, CapType.PLUS)
        with pytest.raises(CapabilityViolation):
            p.require_capability(A, CapType.MINUS)
        with pytest.raises(CapabilityViolation):
            p.require_capability(A, CapType.BOTH)

    def test_holds(self):
        p = Principal("p", caps=CapabilitySet.minus(B))
        assert p.holds(Capability(B, CapType.MINUS))
        assert not p.holds(Capability(B, CapType.PLUS))


def make_thread(caps=CapabilitySet.EMPTY) -> SimThread:
    task = Task(1, "t", caps=caps)
    return SimThread(task)


class TestSimThreadFrames:
    def test_labels_empty_outside_regions(self):
        thread = make_thread()
        assert thread.labels.is_empty
        assert not thread.in_region

    def test_innermost_frame_wins(self):
        thread = make_thread()
        thread.frames.append(RegionFrame(LabelPair(Label.of(A)), CapabilitySet.EMPTY))
        thread.frames.append(RegionFrame(LabelPair(Label.of(B)), CapabilitySet.dual(B)))
        assert thread.labels.secrecy == Label.of(B)
        assert thread.capabilities == CapabilitySet.dual(B)
        assert thread.depth == 2

    def test_capabilities_fall_back_to_kernel_set(self):
        thread = make_thread(CapabilitySet.dual(A))
        assert thread.capabilities == CapabilitySet.dual(A)

    def test_gain_propagates_through_stack_and_snapshots(self):
        thread = make_thread()
        frame = RegionFrame(LabelPair.EMPTY, CapabilitySet.EMPTY)
        frame.saved_kernel_caps = CapabilitySet.EMPTY
        thread.frames.append(frame)
        thread.gain_capabilities(CapabilitySet.dual(A))
        assert thread.task.capabilities.can_add(A)
        assert frame.caps.can_add(A)
        assert frame.saved_kernel_caps.can_add(A)

    def test_scoped_drop_only_touches_top_frame(self):
        thread = make_thread(CapabilitySet.dual(A))
        outer = RegionFrame(LabelPair.EMPTY, CapabilitySet.dual(A))
        inner = RegionFrame(LabelPair.EMPTY, CapabilitySet.dual(A))
        thread.frames.extend([outer, inner])
        thread.drop_capability_scoped(A, CapType.MINUS)
        assert not inner.caps.can_remove(A)
        assert outer.caps.can_remove(A)
        assert thread.task.capabilities.can_remove(A)

    def test_scoped_drop_outside_region_rejected(self):
        thread = make_thread(CapabilitySet.dual(A))
        with pytest.raises(RuntimeError):
            thread.drop_capability_scoped(A, CapType.MINUS)

    def test_global_drop_touches_everything(self):
        thread = make_thread(CapabilitySet.dual(A))
        frame = RegionFrame(LabelPair.EMPTY, CapabilitySet.dual(A))
        frame.saved_kernel_caps = CapabilitySet.dual(A)
        thread.frames.append(frame)
        thread.drop_capability_global(A, CapType.BOTH)
        assert not thread.task.capabilities.can_add(A)
        assert not frame.caps.can_add(A)
        assert not frame.saved_kernel_caps.can_add(A)
