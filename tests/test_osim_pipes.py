"""Pipes: label mediation, silent drops, non-blocking reads, capability
transfer (Section 5.2 "Pipes" and Section 4.4 "write_capability")."""

import pytest

from repro.core import Capability, CapabilitySet, CapType, Label, LabelPair, LabelType
from repro.osim import Kernel, LaminarSecurityModule, Pipe, SyscallError


@pytest.fixture
def k():
    return Kernel(LaminarSecurityModule())


class TestPipeDataPath:
    def test_same_label_roundtrip(self, k):
        task = k.spawn_task("p")
        rfd, wfd = k.sys_pipe(task)
        assert k.sys_write(task, wfd, b"msg") == 3
        assert k.sys_read(task, rfd) == b"msg"

    def test_reads_are_nonblocking_empty_returns_empty(self, k):
        task = k.spawn_task("p")
        rfd, _ = k.sys_pipe(task)
        assert k.sys_read(task, rfd) == b""

    def test_no_eof_after_writer_exit(self, k):
        writer = k.spawn_task("w")
        reader = k.spawn_task("r")
        rfd_w, wfd = k.sys_pipe(writer)
        rfd = k.share_fd(writer, rfd_w, reader)
        k.sys_write(writer, wfd, b"last")
        k.sys_exit(writer, 0)
        assert k.sys_read(reader, rfd) == b"last"
        # after drain: still just empty — no EOF signal, ever
        assert k.sys_read(reader, rfd) == b""

    def test_illegal_write_drops_silently(self, k):
        plain = k.spawn_task("plain")
        rfd, wfd = k.sys_pipe(plain)  # unlabeled pipe
        alice = k.spawn_task("alice")
        tag, _ = k.sys_alloc_tag(alice)
        wfd_alice = k.share_fd(plain, wfd, alice)
        k.sys_set_task_label(alice, LabelType.SECRECY, Label.of(tag))
        # the tainted write *appears* to succeed
        assert k.sys_write(alice, wfd_alice, b"secret") == 6
        # ...but nothing arrives
        assert k.sys_read(plain, rfd) == b""
        pipe = k.tasks[plain.tid].fd_table[rfd].inode.pipe
        assert pipe.dropped == 1

    def test_illegal_read_indistinguishable_from_empty(self, k):
        alice = k.spawn_task("alice")
        tag, _ = k.sys_alloc_tag(alice)
        k.sys_set_task_label(alice, LabelType.SECRECY, Label.of(tag))
        rfd, wfd = k.sys_pipe(alice)  # pipe labeled {S(a)}
        k.sys_write(alice, wfd, b"secret")
        k.sys_set_task_label(alice, LabelType.SECRECY, Label.EMPTY)
        assert k.sys_read(alice, rfd) == b""  # denied, looks empty

    def test_full_buffer_drops_silently(self, k):
        task = k.spawn_task("p")
        pipe = Pipe(LabelPair.EMPTY, capacity=2)
        from repro.osim.filesystem import File, OpenMode

        wfd = task.install_fd(File(pipe.inode, OpenMode.WRITE))
        for i in range(5):
            assert k.sys_write(task, wfd, b"x") == 1
        assert len(pipe) == 2 and pipe.dropped == 3


class TestCapabilityTransfer:
    def test_transfer_grants_receiver(self, k):
        sender = k.spawn_task("s")
        receiver = k.spawn_task("r")
        tag, _ = k.sys_alloc_tag(sender, "gift")
        rfd_s, wfd = k.sys_pipe(sender)
        rfd = k.share_fd(sender, rfd_s, receiver)
        cap = Capability(tag, CapType.PLUS)
        k.sys_write_capability(sender, cap, wfd)
        received = k.sys_read_capability(receiver, rfd)
        assert received == cap
        assert receiver.capabilities.can_add(tag)

    def test_cannot_send_unheld_capability(self, k):
        sender = k.spawn_task("s")
        other = k.spawn_task("o")
        tag, _ = k.sys_alloc_tag(other)
        _, wfd = k.sys_pipe(sender)
        with pytest.raises(SyscallError):
            k.sys_write_capability(sender, Capability(tag, CapType.PLUS), wfd)

    def test_transfer_mediated_by_labels(self, k):
        sender = k.spawn_task("s")
        tag, _ = k.sys_alloc_tag(sender)
        secret, _ = k.sys_alloc_tag(sender, "taint")
        rfd_s, wfd = k.sys_pipe(sender)  # unlabeled pipe
        k.sys_set_task_label(sender, LabelType.SECRECY, Label.of(secret))
        # tainted sender -> unlabeled pipe: silently dropped
        k.sys_write_capability(sender, Capability(tag, CapType.PLUS), wfd)
        receiver = k.spawn_task("r")
        rfd = k.share_fd(sender, rfd_s, receiver)
        assert k.sys_read_capability(receiver, rfd) is None

    def test_requires_pipe_fd(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        fd = k.sys_creat(task, "/tmp/notapipe")
        with pytest.raises(SyscallError):
            k.sys_write_capability(task, Capability(tag, CapType.PLUS), fd)

    def test_read_capability_empty_pipe_none(self, k):
        task = k.spawn_task("p")
        rfd, _ = k.sys_pipe(task)
        assert k.sys_read_capability(task, rfd) is None
