"""Directed tests for the tier-2 template JIT engine.

Covers the tiered-execution contract: profile-guided promotion (entry and
OSR), observational equivalence with the interpreter (results, executed
counts, enforcement counters, audit bytes), the guard/deopt protocol
(opposite-context calls fall back to the interpreter and materialize
clones — never :class:`StaleCompilationError`), code-cache invalidation
on IR mutation and fastpath reconfiguration, and the CLI surface
(``lamc run --tier2``, ``lamc disasm --tiers``).
"""

from __future__ import annotations

import io
import itertools

import pytest

from repro.baselines import vanilla_kernel
from repro.core import CapabilitySet, Label, fastpath
from repro.jit import (
    Compiler,
    Interpreter,
    JITConfig,
    RegionSpec,
    StaleCompilationError,
    TierPolicy,
    compile_source,
)
from repro.osim import Kernel, LaminarSecurityModule
from repro.osim.filesystem import Inode
from repro.runtime import LaminarVM
from repro.runtime.heap import ObjectHeader
from repro.tools.lamc import main as lamc_main

#: Aggressive promotion so small tests reach tier 2 quickly.
HOT = TierPolicy(
    invocation_threshold=2, backedge_threshold=6, deopt_recompile_threshold=2
)

LOOP_SRC = """
class Box { val }

method sum(n) {
entry:
  const acc, 0
  const i, 0
  new b, Box
loop:
  binop c, lt, i, n
  br c, body, done
body:
  putfield b, val, i
  getfield t, b, val
  binop acc, add, acc, t
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret acc
}

method main() {
entry:
  const n, 50
  const r, 0
  const j, 0
outer:
  const lim, 6
  binop c, lt, j, lim
  br c, obody, odone
obody:
  call r, sum, n
  const one, 1
  binop j, add, j, one
  jmp outer
odone:
  ret r
}
"""

#: A helper called from inside a region *and* from plain code: the shape
#: that makes the static prototype raise StaleCompilationError and makes
#: tier-2 deopt and clone instead.
DUAL_CONTEXT_SRC = """
class Cell { v }

method touch(o, x) {
entry:
  putfield o, v, x
  getfield y, o, v
  ret y
}

region method work() secrecy(alpha) {
entry:
  const i, 0
  new c, Cell
loop:
  const lim, 20
  binop cond, lt, i, lim
  br cond, body, done
body:
  call y, touch, c, i
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}

method main() {
entry:
  const j, 0
  const z, 0
outer:
  const lim, 8
  binop cond, lt, j, lim
  br cond, obody, odone
obody:
  call _, work
  new d, Cell
  const k, 5
  call z, touch, d, k
  const one, 1
  binop j, add, j, one
  jmp outer
odone:
  ret z
}
"""

#: A region body that violates IFC (writes region-labeled data into an
#: unlabeled parameter object): the violation is suppressed at region
#: exit and lands in the audit log — the byte-compared observable.
VIOLATING_SRC = """
class Box { v }

region method leak(b) secrecy(alpha) {
entry:
  const i, 0
loop:
  const lim, 4
  binop c, lt, i, lim
  br c, body, done
body:
  const x, 1
  putfield b, v, x
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret
}

method main() {
entry:
  new b, Box
  const j, 0
outer:
  const lim, 5
  binop c, lt, j, lim
  br c, obody, odone
obody:
  call _, leak, b
  const one, 1
  binop j, add, j, one
  jmp outer
odone:
  getfield r, b, v
  ret r
}
"""


def _reset_id_counters() -> None:
    # Ids leak into audit text; restart per run for byte comparison.
    Inode._ino_counter = itertools.count(1)
    ObjectHeader._oid_counter = itertools.count(1)


def _observe(source, config=JITConfig.STATIC, policy=None, **compile_kw):
    """Compile and run on a fresh VM; return every cross-tier observable
    plus the interpreter (for engine inspection)."""
    _reset_id_counters()
    program, _ = Compiler(config, **compile_kw).compile(source)
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    if program.tags:
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    interp = Interpreter(program, vm, tier2=policy)
    try:
        result = interp.run("main")
        exc = None
    except Exception as error:  # noqa: BLE001 - differential capture
        result = None
        exc = type(error).__name__
    audit = tuple(str(entry) for entry in kernel.audit.entries())
    return {
        "result": result,
        "exc": exc,
        "output": tuple(interp.output),
        "executed": interp.executed,
        "enforcement": vm.barriers.stats.enforcement(),
        "audit": audit,
        "interp": interp,
        "program": program,
        "stats": vm.barriers.stats,
    }


def _equivalent(cold, hot):
    for key in ("result", "exc", "output", "executed", "enforcement", "audit"):
        assert cold[key] == hot[key], f"tier-2 diverged on {key}"


class TestPromotion:
    def test_hot_method_compiles_and_agrees(self):
        cold = _observe(LOOP_SRC)
        hot = _observe(LOOP_SRC, policy=HOT)
        _equivalent(cold, hot)
        engine = hot["interp"]._tier2
        assert engine.compiles >= 1
        assert engine.entries >= 1
        assert hot["stats"].tier2_entries == engine.entries
        assert engine.deopts == 0

    def test_cold_program_stays_interpreted(self):
        lukewarm = TierPolicy(invocation_threshold=10_000,
                              backedge_threshold=1_000_000)
        run = _observe(LOOP_SRC, policy=lukewarm)
        engine = run["interp"]._tier2
        assert engine.compiles == 0
        assert run["stats"].tier2_entries == 0

    def test_osr_promotes_long_running_invocation(self):
        # Entry threshold unreachable (each method called a handful of
        # times), back-edge threshold low: only OSR can reach tier 2.
        policy = TierPolicy(invocation_threshold=10_000, backedge_threshold=20)
        cold = _observe(LOOP_SRC)
        hot = _observe(LOOP_SRC, policy=policy)
        _equivalent(cold, hot)
        engine = hot["interp"]._tier2
        assert engine.osr_entries >= 1
        assert engine.compiles >= 1

    def test_dynamic_config_agrees(self):
        cold = _observe(LOOP_SRC, config=JITConfig.DYNAMIC)
        hot = _observe(LOOP_SRC, config=JITConfig.DYNAMIC, policy=HOT)
        _equivalent(cold, hot)
        assert hot["interp"]._tier2.compiles >= 1

    def test_fusion_off_agrees(self):
        nofuse = TierPolicy(invocation_threshold=2, backedge_threshold=6,
                            fusion=False)
        cold = _observe(LOOP_SRC)
        hot = _observe(LOOP_SRC, policy=nofuse)
        _equivalent(cold, hot)
        assert hot["interp"]._tier2.compiles >= 1

    def test_fusion_forms_superinstructions(self):
        from repro.jit.tier2 import find_fused_pairs

        program, _ = compile_source(LOOP_SRC, JITConfig.BASELINE)
        fused = {}
        for method in program.methods.values():
            fused.update(find_fused_pairs(method))
        assert "binop+cjump" in fused.values()


class TestDeoptAndClone:
    def test_opposite_context_deopts_then_clones(self):
        cold = _observe(DUAL_CONTEXT_SRC, config=JITConfig.DYNAMIC,
                        inline=False)
        hot = _observe(DUAL_CONTEXT_SRC, config=JITConfig.DYNAMIC,
                       inline=False, policy=HOT)
        _equivalent(cold, hot)
        engine = hot["interp"]._tier2
        assert engine.deopts >= HOT.deopt_recompile_threshold
        assert hot["stats"].tier2_deopts == engine.deopts
        # The helper was compiled for both contexts: the out variant and
        # an in-region clone materialized after repeated deopts.
        touch_keys = {k for (name, k) in hot["program"].tier2_cache
                      if name == "touch"}
        assert ("out",) in touch_keys
        assert any(k[0] == "in" for k in touch_keys), (
            "expected an in-region clone after repeated deopts"
        )

    def test_no_stale_compilation_error_escapes(self):
        # verify_static on the same shape *does* raise (the prototype's
        # failure mode) while the tier-2 engine never does.
        program, _ = Compiler(JITConfig.STATIC, inline=False).compile(
            DUAL_CONTEXT_SRC
        )
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
        with pytest.raises(StaleCompilationError):
            Interpreter(program, vm, verify_static=True).run("main")
        hot = _observe(DUAL_CONTEXT_SRC, config=JITConfig.STATIC,
                       inline=False, policy=HOT)
        assert hot["exc"] != "StaleCompilationError"

    def test_below_threshold_deopts_keep_interpreting(self):
        patient = TierPolicy(invocation_threshold=2, backedge_threshold=6,
                             deopt_recompile_threshold=10_000)
        hot = _observe(DUAL_CONTEXT_SRC, config=JITConfig.DYNAMIC,
                       inline=False, policy=patient)
        engine = hot["interp"]._tier2
        assert engine.deopts >= 1
        # touch runs hot inside work's region first, so its first (and,
        # below the recompile threshold, only) variant is the in-region
        # one; the out-context calls keep deopting to the interpreter
        # instead of materializing a second variant.
        touch_keys = {k for (name, k) in hot["program"].tier2_cache
                      if name == "touch"}
        assert len(touch_keys) == 1, touch_keys


class TestGuardsAndInvalidation:
    def test_fastpath_reconfigure_invalidates_code_cache(self):
        _reset_id_counters()
        program, _ = compile_source(LOOP_SRC, JITConfig.STATIC)
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        interp = Interpreter(program, vm, tier2=HOT)
        first = interp.run("main")
        assert program.tier2_cache
        before = fastpath.counters.tier2_invalidations
        # Any reconfiguration flushes caches and bumps the code epoch:
        # compiled bodies bake interned labels and layer assumptions.
        fastpath.configure(**fastpath.flags.as_dict())
        second = interp.run("main")
        assert second == first
        assert fastpath.counters.tier2_invalidations == before + 1

    def test_ir_mutation_invalidates_and_recompiles(self):
        from repro.jit.ir import Instr, Opcode

        program, _ = compile_source(LOOP_SRC, JITConfig.BASELINE,
                                    inline=False)
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        interp = Interpreter(program, vm, tier2=HOT)
        first = interp.run("main")
        assert ("sum", ("out",)) in program.tier2_cache
        method = program.method("sum")
        entry = method.blocks[method.entry]
        entry.instrs[:] = [
            Instr(Opcode.CONST, ("acc", 123)),
            Instr(Opcode.RET, ("acc",)),
        ]
        second = interp.run("main")
        assert first != second
        assert second == 123

    def test_region_spec_mutation_compiles_new_variant(self):
        src = """
        class Box { v }
        region method work() {
        entry:
          const i, 0
        loop:
          const lim, 10
          binop c, lt, i, lim
          br c, body, done
        body:
          const one, 1
          binop i, add, i, one
          jmp loop
        done:
          ret
        }
        method main() {
        entry:
          const j, 0
        outer:
          const lim, 4
          binop c, lt, j, lim
          br c, obody, odone
        obody:
          call _, work
          const one, 1
          binop j, add, j, one
          jmp outer
        odone:
          ret j
        }
        """
        from repro.runtime import LaminarAPI

        program, _ = compile_source(src, JITConfig.BASELINE)
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("t")
        interp = Interpreter(program, vm, tier2=HOT)
        interp.run("main")
        keys_before = {
            k for (name, k) in program.tier2_cache if name == "work"
        }
        assert len(keys_before) == 1
        # Mutating the spec is legal between runs; the label pair observed
        # inside the region IS the cache key, so the old variant can never
        # run for the new labels.
        program.method("work").region_spec = RegionSpec(
            secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)
        )
        interp.run("main")
        keys_after = {
            k for (name, k) in program.tier2_cache if name == "work"
        }
        assert len(keys_after) == 2
        assert keys_before < keys_after

    def test_verify_static_disables_engine(self):
        program, _ = compile_source(LOOP_SRC, JITConfig.STATIC)
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        interp = Interpreter(program, vm, verify_static=True, tier2=HOT)
        assert interp._tier2 is None
        interp.run("main")
        assert not program.tier2_cache


class TestAuditParity:
    def test_violating_region_audit_is_byte_identical(self):
        cold = _observe(VIOLATING_SRC, config=JITConfig.DYNAMIC, inline=False)
        hot = _observe(VIOLATING_SRC, config=JITConfig.DYNAMIC, inline=False,
                       policy=TierPolicy(invocation_threshold=1,
                                         backedge_threshold=4))
        assert any("REGION_SUPPRESS" in line or "suppress" in line.lower()
                   for line in cold["audit"]), cold["audit"]
        _equivalent(cold, hot)
        assert hot["interp"]._tier2.compiles >= 1


class TestCompilerWiring:
    def test_tier_jit_attaches_policy(self):
        program, report = Compiler(JITConfig.STATIC, tier="jit").compile(
            LOOP_SRC
        )
        assert isinstance(program.tier_policy, TierPolicy)
        assert report.tier == "jit"
        assert "attach-tier2" in report.passes
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        interp = Interpreter(program, vm)
        assert interp._tier2 is not None
        assert interp._tier2.policy is program.tier_policy

    def test_explicit_policy_implies_jit(self):
        policy = TierPolicy(invocation_threshold=3)
        program, report = Compiler(JITConfig.STATIC, tier2=policy).compile(
            LOOP_SRC
        )
        assert program.tier_policy is policy
        assert report.tier == "jit"

    def test_default_tier_is_interp(self):
        program, report = Compiler(JITConfig.STATIC).compile(LOOP_SRC)
        assert program.tier_policy is None
        assert report.tier == "interp"
        vm = LaminarVM(Kernel(LaminarSecurityModule()))
        assert Interpreter(program, vm)._tier2 is None

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError):
            Compiler(tier="turbo")


class TestCLI:
    def _run_cli(self, *argv):
        out = io.StringIO()
        code = lamc_main(list(argv), out=out)
        return code, out.getvalue()

    def test_run_tier2_reports_engine(self, tmp_path):
        path = tmp_path / "loop.ir"
        path.write_text(LOOP_SRC)
        code, text = self._run_cli(
            "run", str(path), "--tier2", "--tier2-threshold", "2"
        )
        assert code == 0
        assert "tier-2:" in text
        assert "compiles" in text and "deopts" in text

    def test_run_without_tier2_has_no_report(self, tmp_path):
        path = tmp_path / "loop.ir"
        path.write_text(LOOP_SRC)
        code, text = self._run_cli("run", str(path))
        assert code == 0
        assert "tier-2:" not in text

    def test_tier2_run_matches_interpreter_result(self, tmp_path):
        path = tmp_path / "loop.ir"
        path.write_text(LOOP_SRC)
        _, plain = self._run_cli("run", str(path))
        _, tiered = self._run_cli("run", str(path), "--tier2",
                                  "--tier2-threshold", "2")
        line = next(l for l in plain.splitlines() if l.startswith("result:"))
        assert line in tiered

    def test_disasm_tiers(self, tmp_path):
        path = tmp_path / "dual.ir"
        path.write_text(DUAL_CONTEXT_SRC)
        code, text = self._run_cli(
            "disasm", str(path), "--tiers", "--config", "dynamic"
        )
        assert code == 0
        assert "tier pipeline:" in text
        assert "baked barriers:" in text
        assert "guards: entry (context key)" in text
        assert "osr @" in text  # loop headers are OSR guard points
        assert "fused:" in text

    def test_plain_disasm_unchanged(self, tmp_path):
        path = tmp_path / "loop.ir"
        path.write_text(LOOP_SRC)
        code, text = self._run_cli("disasm", str(path))
        assert code == 0
        assert "class Box { val }" in text
        assert "tier pipeline:" not in text
