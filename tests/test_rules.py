"""Unit tests for the Section 3.2 information-flow rules."""

import pytest

from repro.core import (
    CapabilitySet,
    IntegrityViolation,
    Label,
    LabelChangeViolation,
    LabelPair,
    SecrecyViolation,
    Tag,
    can_change_label,
    can_flow,
    check_flow,
    check_label_change,
    check_pair_change,
    integrity_allows,
    labeled_create_allowed,
    region_entry_allowed,
    secrecy_allows,
)

A, B, C = Tag(1, "a"), Tag(2, "b"), Tag(3, "c")
EMPTY = Label.EMPTY


def S(*tags):
    return LabelPair(Label.of(*tags))


def I(*tags):
    return LabelPair(Label.EMPTY, Label.of(*tags))


class TestSecrecyRule:
    """Bell-LaPadula: flow x -> y requires S_x ⊆ S_y."""

    def test_write_up_allowed(self):
        assert secrecy_allows(EMPTY, Label.of(A))

    def test_write_down_denied(self):
        assert not secrecy_allows(Label.of(A), EMPTY)

    def test_lateral_same_label(self):
        assert secrecy_allows(Label.of(A), Label.of(A))

    def test_incomparable_labels_denied(self):
        assert not secrecy_allows(Label.of(A), Label.of(B))
        assert not secrecy_allows(Label.of(B), Label.of(A))


class TestIntegrityRule:
    """Biba: flow x -> y requires I_y ⊆ I_x."""

    def test_read_down_denied(self):
        # A high-integrity destination may not accept low-integrity data.
        assert not integrity_allows(EMPTY, Label.of(A))

    def test_flow_down_allowed(self):
        assert integrity_allows(Label.of(A), EMPTY)

    def test_same_level(self):
        assert integrity_allows(Label.of(A), Label.of(A))


class TestCanFlow:
    def test_both_rules_must_hold(self):
        src = LabelPair(Label.of(A), Label.of(B))
        dst = LabelPair(Label.of(A), Label.of(B))
        assert can_flow(src, dst)
        assert not can_flow(src, LabelPair(EMPTY, Label.of(B)))  # secrecy fails
        assert not can_flow(src, LabelPair(Label.of(A), Label.of(B, C)))  # integ fails

    def test_unlabeled_to_unlabeled(self):
        assert can_flow(LabelPair.EMPTY, LabelPair.EMPTY)


class TestCheckFlow:
    def test_raises_precise_secrecy_violation(self):
        with pytest.raises(SecrecyViolation) as err:
            check_flow(S(A), S(), context="write to net")
        assert "write to net" in str(err.value)

    def test_raises_precise_integrity_violation(self):
        with pytest.raises(IntegrityViolation):
            check_flow(I(), I(A))

    def test_ok_flow_silent(self):
        check_flow(S(), S(A))


class TestLabelChangeRule:
    """(L2-L1) ⊆ Cp+ and (L1-L2) ⊆ Cp-."""

    def test_add_with_plus(self):
        assert can_change_label(EMPTY, Label.of(A), CapabilitySet.plus(A))

    def test_add_without_plus_denied(self):
        assert not can_change_label(EMPTY, Label.of(A), CapabilitySet.minus(A))

    def test_remove_with_minus(self):
        assert can_change_label(Label.of(A), EMPTY, CapabilitySet.minus(A))

    def test_remove_without_minus_denied(self):
        assert not can_change_label(Label.of(A), EMPTY, CapabilitySet.plus(A))

    def test_swap_needs_both(self):
        caps = CapabilitySet.plus(B).union(CapabilitySet.minus(A))
        assert can_change_label(Label.of(A), Label.of(B), caps)
        assert not can_change_label(Label.of(B), Label.of(A), caps)

    def test_noop_change_needs_nothing(self):
        assert can_change_label(Label.of(A), Label.of(A), CapabilitySet.EMPTY)

    def test_check_raises_with_missing_tags_named(self):
        with pytest.raises(LabelChangeViolation) as err:
            check_label_change(EMPTY, Label.of(A, B), CapabilitySet.plus(A))
        assert "b" in str(err.value)

    def test_check_pair_change_covers_both_labels(self):
        caps = CapabilitySet.plus(A)
        check_pair_change(LabelPair.EMPTY, S(A), caps)
        with pytest.raises(LabelChangeViolation):
            check_pair_change(LabelPair.EMPTY, I(B), caps)


class TestRegionEntryRules:
    """Section 4.3.2: S_R ⊆ (Cp+ ∪ S_P), I_R ⊆ (Cp+ ∪ I_P), C_R ⊆ C_P."""

    def test_entry_via_capability(self):
        assert region_entry_allowed(
            Label.of(A), EMPTY, CapabilitySet.EMPTY,
            LabelPair.EMPTY, CapabilitySet.plus(A),
        )

    def test_entry_via_existing_label(self):
        # Thread already tainted with A can enter an A region with no caps.
        assert region_entry_allowed(
            Label.of(A), EMPTY, CapabilitySet.EMPTY,
            S(A), CapabilitySet.EMPTY,
        )

    def test_entry_denied_without_either(self):
        assert not region_entry_allowed(
            Label.of(A), EMPTY, CapabilitySet.EMPTY,
            LabelPair.EMPTY, CapabilitySet.minus(A),
        )

    def test_region_caps_must_be_subset(self):
        assert not region_entry_allowed(
            EMPTY, EMPTY, CapabilitySet.dual(A),
            LabelPair.EMPTY, CapabilitySet.plus(A),
        )

    def test_integrity_entry(self):
        assert region_entry_allowed(
            EMPTY, Label.of(B), CapabilitySet.EMPTY,
            LabelPair.EMPTY, CapabilitySet.plus(B),
        )
        assert not region_entry_allowed(
            EMPTY, Label.of(B), CapabilitySet.EMPTY,
            LabelPair.EMPTY, CapabilitySet.EMPTY,
        )


class TestLabeledCreateRule:
    """Section 5.2's three conditions for creating labeled files."""

    def test_untainted_precreate_of_secret_file(self):
        # The pre-create discipline: an unlabeled principal creates a file
        # *above* its level.
        assert labeled_create_allowed(
            LabelPair.EMPTY, CapabilitySet.EMPTY, S(A), parent_writable=True
        )

    def test_tainted_create_in_unlabeled_dir_denied(self):
        # The paper's leak example: {S(a)} cannot create {S(a)} in an
        # unlabeled directory — the file *name* would leak.
        assert not labeled_create_allowed(
            S(A), CapabilitySet.dual(A), S(A), parent_writable=False
        )

    def test_tainted_create_needs_legitimate_labels(self):
        # Principal must hold plus caps for its current labels.
        assert not labeled_create_allowed(
            S(A), CapabilitySet.EMPTY, S(A), parent_writable=True
        )
        assert labeled_create_allowed(
            S(A), CapabilitySet.plus(A), S(A), parent_writable=True
        )

    def test_file_secrecy_must_cover_principal(self):
        assert not labeled_create_allowed(
            S(A), CapabilitySet.plus(A), S(), parent_writable=True
        )

    def test_integrity_cannot_exceed_principal(self):
        assert not labeled_create_allowed(
            LabelPair.EMPTY, CapabilitySet.plus(A), I(A), parent_writable=True
        )
        assert labeled_create_allowed(
            I(A), CapabilitySet.plus(A), I(A), parent_writable=True
        )
