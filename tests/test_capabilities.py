"""Unit tests for capabilities and capability sets."""

import pytest

from repro.core import Capability, CapabilitySet, CapType, Label, Tag

A, B, C = Tag(1, "a"), Tag(2, "b"), Tag(3, "c")


class TestCapability:
    def test_repr(self):
        assert repr(Capability(A, CapType.PLUS)) == "a+"
        assert repr(Capability(A, CapType.MINUS)) == "a-"

    def test_both_is_not_a_concrete_capability(self):
        with pytest.raises(ValueError):
            Capability(A, CapType.BOTH)

    def test_equality(self):
        assert Capability(A, CapType.PLUS) == Capability(A, CapType.PLUS)
        assert Capability(A, CapType.PLUS) != Capability(A, CapType.MINUS)


class TestCapabilitySetFactories:
    def test_dual_grants_both(self):
        caps = CapabilitySet.dual(A)
        assert caps.can_add(A) and caps.can_remove(A)
        assert len(caps) == 2

    def test_plus_only(self):
        caps = CapabilitySet.plus(A, B)
        assert caps.can_add(A) and caps.can_add(B)
        assert not caps.can_remove(A)

    def test_minus_only(self):
        caps = CapabilitySet.minus(A)
        assert caps.can_remove(A) and not caps.can_add(A)

    def test_empty_is_interned(self):
        assert CapabilitySet() == CapabilitySet.EMPTY

    def test_rejects_non_capabilities(self):
        with pytest.raises(TypeError):
            CapabilitySet([A])  # type: ignore[list-item]


class TestCapabilitySetQueries:
    def test_can_add_all_remove_all(self):
        caps = CapabilitySet.dual(A, B)
        assert caps.can_add_all(Label.of(A, B))
        assert caps.can_remove_all(Label.of(A))
        assert not caps.can_add_all(Label.of(A, C))

    def test_plus_minus_tags_as_labels(self):
        caps = CapabilitySet.plus(A).union(CapabilitySet.minus(B))
        assert caps.plus_tags() == Label.of(A)
        assert caps.minus_tags() == Label.of(B)

    def test_subset(self):
        assert CapabilitySet.plus(A).is_subset_of(CapabilitySet.dual(A))
        assert not CapabilitySet.dual(A).is_subset_of(CapabilitySet.plus(A))


class TestCapabilitySetAlgebra:
    def test_union(self):
        merged = CapabilitySet.plus(A).union(CapabilitySet.minus(A))
        assert merged == CapabilitySet.dual(A)

    def test_union_shares_superset(self):
        big = CapabilitySet.dual(A, B)
        assert big.union(CapabilitySet.plus(A)) is big

    def test_intersection(self):
        left = CapabilitySet.dual(A)
        right = CapabilitySet.plus(A, B)
        assert left.intersection(right) == CapabilitySet.plus(A)

    def test_without_single_kind(self):
        caps = CapabilitySet.dual(A).without(A, CapType.MINUS)
        assert caps.can_add(A) and not caps.can_remove(A)

    def test_without_both(self):
        caps = CapabilitySet.dual(A, B).without(A, CapType.BOTH)
        assert not caps.can_add(A) and not caps.can_remove(A)
        assert caps.can_add(B)

    def test_without_all(self):
        caps = CapabilitySet.dual(A, B).without_all(CapabilitySet.dual(A))
        assert caps == CapabilitySet.dual(B)

    def test_with_capability(self):
        caps = CapabilitySet.EMPTY.with_capability(Capability(A, CapType.PLUS))
        assert caps.can_add(A)
        assert caps.with_capability(Capability(A, CapType.PLUS)) is caps

    def test_iteration_is_deterministic(self):
        caps = CapabilitySet.dual(B, A)
        assert [repr(c) for c in caps] == ["a+", "a-", "b+", "b-"]

    def test_immutability_of_operations(self):
        original = CapabilitySet.dual(A)
        original.without(A, CapType.BOTH)
        assert original.can_add(A)
