"""The lamc CLI driver."""

import io
import json

import pytest

from repro.tools.lamc import main

GOOD = """
class Box { v }
method main() {
entry:
  new b, Box
  const x, 21
  putfield b, v, x
  getfield y, b, v
  binop z, add, y, y
  ret z
}
"""

BAD_SYNTAX = "method main() {\nentry:\n frobnicate x\n}"
BAD_VERIFY = "method main() {\nentry:\n  print ghost\n  ret\n}"


@pytest.fixture()
def good_file(tmp_path):
    path = tmp_path / "good.ir"
    path.write_text(GOOD)
    return str(path)


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCompile:
    def test_reports_pipeline_and_barriers(self, good_file):
        code, text = run_cli("compile", good_file, "--config", "dynamic")
        assert code == 0
        assert "insert-dynamic-barriers" in text
        assert "barriers: 3 inserted" in text

    def test_dump_prints_program(self, good_file):
        code, text = run_cli("compile", good_file, "--dump")
        assert code == 0
        assert "method main()" in text and "allocbar" in text

    def test_no_elim_flag(self, good_file):
        _, with_elim = run_cli("compile", good_file)
        _, without = run_cli("compile", good_file, "--no-elim")
        assert "0 removed" in without
        assert "0 removed" not in with_elim

    def test_baseline_config_has_no_barriers(self, good_file):
        code, text = run_cli("compile", good_file, "--config", "baseline")
        assert code == 0
        assert "barriers: 0 inserted" in text


class TestRun:
    def test_executes_and_reports_result(self, good_file):
        code, text = run_cli("run", good_file)
        assert code == 0
        assert "result:   42" in text

    def test_custom_entry(self, tmp_path):
        path = tmp_path / "multi.ir"
        path.write_text(
            "method other() {\nentry:\n  const x, 9\n  ret x\n}\n"
            "method main() {\nentry:\n  const x, 1\n  ret x\n}\n"
        )
        code, text = run_cli("run", str(path), "--entry", "other")
        assert code == 0 and "result:   9" in text

    def test_print_output_shown(self, tmp_path):
        path = tmp_path / "p.ir"
        path.write_text(
            "method main() {\nentry:\n  const x, 5\n  print x\n  ret x\n}\n"
        )
        code, text = run_cli("run", str(path))
        assert code == 0 and "output:" in text and "5" in text


class TestVerifyAndDisasm:
    def test_verify_ok(self, good_file):
        code, text = run_cli("verify", good_file)
        assert code == 0 and "ok" in text

    def test_verify_failure_exit_code(self, tmp_path):
        path = tmp_path / "bad.ir"
        path.write_text(BAD_VERIFY)
        code, text = run_cli("verify", str(path))
        assert code == 1 and "ghost" in text

    def test_disasm_round_trips(self, good_file):
        code, text = run_cli("disasm", good_file)
        assert code == 0
        assert "class Box { v }" in text

    def test_syntax_error_exit_code(self, tmp_path):
        path = tmp_path / "syn.ir"
        path.write_text(BAD_SYNTAX)
        code, text = run_cli("compile", str(path))
        assert code == 2 and "syntax error" in text

    def test_missing_file(self):
        code, text = run_cli("compile", "/nonexistent/x.ir")
        assert code == 2 and "error" in text


VIOLATION = """
class Box { v }

region method stomp(pub) secrecy(s) {
entry:
  const x, 1
  putfield pub, v, x
  ret
}

method main() {
entry:
  new pub, Box
  const x, 0
  putfield pub, v, x
  call _, stomp, pub
  ret x
}
"""


class TestLint:
    @pytest.fixture()
    def violation_file(self, tmp_path):
        path = tmp_path / "violation.ir"
        path.write_text(VIOLATION)
        return str(path)

    def test_clean_program_exits_zero(self, good_file):
        code, text = run_cli("lint", good_file)
        assert code == 0
        assert "no findings" in text

    def test_violation_exits_one_with_trace(self, violation_file):
        code, text = run_cli("lint", violation_file)
        assert code == 1
        assert "error[LAM001]" in text
        assert "flow trace:" in text
        assert "stomp" in text

    def test_json_output_is_machine_readable(self, violation_file):
        import json

        code, text = run_cli("lint", violation_file, "--json")
        assert code == 1
        findings = json.loads(text)
        codes = {f["code"] for f in findings}
        assert "LAM001" in codes
        lam001 = next(f for f in findings if f["code"] == "LAM001")
        assert lam001["severity"] == "error"
        assert lam001["trace"], "JSON findings carry the flow trace"

    def test_labeled_statics_flag(self, tmp_path):
        path = tmp_path / "statics.ir"
        path.write_text(
            "method log(x) {\nentry:\n  putstatic sink, x\n  ret\n}\n"
            "region method audit(b) secrecy(s) {\nentry:\n"
            "  const r0, 1\n  call _, log, r0\n  ret\n}\n"
            "method main() {\nentry:\n  const b, 0\n"
            "  call _, audit, b\n  ret b\n}\n"
        )
        code_plain, text_plain = run_cli("lint", str(path))
        code_labeled, text_labeled = run_cli(
            "lint", str(path), "--labeled-statics"
        )
        assert "LAM005" in text_plain
        assert "LAM005" not in text_labeled
        # Warnings only: neither invocation fails the build.
        assert code_plain == 0 and code_labeled == 0

    def test_syntax_error_exit_code(self, tmp_path):
        path = tmp_path / "syn.ir"
        path.write_text(BAD_SYNTAX)
        code, text = run_cli("lint", str(path))
        assert code == 2 and "syntax error" in text


class TestInterprocFlag:
    SOURCE = """
class Box { v }
method bump(b) {
entry:
  getfield r0, b, v
  const one, 1
  binop r1, add, r0, one
  putfield b, v, r1
  ret r1
}
method main() {
entry:
  new b, Box
  const x, 5
  putfield b, v, x
  call r1, bump, b
  call r2, bump, b
  ret r2
}
"""

    @pytest.fixture()
    def chain_file(self, tmp_path):
        path = tmp_path / "chain.ir"
        path.write_text(self.SOURCE)
        return str(path)

    def test_compile_reports_interproc_removals(self, chain_file):
        code, text = run_cli(
            "compile", chain_file, "--interproc", "--no-inline"
        )
        assert code == 0
        assert "interprocedural-barrier-elim" in text
        assert "interprocedural" in text and "removed" in text

    def test_run_agrees_with_intra(self, chain_file):
        code_a, text_a = run_cli("run", chain_file, "--no-inline")
        code_b, text_b = run_cli(
            "run", chain_file, "--interproc", "--no-inline"
        )
        assert code_a == code_b == 0
        result_a = [l for l in text_a.splitlines() if "result:" in l]
        result_b = [l for l in text_b.splitlines() if "result:" in l]
        assert result_a == result_b


class TestVerifyDeep:
    """The `lamc verify` deep pipeline: certificates, races, SARIF."""

    def test_certifies_real_example(self):
        code, text = run_cli("verify", "examples/labeled_pipeline.ir")
        assert code == 0
        assert "LAM009" in text
        assert "certified secure" in text
        assert "ok:" in text

    def test_planted_leak_exits_nonzero(self):
        code, text = run_cli("verify", "tests/fixtures/planted_leak.ir")
        assert code == 1
        assert "LAM007" in text
        assert "label race" in text

    def test_region_write_race_warns(self):
        code, text = run_cli(
            "verify", "tests/fixtures/region_write_race.ir"
        )
        assert code == 0  # warnings only
        assert "LAM008" in text
        assert "0/3 methods certified" in text

    def test_declassifier_launders_lam006(self):
        # Satellite regression: the declassified print stays clean under
        # both lint and verify, and the program still certifies.
        code, text = run_cli("lint", "tests/fixtures/declassify_launder.ir")
        assert code == 0 and "LAM006" not in text
        code, text = run_cli(
            "verify", "tests/fixtures/declassify_launder.ir"
        )
        assert code == 0
        assert "4/4 methods certified" in text

    def test_json_embeds_certificates(self):
        import json as json_mod

        code, text = run_cli(
            "verify", "examples/labeled_pipeline.ir", "--format", "json"
        )
        assert code == 0
        payload = json_mod.loads(text)
        assert set(payload) == {"diagnostics", "certificates", "certified"}
        assert "ingest" in payload["certified"]
        cert = payload["certificates"]["ingest"]
        assert cert["certified"] is True
        assert all(ob["discharged"] for ob in cert["obligations"])
        rules = {ob["rule"] for ob in cert["obligations"]}
        assert "region-fresh" in rules

    def test_verify_front_end_rejection_skips_deep_passes(self, tmp_path):
        path = tmp_path / "bad.ir"
        path.write_text(BAD_VERIFY)
        code, text = run_cli("verify", str(path))
        assert code == 1
        assert "LAM000" in text
        assert "deep analysis skipped" in text


class TestSarif:
    """--format sarif envelopes for lint and verify."""

    def _load(self, text):
        import json as json_mod

        return json_mod.loads(text)

    def test_lint_sarif_envelope(self, violation_file=None):
        code, text = run_cli(
            "lint", "tests/fixtures/secrecy_violation.ir",
            "--format", "sarif",
        )
        assert code == 1
        log = self._load(text)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "lamlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"LAM000", "LAM006", "LAM007", "LAM009"} <= rule_ids
        assert any(r["ruleId"] == "LAM001" for r in run["results"])
        for result in run["results"]:
            assert result["level"] in ("error", "warning", "note")
            (loc,) = result["locations"]
            assert loc["logicalLocations"][0]["fullyQualifiedName"]
            assert (
                loc["physicalLocation"]["artifactLocation"]["uri"]
                == "tests/fixtures/secrecy_violation.ir"
            )

    def test_verify_sarif_has_race_result_and_code_flow(self):
        code, text = run_cli(
            "verify", "tests/fixtures/label_race.ir", "--format", "sarif",
        )
        assert code == 1
        log = self._load(text)
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "lamverify"
        lam007 = [r for r in run["results"] if r["ruleId"] == "LAM007"]
        assert lam007
        assert lam007[0]["level"] == "error"
        flows = lam007[0]["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(flows) == 2  # both racing accesses

    def test_clean_sarif_still_carries_rule_table(self, good_file):
        code, text = run_cli("lint", good_file, "--format", "sarif")
        assert code == 0
        log = self._load(text)
        (run,) = log["runs"]
        assert run["results"] == []
        assert len(run["tool"]["driver"]["rules"]) == 10


class TestCertifiedCompile:
    def test_certified_flag_removes_more_than_interproc(self):
        src = "examples/labeled_pipeline.ir"
        code_i, text_i = run_cli("compile", src, "--interproc")
        code_c, text_c = run_cli("compile", src, "--certified")
        assert code_i == code_c == 0
        assert "certified-barrier-elim" in text_c

        def final(text):
            (line,) = [l for l in text.splitlines() if "final" in l]
            return int(line.split(",")[-1].split()[0])

        assert final(text_c) < final(text_i)
        assert "certified: " in text_c

    def test_certified_run_matches_plain(self):
        src = "examples/labeled_pipeline.ir"
        code_a, text_a = run_cli("run", src)
        code_b, text_b = run_cli("run", src, "--certified")
        assert code_a == code_b == 0
        result = lambda t: [l for l in t.splitlines() if "result:" in l]
        assert result(text_a) == result(text_b)


class TestCluster:
    def test_cluster_reports_shards_and_parity(self):
        code, text = run_cli(
            "cluster", "--shards", "3", "--topology", "edge,shuffle",
            "--requests", "24",
        )
        assert code == 0
        assert "3 shards" in text
        assert "[shuffle]" in text
        assert "parity ok" in text

    def test_cluster_json_summary(self):
        code, text = run_cli(
            "cluster", "--shards", "2", "--requests", "16", "--json"
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["audit_parity"] is True
        assert payload["requests"] == 16
        assert len(payload["shards"]) == 2
        assert sum(s["requests"] for s in payload["shards"]) == 16

    def test_cluster_wire_modes_both_reach_parity(self):
        for wire in ("binary", "pickle"):
            code, text = run_cli(
                "cluster", "--shards", "2", "--requests", "16",
                "--wire", wire,
            )
            assert code == 0
            assert "parity ok" in text
            (line,) = [l for l in text.splitlines() if l.startswith("wire:")]
            assert wire in line
            assert "B/req" in line

    def test_cluster_json_wire_block(self):
        code, text = run_cli(
            "cluster", "--shards", "2", "--requests", "16", "--json",
            "--wire", "binary",
        )
        assert code == 0
        payload = json.loads(text)
        wire = payload["wire"]
        assert wire["wire"] == "binary"
        assert wire["requests"] == 16
        assert wire["frames"] > 0
        assert wire["bytes_on_wire"] > 0
        assert wire["bytes_per_request"] > 0
        assert "label_dict_hits" in wire
        assert "label_dict_misses" in wire
        assert "coalescing" not in wire

    def test_cluster_coalesce_rate_reports_window_stats(self):
        code, text = run_cli(
            "cluster", "--shards", "2", "--requests", "32", "--json",
            "--coalesce-rate", "100000",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["audit_parity"] is True
        co = payload["wire"]["coalescing"]
        assert co["requests"] == 32
        assert co["waves"] >= 1
        code, text = run_cli(
            "cluster", "--shards", "2", "--requests", "32",
            "--coalesce-rate", "100000",
        )
        assert code == 0
        assert "waves coalesced" in text

    def test_cluster_refuses_unroutable_taint(self):
        """A central-only topology cannot hold tainted requests: they are
        refused at the router, and the rest still reach parity."""
        code, text = run_cli(
            "cluster", "--shards", "2", "--topology", "central",
            "--requests", "40", "--tainted", "0.5", "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["refused_at_router"] > 0
        assert payload["requests"] + payload["refused_at_router"] == 40
