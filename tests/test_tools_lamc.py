"""The lamc CLI driver."""

import io

import pytest

from repro.tools.lamc import main

GOOD = """
class Box { v }
method main() {
entry:
  new b, Box
  const x, 21
  putfield b, v, x
  getfield y, b, v
  binop z, add, y, y
  ret z
}
"""

BAD_SYNTAX = "method main() {\nentry:\n frobnicate x\n}"
BAD_VERIFY = "method main() {\nentry:\n  print ghost\n  ret\n}"


@pytest.fixture()
def good_file(tmp_path):
    path = tmp_path / "good.ir"
    path.write_text(GOOD)
    return str(path)


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCompile:
    def test_reports_pipeline_and_barriers(self, good_file):
        code, text = run_cli("compile", good_file, "--config", "dynamic")
        assert code == 0
        assert "insert-dynamic-barriers" in text
        assert "barriers: 3 inserted" in text

    def test_dump_prints_program(self, good_file):
        code, text = run_cli("compile", good_file, "--dump")
        assert code == 0
        assert "method main()" in text and "allocbar" in text

    def test_no_elim_flag(self, good_file):
        _, with_elim = run_cli("compile", good_file)
        _, without = run_cli("compile", good_file, "--no-elim")
        assert "0 removed" in without
        assert "0 removed" not in with_elim

    def test_baseline_config_has_no_barriers(self, good_file):
        code, text = run_cli("compile", good_file, "--config", "baseline")
        assert code == 0
        assert "barriers: 0 inserted" in text


class TestRun:
    def test_executes_and_reports_result(self, good_file):
        code, text = run_cli("run", good_file)
        assert code == 0
        assert "result:   42" in text

    def test_custom_entry(self, tmp_path):
        path = tmp_path / "multi.ir"
        path.write_text(
            "method other() {\nentry:\n  const x, 9\n  ret x\n}\n"
            "method main() {\nentry:\n  const x, 1\n  ret x\n}\n"
        )
        code, text = run_cli("run", str(path), "--entry", "other")
        assert code == 0 and "result:   9" in text

    def test_print_output_shown(self, tmp_path):
        path = tmp_path / "p.ir"
        path.write_text(
            "method main() {\nentry:\n  const x, 5\n  print x\n  ret x\n}\n"
        )
        code, text = run_cli("run", str(path))
        assert code == 0 and "output:" in text and "5" in text


class TestVerifyAndDisasm:
    def test_verify_ok(self, good_file):
        code, text = run_cli("verify", good_file)
        assert code == 0 and "ok" in text

    def test_verify_failure_exit_code(self, tmp_path):
        path = tmp_path / "bad.ir"
        path.write_text(BAD_VERIFY)
        code, text = run_cli("verify", str(path))
        assert code == 1 and "ghost" in text

    def test_disasm_round_trips(self, good_file):
        code, text = run_cli("disasm", good_file)
        assert code == 0
        assert "class Box { v }" in text

    def test_syntax_error_exit_code(self, tmp_path):
        path = tmp_path / "syn.ir"
        path.write_text(BAD_SYNTAX)
        code, text = run_cli("compile", str(path))
        assert code == 2 and "syntax error" in text

    def test_missing_file(self):
        code, text = run_cli("compile", "/nonexistent/x.ir")
        assert code == 2 and "error" in text
