"""The lamc CLI driver."""

import io

import pytest

from repro.tools.lamc import main

GOOD = """
class Box { v }
method main() {
entry:
  new b, Box
  const x, 21
  putfield b, v, x
  getfield y, b, v
  binop z, add, y, y
  ret z
}
"""

BAD_SYNTAX = "method main() {\nentry:\n frobnicate x\n}"
BAD_VERIFY = "method main() {\nentry:\n  print ghost\n  ret\n}"


@pytest.fixture()
def good_file(tmp_path):
    path = tmp_path / "good.ir"
    path.write_text(GOOD)
    return str(path)


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCompile:
    def test_reports_pipeline_and_barriers(self, good_file):
        code, text = run_cli("compile", good_file, "--config", "dynamic")
        assert code == 0
        assert "insert-dynamic-barriers" in text
        assert "barriers: 3 inserted" in text

    def test_dump_prints_program(self, good_file):
        code, text = run_cli("compile", good_file, "--dump")
        assert code == 0
        assert "method main()" in text and "allocbar" in text

    def test_no_elim_flag(self, good_file):
        _, with_elim = run_cli("compile", good_file)
        _, without = run_cli("compile", good_file, "--no-elim")
        assert "0 removed" in without
        assert "0 removed" not in with_elim

    def test_baseline_config_has_no_barriers(self, good_file):
        code, text = run_cli("compile", good_file, "--config", "baseline")
        assert code == 0
        assert "barriers: 0 inserted" in text


class TestRun:
    def test_executes_and_reports_result(self, good_file):
        code, text = run_cli("run", good_file)
        assert code == 0
        assert "result:   42" in text

    def test_custom_entry(self, tmp_path):
        path = tmp_path / "multi.ir"
        path.write_text(
            "method other() {\nentry:\n  const x, 9\n  ret x\n}\n"
            "method main() {\nentry:\n  const x, 1\n  ret x\n}\n"
        )
        code, text = run_cli("run", str(path), "--entry", "other")
        assert code == 0 and "result:   9" in text

    def test_print_output_shown(self, tmp_path):
        path = tmp_path / "p.ir"
        path.write_text(
            "method main() {\nentry:\n  const x, 5\n  print x\n  ret x\n}\n"
        )
        code, text = run_cli("run", str(path))
        assert code == 0 and "output:" in text and "5" in text


class TestVerifyAndDisasm:
    def test_verify_ok(self, good_file):
        code, text = run_cli("verify", good_file)
        assert code == 0 and "ok" in text

    def test_verify_failure_exit_code(self, tmp_path):
        path = tmp_path / "bad.ir"
        path.write_text(BAD_VERIFY)
        code, text = run_cli("verify", str(path))
        assert code == 1 and "ghost" in text

    def test_disasm_round_trips(self, good_file):
        code, text = run_cli("disasm", good_file)
        assert code == 0
        assert "class Box { v }" in text

    def test_syntax_error_exit_code(self, tmp_path):
        path = tmp_path / "syn.ir"
        path.write_text(BAD_SYNTAX)
        code, text = run_cli("compile", str(path))
        assert code == 2 and "syntax error" in text

    def test_missing_file(self):
        code, text = run_cli("compile", "/nonexistent/x.ir")
        assert code == 2 and "error" in text


VIOLATION = """
class Box { v }

region method stomp(pub) secrecy(s) {
entry:
  const x, 1
  putfield pub, v, x
  ret
}

method main() {
entry:
  new pub, Box
  const x, 0
  putfield pub, v, x
  call _, stomp, pub
  ret x
}
"""


class TestLint:
    @pytest.fixture()
    def violation_file(self, tmp_path):
        path = tmp_path / "violation.ir"
        path.write_text(VIOLATION)
        return str(path)

    def test_clean_program_exits_zero(self, good_file):
        code, text = run_cli("lint", good_file)
        assert code == 0
        assert "no findings" in text

    def test_violation_exits_one_with_trace(self, violation_file):
        code, text = run_cli("lint", violation_file)
        assert code == 1
        assert "error[LAM001]" in text
        assert "flow trace:" in text
        assert "stomp" in text

    def test_json_output_is_machine_readable(self, violation_file):
        import json

        code, text = run_cli("lint", violation_file, "--json")
        assert code == 1
        findings = json.loads(text)
        codes = {f["code"] for f in findings}
        assert "LAM001" in codes
        lam001 = next(f for f in findings if f["code"] == "LAM001")
        assert lam001["severity"] == "error"
        assert lam001["trace"], "JSON findings carry the flow trace"

    def test_labeled_statics_flag(self, tmp_path):
        path = tmp_path / "statics.ir"
        path.write_text(
            "method log(x) {\nentry:\n  putstatic sink, x\n  ret\n}\n"
            "region method audit(b) secrecy(s) {\nentry:\n"
            "  const r0, 1\n  call _, log, r0\n  ret\n}\n"
            "method main() {\nentry:\n  const b, 0\n"
            "  call _, audit, b\n  ret b\n}\n"
        )
        code_plain, text_plain = run_cli("lint", str(path))
        code_labeled, text_labeled = run_cli(
            "lint", str(path), "--labeled-statics"
        )
        assert "LAM005" in text_plain
        assert "LAM005" not in text_labeled
        # Warnings only: neither invocation fails the build.
        assert code_plain == 0 and code_labeled == 0

    def test_syntax_error_exit_code(self, tmp_path):
        path = tmp_path / "syn.ir"
        path.write_text(BAD_SYNTAX)
        code, text = run_cli("lint", str(path))
        assert code == 2 and "syntax error" in text


class TestInterprocFlag:
    SOURCE = """
class Box { v }
method bump(b) {
entry:
  getfield r0, b, v
  const one, 1
  binop r1, add, r0, one
  putfield b, v, r1
  ret r1
}
method main() {
entry:
  new b, Box
  const x, 5
  putfield b, v, x
  call r1, bump, b
  call r2, bump, b
  ret r2
}
"""

    @pytest.fixture()
    def chain_file(self, tmp_path):
        path = tmp_path / "chain.ir"
        path.write_text(self.SOURCE)
        return str(path)

    def test_compile_reports_interproc_removals(self, chain_file):
        code, text = run_cli(
            "compile", chain_file, "--interproc", "--no-inline"
        )
        assert code == 0
        assert "interprocedural-barrier-elim" in text
        assert "interprocedural" in text and "removed" in text

    def test_run_agrees_with_intra(self, chain_file):
        code_a, text_a = run_cli("run", chain_file, "--no-inline")
        code_b, text_b = run_cli(
            "run", chain_file, "--interproc", "--no-inline"
        )
        assert code_a == code_b == 0
        result_a = [l for l in text_a.splitlines() if "result:" in l]
        result_b = [l for l in text_b.splitlines() if "result:" in l]
        assert result_a == result_b
