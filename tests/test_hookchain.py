"""Compiled LSM hook chains (:mod:`repro.osim.hookchain`).

The contract under test: baking a hot (walk prefix, permission hook)
chain into an exec-generated closure is *pure performance* — hook-call
counters, audit entries, denials, and syscall results are byte-identical
to the uncompiled kernel — and every event that could change a verdict
(task relabel, inode relabel, namespace mutation, security-policy swap,
fast-path reconfiguration) deoptimizes before the stale chain can
answer.
"""

from __future__ import annotations

import pytest

from repro.core import Label, LabelPair, LabelType, fastpath
from repro.osim import (
    EACCES,
    Kernel,
    LaminarSecurityModule,
    SyscallError,
)
from repro.osim.hookchain import COMPILE_THRESHOLD


@pytest.fixture(autouse=True)
def _clean_fastpath():
    fastpath.configure()  # all layers on, caches flushed
    fastpath.counters.reset()
    yield
    fastpath.configure()


def make_kernel():
    kernel = Kernel(LaminarSecurityModule())
    task = kernel.spawn_task("app")
    kernel.sys_mkdir(task, "/tmp/hc")
    fd = kernel.sys_open(task, "/tmp/hc/data", "w")
    kernel.sys_write(task, fd, b"payload-bytes")
    kernel.sys_close(task, fd)
    return kernel, task


def hookchain_counts():
    snap = fastpath.counters.snapshot()
    return {k: v for k, v in snap.items() if k.startswith("hookchain")}


class TestCompileAndHit:
    def test_stat_chain_compiles_then_replays(self):
        kernel, task = make_kernel()
        first = kernel.sys_stat(task, "/tmp/hc/data")
        for _ in range(2 * COMPILE_THRESHOLD):
            assert kernel.sys_stat(task, "/tmp/hc/data") == first
        counts = hookchain_counts()
        assert counts["hookchain_compiles"] >= 1
        assert counts["hookchain_hits"] >= COMPILE_THRESHOLD
        assert counts["hookchain_deopts"] == 0
        assert kernel.hookchain.stats()["path_chains"] >= 1

    def test_open_chain_keyed_on_flags(self):
        kernel, task = make_kernel()
        for _ in range(2 * COMPILE_THRESHOLD):
            fd = kernel.sys_open(task, "/tmp/hc/data", "r")
            kernel.sys_close(task, fd)
        base = hookchain_counts()
        assert base["hookchain_compiles"] >= 1
        assert base["hookchain_hits"] >= 1
        # A different open mode is a different chain key, never a hit on
        # the read-mode chain.
        fd = kernel.sys_open(task, "/tmp/hc/data", "w")
        kernel.sys_close(task, fd)

    def test_fd_read_chain_compiles_then_replays(self):
        kernel, task = make_kernel()
        fd = kernel.sys_open(task, "/tmp/hc/data", "r")
        reads = []
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_lseek(task, fd, 0)
            reads.append(kernel.sys_read(task, fd, 7))
        assert len(set(reads)) == 1
        counts = hookchain_counts()
        assert counts["hookchain_compiles"] >= 1
        assert counts["hookchain_hits"] >= COMPILE_THRESHOLD - 1
        assert kernel.hookchain.stats()["fd_chains"] >= 1

    def test_denied_chains_never_bake(self):
        """Denials re-run the full hook stack every time: the audit log
        gains one entry per attempt and nothing ever compiles."""
        kernel, task = make_kernel()
        owner = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(owner, "s")
        kernel.sys_create_file_labeled(owner, "/tmp/hc/secret", LabelPair(Label.of(tag)))
        before = hookchain_counts()["hookchain_compiles"]
        for _ in range(2 * COMPILE_THRESHOLD):
            with pytest.raises(SyscallError) as exc:
                kernel.sys_stat(task, "/tmp/hc/secret")
            assert exc.value.errno == EACCES
        assert hookchain_counts()["hookchain_compiles"] == before
        denial_entries = [e for e in kernel.audit if "denial" in str(e)]
        assert len(denial_entries) == 2 * COMPILE_THRESHOLD


def run_mixed_stream(kernel, task):
    """A deterministic op stream mixing hot allowed chains with denials;
    returns every application-visible outcome."""
    outcomes = []
    for i in range(3 * COMPILE_THRESHOLD):
        outcomes.append(kernel.sys_stat(task, "/tmp/hc/data")["ino"])
        fd = kernel.sys_open(task, "/tmp/hc/data", "r")
        outcomes.append(kernel.sys_read(task, fd, 5))
        kernel.sys_close(task, fd)
        if i % 4 == 0:
            try:
                kernel.sys_stat(task, "/tmp/hc/locked")
            except SyscallError as exc:
                outcomes.append(exc.errno)
    return outcomes


def build_mixed_world():
    kernel, task = make_kernel()
    owner = kernel.spawn_task("owner")
    tag, _ = kernel.sys_alloc_tag(owner, "s")
    kernel.sys_create_file_labeled(owner, "/tmp/hc/locked", LabelPair(Label.of(tag)))
    return kernel, task


class TestObservableParity:
    def test_hooks_audit_results_identical_with_chains_off(self):
        kernel_on, task_on = build_mixed_world()
        out_on = run_mixed_stream(kernel_on, task_on)
        assert hookchain_counts()["hookchain_hits"] > 0
        hooks_on = dict(kernel_on.security.hook_calls)
        audit_on = [str(e) for e in kernel_on.audit]

        with fastpath.configured(hook_chain_compile=False):
            fastpath.counters.reset()
            kernel_off, task_off = build_mixed_world()
            out_off = run_mixed_stream(kernel_off, task_off)
            assert hookchain_counts() == {
                "hookchain_compiles": 0,
                "hookchain_hits": 0,
                "hookchain_deopts": 0,
            }
            assert kernel_off.hookchain.stats()["path_chains"] == 0
            hooks_off = dict(kernel_off.security.hook_calls)
            audit_off = [str(e) for e in kernel_off.audit]

        assert out_on == out_off
        assert hooks_on == hooks_off
        assert audit_on == audit_off


class TestDeopt:
    def test_task_relabel_retires_the_key(self):
        """Raising the task's label moves its label epoch: the old chain
        key is unreachable and the first post-relabel stat is a full
        interpreted walk, not a replay."""
        kernel, task = make_kernel()
        tag, _ = kernel.sys_alloc_tag(task, "mine")
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_stat(task, "/tmp/hc/data")
        hits_before = hookchain_counts()["hookchain_hits"]
        assert hits_before > 0
        kernel.sys_set_task_label(
            task, LabelType.SECRECY, task.labels.secrecy.with_tag(tag)
        )
        kernel.sys_stat(task, "/tmp/hc/data")  # allowed: reading less-secret
        assert hookchain_counts()["hookchain_hits"] == hits_before

    def test_inode_relabel_mid_stream_denies_correctly(self):
        """The recovery-style direct relabel: the closure's label-identity
        guard must fail, the chain is discarded, and the full hooks deny
        with a fresh audit entry — never a stale allow."""
        kernel, task = make_kernel()
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_stat(task, "/tmp/hc/data")
        owner = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(owner, "s")
        inode = kernel.fs.resolve("/tmp/hc/data", None)
        inode.labels = LabelPair(Label.of(tag))
        audit_before = len(list(kernel.audit))
        deopts_before = hookchain_counts()["hookchain_deopts"]
        with pytest.raises(SyscallError) as exc:
            kernel.sys_stat(task, "/tmp/hc/data")
        assert exc.value.errno == EACCES
        assert hookchain_counts()["hookchain_deopts"] == deopts_before + 1
        assert len(list(kernel.audit)) == audit_before + 1

    def test_fd_chain_inode_relabel_denies_correctly(self):
        kernel, task = make_kernel()
        fd = kernel.sys_open(task, "/tmp/hc/data", "r")
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_lseek(task, fd, 0)
            kernel.sys_read(task, fd, 4)
        owner = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(owner, "s")
        kernel.fs.resolve("/tmp/hc/data", None).labels = LabelPair(Label.of(tag))
        deopts_before = hookchain_counts()["hookchain_deopts"]
        with pytest.raises(SyscallError):
            kernel.sys_read(task, fd, 4)
        assert hookchain_counts()["hookchain_deopts"] == deopts_before + 1

    def test_namespace_mutation_invalidates_path_chains(self):
        """An unlink anywhere moves the namespace generation: path chains
        deopt (then re-bake), and results stay correct."""
        kernel, task = make_kernel()
        fd = kernel.sys_open(task, "/tmp/hc/other", "w")
        kernel.sys_close(task, fd)
        first = kernel.sys_stat(task, "/tmp/hc/data")
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_stat(task, "/tmp/hc/data")
        deopts_before = hookchain_counts()["hookchain_deopts"]
        kernel.sys_unlink(task, "/tmp/hc/other")
        assert kernel.sys_stat(task, "/tmp/hc/data") == first
        assert hookchain_counts()["hookchain_deopts"] == deopts_before + 1

    def test_policy_swap_drops_every_chain(self):
        kernel, task = make_kernel()
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_stat(task, "/tmp/hc/data")
        assert kernel.hookchain.stats()["path_chains"] >= 1
        kernel.set_security_module(LaminarSecurityModule())
        kernel.sys_stat(task, "/tmp/hc/data")
        assert kernel.hookchain.stats()["path_chains"] == 0

    def test_fastpath_reconfigure_drops_every_chain(self):
        """configure()/clear_caches() may retire interned label
        identities; chains baked against them must not survive."""
        kernel, task = make_kernel()
        for _ in range(2 * COMPILE_THRESHOLD):
            kernel.sys_stat(task, "/tmp/hc/data")
        assert kernel.hookchain.stats()["path_chains"] >= 1
        fastpath.configure()
        kernel.sys_stat(task, "/tmp/hc/data")
        assert kernel.hookchain.stats()["path_chains"] == 0

    def test_flag_off_disables_compilation_entirely(self):
        with fastpath.configured(hook_chain_compile=False):
            fastpath.counters.reset()
            kernel, task = make_kernel()
            for _ in range(3 * COMPILE_THRESHOLD):
                kernel.sys_stat(task, "/tmp/hc/data")
            assert hookchain_counts()["hookchain_compiles"] == 0
            assert kernel.hookchain.stats() == {
                "path_chains": 0,
                "fd_chains": 0,
                "profiled_keys": 0,
            }
