"""Shared fixtures: a booted kernel, a VM on it, and tag helpers."""

from __future__ import annotations

import pytest

from repro.core import CapabilitySet, Label, LabelPair, Tag, fastpath
from repro.osim import Kernel, LaminarSecurityModule, NullSecurityModule
from repro.runtime import BarrierMode, LaminarAPI, LaminarVM


@pytest.fixture(autouse=True)
def _fastpath_isolation():
    """Reset the process-global fast-path caches around every test.

    The intern/memo/verdict tables outlive individual tests; without a
    reset, a Label interned by one test (holding that test's Tag objects)
    would be returned to a later test whose own allocator minted
    value-equal tags, breaking per-test object-identity assumptions.
    Counters reset too, so tests can assert on hit/miss deltas.
    """
    fastpath.clear_caches()
    fastpath.counters.reset()
    yield
    fastpath.clear_caches()
    fastpath.counters.reset()


@pytest.fixture
def kernel() -> Kernel:
    return Kernel(LaminarSecurityModule())


@pytest.fixture
def vanilla() -> Kernel:
    return Kernel(NullSecurityModule())


@pytest.fixture
def vm(kernel: Kernel) -> LaminarVM:
    return LaminarVM(kernel, mode=BarrierMode.STATIC)


@pytest.fixture
def dynamic_vm(kernel: Kernel) -> LaminarVM:
    return LaminarVM(kernel, mode=BarrierMode.DYNAMIC)


@pytest.fixture
def api(vm: LaminarVM) -> LaminarAPI:
    return LaminarAPI(vm)


@pytest.fixture
def tags() -> tuple[Tag, Tag, Tag]:
    """Three well-known tags below the allocator's range (the allocator
    starts at 1 but the kernel's install consumed low values; these use a
    distinct high band so they never collide with runtime allocations)."""
    return (
        Tag(10_000_001, "a"),
        Tag(10_000_002, "b"),
        Tag(10_000_003, "c"),
    )


def pair(secrecy: Label = Label.EMPTY, integrity: Label = Label.EMPTY) -> LabelPair:
    return LabelPair(secrecy, integrity)


@pytest.fixture
def dual_caps():
    """Factory: both capabilities for the given tags."""

    def make(*tags: Tag) -> CapabilitySet:
        return CapabilitySet.dual(*tags)

    return make
