"""Coverage for labeled objects' metadata paths, the Fig. 2/3 API facade,
and VM thread-context management."""

import pytest

from repro.core import (
    Capability,
    CapabilitySet,
    CapType,
    Label,
    LabelPair,
    LabelType,
    RegionViolation,
)
from repro.osim import Kernel
from repro.runtime import LaminarAPI, LaminarVM


@pytest.fixture()
def world():
    kernel = Kernel()
    vm = LaminarVM(kernel)
    return kernel, vm, LaminarAPI(vm)


class TestLabeledObjectMetadata:
    def test_fields_listing_is_guarded(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1, "y": 2})
            assert set(obj.fields()) == {"x", "y"}
        with pytest.raises(RegionViolation):
            obj.fields()

    def test_snapshot_is_guarded_and_isolated(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1})
            snap = obj.snapshot()
            snap["x"] = 99
            assert obj.get("x") == 1
        with pytest.raises(RegionViolation):
            obj.snapshot()

    def test_raw_fields_bypasses_checks_for_tcb(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 5})
        # TCB-only view works outside the region (tests are the auditor)
        assert obj.raw_fields() == {"x": 5}

    def test_repr_shows_labels(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1}, name="thing")
        assert "thing" in repr(obj) and "a" in repr(obj)


class TestAPIWrappers:
    def test_pipe_wrapper_and_io(self, world):
        kernel, vm, api = world
        rfd, wfd = api.pipe()
        api.write(wfd, b"ping")
        assert api.read(rfd) == b"ping"
        api.close(rfd)
        api.close(wfd)

    def test_capability_transfer_via_api(self, world):
        kernel, vm, api = world
        tag = api.create_and_add_capability("gift")
        rfd, wfd = api.pipe()
        cap = Capability(tag, CapType.MINUS)
        api.write_capability(cap, wfd)
        # another thread receives it (sharing the fd table via main task
        # keeps the test single-threaded)
        received = api.read_capability(rfd)
        assert received == cap

    def test_read_capability_updates_region_cache(self, world):
        kernel, vm, api = world
        tag = api.create_and_add_capability("gift")
        rfd, wfd = api.pipe()
        api.write_capability(Capability(tag, CapType.PLUS), wfd)
        # drop it, then regain inside a region: the frame cache must learn
        vm.current_thread.drop_capability_global(tag, CapType.PLUS)
        with vm.region(caps=vm.current_thread.capabilities):
            assert not vm.current_thread.capabilities.can_add(tag)
            api.read_capability(rfd)
            assert vm.current_thread.capabilities.can_add(tag)
        assert vm.current_thread.capabilities.can_add(tag)

    def test_get_current_label_types(self, world):
        kernel, vm, api = world
        i = api.create_and_add_capability("i")
        with vm.region(integrity=Label.of(i), caps=CapabilitySet.dual(i)):
            assert api.get_current_label(LabelType.INTEGRITY) == Label.of(i)
            assert api.get_current_label(LabelType.SECRECY).is_empty

    def test_create_and_add_inside_region_retained(self, world):
        kernel, vm, api = world
        with vm.region(caps=vm.current_thread.capabilities):
            fresh = api.create_and_add_capability("fresh")
            assert vm.current_thread.capabilities.can_add(fresh)
        assert vm.current_thread.capabilities.can_add(fresh)
        assert vm.current_thread.task.capabilities.can_remove(fresh)


class TestThreadContext:
    def test_running_restores_previous_thread(self, world):
        kernel, vm, api = world
        worker = vm.create_thread("worker")
        assert vm.current_thread is vm.main_thread
        with vm.running(worker):
            assert vm.current_thread is worker
            nested = vm.create_thread("nested")
            with vm.running(nested):
                assert vm.current_thread is nested
            assert vm.current_thread is worker
        assert vm.current_thread is vm.main_thread

    def test_running_restores_on_exception(self, world):
        kernel, vm, api = world
        worker = vm.create_thread("worker")
        with pytest.raises(ValueError):
            with vm.running(worker):
                raise ValueError
        assert vm.current_thread is vm.main_thread

    def test_region_default_thread_is_current(self, world):
        kernel, vm, api = world
        worker = vm.create_thread("worker")
        with vm.running(worker):
            with vm.region() as region:
                assert region.thread is worker
