"""Property-based soundness sweep for the certifier (lamverify).

Hypothesis generates random labeled region programs and checks the
certifier's central soundness claim via the two-run secret-swap oracle:

* **Certified noninterference**: when ``main`` is certified, swapping
  the secret constant produces byte-identical observables (result,
  output, statics, audit) under the interpreter, the table-driven JIT,
  and tier-2 — both for the plain build and with certified barrier
  elimination enabled.
* **Elimination transparency**: ``optimize_barriers="certified"`` never
  changes observables, even on programs the certifier rejects (their
  barriers simply stay).
* **Negative control**: the planted-leak shape is uncertified, draws
  LAM007, and the oracle *does* distinguish the swapped secrets — so a
  certifier bug that certified it would be caught, not vacuous.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import run_verify, swap_check
from repro.analysis.secretswap import (
    MODES,
    SECRET_PLACEHOLDER,
    collect_observables,
)
from repro.jit.parser import parse_program

BINOPS = ["add", "sub", "mul", "bxor", "band", "bor"]


@st.composite
def certified_swap_template(draw) -> str:
    """A template whose ``main`` should certify: the secret is stored in
    a shared cell and consumed only inside a straight-line secrecy
    region that writes derived values into a *fresh* object.  No thread
    is ever spawned, and only public constants reach print/ret."""
    tally_body = ["  getfield x, c, val", "  new t, Total"]
    reg = "x"
    for i in range(draw(st.integers(0, 4))):
        op = draw(st.sampled_from(BINOPS))
        tally_body.append(f"  const k{i}, {draw(st.integers(1, 9))}")
        tally_body.append(f"  binop x{i}, {op}, {reg}, k{i}")
        reg = f"x{i}"
    tally_body.append(f"  putfield t, sum, {reg}")

    main_tail: list[str] = []
    for i in range(draw(st.integers(0, 3))):
        main_tail.append(f"  const p{i}, {draw(st.integers(0, 99))}")
        main_tail.append(f"  print p{i}")
    ok = draw(st.integers(0, 9))

    return "\n".join(
        [
            "class Cell { val }",
            "class Total { sum }",
            "",
            "region method tally(c) secrecy(pay) {",
            "entry:",
            *tally_body,
            "  ret",
            "}",
            "",
            "method main() {",
            "entry:",
            "  new c, Cell",
            f"  const s, {SECRET_PLACEHOLDER}",
            "  putfield c, val, s",
            "  call _, tally, c",
            *main_tail,
            f"  const ok, {ok}",
            "  ret ok",
            "}",
        ]
    )


@st.composite
def region_program(draw) -> str:
    """A region program that may or may not certify — reads and writes
    of the unlabeled parameter mix with fresh-object traffic, so some
    draws violate IFC (open obligations, runtime exceptions) and some
    are clean.  Used to check elimination transparency on both."""
    body: list[str] = ["  new f, Total", "  const k, 7"]
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(
            st.sampled_from(["read_param", "write_param", "fresh", "math"])
        )
        if kind == "read_param":
            body.append("  getfield t, c, val")
        elif kind == "write_param":
            body.append("  putfield c, val, k")
        elif kind == "fresh":
            body += ["  putfield f, sum, k", "  getfield k, f, sum"]
        else:
            op = draw(st.sampled_from(BINOPS))
            body.append(f"  binop k, {op}, k, k")
    attr = draw(st.sampled_from(["secrecy(pay)", "integrity(pay)"]))
    return "\n".join(
        [
            "class Cell { val }",
            "class Total { sum }",
            "",
            f"region method work(c) {attr} {{",
            "entry:",
            *body,
            "  ret",
            "}",
            "",
            "method main() {",
            "entry:",
            "  new c, Cell",
            f"  const v, {draw(st.integers(0, 50))}",
            "  putfield c, val, v",
            "  call _, work, c",
            "  getfield out, c, val",
            "  print out",
            "  ret out",
            "}",
        ]
    )


PLANTED_LEAK_TEMPLATE = (
    open("tests/fixtures/planted_leak.ir")
    .read()
    .replace("const secret, 7777", f"const secret, {SECRET_PLACEHOLDER}")
)


class TestCertifiedNoninterference:
    @settings(max_examples=15, deadline=None)
    @given(certified_swap_template(), st.integers(0, 10_000), st.integers(0, 10_000))
    def test_certified_main_is_swap_indistinguishable(self, template, a, b):
        program = parse_program(template.replace(SECRET_PLACEHOLDER, "0"))
        report = run_verify(program)
        assert "main" in report.certified(), (
            f"strategy drift: main no longer certifies on:\n{template}"
        )
        assert not report.errors
        divergences = swap_check(template, a, b)
        assert divergences == {}, (
            f"certified program distinguishable:\n{divergences}\n{template}"
        )

    @settings(max_examples=10, deadline=None)
    @given(certified_swap_template(), st.integers(0, 10_000))
    def test_certified_elimination_preserves_indistinguishability(
        self, template, a
    ):
        divergences = swap_check(
            template, a, a + 1, optimize_barriers="certified"
        )
        assert divergences == {}, (
            f"certified-elim build distinguishable:\n{divergences}\n{template}"
        )


class TestEliminationTransparency:
    @settings(max_examples=20, deadline=None)
    @given(region_program())
    def test_certified_elim_never_changes_observables(self, source):
        for mode in MODES:
            plain = collect_observables(source, mode=mode)
            elim = collect_observables(
                source, mode=mode, optimize_barriers="certified"
            )
            assert plain.diff(elim) == [], (
                f"certified elimination changed {mode} observables on:\n"
                f"{source}"
            )


class TestNegativeControl:
    def test_planted_leak_is_rejected_and_distinguishable(self):
        program = parse_program(
            PLANTED_LEAK_TEMPLATE.replace(SECRET_PLACEHOLDER, "7777")
        )
        report = run_verify(program)
        assert "LAM007" in report.codes
        assert report.certified() == frozenset()
        # The oracle really can see the leak: the snooped print carries
        # the secret, so the two runs diverge (at least in output).
        divergences = swap_check(
            PLANTED_LEAK_TEMPLATE, 1111, 2222, modes=("interp",)
        )
        assert divergences, "oracle failed to distinguish a genuine leak"
        assert any("output" in d for d in divergences["interp"])
