"""The paper's worked examples, transliterated and executed.

Each test encodes a specific figure or passage: if the reproduction's
semantics drift from the paper, these are the tests that catch it.
"""

import pytest

from repro.core import (
    CapabilitySet,
    Label,
    LabelChangeViolation,
    LabelPair,
    SecrecyViolation,
)
from repro.osim import Kernel, SyscallError
from repro.runtime import LaminarAPI, LaminarVM


@pytest.fixture()
def world():
    kernel = Kernel()
    vm = LaminarVM(kernel)
    return kernel, vm, LaminarAPI(vm)


class TestFigure4CalendarRegions:
    """Fig. 4: read Alice's file, update the shared calendar, compute the
    common schedule, declassify for Bob in a nested region."""

    def test_figure_4_executes_as_written(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")
        i = api.create_and_add_capability("i")

        # cal has labels {S(a,b), I(i)}; ret {S(b), I(i)}; f {S(a), I(i)}
        with vm.region(secrecy=Label.of(a, b), integrity=Label.of(i),
                       caps=CapabilitySet.dual(a, b, i)):
            cal = vm.alloc({"entries": []},
                           labels=LabelPair(Label.of(a, b), Label.of(i)),
                           name="cal")
        with vm.region(secrecy=Label.of(b), integrity=Label.of(i),
                       caps=CapabilitySet.dual(a, b, i)):
            ret = vm.alloc({"val": None},
                           labels=LabelPair(Label.of(b), Label.of(i)),
                           name="ret")
        with vm.region(secrecy=Label.of(a), integrity=Label.of(i),
                       caps=CapabilitySet.dual(a, b, i)):
            f = vm.alloc({"schedule": ["mon10"]},
                         labels=LabelPair(Label.of(a), Label.of(i)),
                         name="f")

        # The thread has a+, a-, b+, i+ (the footnote's capabilities) and
        # the region runs secure({S(a,b), I(i), C(a-)}).
        thread_caps = CapabilitySet.plus(a, b, i).union(CapabilitySet.minus(a))
        worker = vm.create_thread("worker", caps_subset=thread_caps)
        region_caps = CapabilitySet.minus(a)
        with vm.running(worker):
            with vm.region(secrecy=Label.of(a, b), integrity=Label.of(i),
                           caps=region_caps, name="fig4"):
                s1 = f.get("schedule")                     # L1: read {S(a),I(i)}
                cal.set("entries", list(s1))               # L2: write cal
                s2 = vm.alloc({"common": s1[0]}, name="s2")  # L3: region labels
                assert s2.labels.secrecy == Label.of(a, b)
                # L4: nested region {S(b), I(i), C(a-)}
                with vm.region(secrecy=Label.of(b), integrity=Label.of(i),
                               caps=region_caps, name="fig4-inner"):
                    # L5: copyAndLabel(s2, S(b), I(i)) — legal via a-
                    declassified = api.copy_and_label(
                        s2, secrecy=Label.of(b), integrity=Label.of(i)
                    )
                    ret.set("val", declassified.get("common"))

        with vm.region(secrecy=Label.of(b), integrity=Label.of(i),
                       caps=CapabilitySet.dual(b, i)):
            assert ret.get("val") == "mon10"

    def test_figure_4_variant_without_b_minus_fails(self, world):
        """'if line L5 were copyAndLabel(s2, S(), I(i)), it would result in
        a VM exception because the thread does not have the b- capability'."""
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")
        i = api.create_and_add_capability("i")
        caught = {}
        caps = CapabilitySet.plus(a, b, i).union(CapabilitySet.minus(a))
        with vm.region(secrecy=Label.of(a, b), integrity=Label.of(i),
                       caps=caps):
            s2 = vm.alloc({"common": "mon10"})
            # the exception surfaces in the *inner* region's catch block
            # (each region suppresses its own uncaught exceptions)
            with vm.region(secrecy=Label.of(b), integrity=Label.of(i),
                           caps=caps, catch=lambda e: caught.update(err=e)):
                api.copy_and_label(s2, secrecy=Label.EMPTY,
                                   integrity=Label.of(i))
        assert isinstance(caught["err"], LabelChangeViolation)


class TestFigure5ImplicitFlow:
    """Fig. 5: the H -> L implicit flow is cut by the failing assignment
    being suppressed, with the catch block restoring invariants."""

    def run_fig5(self, world, secret_h: bool):
        kernel, vm, api = world
        h = api.create_and_add_capability("h")
        with vm.region(secrecy=Label.of(h), caps=CapabilitySet.dual(h)):
            H = vm.alloc({"bit": secret_h}, labels=LabelPair(Label.of(h)))
        L = vm.alloc({"bit": False})  # unlabeled

        state = {"x": 0, "y": 0}

        def catch(exc):
            state["y"] = 2 * state["x"]  # restore the invariant y == 2x

        with vm.region(secrecy=Label.of(h), caps=CapabilitySet.plus(h),
                       catch=catch):
            state["x"] += 1
            if H.get("bit"):
                L.set("bit", True)  # raises SecrecyViolation when H true
            state["y"] = 2 * state["x"]
        return L.get("bit"), state

    def test_low_output_identical_for_both_secrets(self, world):
        low_true, state_true = self.run_fig5(world, secret_h=True)
        assert low_true is False  # the write never happened

    def test_invariant_restored_by_catch(self, world):
        _, state = self.run_fig5(world, secret_h=True)
        assert state["y"] == 2 * state["x"]

    def test_false_path_runs_to_completion(self, world):
        low, state = self.run_fig5(world, secret_h=False)
        assert low is False and state == {"x": 1, "y": 2}


class TestFigure7StudentMarks:
    """Fig. 7: sum two differently-labeled students' marks and declassify
    through a nested region."""

    def test_figure_7(self, world):
        kernel, vm, api = world
        s1_tag = api.create_and_add_capability("s1")
        s2_tag = api.create_and_add_capability("s2")
        credentials = CapabilitySet.plus(s1_tag, s2_tag).union(
            CapabilitySet.minus(s1_tag, s2_tag)
        )
        with vm.region(secrecy=Label.of(s1_tag), caps=credentials):
            student1 = vm.alloc({"marks": 41}, labels=LabelPair(Label.of(s1_tag)))
        with vm.region(secrecy=Label.of(s2_tag), caps=credentials):
            student2 = vm.alloc({"marks": 51}, labels=LabelPair(Label.of(s2_tag)))
        ret = vm.alloc({"val": None})

        with vm.region(secrecy=Label.of(s1_tag, s2_tag), caps=credentials,
                       name="L1"):
            m1 = student1.get("marks")                  # L2
            m2 = student2.get("marks")                  # L3
            obj = vm.alloc({"sum": m1 + m2}, name="obj")  # L4
            with vm.region(caps=credentials, name="L5"):  # empty secrecy
                declassified = api.copy_and_label(obj)    # L6 newLabel={}
                ret.set("val", declassified.get("sum"))
        assert ret.get("val") == 92


class TestSection33SharedScheduling:
    """The calendar walkthrough of Section 3.3: tainted server thread,
    unlabeled outputs unreachable, selective declassification."""

    def test_tainted_server_cannot_reach_unlabeled_sinks(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("alice")
        pair = LabelPair(Label.of(a))
        fd = api.create_file_labeled("/tmp/alice.cal", pair)
        with vm.region(secrecy=pair.secrecy, caps=CapabilitySet.dual(a)):
            api.write(fd, b"mon 10")
        api.close(fd)

        server = vm.create_thread("server", caps_subset=CapabilitySet.plus(a))
        with vm.running(server):
            with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
                fd = api.open("/tmp/alice.cal", "r")
                data = api.read(fd)
                assert data == b"mon 10"
                # disk (unlabeled file), network, display: all unreachable
                with pytest.raises(SyscallError):
                    api.transmit(data)
                with pytest.raises(SyscallError):
                    vm.syscall("creat", "/tmp/drop")
            # after the region: untainted again, network fine
            api.transmit(b"no secrets")
        assert kernel.net.transmitted == [b"no secrets"]

    def test_files_created_while_tainted_carry_the_taint(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("alice")
        # pre-create at the right label, then taint and write
        pair = LabelPair(Label.of(a))
        out_fd = api.create_file_labeled("/tmp/derived", pair)
        with vm.region(secrecy=pair.secrecy, caps=CapabilitySet.dual(a)):
            api.write(out_fd, b"derived secret")
        assert kernel.fs.resolve("/tmp/derived").labels.secrecy == Label.of(a)


class TestTerminationChannelDocumented:
    """Fig. 6: Laminar does NOT close termination channels — a region that
    loops forever on a secret leaks through (non-)termination.  The test
    documents the accepted limitation: the secret bit is observable."""

    def test_termination_channel_exists_by_design(self, world):
        kernel, vm, api = world
        h = api.create_and_add_capability("h")
        with vm.region(secrecy=Label.of(h), caps=CapabilitySet.dual(h)):
            H = vm.alloc({"bit": True}, labels=LabelPair(Label.of(h)))

        observed = {"finished": False}
        with vm.region(secrecy=Label.of(h), caps=CapabilitySet.plus(h)):
            if not H.get("bit"):
                pass  # the real attack would loop forever here
        observed["finished"] = True
        # An observer *can* learn H by watching termination.  Nothing in
        # Laminar prevents it; the paper assumes regions terminate.
        assert observed["finished"] is True
