"""The Python-AST static checker and @secure_method (Section 5.1 rules)."""

import pytest

from repro.core import (
    CapabilitySet,
    Label,
    LabelPair,
    LaminarUsageError,
    StaticCheckError,
)
from repro.runtime import LaminarAPI, check_region_function, secure_method


class TestChecker:
    def test_clean_region_function_passes(self):
        def region(vm, obj):
            value = obj.get("x")
            obj.set("y", value + 1)

        check_region_function(region)

    def test_return_value_rejected(self):
        def region(vm, obj):
            return obj.get("x")

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "returns a value" in str(err.value)

    def test_bare_return_rejected(self):
        def region(vm, obj):
            if obj.get("x"):
                return
            obj.set("x", 1)

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "fall-through" in str(err.value)

    def test_global_statement_rejected(self):
        def region(vm, obj):
            global leak
            leak = obj.get("x")

        with pytest.raises(StaticCheckError):
            check_region_function(region)

    def test_static_read_rejected(self):
        def region(vm, obj):
            obj.set("x", SOME_GLOBAL)  # noqa: F821

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "SOME_GLOBAL" in str(err.value)

    def test_calling_globals_allowed(self):
        def region(vm, obj):
            items = sorted(obj.get("xs"))
            obj.set("xs", items)

        check_region_function(region)

    def test_parameter_compare_rejected(self):
        def region(vm, obj):
            if obj == None:  # noqa: E711
                obj.set("x", 1)

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "compared" in str(err.value)

    def test_parameter_write_rejected(self):
        def region(vm, obj):
            obj = 5

        with pytest.raises(StaticCheckError):
            check_region_function(region)

    def test_parameter_aliasing_rejected(self):
        def region(vm, obj):
            alias = obj
            alias.set("x", 1)

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "by value" in str(err.value)

    def test_parameter_dereference_allowed(self):
        def region(vm, obj, other):
            obj.set("x", other.get("y"))
            obj.fields()

        check_region_function(region)

    def test_generators_rejected(self):
        def region(vm, obj):
            yield obj.get("x")

        with pytest.raises(StaticCheckError):
            check_region_function(region)

    def test_nonlocal_rejected(self):
        cell = 0

        def region(vm, obj):
            nonlocal cell
            cell = 1

        with pytest.raises(StaticCheckError):
            check_region_function(region)

    def test_thread_creation_rejected(self):
        def region(vm, obj):
            t = vm.create_thread(obj)
            obj.set("x", 1)

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "thread creation" in str(err.value)

    def test_stdlib_thread_creation_rejected(self):
        def region(vm, obj):
            import threading

            t = threading.Thread(target=obj.get)

        with pytest.raises(StaticCheckError) as err:
            check_region_function(region)
        assert "thread creation" in str(err.value)

    def test_first_param_is_trusted_handle(self):
        # The vm handle may be used by value (it's the TCB connection).
        def region(vm, obj):
            with vm.region(name="nested"):
                obj.set("x", 1)

        check_region_function(region)


class TestSecureMethodDecorator:
    def test_runs_inside_region(self, vm):
        api = LaminarAPI(vm)
        a = api.create_and_add_capability("a")

        @secure_method
        def total(vm_, out, s1, s2):
            out.set("sum", s1.get("v") + s2.get("v"))

        pair = LabelPair(Label.of(a))
        caps = CapabilitySet.dual(a)
        with vm.region(secrecy=pair.secrecy, caps=caps):
            s1 = vm.alloc({"v": 4}, labels=pair)
            s2 = vm.alloc({"v": 6}, labels=pair)
            out = vm.alloc({"sum": None}, labels=pair)
        result = total(vm, out, s1, s2, secrecy=pair.secrecy, caps=caps)
        assert result is None  # regions never return values
        with vm.region(secrecy=pair.secrecy, caps=caps):
            assert out.get("sum") == 10

    def test_decoration_fails_on_bad_body(self):
        with pytest.raises(StaticCheckError):
            @secure_method
            def leaky(vm_, obj):
                return obj.get("x")

    def test_reference_params_enforced_at_call(self, vm):
        @secure_method
        def region(vm_, obj):
            obj.set("x", 1)

        with pytest.raises(LaminarUsageError):
            region(vm, 42)  # not a reference type

    def test_vm_argument_enforced(self, vm):
        @secure_method
        def region(vm_, obj):
            obj.set("x", 1)

        with pytest.raises(LaminarUsageError):
            region("not a vm", None)

    def test_exceptions_suppressed_catch_invoked(self, vm):
        api = LaminarAPI(vm)
        a = api.create_and_add_capability("a")
        seen = {}

        @secure_method
        def reads_secret(vm_, obj):
            obj.get("x")

        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = vm.alloc({"x": 1})
        # calling with NO secrecy label: in-region read of {a} data fails,
        # is caught, and the call still falls through
        reads_secret(vm, secret, catch=lambda e: seen.update(err=e))
        assert "err" in seen

    def test_none_params_allowed(self, vm):
        # The wrapper accepts None references; dereferencing one inside the
        # region raises, which the region suppresses like any exception.
        @secure_method
        def region(vm_, obj):
            obj.set("x", 1)

        assert region(vm, None) is None

    def test_none_compare_rejected_statically(self):
        # 'if obj == None' / 'if obj is None' reads the reference by value,
        # the paper's canonical disallowed example.
        with pytest.raises(StaticCheckError):
            @secure_method
            def region(vm_, obj):
                if obj is None:
                    vm_.alloc({})
