"""Unit tests for the lamlint analyses: interprocedural barrier facts,
label-flow passes, and the rule engine."""

from __future__ import annotations

import copy

from repro.analysis import (
    CallGraph,
    TaintAnalysis,
    UnlabeledAnalysis,
    compute_interprocedural_facts,
    may_raise_suppressible,
    run_lint,
)
from repro.analysis.safety import method_barrier_flavor, _ACTUAL
from repro.baselines import vanilla_kernel
from repro.jit import (
    Compiler,
    CompileContext,
    Interpreter,
    JITConfig,
    eliminate_interprocedural_barriers,
    eliminate_redundant_barriers,
    insert_barriers,
    parse_program,
)
from repro.jit.ir import BarrierFlavor
from repro.runtime import LaminarVM

HELPER_CHAIN = """
class Box { val }

method bump(b) {
entry:
  getfield r0, b, val
  const one, 1
  binop r1, add, r0, one
  putfield b, val, r1
  ret r1
}

method main() {
entry:
  new b, Box
  const r0, 5
  putfield b, val, r0
  call r1, bump, b
  call r2, bump, b
  ret r2
}
"""


class TestInterproceduralFacts:
    def test_callee_entry_facts_from_all_sites(self):
        program = parse_program(HELPER_CHAIN)
        insert_barriers(program, CompileContext.UNKNOWN)
        facts = compute_interprocedural_facts(program)
        # main allocates b (read+write facts) before every call to bump.
        assert ("b", "read") in facts.entry_facts["bump"]
        assert ("b", "write") in facts.entry_facts["bump"]

    def test_roots_get_no_facts(self):
        program = parse_program(HELPER_CHAIN)
        insert_barriers(program, CompileContext.UNKNOWN)
        facts = compute_interprocedural_facts(program)
        assert facts.entry_facts["main"] == frozenset()

    def test_interprocedural_removes_strictly_more(self):
        program = parse_program(HELPER_CHAIN)
        insert_barriers(program, CompileContext.UNKNOWN)
        mirror = copy.deepcopy(program)

        intra = eliminate_redundant_barriers(program)
        extra = eliminate_interprocedural_barriers(program)
        assert extra > 0, "bump's param barriers should fall to caller facts"

        intra_only = eliminate_redundant_barriers(mirror)
        assert intra == intra_only

    def test_incompatible_flavors_block_facts(self):
        program = parse_program(HELPER_CHAIN)
        # Static-out in main vs static-in in bump: the checks differ, so no
        # facts may cross the edge.
        for name, method in program.methods.items():
            ctx = (
                CompileContext.IN_REGION
                if name == "bump"
                else CompileContext.OUT_OF_REGION
            )
            from repro.jit import insert_barriers_method

            insert_barriers_method(method, ctx)
        facts = compute_interprocedural_facts(program)
        assert facts.entry_facts["bump"] == frozenset()

    def test_method_barrier_flavor(self):
        program = parse_program(HELPER_CHAIN)
        assert method_barrier_flavor(program.methods["bump"]) is _ACTUAL
        insert_barriers(program, CompileContext.UNKNOWN)
        assert (
            method_barrier_flavor(program.methods["bump"])
            is BarrierFlavor.DYNAMIC
        )


class TestCompilerIntegration:
    def _run(self, program):
        vm = LaminarVM(vanilla_kernel())
        interp = Interpreter(program, vm)
        return interp.run("main"), list(interp.output)

    def test_interproc_mode_reported_and_behavior_preserved(self):
        intra_prog, intra_rep = Compiler(
            JITConfig.DYNAMIC, optimize_barriers=True, inline=False
        ).compile(HELPER_CHAIN)
        inter_prog, inter_rep = Compiler(
            JITConfig.DYNAMIC,
            optimize_barriers="interprocedural",
            inline=False,
        ).compile(HELPER_CHAIN)
        assert "interprocedural-barrier-elim" in inter_rep.passes
        assert inter_rep.barriers_removed == intra_rep.barriers_removed
        assert inter_rep.barriers_removed_interproc > 0
        assert (
            inter_rep.barriers_final
            == intra_rep.barriers_final - inter_rep.barriers_removed_interproc
        )
        assert self._run(intra_prog) == self._run(inter_prog)

    def test_invalid_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Compiler(optimize_barriers="sideways")


SECRET_FLOW = """
class Box { val }

method fetch(b) {
entry:
  getfield r0, b, val
  ret r0
}

region method audit(inbox) secrecy(s) {
entry:
  call v, fetch, inbox
  print v
  ret
}

method main() {
entry:
  new b, Box
  const r0, 9
  putfield b, val, r0
  call _, audit, b
  ret r0
}
"""


class TestLabelFlow:
    def test_unlabeled_param_proven_through_call(self):
        program = parse_program(SECRET_FLOW)
        analysis = UnlabeledAnalysis(program)
        assert "inbox" in analysis.entry_facts["audit"]
        assert "b" in analysis.entry_facts["fetch"]
        origin = analysis.origin("audit", "inbox")
        assert origin is not None and "unlabeled" in origin.note

    def test_taint_crosses_return_summary(self):
        program = parse_program(SECRET_FLOW)
        taint = TaintAnalysis(program)
        # fetch reads under audit's secrecy governance: its return value
        # carries audit-derived taint back into the region body.
        assert taint.summaries["fetch"].ret_tainted
        assert taint.tainted_regions("audit", "entry", 1, "v") == frozenset(
            {"audit"}
        )

    def test_no_taint_without_secrecy(self):
        program = parse_program(SECRET_FLOW.replace(" secrecy(s)", ""))
        taint = TaintAnalysis(program)
        assert not taint.summaries["fetch"].ret_tainted
        assert (
            taint.tainted_regions("audit", "entry", 1, "v") == frozenset()
        )


class TestRules:
    def test_lam001_requires_guaranteed_context(self):
        # The helper runs both inside and outside the region, so nothing
        # is guaranteed and no LAM001 may fire against it.
        program = parse_program("""
class Box { val }

method poke(b) {
entry:
  const r0, 1
  putfield b, val, r0
  ret r0
}

region method work(b) secrecy(s) {
entry:
  call r0, poke, b
  ret
}

method main() {
entry:
  new b, Box
  call r0, poke, b
  call _, work, b
  ret r0
}
""")
        report = run_lint(program)
        assert "LAM001" not in report.codes

    def test_lam005_suppressed_under_labeled_statics(self):
        program = parse_program("""
class Box { val }

method log(x) {
entry:
  putstatic sink, x
  ret
}

region method audit(b) secrecy(s) {
entry:
  const r0, 1
  call _, log, r0
  ret
}

method main() {
entry:
  new b, Box
  call _, audit, b
  ret
}
""")
        assert "LAM005" in run_lint(program).codes
        assert "LAM005" not in run_lint(program, labeled_statics=True).codes

    def test_structural_failure_short_circuits(self):
        program = parse_program("""
method main() {
entry:
  call r, nowhere
  ret r
}
""")
        report = run_lint(program)
        assert report.codes == {"LAM000"}
        assert report.errors

    def test_may_raise_propagates_through_calls(self):
        program = parse_program(SECRET_FLOW)
        cg = CallGraph(program)
        may = may_raise_suppressible(program, cg)
        assert may["fetch"]  # reads a non-fresh parameter
        assert may["audit"]  # inherits from fetch
