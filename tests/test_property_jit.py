"""Property-based differential testing of the mini-JIT.

Hypothesis generates random (but well-formed) IR programs — straight-line
arithmetic, field traffic on a generated class, array traffic, and
branches — and checks the compiler's central meta-properties:

* **Config equivalence**: baseline, static, and dynamic configurations
  compute identical results on barrier-clean programs.
* **Optimization soundness**: barrier elimination, inlining, copy
  propagation, and cloning preserve results and never *increase* the
  number of executed barriers.
* **Round trip**: disassemble ∘ parse is the identity on barrier-free
  programs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import vanilla_kernel
from repro.jit import (
    Compiler,
    Interpreter,
    JITConfig,
    count_barriers,
    parse_program,
)
from repro.jit.disasm import disassemble
from repro.runtime import LaminarVM

REGISTERS = ["r0", "r1", "r2", "r3"]
FIELDS = ("fa", "fb")
BINOPS = ["add", "sub", "mul", "bxor", "band", "bor"]


@st.composite
def straightline_body(draw) -> list[str]:
    """A block of instructions keeping every register and the heap cell
    initialized before use."""
    lines = [f"const {r}, {draw(st.integers(-50, 50))}" for r in REGISTERS]
    lines.append("new obj, Gen")
    lines.append("const sz, 4")
    lines.append("newarray arr, sz")
    count = draw(st.integers(1, 12))
    for _ in range(count):
        kind = draw(st.sampled_from(["binop", "put", "get", "astore", "aload", "mov"]))
        dst = draw(st.sampled_from(REGISTERS))
        src = draw(st.sampled_from(REGISTERS))
        if kind == "binop":
            op = draw(st.sampled_from(BINOPS))
            lines.append(f"binop {dst}, {op}, {src}, {draw(st.sampled_from(REGISTERS))}")
        elif kind == "put":
            field = draw(st.sampled_from(FIELDS))
            lines.append(f"putfield obj, {field}, {src}")
        elif kind == "get":
            field = draw(st.sampled_from(FIELDS))
            lines.append(f"getfield {dst}, obj, {field}")
        elif kind == "astore":
            lines.append("const idx, " + str(draw(st.integers(0, 3))))
            lines.append(f"astore arr, idx, {src}")
        elif kind == "aload":
            lines.append("const idx, " + str(draw(st.integers(0, 3))))
            lines.append(f"aload {dst}, arr, idx")
        else:
            lines.append(f"mov {dst}, {src}")
    return lines


@st.composite
def random_program(draw) -> str:
    """Either a straight-line main, or a branchy one with a join, plus an
    optional small helper method that main calls."""
    body = draw(straightline_body())
    branchy = draw(st.booleans())
    helper = draw(st.booleans())
    parts = ["class Gen { fa, fb }"]
    if helper:
        parts.append(
            "method helper(o) {\nentry:\n"
            "  getfield h, o, fa\n"
            "  binop h, add, h, h\n"
            "  putfield o, fb, h\n"
            "  ret h\n}"
        )
    main_lines = ["method main() {", "entry:"]
    main_lines += [f"  {line}" for line in body]
    if helper:
        main_lines.append("  call r0, helper, obj")
    if branchy:
        main_lines += [
            "  binop cond, lt, r0, r1",
            "  br cond, left, right",
            "left:",
            "  getfield r2, obj, fa",
            "  jmp join",
            "right:",
            "  getfield r3, obj, fb",
            "  jmp join",
            "join:",
        ]
    main_lines += [
        "  binop out, add, r0, r1",
        "  binop out, bxor, out, r2",
        "  binop out, add, out, r3",
        "  getfield t, obj, fa",
        "  binop out, add, out, t",
        "  getfield t, obj, fb",
        "  binop out, bxor, out, t",
        "  ret out",
        "}",
    ]
    parts.append("\n".join(main_lines))
    return "\n\n".join(parts)


def _run(program) -> tuple[object, int]:
    vm = LaminarVM(vanilla_kernel())
    interp = Interpreter(program, vm)
    return interp.run("main"), vm.barriers.stats.total


class TestConfigEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_all_configs_agree(self, source):
        results = set()
        for config in JITConfig:
            program, _ = Compiler(config).compile(source)
            results.add(_run(program)[0])
        assert len(results) == 1, f"configs disagree on:\n{source}"

    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_cloning_preserves_results(self, source):
        plain, _ = Compiler(JITConfig.STATIC, clone=False).compile(source)
        cloned, _ = Compiler(JITConfig.STATIC, clone=True).compile(source)
        assert _run(plain)[0] == _run(cloned)[0]


class TestOptimizationSoundness:
    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_elimination_preserves_results_and_reduces_checks(self, source):
        unopt, _ = Compiler(
            JITConfig.DYNAMIC, optimize_barriers=False, inline=False
        ).compile(source)
        opt, _ = Compiler(
            JITConfig.DYNAMIC, optimize_barriers=True, inline=False
        ).compile(source)
        r_unopt, barriers_unopt = _run(unopt)
        r_opt, barriers_opt = _run(opt)
        assert r_unopt == r_opt, f"elimination changed semantics on:\n{source}"
        assert barriers_opt <= barriers_unopt

    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_inlining_preserves_results(self, source):
        plain, _ = Compiler(JITConfig.BASELINE, inline=False).compile(source)
        inlined, _ = Compiler(JITConfig.BASELINE, inline=True).compile(source)
        assert _run(plain)[0] == _run(inlined)[0], (
            f"inlining changed semantics on:\n{source}"
        )

    @settings(max_examples=30, deadline=None)
    @given(random_program())
    def test_static_barrier_counts_match_dynamic(self, source):
        """Insertion is context-independent: the same accesses get
        barriers under both strategies (flavor aside), so the *static*
        barrier count matches."""
        static, _ = Compiler(
            JITConfig.STATIC, clone=False, inline=False,
            optimize_barriers=False,
        ).compile(source)
        dynamic, _ = Compiler(
            JITConfig.DYNAMIC, inline=False, optimize_barriers=False
        ).compile(source)
        assert count_barriers(static) == count_barriers(dynamic)


@st.composite
def region_program(draw) -> str:
    """A program with a security region, a shared helper, and (maybe) a
    catch handler — the shapes where unsound barrier elimination would be
    *observable*: a removed check skips an IFC violation, the region body
    runs further than it should, and the printed output diverges."""
    attr = draw(st.sampled_from(["secrecy(s)", "integrity(s)", ""]))
    catch = draw(st.booleans())
    header = f"region method work(b) {attr}" + (
        " catch(onfail)" if catch else ""
    )
    body: list[str] = ["  new f, Gen", "  const k, 7", "  putfield f, fa, k"]
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(
            st.sampled_from(
                ["read_param", "write_param", "fresh", "print", "helper"]
            )
        )
        if kind == "read_param":
            # Throws under integrity governance (unlabeled source).
            body += ["  getfield t, b, fa", "  print t"]
        elif kind == "write_param":
            # Throws under secrecy governance (unlabeled target).
            body.append("  putfield b, fb, k")
        elif kind == "fresh":
            # Always fine: the fresh object inherits the region's labels.
            body += ["  getfield t, f, fa", "  putfield f, fb, t"]
        elif kind == "print":
            body += [f"  const p, {draw(st.integers(0, 9))}", "  print p"]
        else:
            body.append("  call h, helper, f")
    parts = [
        "class Gen { fa, fb }",
        "method helper(o) {\nentry:\n"
        "  getfield h, o, fa\n"
        "  binop h, add, h, h\n"
        "  putfield o, fb, h\n"
        "  ret h\n}",
        "method onfail() {\nentry:\n  const m, -77\n  print m\n  ret\n}",
        header + " {\nentry:\n" + "\n".join(body) + "\n  ret\n}",
        "method main() {\nentry:\n"
        "  new b, Gen\n"
        "  const v, 3\n"
        "  putfield b, fa, v\n"
        "  call r, helper, b\n"
        "  call _, work, b\n"
        "  getfield t, b, fb\n"
        "  print t\n"
        "  ret r\n}",
    ]
    return "\n\n".join(parts)


def _observe(program) -> tuple[object, list, str | None]:
    """Result, printed output, and escaped-exception type of a run."""
    from repro.core import CapabilitySet

    vm = LaminarVM(vanilla_kernel())
    if program.tags:
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    interp = Interpreter(program, vm)
    try:
        result = interp.run("main")
        exc = None
    except Exception as error:  # noqa: BLE001 - differential capture
        result = None
        exc = type(error).__name__
    return result, list(interp.output), exc


ELIM_MODES = (False, True, "interprocedural")


class TestEliminationEquivalence:
    """ISSUE acceptance property: for random IR programs, interpreter
    results and security-exception behavior are identical with and
    without barrier elimination — including the interprocedural pass."""

    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_plain_programs_agree_across_modes(self, source):
        observations = []
        executed = []
        for mode in ELIM_MODES:
            program, _ = Compiler(
                JITConfig.DYNAMIC, optimize_barriers=mode, inline=False
            ).compile(source)
            vm = LaminarVM(vanilla_kernel())
            interp = Interpreter(program, vm)
            observations.append((interp.run("main"), list(interp.output)))
            executed.append(vm.barriers.stats.total)
        assert observations[0] == observations[1] == observations[2], (
            f"elimination changed semantics on:\n{source}"
        )
        # Each stronger pass removes checks, never adds them.
        assert executed[2] <= executed[1] <= executed[0]

    @settings(max_examples=40, deadline=None)
    @given(region_program())
    def test_region_programs_agree_across_modes(self, source):
        observations = []
        for mode in ELIM_MODES:
            program, _ = Compiler(
                JITConfig.DYNAMIC, optimize_barriers=mode, inline=False
            ).compile(source)
            observations.append(_observe(program))
        assert observations[0] == observations[1] == observations[2], (
            f"elimination changed observable security behavior on:\n{source}"
        )

    @settings(max_examples=20, deadline=None)
    @given(region_program())
    def test_region_programs_agree_with_inlining(self, source):
        baseline = None
        for mode in ELIM_MODES:
            program, _ = Compiler(
                JITConfig.DYNAMIC, optimize_barriers=mode, inline=True
            ).compile(source)
            seen = _observe(program)
            if baseline is None:
                baseline = seen
            assert seen == baseline, (
                f"inline + elimination changed behavior on:\n{source}"
            )


class TestDisassemblerRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_parse_disassemble_parse_fixpoint(self, source):
        program = parse_program(source)
        text = disassemble(program)
        reparsed = parse_program(text)
        assert disassemble(reparsed) == text
        assert _run(program)[0] == _run(reparsed)[0]
