"""End-to-end property testing: random syscall sequences never violate
the DIFC invariants.

A hypothesis state machine drives a kernel with several tasks performing
random label changes, labeled file creation, reads, writes, pipe traffic,
and network sends.  Marker bytes tie data to the tag protecting it, so
the oracle can state noninterference-style invariants:

* **secrecy**: a task only ever *observes* marker bytes of tags in its own
  secrecy label at observation time;
* **egress**: the unlabeled network never carries any marker byte;
* **monotone reads**: every successful file read satisfied
  ``S_file ⊆ S_task`` at the moment of the read (checked via the oracle's
  records, not the kernel's own code).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.core import Label, LabelPair, LabelType
from repro.osim import Kernel, SyscallError

N_TASKS = 3
N_TAGS = 3


def marker(tag_index: int) -> bytes:
    """The distinctive byte string standing for 'data protected by tag i'."""
    return f"<<secret-{tag_index}>>".encode()


class DIFCMachine(RuleBasedStateMachine):
    files = Bundle("files")

    @initialize()
    def boot(self):
        self.kernel = Kernel()
        self.tasks = [self.kernel.spawn_task(f"task{i}") for i in range(N_TASKS)]
        # task i owns tag i (has both capabilities); others get nothing.
        self.tags = []
        for i in range(N_TAGS):
            tag, _ = self.kernel.sys_alloc_tag(self.tasks[i % N_TASKS], f"g{i}")
            self.tags.append(tag)
        self.file_count = 0
        #: every observation: (task_secrecy_tags, data)
        self.observations: list[tuple[frozenset, bytes]] = []

    # -- random label changes -------------------------------------------------

    @rule(task_i=st.integers(0, N_TASKS - 1),
          tag_subset=st.sets(st.integers(0, N_TAGS - 1), max_size=N_TAGS))
    def change_label(self, task_i, tag_subset):
        task = self.tasks[task_i]
        new = Label.of(*(self.tags[i] for i in tag_subset))
        try:
            self.kernel.sys_set_task_label(task, LabelType.SECRECY, new)
        except Exception:
            pass  # lacking capabilities is a legal outcome

    # -- labeled files ----------------------------------------------------------

    @rule(target=files,
          task_i=st.integers(0, N_TASKS - 1),
          tag_i=st.integers(0, N_TAGS - 1))
    def create_labeled_file(self, task_i, tag_i):
        task = self.tasks[task_i]
        self.file_count += 1
        path = f"/tmp/f{self.file_count}"
        pair = LabelPair(Label.of(self.tags[tag_i]))
        try:
            fd = self.kernel.sys_create_file_labeled(task, path, pair)
            self.kernel.sys_write(task, fd, marker(tag_i))
            self.kernel.sys_close(task, fd)
            return (path, tag_i)
        except SyscallError:
            return (None, tag_i)

    @rule(file=files, task_i=st.integers(0, N_TASKS - 1))
    def read_file(self, file, task_i):
        path, tag_i = file
        if path is None:
            return
        task = self.tasks[task_i]
        try:
            fd = self.kernel.sys_open(task, path, "r")
            data = self.kernel.sys_read(task, fd)
            self.kernel.sys_close(task, fd)
        except SyscallError:
            return
        secrecy = frozenset(t.value for t in task.labels.secrecy)
        self.observations.append((secrecy, data))
        # monotone-read oracle: the file's tag must be in the reader's label
        assert self.tags[tag_i].value in secrecy, (
            f"task read {path} (tag {tag_i}) while labeled {task.labels!r}"
        )

    @rule(file=files, task_i=st.integers(0, N_TASKS - 1))
    def append_more_secret(self, file, task_i):
        """Append more of the file's own secret content.  Marker bytes of
        tag i therefore exist *only* in files labeled {i}, which is what
        makes the read oracle sound."""
        path, tag_i = file
        if path is None:
            return
        task = self.tasks[task_i]
        try:
            fd = self.kernel.sys_open(task, path, "a")
            self.kernel.sys_write(task, fd, marker(tag_i))
            self.kernel.sys_close(task, fd)
        except SyscallError:
            return

    # -- network egress ------------------------------------------------------------

    @rule(task_i=st.integers(0, N_TASKS - 1),
          tag_i=st.integers(0, N_TAGS - 1))
    def try_transmit_secret(self, task_i, tag_i):
        """A task holding tag i attempts to exfiltrate tag i's marker; an
        untainted task sends innocuous traffic.  Marker bytes must
        therefore never reach the wire."""
        task = self.tasks[task_i]
        tainted_with_i = self.tags[tag_i] in task.labels.secrecy
        payload = marker(tag_i) if tainted_with_i else b"public chatter"
        try:
            self.kernel.sys_transmit(task, payload)
        except SyscallError:
            assert not task.labels.secrecy.is_empty
            return
        # A successful transmit requires an untainted sender.
        assert task.labels.secrecy.is_empty

    # -- pipes -------------------------------------------------------------------------

    @rule(task_i=st.integers(0, N_TASKS - 1),
          tag_i=st.integers(0, N_TAGS - 1))
    def pipe_smuggle(self, task_i, tag_i):
        """A tainted task writes into an unlabeled pipe; the message must
        be silently dropped whenever the labels forbid the flow."""
        task = self.tasks[task_i]
        plain = self.tasks[(task_i + 1) % N_TASKS]
        rfd, wfd = self.kernel.sys_pipe(plain, LabelPair.EMPTY)
        wfd_task = self.kernel.share_fd(plain, wfd, task)
        self.kernel.sys_write(task, wfd_task, marker(tag_i))
        data = self.kernel.sys_read(plain, rfd)
        if data:
            assert task.labels.secrecy.is_subset_of(plain.labels.secrecy)

    # -- global invariants ----------------------------------------------------------------

    @invariant()
    def network_carries_no_markers(self):
        """Secret markers are only ever *sent* by tasks tainted with the
        corresponding tag, and tainted sends are denied — so the wire must
        stay marker-free, end to end."""
        if not hasattr(self, "kernel"):
            return
        wire = b"".join(self.kernel.net.transmitted)
        for i in range(N_TAGS):
            assert marker(i) not in wire, f"tag {i} marker escaped to the net"

    @invariant()
    def observations_respect_labels(self):
        if not hasattr(self, "observations"):
            return
        for secrecy, data in self.observations[-5:]:
            for i in range(N_TAGS):
                if marker(i) in data:
                    assert self.tags[i].value in secrecy, (
                        f"marker {i} observed under secrecy {secrecy}"
                    )


DIFCMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDIFCStateMachine = DIFCMachine.TestCase
