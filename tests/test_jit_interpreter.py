"""The IR interpreter: opcode semantics, barrier execution, region methods."""

import pytest

from repro.core import CapabilitySet, Label
from repro.jit import (
    Compiler,
    CompileContext,
    Interpreter,
    JITConfig,
    RegionSpec,
    StaleCompilationError,
    compile_source,
    insert_barriers,
    parse_program,
)
from repro.runtime import LaminarAPI, LaminarVM


def run(src: str, vanilla, config=JITConfig.BASELINE, entry="main", *args):
    program, _ = compile_source(src, config)
    vm = LaminarVM(vanilla)
    return Interpreter(program, vm).run(entry, *args)


class TestOpcodeSemantics:
    def test_arithmetic(self, vanilla):
        src = """
        method main() {
        entry:
          const a, 17
          const b, 5
          binop s, add, a, b
          binop d, sub, s, b
          binop m, mul, d, b
          binop q, div, m, b
          binop r, mod, q, b
          ret r
        }
        """
        assert run(src, vanilla) == 17 % 5

    def test_comparisons_and_branching(self, vanilla):
        src = """
        method main() {
        entry:
          const a, 3
          const b, 7
          binop c, lt, a, b
          br c, yes, no
        yes:
          const r, 1
          ret r
        no:
          const r, 0
          ret r
        }
        """
        assert run(src, vanilla) == 1

    def test_bit_operations(self, vanilla):
        src = """
        method main() {
        entry:
          const a, 12
          const b, 10
          binop x, bxor, a, b
          binop y, band, a, b
          binop z, bor, x, y
          const one, 1
          binop s, shl, z, one
          binop t, shr, s, one
          ret t
        }
        """
        assert run(src, vanilla) == ((12 ^ 10) | (12 & 10))

    def test_unops(self, vanilla):
        src = """
        method main() {
        entry:
          const a, 5
          unop n, neg, a
          unop b, not, n
          br b, t, f
        t:
          ret n
        f:
          ret a
        }
        """
        assert run(src, vanilla) == 5  # not(-5) is False

    def test_objects_and_arrays(self, vanilla):
        src = """
        class P { x }
        method main() {
        entry:
          new p, P
          const v, 9
          putfield p, x, v
          const n, 3
          newarray a, n
          const i, 1
          getfield w, p, x
          astore a, i, w
          aload out, a, i
          arraylen len, a
          binop r, add, out, len
          ret r
        }
        """
        assert run(src, vanilla) == 12

    def test_new_zero_initializes_declared_fields(self, vanilla):
        src = """
        class P { x, y }
        method main() {
        entry:
          new p, P
          getfield v, p, y
          ret v
        }
        """
        assert run(src, vanilla) == 0

    def test_statics(self, vanilla):
        src = """
        method main() {
        entry:
          const v, 5
          putstatic counter, v
          getstatic w, counter
          ret w
        }
        """
        assert run(src, vanilla) == 5

    def test_recursion(self, vanilla):
        src = """
        method fib(n) {
        entry:
          const two, 2
          binop small, lt, n, two
          br small, base, rec
        base:
          ret n
        rec:
          const one, 1
          binop n1, sub, n, one
          binop n2, sub, n, two
          call a, fib, n1
          call b, fib, n2
          binop s, add, a, b
          ret s
        }
        method main() {
        entry:
          const n, 10
          call r, fib, n
          ret r
        }
        """
        assert run(src, vanilla) == 55

    def test_print_collects_output(self, vanilla):
        program, _ = compile_source(
            "method main() {\nentry:\n const x, 3\n print x\n ret x\n}",
            JITConfig.BASELINE,
        )
        vm = LaminarVM(vanilla)
        interp = Interpreter(program, vm)
        interp.run("main")
        assert interp.output == [3]

    def test_arity_mismatch(self, vanilla):
        program, _ = compile_source(
            "method main(a) {\nentry:\n ret a\n}", JITConfig.BASELINE
        )
        with pytest.raises(TypeError):
            Interpreter(program, LaminarVM(vanilla)).run("main")

    def test_executed_counter(self, vanilla):
        program, _ = compile_source(
            "method main() {\nentry:\n const x, 1\n ret x\n}",
            JITConfig.BASELINE,
        )
        interp = Interpreter(program, LaminarVM(vanilla))
        interp.run("main")
        assert interp.executed == 2


SHARED = """
class Box { v }
method touch(b) {
entry:
  getfield x, b, v
  ret x
}
method main() {
entry:
  new b, Box
  const one, 1
  putfield b, v, one
  call r, touch, b
  ret r
}
"""


class TestBarrierExecution:
    def test_counters_match_static_program(self, vanilla):
        program, report = compile_source(SHARED, JITConfig.STATIC, inline=False)
        vm = LaminarVM(vanilla)
        Interpreter(program, vm).run("main")
        stats = vm.barriers.stats
        assert stats.total == report.barriers_final
        assert stats.dynamic_dispatches == 0

    def test_dynamic_dispatches_counted(self, vanilla):
        program, report = compile_source(SHARED, JITConfig.DYNAMIC, inline=False)
        vm = LaminarVM(vanilla)
        Interpreter(program, vm).run("main")
        stats = vm.barriers.stats
        assert stats.dynamic_dispatches == stats.total > 0

    def test_identical_results_across_configs(self, vanilla):
        results = {
            cfg: run(SHARED, vanilla, cfg) for cfg in JITConfig
        }
        assert len(set(results.values())) == 1

    def test_stale_static_compilation_detected(self, vanilla):
        """A method compiled out-of-region executed inside a region is a
        miscompilation; verify_static mode reports it."""
        program = parse_program("""
        class Box { v }
        region method r(b) {
        entry:
          call x, helper, b
          print x
        }
        method helper(b) {
        entry:
          getfield x, b, v
          ret x
        }
        method main(b) {
        entry:
          call _, r, b
          ret
        }
        """)
        # compile helper for out-of-region although region r calls it
        insert_barriers(program, CompileContext.OUT_OF_REGION)
        vm = LaminarVM(vanilla)
        interp = Interpreter(program, vm, verify_static=True)
        box_prog, _ = compile_source(
            "class Box { v }\nmethod mk() {\nentry:\n new b, Box\n ret b\n}",
            JITConfig.BASELINE,
        )
        box = Interpreter(box_prog, vm).run("mk")
        region = program.method("r")
        region.region_spec = RegionSpec()
        with pytest.raises(StaleCompilationError):
            interp.run("main", box)

    def test_cloned_program_never_stale(self, vanilla):
        """Cloning resolves the dual-context problem: the same shape that
        raises StaleCompilationError above runs clean when cloned."""
        src = """
        class Box { v }
        region method r(b) {
        entry:
          call x, helper, b
          print x
        }
        method helper(b) {
        entry:
          getfield x, b, v
          ret x
        }
        method main(b) {
        entry:
          call y, helper, b
          call _, r, b
          ret y
        }
        """
        program, _ = Compiler(JITConfig.STATIC, clone=True, inline=False).compile(src)
        vm = LaminarVM(vanilla)
        interp = Interpreter(program, vm, verify_static=True)
        box_prog, _ = compile_source(
            "class Box { v }\nmethod mk() {\nentry:\n new b, Box\n ret b\n}",
            JITConfig.BASELINE,
        )
        box = Interpreter(box_prog, vm).run("mk")
        interp.run("main", box)  # no StaleCompilationError


class TestRegionMethods:
    def test_region_method_runs_in_region(self, kernel):
        vm = LaminarVM(kernel)
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("t")
        src = """
        class Box { v }
        region method work(b) {
        entry:
          new s, Box
          const v, 7
          putfield s, v, v
          getfield x, s, v
          putfield b, v, x
        }
        method main(b) {
        entry:
          call _, work, b
          ret
        }
        """
        program, _ = compile_source(src, JITConfig.DYNAMIC, inline=False)
        program.method("work").region_spec = RegionSpec(
            secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)
        )
        interp = Interpreter(program, vm)
        # b must itself carry the region's label for the final putfield
        with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
            pass
        # build a labeled box through the runtime heap
        from repro.jit.interpreter import IRObject

        with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
            from repro.core import LabelPair

            header = vm.barriers.alloc_barrier(
                vm.current_thread, LabelPair(Label.of(tag))
            )
        box = IRObject(header, "Box", {"v": 0})
        interp.run("main", box)
        assert box.fields["v"] == 7
        assert vm.stats.region_entries >= 1

    def test_region_method_without_spec_runs_empty_region(self, vanilla):
        src = """
        class Box { v }
        region method work(b) {
        entry:
          getfield x, b, v
          print x
        }
        method main() {
        entry:
          new b, Box
          call _, work, b
          ret
        }
        """
        program, _ = compile_source(src, JITConfig.DYNAMIC, inline=False)
        vm = LaminarVM(vanilla)
        interp = Interpreter(program, vm)
        interp.run("main")
        assert interp.output == [0]
