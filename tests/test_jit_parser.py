"""The IR text assembler: grammar, literals, validation."""

import pytest

from repro.jit import IRSyntaxError, Opcode, parse_program


def test_minimal_method():
    program = parse_program("""
    method main() {
    entry:
      const x, 42
      ret x
    }
    """)
    main = program.method("main")
    assert main.entry == "entry"
    assert main.blocks["entry"].instrs[0].operands == ("x", 42)


def test_class_declaration():
    program = parse_program("""
    class Pair { left, right }
    method main() {
    entry:
      new p, Pair
      ret p
    }
    """)
    assert program.classes["Pair"] == ("left", "right")


def test_region_method_flag():
    program = parse_program("""
    region method r(obj) {
    entry:
      ret
    }
    """)
    assert program.method("r").is_region


def test_implicit_entry_block():
    program = parse_program("""
    method main() {
      const x, 1
      ret x
    }
    """)
    assert program.method("main").entry == "entry"


def test_fallthrough_normalization():
    program = parse_program("""
    method main() {
    first:
      const x, 1
    second:
      ret x
    }
    """)
    first = program.method("main").blocks["first"]
    assert first.terminator.op is Opcode.JMP
    assert first.successors() == ("second",)


def test_trailing_block_gets_ret():
    program = parse_program("""
    method main() {
    only:
      const x, 1
    }
    """)
    assert program.method("main").blocks["only"].terminator.op is Opcode.RET


class TestLiterals:
    def test_integers_floats_strings_bools_null(self):
        program = parse_program("""
        method main() {
        entry:
          const a, -7
          const b, 2.5
          const c, "hi, there"
          const d, true
          const e, null
          ret a
        }
        """)
        values = [i.operands[1] for i in
                  program.method("main").blocks["entry"].instrs[:5]]
        assert values == [-7, 2.5, "hi, there", True, None]

    def test_comments_stripped(self):
        program = parse_program("""
        # leading comment
        method main() {
        entry:
          const a, 1  # trailing comment
          ret a
        }
        """)
        assert program.method("main").blocks["entry"].instrs[0].operands[1] == 1

    def test_hash_inside_string_preserved(self):
        program = parse_program("""
        method main() {
        entry:
          const a, "has # inside"
          ret a
        }
        """)
        assert program.method("main").blocks["entry"].instrs[0].operands[1] == \
            "has # inside"


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRSyntaxError) as err:
            parse_program("method m() {\nentry:\n frobnicate x\n}")
        assert "unknown opcode" in str(err.value)

    def test_wrong_arity(self):
        with pytest.raises(IRSyntaxError):
            parse_program("method m() {\nentry:\n const x\n}")

    def test_unknown_binop(self):
        with pytest.raises(IRSyntaxError):
            parse_program("method m() {\nentry:\n binop x, frob, a, b\n}")

    def test_branch_to_unknown_block(self):
        with pytest.raises(IRSyntaxError) as err:
            parse_program("method m() {\nentry:\n jmp nowhere\n}")
        assert "unknown block" in str(err.value)

    def test_new_of_undeclared_class(self):
        with pytest.raises(IRSyntaxError):
            parse_program("method m() {\nentry:\n new x, Ghost\n ret x\n}")

    def test_duplicate_method(self):
        with pytest.raises(ValueError):
            parse_program("method m() {\nentry:\n ret\n}\nmethod m() {\nentry:\n ret\n}")

    def test_duplicate_block(self):
        with pytest.raises(ValueError):
            parse_program("method m() {\ne:\n const x, 1\ne:\n ret\n}")

    def test_missing_close_brace(self):
        with pytest.raises(IRSyntaxError):
            parse_program("method m() {\nentry:\n ret")

    def test_barrier_opcodes_not_writable(self):
        with pytest.raises(IRSyntaxError) as err:
            parse_program("method m() {\nentry:\n readbar x\n}")
        assert "compiler-internal" in str(err.value)

    def test_literal_where_register_expected(self):
        with pytest.raises(IRSyntaxError):
            parse_program("method m() {\nentry:\n mov x, 5\n}")

    def test_statement_outside_method(self):
        with pytest.raises(IRSyntaxError):
            parse_program("const x, 1")


def test_call_with_void_destination():
    program = parse_program("""
    method helper() {
    entry:
      ret
    }
    method main() {
    entry:
      call _, helper
      ret
    }
    """)
    call = program.method("main").blocks["entry"].instrs[0]
    assert call.operands[0] is None and call.operands[1] == "helper"
