"""Unit tests for the generic dataflow framework and copy propagation."""

import pytest

from repro.jit import CFG, ForwardMustAnalysis, Opcode, parse_program
from repro.jit.copyprop import propagate_copies, propagate_copies_method


def build(src: str):
    return parse_program(src).method("m")


class TestForwardMustAnalysis:
    def _solve(self, method, transfer):
        cfg = CFG(method)
        analysis = ForwardMustAnalysis(cfg, transfer)
        analysis.solve()
        return analysis

    @staticmethod
    def _defs(instr, facts):
        d = instr.defined_register()
        return facts | {d} if d else facts

    def test_straight_line_accumulates(self):
        method = build("""
        method m() {
        entry:
          const a, 1
          const b, 2
          ret a
        }
        """)
        analysis = self._solve(method, self._defs)
        assert analysis.block_out["entry"] == frozenset({"a", "b"})

    def test_merge_is_intersection(self):
        method = build("""
        method m(flag) {
        entry:
          br flag, l, r
        l:
          const x, 1
          const common, 1
          jmp join
        r:
          const y, 2
          const common, 2
          jmp join
        join:
          ret common
        }
        """)
        analysis = self._solve(method, self._defs)
        assert analysis.block_in["join"] == frozenset({"common"})

    def test_loop_reaches_fixpoint(self):
        method = build("""
        method m(n) {
        entry:
          const i, 0
          jmp loop
        loop:
          binop c, lt, i, n
          br c, body, done
        body:
          const one, 1
          binop i, add, i, one
          jmp loop
        done:
          ret i
        }
        """)
        analysis = self._solve(method, self._defs)
        # facts from entry survive around the back edge
        assert "i" in analysis.block_in["loop"]
        # but body-only facts do not reach the header on the entry path
        assert "one" not in analysis.block_in["loop"]

    def test_facts_before_each_instr_replays_transfer(self):
        method = build("""
        method m() {
        entry:
          const a, 1
          const b, 2
          ret b
        }
        """)
        analysis = self._solve(method, self._defs)
        before = analysis.facts_before_each_instr("entry")
        assert before[0] == frozenset()
        assert before[1] == frozenset({"a"})
        assert before[2] == frozenset({"a", "b"})


class TestCopyPropagation:
    def test_simple_copy_forwarded(self):
        method = build("""
        method m(a) {
        entry:
          mov b, a
          binop c, add, b, b
          ret c
        }
        """)
        assert propagate_copies_method(method) >= 1
        binop = method.blocks["entry"].instrs[1]
        assert binop.operands == ("c", "add", "a", "a")

    def test_copy_chain_collapses_to_root(self):
        method = build("""
        method m(a) {
        entry:
          mov b, a
          mov c, b
          binop d, add, c, c
          ret d
        }
        """)
        propagate_copies_method(method)
        binop = method.blocks["entry"].instrs[2]
        assert binop.operands == ("d", "add", "a", "a")

    def test_killed_copy_not_forwarded(self):
        method = build("""
        method m(a) {
        entry:
          mov b, a
          const a, 99
          binop c, add, b, b
          ret c
        }
        """)
        propagate_copies_method(method)
        binop = method.blocks["entry"].instrs[2]
        # a was redefined after the copy: b must NOT be rewritten to a
        assert binop.operands == ("c", "add", "b", "b")

    def test_must_property_across_branches(self):
        method = build("""
        method m(a, flag) {
        entry:
          br flag, l, r
        l:
          mov b, a
          jmp join
        r:
          const b, 5
          jmp join
        join:
          binop c, add, b, b
          ret c
        }
        """)
        propagate_copies_method(method)
        binop = method.blocks["join"].instrs[0]
        # only one path makes b a copy of a: no rewrite allowed
        assert binop.operands == ("c", "add", "b", "b")

    def test_semantics_preserved(self, vanilla):
        from repro.jit import Interpreter, compile_source, JITConfig
        from repro.runtime import LaminarVM

        src = """
        method m(a) {
        entry:
          mov b, a
          mov c, b
          binop d, mul, c, b
          ret d
        }
        method main() {
        entry:
          const x, 7
          call r, m, x
          ret r
        }
        """
        plain = parse_program(src)
        propagated = parse_program(src)
        propagate_copies(propagated)
        vm = LaminarVM(vanilla)
        from repro.jit.interpreter import Interpreter as I

        assert I(plain, vm).run("main") == I(propagated, vm).run("main") == 49

    def test_self_move_is_noop(self):
        method = build("""
        method m(a) {
        entry:
          mov a2, a
          mov a2, a2
          binop c, add, a2, a2
          ret c
        }
        """)
        propagate_copies_method(method)
        binop = method.blocks["entry"].instrs[2]
        assert binop.operands == ("c", "add", "a", "a")
