"""The bench-regression gate: ``repro.tools.bench_check``.

CI regenerates every ``BENCH_*.json`` and compares it against the
committed snapshot; these tests pin the comparison semantics — ratio
fields get a one-sided 15% band (regressions fail, improvements never
do), exact fields (equivalence booleans, barrier/step/retry counts)
must match bit-for-bit, and a committed snapshot whose fresh
counterpart vanished is itself a failure.
"""

from __future__ import annotations

import io
import json

from repro.tools.bench_check import (
    SPECS,
    BenchSpec,
    check_dirs,
    check_payloads,
    lookup,
    main,
)

SPEC = BenchSpec(
    file="BENCH_demo.json",
    ratio_fields=("speedup",),
    exact_fields=("observables_identical", "configs.on.set_ops"),
)

BASE = {
    "speedup": 2.0,
    "observables_identical": True,
    "configs": {"on": {"set_ops": 123}},
}


def _fresh(**overrides):
    fresh = json.loads(json.dumps(BASE))
    for path, value in overrides.items():
        node = fresh
        parts = path.split("__")
        for part in parts[:-1]:
            node = node[part]
        node[parts[-1]] = value
    return fresh


class TestFieldSemantics:
    def test_identical_payloads_pass(self):
        assert check_payloads(BASE, _fresh(), SPEC).ok

    def test_ratio_within_band_passes(self):
        assert check_payloads(BASE, _fresh(speedup=1.72), SPEC).ok

    def test_ratio_regression_fails(self):
        result = check_payloads(BASE, _fresh(speedup=1.6), SPEC)
        assert not result.ok
        assert "speedup" in result.failures[0]

    def test_ratio_improvement_never_fails(self):
        assert check_payloads(BASE, _fresh(speedup=97.0), SPEC).ok

    def test_exact_boolean_drift_fails(self):
        result = check_payloads(
            BASE, _fresh(observables_identical=False), SPEC
        )
        assert not result.ok

    def test_exact_counter_drift_fails_both_directions(self):
        for value in (122, 124):
            result = check_payloads(
                BASE, _fresh(configs__on__set_ops=value), SPEC
            )
            assert not result.ok, value

    def test_field_missing_from_fresh_fails(self):
        fresh = _fresh()
        del fresh["speedup"]
        result = check_payloads(BASE, fresh, SPEC)
        assert not result.ok

    def test_field_missing_from_committed_is_skipped(self):
        """A committed snapshot that predates a field must not block the
        upgrade that introduces it."""
        committed = json.loads(json.dumps(BASE))
        del committed["speedup"]
        assert check_payloads(committed, _fresh(), SPEC).ok

    def test_lookup_resolves_dotted_paths(self):
        assert lookup(BASE, "configs.on.set_ops") == 123


class TestDirectorySweep:
    def _write(self, directory, payload):
        directory.mkdir(exist_ok=True)
        (directory / SPEC.file).write_text(json.dumps(payload))

    def test_missing_committed_snapshot_is_skipped(self, tmp_path):
        committed, fresh = tmp_path / "a", tmp_path / "b"
        committed.mkdir()
        self._write(fresh, _fresh())
        results = check_dirs(committed, fresh, [SPEC])
        assert all(r.ok for r in results)

    def test_missing_fresh_snapshot_fails(self, tmp_path):
        committed, fresh = tmp_path / "a", tmp_path / "b"
        self._write(committed, BASE)
        fresh.mkdir()
        results = check_dirs(committed, fresh, [SPEC])
        assert not results[0].ok

    def test_cli_exit_codes_and_report(self, tmp_path):
        """The CLI checks the real registry, so exercise it with the real
        tier-ablation snapshot name."""
        payload = {
            "geomean_fig8_tier2_vs_interp": 4.0,
            "geomean_fig8_tier2_vs_table": 2.0,
            "observables_identical": True,
        }
        committed, fresh = tmp_path / "a", tmp_path / "b"
        committed.mkdir()
        fresh.mkdir()
        (committed / "BENCH_jit_tier.json").write_text(json.dumps(payload))
        (fresh / "BENCH_jit_tier.json").write_text(json.dumps(payload))
        out = io.StringIO()
        assert main([str(committed), str(fresh)], out=out) == 0
        assert "ok" in out.getvalue()

        regressed = dict(payload, geomean_fig8_tier2_vs_interp=1.1)
        (fresh / "BENCH_jit_tier.json").write_text(json.dumps(regressed))
        out = io.StringIO()
        assert main([str(committed), str(fresh)], out=out) == 1
        assert "FAIL" in out.getvalue()


class TestRegistry:
    def test_registry_covers_every_committed_snapshot(self):
        """Every BENCH_*.json at the repo root must have a spec — a new
        benchmark snapshot without a gate silently escapes CI."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        committed = {p.name for p in root.glob("BENCH_*.json")}
        specced = {spec.file for spec in SPECS}
        assert committed <= specced, committed - specced

    def test_registry_gates_the_tier_ablation(self):
        spec = {s.file: s for s in SPECS}["BENCH_jit_tier.json"]
        assert "geomean_fig8_tier2_vs_interp" in spec.ratio_fields
        assert "observables_identical" in spec.exact_fields

    def test_registry_gates_the_cluster_snapshot(self):
        spec = {s.file: s for s in SPECS}["BENCH_cluster_throughput.json"]
        assert "scaling_ratio_4x" in spec.ratio_fields
        assert "parity.audit_parity" in spec.exact_fields
        assert "parity.traffic_parity" in spec.exact_fields
        assert "flume.flume_deferred" in spec.exact_fields
        # Multiprocess wall-clock ratios are noisier than in-process ones.
        assert spec.tolerance > 0.15
