"""The fast-path layers: interning, verdict caches, epochs, dispatch tables.

Each cache must be individually switchable through
:mod:`repro.core.fastpath`, must never change a security verdict, and must
be invalidated (or be invalidation-free by construction) exactly as its
soundness argument requires.  These are the fast tier-1 smoke tests; the
randomized equivalence sweep lives in ``test_property_fastpath.py`` and
the quantitative ablation in ``benchmarks/test_ablation_label_cache.py``.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.core import (
    FLOW_INTEGRITY_FAIL,
    FLOW_OK,
    FLOW_SECRECY_FAIL,
    CapabilitySet,
    Label,
    LabelPair,
    LabelType,
    check_flow,
    fastpath,
    flow_verdict,
)
from repro.jit import Interpreter, JITConfig, compile_source
from repro.osim import Kernel
from repro.runtime import LaminarAPI, LaminarVM


class TestInterning:
    def test_equal_tag_sets_share_one_instance(self, tags):
        a, b, _ = tags
        assert Label.of(a, b) is Label.of(b, a)
        assert Label.of(a) is Label.of(a)

    def test_empty_label_is_canonical(self):
        assert Label() is Label.EMPTY
        assert Label.of() is Label.EMPTY
        assert Label.empty() is Label.EMPTY

    def test_set_algebra_lands_on_interned_instances(self, tags):
        a, b, c = tags
        assert Label.of(a).union(Label.of(b)) is Label.of(a, b)
        assert Label.of(a, b, c).difference(Label.of(c)) is Label.of(a, b)
        assert Label.of(a, b).intersection(Label.of(b, c)) is Label.of(b)
        assert Label.of(a).with_tag(b) is Label.of(a, b)
        assert Label.of(a, b).without_tag(b) is Label.of(a)

    def test_interning_off_still_value_equal(self, tags):
        a, b, _ = tags
        with fastpath.configured(label_interning=False):
            x, y = Label.of(a, b), Label.of(b, a)
            assert x is not y
            assert x == y
            assert x.union(Label.of(a)) == Label.of(a, b)

    def test_validating_constructor_rejects_non_tags(self):
        with pytest.raises(TypeError):
            Label(["not-a-tag"])

    def test_fast_constructor_skips_validation_but_interns(self, tags):
        a, b, _ = tags
        built = Label._from_normalized(tuple(sorted((a, b))))
        assert built is Label.of(a, b)

    def test_deepcopy_returns_canonical_instance(self, tags):
        """copy/pickle must not clobber interned state (the default slots
        protocol would reconstruct via ``__new__`` — which interning
        resolves to an existing canonical instance — and then overwrite
        that instance's state in place)."""
        a, _, _ = tags
        label = Label.of(a)
        assert copy.deepcopy(label) is not None
        assert Label.EMPTY.is_empty, "deepcopy corrupted the empty label"
        assert copy.deepcopy(label) == label
        assert pickle.loads(pickle.dumps(label)) == label
        pair = LabelPair(label)
        assert copy.deepcopy(pair) == pair
        assert LabelPair.EMPTY.is_empty


class TestFlowVerdictCache:
    def test_repeat_checks_hit(self, tags):
        a, _, _ = tags
        src = LabelPair(Label.of(a))
        dst = LabelPair(Label.of(a))
        assert flow_verdict(src, dst) == FLOW_OK
        before = fastpath.counters.verdict_hits
        assert flow_verdict(src, dst) == FLOW_OK
        assert fastpath.counters.verdict_hits == before + 1

    def test_failures_cached_with_correct_verdict(self, tags):
        a, b, _ = tags
        secret = LabelPair(Label.of(a))
        low_integrity = LabelPair(Label.EMPTY, Label.of(b))
        assert flow_verdict(secret, LabelPair.EMPTY) == FLOW_SECRECY_FAIL
        assert flow_verdict(secret, LabelPair.EMPTY) == FLOW_SECRECY_FAIL
        assert flow_verdict(LabelPair.EMPTY, low_integrity) == FLOW_INTEGRITY_FAIL

    def test_cache_off_reevaluates_rules(self, tags):
        a, _, _ = tags
        src = LabelPair(Label.of(a))
        dst = LabelPair(Label.of(a))
        with fastpath.configured(flow_verdict_cache=False):
            check_flow(src, dst)
            before = fastpath.counters.rule_evaluations
            check_flow(src, dst)
            assert fastpath.counters.rule_evaluations > before

    def test_configure_rejects_unknown_switch(self):
        with pytest.raises(ValueError):
            fastpath.configure(warp_drive=True)

    def test_configured_restores_flags(self):
        assert fastpath.flags.flow_verdict_cache
        with fastpath.configured(flow_verdict_cache=False):
            assert not fastpath.flags.flow_verdict_cache
        assert fastpath.flags.flow_verdict_cache


class TestThreadBarrierCache:
    def _labeled_header(self, vm, label):
        return vm.barriers.alloc_barrier(
            vm.current_thread, LabelPair(label)
        )

    def test_repeat_barrier_checks_hit(self, vm):
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("t")
        stats = vm.barriers.stats
        with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
            thread = vm.current_thread
            header = self._labeled_header(vm, Label.of(tag))
            vm.barriers.read_barrier(thread, header)
            hits = stats.flow_cache_hits
            vm.barriers.read_barrier(thread, header)
            vm.barriers.read_barrier(thread, header)
            assert stats.flow_cache_hits == hits + 2

    def test_region_reentry_invalidates(self, vm):
        """Identical labels, fresh region: the epoch moved, so the first
        check must MISS — a cached verdict may never survive a region
        boundary, even one that restores the same label values."""
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("t")
        stats = vm.barriers.stats
        region_args = dict(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag))
        with vm.region(**region_args):
            thread = vm.current_thread
            header = self._labeled_header(vm, Label.of(tag))
            vm.barriers.read_barrier(thread, header)
        epoch_outside = thread.label_epoch
        with vm.region(**region_args):
            assert thread.label_epoch != epoch_outside
            misses = stats.flow_cache_misses
            vm.barriers.read_barrier(thread, header)
            assert stats.flow_cache_misses == misses + 1

    def test_kernel_label_change_bumps_epoch(self, kernel):
        vm = LaminarVM(kernel)
        thread = vm.main_thread
        tag, _ = kernel.sys_alloc_tag(vm.main_task, "t")
        before = thread.label_epoch
        kernel.sys_set_task_label(
            vm.main_task, LabelType.SECRECY, Label.of(tag)
        )
        assert thread.label_epoch > before

    def test_cache_off_always_rechecks(self, vm):
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("t")
        stats = vm.barriers.stats
        with fastpath.configured(thread_barrier_cache=False):
            with vm.region(secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)):
                thread = vm.current_thread
                header = self._labeled_header(vm, Label.of(tag))
                vm.barriers.read_barrier(thread, header)
                vm.barriers.read_barrier(thread, header)
            assert stats.flow_cache_hits == 0
            assert stats.flow_cache_misses == 0
            assert stats.label_checks >= 3


WORKLOAD = """
class Node { value, next }

method main() {
entry:
  const n, 40
  call head, build, n
  call total, sum, head
  print total
  ret total
}

method build(n) {
entry:
  const i, 0
  const head, null
  jmp loop
loop:
  binop cond, lt, i, n
  br cond, body, done
body:
  new node, Node
  putfield node, value, i
  putfield node, next, head
  mov head, node
  const one, 1
  binop i, add, i, one
  jmp loop
done:
  ret head
}

method sum(head) {
entry:
  const total, 0
  mov cur, head
  jmp loop
loop:
  const nullv, null
  binop cond, ne, cur, nullv
  br cond, body, done
body:
  getfield v, cur, value
  binop total, add, total, v
  getfield cur, cur, next
  jmp loop
done:
  ret total
}
"""


class TestDispatchTable:
    def _run(self, cfg=JITConfig.STATIC):
        program, _ = compile_source(WORKLOAD, cfg)
        vm = LaminarVM(Kernel())
        interp = Interpreter(program, vm)
        result = interp.run("main")
        return result, list(interp.output), interp.executed, vm.barriers.stats

    def test_table_and_switch_agree(self):
        for cfg in JITConfig:
            with fastpath.configured(dispatch_table=True):
                on = self._run(cfg)
            with fastpath.configured(dispatch_table=False):
                off = self._run(cfg)
            assert on[0] == off[0], cfg
            assert on[1] == off[1], cfg
            assert on[2] == off[2], f"{cfg}: executed-instruction counts differ"
            assert vars(on[3]) == vars(off[3]), cfg

    def test_tables_are_built_and_reused(self):
        program, _ = compile_source(WORKLOAD, JITConfig.STATIC, inline=False)
        vm = LaminarVM(Kernel())
        interp = Interpreter(program, vm)
        interp.run("main")
        assert set(program.exec_tables) == {"main", "build", "sum"}
        assert program.table_builds == 3
        tables = dict(program.exec_tables)
        interp.run("main")
        assert all(program.exec_tables[k] is tables[k] for k in tables)
        assert program.table_builds == 3

    def test_tables_are_shared_across_interpreters(self):
        """Tables cache on the *program*, not the interpreter: a second
        interpreter (fresh VM) over the same program must not rebuild."""
        program, _ = compile_source(WORKLOAD, JITConfig.STATIC, inline=False)
        first = Interpreter(program, LaminarVM(Kernel()))
        r1 = first.run("main")
        builds = program.table_builds
        assert builds == 3
        second = Interpreter(program, LaminarVM(Kernel()))
        r2 = second.run("main")
        assert r1 == r2
        assert program.table_builds == builds, (
            "second interpreter rebuilt handler tables"
        )
        assert first.executed == second.executed

    def test_ir_mutation_rebuilds_tables(self):
        """Passes mutate methods in place between runs; the shape stamp
        taken at ``run()`` must drop stale tables."""
        from repro.jit.ir import Instr, Opcode

        program, _ = compile_source(WORKLOAD, JITConfig.BASELINE, inline=False)
        vm = LaminarVM(Kernel())
        interp = Interpreter(program, vm)
        first = interp.run("main")
        stale = program.exec_tables["sum"]
        # Rewrite sum's body: return the constant 9 immediately.
        method = program.method("sum")
        entry = method.blocks[method.entry]
        entry.instrs[:] = [
            Instr(Opcode.CONST, ("total", 9)),
            Instr(Opcode.RET, ("total",)),
        ]
        second = interp.run("main")
        assert first != second
        assert second == 9
        assert program.exec_tables["sum"] is not stale

    def test_verify_static_bypasses_tables(self):
        program, _ = compile_source(WORKLOAD, JITConfig.STATIC)
        vm = LaminarVM(Kernel())
        interp = Interpreter(program, vm, verify_static=True)
        interp.run("main")
        assert not program.exec_tables
