"""The cluster wire codec and the cross-process interning contract.

The property that makes labels cheap cluster-wide: a Label (or LabelPair,
CapabilitySet, Sqe, Cqe) that crosses the wire re-enters through its
constructor on the receiving side, so with interning on, a
pickled-and-returned Label is *the same object* — identity-based fast
paths (``is``-subset checks, the verdict AVC, the persistent submit
memo's ``is``-revalidation) keep working after an RPC hop.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CapabilitySet, Label, LabelPair
from repro.core.fastpath import counters, flags
from repro.core.tags import Tag
from repro.osim import Cqe, Sqe
from repro.osim.rpc import (
    CapSync,
    HEADER,
    ShardRequest,
    ShardResponse,
    TagSync,
    decode_frame,
    encode_frame,
)

tags_strategy = st.lists(
    st.integers(min_value=1, max_value=64).map(lambda v: Tag(v, f"t{v}")),
    max_size=6,
    unique=True,
)


class TestLabelReinterning:
    """Satellite: the cross-process label interning property."""

    @settings(max_examples=80, deadline=None)
    @given(tags=tags_strategy)
    def test_pickled_label_reinterns_to_same_identity(self, tags):
        assert flags.label_interning  # default configuration
        label = Label.of(*tags)
        clone = pickle.loads(pickle.dumps(label))
        assert clone is label

    @settings(max_examples=40, deadline=None)
    @given(secrecy=tags_strategy, integrity=tags_strategy)
    def test_pickled_labelpair_components_reintern(self, secrecy, integrity):
        pair = LabelPair(Label.of(*secrecy), Label.of(*integrity))
        clone = pickle.loads(pickle.dumps(pair))
        assert clone == pair
        assert clone.secrecy is pair.secrecy
        assert clone.integrity is pair.integrity

    def test_round_trip_counts_as_intern_hit(self):
        label = Label.of(Tag(7, "t7"))
        before = counters.intern_hits
        clone = pickle.loads(pickle.dumps(label))
        assert clone is label
        assert counters.intern_hits > before

    def test_frame_hop_preserves_identity(self):
        """Same property through the actual wire framing, not bare pickle."""
        label = Label.of(Tag(3, "t3"), Tag(9, "t9"))
        pair = LabelPair(label)
        message, rest = decode_frame(encode_frame(("req", pair)))
        assert rest == b""
        assert message[1].secrecy is label

    @settings(max_examples=40, deadline=None)
    @given(tags=tags_strategy)
    def test_capability_set_round_trip(self, tags):
        caps = CapabilitySet.dual(*tags)
        clone = pickle.loads(pickle.dumps(caps))
        assert clone == caps
        assert hash(clone) == hash(caps)
        assert all(clone.can_add(t) and clone.can_remove(t) for t in tags)

    def test_sqe_cqe_round_trip(self):
        sqe = Sqe("write", 4, b"payload")
        clone = pickle.loads(pickle.dumps(sqe))
        assert clone == sqe  # op + args equality
        cqe = Cqe("read", b"data", 0)
        assert pickle.loads(pickle.dumps(cqe)) == cqe


class TestFraming:
    def test_frame_stream_decodes_in_order(self):
        buf = encode_frame(1) + encode_frame("two") + encode_frame([3])
        one, buf = decode_frame(buf)
        two, buf = decode_frame(buf)
        three, buf = decode_frame(buf)
        assert (one, two, three) == (1, "two", [3])
        assert buf == b""

    def test_truncated_frame_raises(self):
        frame = encode_frame({"k": "v"})
        with pytest.raises(ValueError):
            decode_frame(frame[:-1])
        with pytest.raises(ValueError):
            decode_frame(frame[: HEADER.size - 1])

    def test_oversize_header_rejected_without_allocation(self):
        bogus = HEADER.pack(1 << 30) + b"x"
        with pytest.raises(ValueError):
            decode_frame(bogus)

    def test_request_response_messages_survive_the_wire(self):
        req = ShardRequest(5, "gw1", (Sqe("read", 3, 16), Sqe("lseek", 3, 0)))
        resp = ShardResponse(
            5, 2, (Cqe("read", b"x", 0),), (("denial", "lsm", "gw1", "why"),),
            (((5, 2, 1), b"pkt"),), 120,
        )
        sync = TagSync(4, 9, ((1, "a"), (2, "b")))
        caps = CapSync(1, (("gw1", LabelPair.EMPTY, CapabilitySet.EMPTY),))
        for msg in (req, resp, sync, caps):
            clone, rest = decode_frame(encode_frame(msg))
            assert clone == msg
            assert rest == b""
