"""The cluster wire codecs: interning, framing, and binary/pickle parity.

Two contracts live here.  First, the cross-process interning property
that makes labels cheap cluster-wide: a Label (or LabelPair,
CapabilitySet, Sqe, Cqe) that crosses the wire re-enters through its
constructor on the receiving side, so with interning on, a
pickled-and-returned Label is *the same object* — identity-based fast
paths (``is``-subset checks, the verdict AVC, the persistent submit
memo's ``is``-revalidation) keep working after an RPC hop.

Second, the lamwire binary data plane must be *observably identical* to
the legacy pickle wire: hypothesis drives both codecs over random
labels, capability sets, sqes/cqes, messages, and executor wave shapes
(including re-sends through the per-connection dictionaries and
tag-allocator epoch bumps that force label-definition re-sends), and a
sharded cluster run must produce byte-identical merged audit/traffic on
either ``--wire`` mode.  Delta replication (TagSync high-water marks,
CapSync unchanged-principal omission) and the TrafficLog merge-sort
cache regressions ride along.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.loadgen import UserWorld, build_trace, coalesced_plan
from repro.core import Capability, CapabilitySet, CapType, Label, LabelPair
from repro.core import fastpath
from repro.core.fastpath import counters, flags
from repro.core.tags import Tag, TagAllocator
from repro.osim import (
    AdaptiveCoalescer,
    Cluster,
    Cqe,
    Sqe,
    TrafficLog,
    WIRE_MODES,
    make_wire,
)
from repro.osim.rpc import (
    CapSync,
    HEADER,
    ShardRequest,
    ShardResponse,
    Shutdown,
    SyncAck,
    TagSync,
    WorkerReport,
    decode_frame,
    encode_frame,
)

tags_strategy = st.lists(
    st.integers(min_value=1, max_value=64).map(lambda v: Tag(v, f"t{v}")),
    max_size=6,
    unique=True,
)


class TestLabelReinterning:
    """Satellite: the cross-process label interning property."""

    @settings(max_examples=80, deadline=None)
    @given(tags=tags_strategy)
    def test_pickled_label_reinterns_to_same_identity(self, tags):
        assert flags.label_interning  # default configuration
        label = Label.of(*tags)
        clone = pickle.loads(pickle.dumps(label))
        assert clone is label

    @settings(max_examples=40, deadline=None)
    @given(secrecy=tags_strategy, integrity=tags_strategy)
    def test_pickled_labelpair_components_reintern(self, secrecy, integrity):
        pair = LabelPair(Label.of(*secrecy), Label.of(*integrity))
        clone = pickle.loads(pickle.dumps(pair))
        assert clone == pair
        assert clone.secrecy is pair.secrecy
        assert clone.integrity is pair.integrity

    def test_round_trip_counts_as_intern_hit(self):
        label = Label.of(Tag(7, "t7"))
        before = counters.intern_hits
        clone = pickle.loads(pickle.dumps(label))
        assert clone is label
        assert counters.intern_hits > before

    def test_frame_hop_preserves_identity(self):
        """Same property through the actual wire framing, not bare pickle."""
        label = Label.of(Tag(3, "t3"), Tag(9, "t9"))
        pair = LabelPair(label)
        message, rest = decode_frame(encode_frame(("req", pair)))
        assert rest == b""
        assert message[1].secrecy is label

    @settings(max_examples=40, deadline=None)
    @given(tags=tags_strategy)
    def test_capability_set_round_trip(self, tags):
        caps = CapabilitySet.dual(*tags)
        clone = pickle.loads(pickle.dumps(caps))
        assert clone == caps
        assert hash(clone) == hash(caps)
        assert all(clone.can_add(t) and clone.can_remove(t) for t in tags)

    def test_sqe_cqe_round_trip(self):
        sqe = Sqe("write", 4, b"payload")
        clone = pickle.loads(pickle.dumps(sqe))
        assert clone == sqe  # op + args equality
        cqe = Cqe("read", b"data", 0)
        assert pickle.loads(pickle.dumps(cqe)) == cqe


class TestFraming:
    def test_frame_stream_decodes_in_order(self):
        buf = encode_frame(1) + encode_frame("two") + encode_frame([3])
        one, buf = decode_frame(buf)
        two, buf = decode_frame(buf)
        three, buf = decode_frame(buf)
        assert (one, two, three) == (1, "two", [3])
        assert buf == b""

    def test_truncated_frame_raises(self):
        frame = encode_frame({"k": "v"})
        with pytest.raises(ValueError):
            decode_frame(frame[:-1])
        with pytest.raises(ValueError):
            decode_frame(frame[: HEADER.size - 1])

    def test_oversize_header_rejected_without_allocation(self):
        bogus = HEADER.pack(1 << 30) + b"x"
        with pytest.raises(ValueError):
            decode_frame(bogus)

    def test_request_response_messages_survive_the_wire(self):
        req = ShardRequest(5, "gw1", (Sqe("read", 3, 16), Sqe("lseek", 3, 0)))
        resp = ShardResponse(
            5, 2, (Cqe("read", b"x", 0),), (("denial", "lsm", "gw1", "why"),),
            (((5, 2, 1), b"pkt"),), 120,
        )
        sync = TagSync(4, 9, ((1, "a"), (2, "b")))
        caps = CapSync(1, (("gw1", LabelPair.EMPTY, CapabilitySet.EMPTY),))
        for msg in (req, resp, sync, caps):
            clone, rest = decode_frame(encode_frame(msg))
            assert clone == msg
            assert rest == b""


# ----------------------------------------------------- lamwire strategies

TAG_POOL = [Tag(i, f"t{i}") for i in range(1, 9)]

labels = st.builds(
    Label, st.lists(st.sampled_from(TAG_POOL), max_size=4).map(tuple)
)
pairs = st.builds(LabelPair, labels, labels)
capsets = st.builds(
    CapabilitySet,
    st.lists(
        st.builds(
            Capability,
            st.sampled_from(TAG_POOL),
            st.sampled_from([CapType.PLUS, CapType.MINUS]),
        ),
        max_size=6,
    ),
)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=48),
)
op_names = st.sampled_from(
    ["read", "write", "lseek", "socket", "send", "recv", "transmit", "close"]
)
sqes = st.builds(
    lambda op, args: Sqe(op, *args),
    op_names,
    st.lists(st.one_of(scalars, pairs, labels), max_size=3),
)
cqes = st.builds(Cqe, op_names, scalars, st.integers(0, 40))
# Negative sequence numbers are protocol-invalid for the fixed layouts —
# they must survive anyway, via the schema guard's pickle fallback.
requests = st.builds(
    ShardRequest,
    st.integers(-3, 2**20),
    st.text(min_size=1, max_size=8),
    st.lists(sqes, max_size=6).map(tuple),
)
responses = st.builds(
    lambda seq, sid, cq, audit, traffic, deferred: ShardResponse(
        seq=seq,
        shard_id=sid,
        cqes=cq,
        audit=audit,
        traffic=traffic,
        deferred=deferred,
    ),
    st.integers(0, 2**20),
    st.integers(0, 64),
    st.lists(cqes, max_size=6).map(tuple),
    st.lists(st.text(max_size=20), max_size=3).map(tuple),
    st.lists(
        st.tuples(
            st.tuples(
                st.integers(0, 2**16), st.integers(0, 16), st.integers(0, 256)
            ),
            st.binary(max_size=24),
        ),
        max_size=3,
    ).map(tuple),
    st.integers(0, 2**20),
)
messages = st.one_of(
    requests,
    responses,
    st.builds(
        TagSync,
        st.integers(0, 100),
        st.integers(0, 2**32),
        st.lists(
            st.tuples(st.integers(0, 2**32), st.text(max_size=8)), max_size=4
        ).map(tuple),
    ),
    st.builds(
        CapSync,
        st.integers(0, 100),
        st.lists(
            st.tuples(st.text(min_size=1, max_size=6), pairs, capsets),
            max_size=3,
        ).map(tuple),
    ),
    st.builds(SyncAck, st.integers(0, 16), st.booleans(), st.integers(0, 100)),
    st.builds(Shutdown),
    st.builds(
        WorkerReport,
        st.integers(0, 16),
        st.dictionaries(st.text(max_size=6), st.integers(0, 2**20), max_size=4),
        st.lists(st.integers(0, 16), max_size=3).map(tuple),
        st.integers(0, 2**32),
    ),
    # The executor wave shapes (vectorized T_WAVE / T_RWAVE encodings).
    st.lists(st.tuples(st.integers(0, 64), requests), max_size=4),
    st.lists(responses, max_size=4),
)


# ------------------------------------------------------ codec equivalence


class TestCodecEquivalence:
    @given(st.lists(messages, min_size=1, max_size=4))
    @settings(max_examples=120, deadline=None)
    def test_binary_equals_pickle_round_trip(self, msgs):
        b_enc, b_dec = make_wire("binary"), make_wire("binary")
        p_enc, p_dec = make_wire("pickle"), make_wire("pickle")
        # Two passes over the same stream: the first defines dictionary
        # entries, the second exercises the REF paths.
        for msg in msgs + msgs:
            b_out, _ = b_dec.decode(b_enc.encode(msg))
            p_out, _ = p_dec.decode(p_enc.encode(msg))
            assert b_out == msg
            assert p_out == msg
            assert b_out == p_out

    @given(
        st.lists(
            st.one_of(st.integers(0, 3), st.just("bump")),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_label_dictionary_survives_epoch_bumps(self, script):
        """Interleave label-bearing sends with allocator epoch bumps:
        every decode must equal the encoded wave regardless of where the
        bumps land (stale entries are re-sent under their existing id)."""
        allocator = TagAllocator(first=500)
        pool = [
            LabelPair(Label.of(allocator.alloc(f"z{i}"))) for i in range(4)
        ]
        enc, dec = make_wire("binary"), make_wire("binary")
        enc.bind_allocator(allocator)
        salt = 0
        for step in script:
            if step == "bump":
                allocator.alloc(f"fresh{salt}")
                salt += 1
                continue
            # The salt keeps each batch tuple distinct so the encode
            # reaches the label encoder instead of the batch dictionary.
            wave = (Sqe("socket", pool[step], salt),)
            salt += 1
            out, _ = dec.decode(enc.encode(wave))
            assert out == wave

    def test_epoch_bump_forces_definition_resend(self):
        allocator = TagAllocator(first=500)
        pool = [
            LabelPair(Label.of(allocator.alloc(f"z{i}"))) for i in range(3)
        ]
        enc, dec = make_wire("binary"), make_wire("binary")
        enc.bind_allocator(allocator)
        waves = [
            tuple(Sqe("socket", p, salt) for p in pool) for salt in range(3)
        ]
        m0 = counters.label_dict_misses
        dec.decode(enc.encode(waves[0]))
        assert counters.label_dict_misses - m0 == len(pool)
        h0 = counters.label_dict_hits
        dec.decode(enc.encode(waves[1]))
        assert counters.label_dict_hits - h0 == len(pool)
        allocator.alloc("bump")
        m1 = counters.label_dict_misses
        out, _ = dec.decode(enc.encode(waves[2]))
        assert counters.label_dict_misses - m1 == len(pool)
        assert out == waves[2]
        # One allocator epoch change arrived since bind.
        assert enc.stats()["label_epoch"] == 1

    def test_wire_interface_parity(self):
        binary, legacy = make_wire("binary"), make_wire("pickle")
        assert set(WIRE_MODES) == {"binary", "pickle"}
        assert binary.stats().keys() == legacy.stats().keys()
        # bind_allocator is part of the wire interface on both codecs.
        legacy.bind_allocator(TagAllocator(first=900))
        with pytest.raises(ValueError):
            make_wire("carrier-pigeon")

    def test_counters_count_frames_and_bytes_on_both_wires(self):
        msg = ShardRequest(1, "gw0", (Sqe("read", 3, 16),))
        for wire in WIRE_MODES:
            codec = make_wire(wire)
            f0, b0 = counters.frames, counters.bytes_on_wire
            frame = codec.encode(msg)
            assert counters.frames - f0 == 1
            # Payload bytes are counted; any fixed frame header is not.
            assert 0 < counters.bytes_on_wire - b0 <= len(frame)

    def test_counter_snapshot_has_wire_fields(self):
        snap = counters.snapshot()
        for key in (
            "bytes_on_wire",
            "frames",
            "label_dict_hits",
            "label_dict_misses",
            "coalesced_waves",
        ):
            assert key in snap


# ------------------------------------------------------- delta replication


def _spy_executor(cluster):
    """Record every wave handed to the executor, pass-through otherwise."""
    sent: list = []
    original = cluster.executor.submit_wave

    def spy(wave):
        sent.append(wave)
        return original(wave)

    cluster.executor.submit_wave = spy
    return sent


class TestDeltaReplication:
    def test_tag_sync_ships_only_past_high_water_mark(self):
        world = UserWorld(gateways=4, keys=4)
        cluster = Cluster(world, shards=2, wire="binary")
        sent = _spy_executor(cluster)
        # The coordinator's allocator must be strictly ahead of every
        # shard's boot-time epoch for the first sync to apply.
        shard_epoch = cluster.servers[0].kernel.tags.epoch
        allocator = TagAllocator()
        for i in range(shard_epoch + 1):
            allocator.alloc(f"zone{i}")
        acks = cluster.sync_tags(allocator)
        assert all(a.applied for a in acks)
        first = [msg for _, msg in sent[-1]]
        assert all(len(m.entries) == shard_epoch + 1 for m in first)
        next_value = allocator.snapshot()[1]
        assert cluster._tag_hwm == {
            spec.shard_id: next_value for spec in cluster.specs
        }
        # Second sync after one more alloc: only the new entry ships.
        hot1 = allocator.alloc("hot1")
        acks = cluster.sync_tags(allocator)
        assert all(a.applied for a in acks)
        second = [msg for _, msg in sent[-1]]
        assert all(m.entries == ((hot1.value, "hot1"),) for m in second)

    def test_cap_sync_omits_unchanged_principals_but_always_sends(self):
        world = UserWorld(gateways=4, keys=4)
        world.ensure_built()
        cluster = Cluster(world, shards=2, wire="binary")
        sent = _spy_executor(cluster)
        taint = LabelPair(Label.of(Tag(world.tag_values[0], "zone0")))
        triples = (("gw0", taint, CapabilitySet.EMPTY),)
        acks = cluster.sync_caps(triples)
        assert all(a.applied for a in acks)
        assert all(len(msg.principals) == 1 for _, msg in sent[-1])
        # Same state again: the frame still goes out (fd-epoch bump),
        # with an empty principal delta.
        acks = cluster.sync_caps(triples)
        assert all(a.applied for a in acks)
        assert all(msg.principals == () for _, msg in sent[-1])
        # Changed state for the same principal: shipped again.
        acks = cluster.sync_caps(
            (("gw0", LabelPair.EMPTY, CapabilitySet.EMPTY),)
        )
        assert all(a.applied for a in acks)
        assert all(len(msg.principals) == 1 for _, msg in sent[-1])


# --------------------------------------------------- cross-wire cluster


class TestClusterWireParity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_merged_observables_identical_across_wires(self, shards):
        world = UserWorld(gateways=4, keys=4)
        trace = build_trace(
            world,
            24,
            users=1_000,
            seed=5,
            write_fraction=0.3,
            tainted_fraction=0.25,
        )
        taint = LabelPair(Label.of(Tag(world.tag_values[0], "zone0")))
        merged = {}
        for wire in WIRE_MODES:
            cluster = Cluster(world, shards=shards, wire=wire)
            acks = cluster.sync_caps((("gw0", taint, CapabilitySet.EMPTY),))
            assert all(a.applied for a in acks)
            responses = cluster.run_trace(trace, wave_size=8)
            merged[wire] = (
                cluster.merged_audit(),
                list(cluster.merged_traffic()),
                sorted((r.seq, r.cqes) for r in responses),
            )
        assert merged["binary"] == merged["pickle"]

    def test_wire_stats_and_coalescing(self):
        world = UserWorld(gateways=4, keys=4)
        trace = build_trace(world, 32, users=1_000, seed=9)
        flat = Cluster(world, shards=2, wire="binary")
        flat.run_trace(trace)
        flat_audit = flat.merged_audit()
        stats = flat.wire_stats()
        assert stats["wire"] == "binary"
        assert stats["requests"] == len(trace)
        assert "coalescing" not in stats

        coalesced = Cluster(world, shards=2, wire="binary")
        coalesced.run_trace(trace, **coalesced_plan(trace, rate=100_000.0))
        assert coalesced.merged_audit() == flat_audit
        stats = coalesced.wire_stats()
        co = stats["coalescing"]
        assert co["requests"] == len(trace)
        assert co["waves"] >= 1

    def test_run_trace_rejects_bad_coalescer_arguments(self):
        world = UserWorld(gateways=4, keys=4)
        trace = build_trace(world, 8, users=1_000, seed=3)
        cluster = Cluster(world, shards=2)
        coalescer = AdaptiveCoalescer()
        with pytest.raises(ValueError):
            cluster.run_trace(trace, wave_size=4, coalescer=coalescer)
        with pytest.raises(ValueError):
            cluster.run_trace(trace, coalescer=coalescer)  # no arrivals
        with pytest.raises(ValueError):
            cluster.run_trace(
                trace, coalescer=coalescer, arrivals=[0.0]
            )  # length mismatch


# ------------------------------------------------------ TrafficLog merge


class TestTrafficLogMerge:
    def _logs(self):
        logs = []
        for wid in range(3):
            log = TrafficLog()
            for i in range(5):
                # Interleaved stamps across workers.
                log.append_stamped(
                    (i * 3 + wid, wid, i), f"p{wid}{i}".encode()
                )
            logs.append(log)
        return logs

    def test_merge_is_stamp_ordered_with_union_totals(self):
        logs = self._logs()
        merged = TrafficLog.merge(logs)
        expected = [
            payload
            for _, payload in sorted(
                pair for log in logs for pair in log.stamped_tail(len(log))
            )
        ]
        assert list(merged) == expected
        assert merged.total_messages == sum(
            log.total_messages for log in logs
        )

    def test_one_sort_per_merge_epoch(self):
        """The regression the cache exists for: merging k logs twice
        without mutation sorts each log exactly once, not once per
        merge."""
        logs = self._logs()
        assert [log.sort_count for log in logs] == [0, 0, 0]
        first = TrafficLog.merge(logs)
        assert [log.sort_count for log in logs] == [1, 1, 1]
        second = TrafficLog.merge(logs)
        assert [log.sort_count for log in logs] == [1, 1, 1]
        assert list(first) == list(second)
        # Mutation opens a new epoch for that log only.
        logs[0].append_stamped((99, 0, 99), b"late")
        TrafficLog.merge(logs)
        assert [log.sort_count for log in logs] == [2, 1, 1]

    def test_stamped_tail_returns_last_delta_in_append_order(self):
        log = TrafficLog()
        for i in range(6):
            log.append_stamped((i, 1, i), f"m{i}".encode())
        assert log.stamped_tail(2) == [
            ((4, 1, 4), b"m4"),
            ((5, 1, 5), b"m5"),
        ]
        assert log.stamped_tail(0) == []
