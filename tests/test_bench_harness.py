"""Unit tests for the benchmark substrate: harness helpers, workload
generators, the disassembler, and the lmbench drivers."""

import pytest

from repro.baselines import vanilla_kernel
from repro.bench import (
    ALL_WORKLOADS,
    LMBENCH_ROWS,
    Row,
    geometric_mean,
    median_seconds,
    overhead_pct,
    render_breakdown,
    render_table,
    setup_tree,
)
from repro.jit import (
    Interpreter,
    JITConfig,
    compile_source,
    parse_program,
)
from repro.jit.disasm import disassemble, format_instr
from repro.osim import Kernel, LaminarSecurityModule
from repro.runtime import LaminarVM


class TestHarness:
    def test_median_seconds_positive(self):
        t = median_seconds(lambda: sum(range(500)), trials=3, warmup=1)
        assert t > 0

    def test_overhead_pct(self):
        assert overhead_pct(1.0, 1.5) == pytest.approx(50.0)
        assert overhead_pct(2.0, 1.0) == pytest.approx(-50.0)
        with pytest.raises(ValueError):
            overhead_pct(0.0, 1.0)

    def test_row_pct(self):
        row = Row("x", 2.0, 2.2, paper_pct=10.0)
        assert row.pct == pytest.approx(10.0)

    def test_render_table_contains_rows_and_paper_column(self):
        text = render_table("T", [Row("alpha", 1.0, 1.1, paper_pct=5.0)])
        assert "alpha" in text and "10.0%" in text and "5.0%" in text

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_render_breakdown_shares(self):
        text = render_breakdown("B", {"a": 0.5, "b": 0.5}, 1.0)
        assert "50.0%" in text


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_workload_parses_and_runs(self, name):
        src = ALL_WORKLOADS[name]()
        program, report = compile_source(src, JITConfig.BASELINE)
        vm = LaminarVM(vanilla_kernel())
        result = Interpreter(program, vm).run("main")
        assert isinstance(result, int)

    def test_workloads_are_deterministic(self):
        src = ALL_WORKLOADS["treebuild"]()
        results = set()
        for _ in range(2):
            program, _ = compile_source(src, JITConfig.BASELINE)
            results.add(Interpreter(program, LaminarVM(vanilla_kernel())).run("main"))
        assert len(results) == 1

    def test_size_parameters_scale_work(self):
        small, _ = compile_source(ALL_WORKLOADS["arith"].__call__(), JITConfig.BASELINE)
        from repro.bench.workloads import arith

        big_prog, _ = compile_source(arith(n=60000), JITConfig.BASELINE)
        vm = LaminarVM(vanilla_kernel())
        i1 = Interpreter(small, vm)
        i1.run("main")
        i2 = Interpreter(big_prog, vm)
        i2.run("main")
        assert i2.executed > i1.executed


class TestLmbenchDrivers:
    @pytest.mark.parametrize("name", sorted(LMBENCH_ROWS))
    def test_row_runs_on_both_kernels(self, name):
        fn, _ = LMBENCH_ROWS[name]
        for kernel in (vanilla_kernel(), Kernel(LaminarSecurityModule())):
            actor = setup_tree(kernel)
            fn(kernel, actor, 3)  # tiny iteration count: smoke only

    def test_setup_tree_creates_target(self):
        kernel = vanilla_kernel()
        setup_tree(kernel)
        assert kernel.fs.resolve("/tmp/lm/target").size == 512


class TestDisassembler:
    def test_round_trip_fixpoint(self):
        src = """
        class Node { v, next }
        method main() {
        entry:
          const s, "he\\"llo"
          const f, 2.5
          const t, true
          const n, null
          new node, Node
          putfield node, v, s
          ret s
        }
        """
        program = parse_program(src)
        text = disassemble(program)
        assert disassemble(parse_program(text)) == text

    def test_region_keyword_preserved(self):
        program = parse_program(
            "region method r(o) {\nentry:\n  ret\n}"
        )
        assert "region method r(o)" in disassemble(program)

    def test_barrier_rendering_includes_flavor(self):
        # the accessed object is a parameter, so the barrier survives
        # elimination (nothing is known about it on entry)
        program, _ = compile_source(
            "class B { v }\nmethod main(b) {\nentry:\n"
            "  getfield x, b, v\n  ret x\n}",
            JITConfig.DYNAMIC,
        )
        text = disassemble(program)
        assert "readbar" in text and "; dynamic" in text

    def test_format_instr_call_void(self):
        program = parse_program(
            "method h() {\nentry:\n ret\n}\n"
            "method main() {\nentry:\n  call _, h\n  ret\n}"
        )
        call = program.method("main").blocks["entry"].instrs[0]
        assert format_instr(call) == "call _, h"
