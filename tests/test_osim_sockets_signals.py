"""Sockets, the network device, and signal mediation."""

import pytest

from repro.core import CapabilitySet, Label, LabelPair, LabelType
from repro.osim import (
    Kernel,
    LaminarSecurityModule,
    Network,
    Socket,
    SyscallError,
)


@pytest.fixture()
def k():
    return Kernel(LaminarSecurityModule())


def tainted(k, name="t"):
    task = k.spawn_task(name)
    tag, _ = k.sys_alloc_tag(task)
    k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
    return task, tag


class TestSockets:
    def test_unconnected_send_fails(self, k):
        task = k.spawn_task("p")
        sock = k.sys_socket(task)
        with pytest.raises(SyscallError):
            k.sys_send(task, sock, b"x")

    def test_recv_empty_returns_empty(self, k):
        task = k.spawn_task("p")
        s1, s2 = k.sys_socket(task), k.sys_socket(task)
        s1.connect(s2)
        assert k.sys_recv(task, s2) == b""

    def test_labeled_endpoint_blocks_untainted_receiver(self, k):
        alice, tag = tainted(k, "alice")
        labeled = k.sys_socket(alice)  # labeled with alice's taint
        plain_task = k.spawn_task("plain")
        with pytest.raises(SyscallError):
            k.sys_recv(plain_task, labeled)

    def test_socket_takes_explicit_labels(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        sock = k.sys_socket(task, LabelPair(Label.of(tag)))
        assert sock.inode.labels.secrecy == Label.of(tag)


class TestNetworkDevice:
    def test_inbound_traffic_is_low_integrity(self, k):
        """Receiving from the outside world is a flow from the empty
        label: a task holding an integrity label must drop it first."""
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        k.net.deliver_external("example.org", b"payload")
        k.sys_set_task_label(task, LabelType.INTEGRITY, Label.of(tag))
        with pytest.raises(SyscallError):
            k.net.receive(task, "example.org", k.security)
        k.sys_set_task_label(task, LabelType.INTEGRITY, Label.EMPTY)
        assert k.net.receive(task, "example.org", k.security) == b"payload"

    def test_no_data_from_unknown_host(self, k):
        task = k.spawn_task("p")
        with pytest.raises(SyscallError):
            k.net.receive(task, "silent.example", k.security)

    def test_transmit_log_records_everything_sent(self, k):
        task = k.spawn_task("p")
        k.sys_transmit(task, b"one")
        k.sys_transmit(task, b"two")
        assert k.net.transmitted == [b"one", b"two"]


class TestSignals:
    def test_signal_delivery_records_sender(self, k):
        a = k.spawn_task("a")
        b = k.spawn_task("b")
        k.sys_kill(a, b.tid, 15)
        assert b.pending_signals == [(15, a.tid)]

    def test_tainted_cannot_signal_untainted(self, k):
        alice, _ = tainted(k, "alice")
        victim = k.spawn_task("victim")
        with pytest.raises(SyscallError):
            k.sys_kill(alice, victim.tid, 9)
        assert victim.pending_signals == []

    def test_same_label_signaling_ok(self, k):
        alice, tag = tainted(k, "alice")
        peer = k.spawn_task("peer")
        peer.security.grant(CapabilitySet.plus(tag))
        k.sys_set_task_label(peer, LabelType.SECRECY, Label.of(tag))
        k.sys_kill(alice, peer.tid, 10)
        assert peer.pending_signals == [(10, alice.tid)]

    def test_signaling_dead_task_is_esrch(self, k):
        a = k.spawn_task("a")
        b = k.spawn_task("b")
        k.sys_exit(b, 0)
        with pytest.raises(SyscallError) as err:
            k.sys_kill(a, b.tid, 9)
        assert "ESRCH" in str(err.value)


class TestTrafficLog:
    """The omniscient-observer log is bounded: totals are exact forever,
    retained payloads are capped, and benchmarks can reset it."""

    def test_list_api_preserved(self, k):
        task = k.spawn_task("p")
        assert k.net.transmitted == []
        k.sys_transmit(task, b"hello")
        assert k.net.transmitted == [b"hello"]
        assert k.net.transmitted[0] == b"hello"
        assert len(k.net.transmitted) == 1

    def test_totals_survive_trimming(self):
        from repro.osim import TrafficLog

        log = TrafficLog(cap=10)
        for i in range(100):
            log.append(b"x" * 3)
        assert log.total_messages == 100
        assert log.total_bytes == 300
        # Retention bounded: at most 2*cap held between trims.
        assert len(log) <= 20
        # The retained suffix is the most recent traffic.
        assert log[-1] == b"xxx"

    def test_reset_zeroes_everything(self):
        from repro.osim import TrafficLog

        log = TrafficLog(cap=4)
        for _ in range(9):
            log.append(b"ab")
        log.reset()
        assert log == []
        assert log.total_messages == 0
        assert log.total_bytes == 0

    def test_network_uses_capped_log(self, k):
        from repro.osim import TrafficLog

        assert isinstance(k.net.transmitted, TrafficLog)
        task = k.spawn_task("p")
        for i in range(5):
            k.sys_transmit(task, b"m%d" % i)
        assert k.net.transmitted.total_messages == 5
        assert k.net.transmitted.total_bytes == 10
        k.net.transmitted.reset()
        assert k.net.transmitted.total_messages == 0


class TestSocketHangup:
    def test_close_bumps_both_versions(self, k):
        a, b = Socket(), Socket()
        a.connect(b)
        va, vb = a.version, b.version
        a.close()
        assert a.version == va + 1
        assert b.version == vb + 1
        assert a.hungup and b.hungup

    def test_send_to_closed_peer_drops_but_bumps(self, k):
        task = k.spawn_task("p")
        a = k.sys_socket(task)
        b = k.sys_socket(task)
        a.connect(b)
        b.close()
        v = b.version
        assert k.sys_send(task, a, b"late") == 4  # appears to succeed
        assert b.version == v + 1  # activity visible to the scheduler
        assert list(b.rx) == []  # nothing delivered
