"""IR-level static checks on region methods (Section 5.1 restrictions)."""

import pytest

from repro.core import StaticCheckError
from repro.jit import check_program_regions, check_region_method, parse_program


def region_method(body: str, params: str = "obj"):
    program = parse_program(f"""
    class Box {{ v }}
    region method r({params}) {{
    entry:
      {body}
    }}
    """)
    return program.method("r")


class TestReturns:
    def test_fallthrough_ok(self):
        check_region_method(region_method("getfield x, obj, v\n  print x"))

    def test_bare_ret_ok(self):
        check_region_method(region_method("ret"))

    def test_ret_with_value_rejected(self):
        with pytest.raises(StaticCheckError) as err:
            check_region_method(region_method("getfield x, obj, v\n  ret x"))
        assert "returns a value" in str(err.value)


class TestStatics:
    def test_getstatic_rejected(self):
        with pytest.raises(StaticCheckError):
            check_region_method(region_method("getstatic x, counter\n  print x"))

    def test_putstatic_rejected(self):
        with pytest.raises(StaticCheckError):
            check_region_method(
                region_method("const x, 1\n  putstatic counter, x")
            )


class TestParameterDiscipline:
    def test_dereference_allowed(self):
        check_region_method(
            region_method("getfield x, obj, v\n  putfield obj, v, x")
        )

    def test_array_dereference_allowed(self):
        check_region_method(
            region_method("const i, 0\n  aload x, obj, i\n  astore obj, i, x")
        )

    def test_param_in_arithmetic_rejected(self):
        with pytest.raises(StaticCheckError) as err:
            check_region_method(
                region_method("binop x, add, obj, obj\n  print x")
            )
        assert "by value" in str(err.value)

    def test_param_in_mov_rejected(self):
        with pytest.raises(StaticCheckError):
            check_region_method(region_method("mov x, obj\n  print x"))

    def test_param_written_rejected(self):
        with pytest.raises(StaticCheckError) as err:
            check_region_method(region_method("const obj, 0"))
        assert "written" in str(err.value)

    def test_param_as_call_argument_allowed(self):
        program = parse_program("""
        class Box { v }
        method helper(b) {
        entry:
          getfield x, b, v
          ret x
        }
        region method r(obj) {
        entry:
          call x, helper, obj
          print x
        }
        """)
        check_region_method(program.method("r"))

    def test_param_as_branch_condition_rejected(self):
        with pytest.raises(StaticCheckError):
            check_region_method(
                region_method("br obj, a, b\na:\n  ret\nb:\n  ret")
            )

    def test_param_as_array_index_rejected(self):
        with pytest.raises(StaticCheckError):
            check_region_method(
                region_method("aload x, arr, idx\n  print x", params="arr, idx")
            )


class TestProgramLevel:
    def test_only_region_methods_checked(self):
        program = parse_program("""
        method ordinary() {
        entry:
          const x, 5
          ret x
        }
        """)
        assert check_program_regions(program) == 0

    def test_counts_checked_regions(self):
        program = parse_program("""
        class Box { v }
        region method r1(o) {
        entry:
          getfield x, o, v
          print x
        }
        region method r2(o) {
        entry:
          ret
        }
        """)
        assert check_program_regions(program) == 2

    def test_compile_rejects_bad_region(self, vanilla):
        from repro.jit import Compiler, JITConfig

        with pytest.raises(StaticCheckError):
            Compiler(JITConfig.DYNAMIC).compile("""
            class Box { v }
            region method leak(o) {
            entry:
              getfield x, o, v
              ret x
            }
            """)
