"""Unit tests for the tag universe and the trusted allocator."""

import pytest

from repro.core import TAG_UNIVERSE, Tag, TagAllocator, TagExhaustedError


class TestTag:
    def test_equality_is_by_value(self):
        assert Tag(5) == Tag(5)
        assert Tag(5) != Tag(6)

    def test_name_is_cosmetic(self):
        assert Tag(5, "alice") == Tag(5, "bob")
        assert hash(Tag(5, "alice")) == hash(Tag(5))

    def test_ordering_by_value(self):
        assert Tag(1) < Tag(2) < Tag(3)

    def test_str_prefers_name(self):
        assert str(Tag(7, "secret")) == "secret"
        assert str(Tag(7)) == "t7"

    def test_rejects_out_of_universe_values(self):
        with pytest.raises(ValueError):
            Tag(-1)
        with pytest.raises(ValueError):
            Tag(TAG_UNIVERSE)

    def test_max_value_accepted(self):
        assert Tag(TAG_UNIVERSE - 1).value == TAG_UNIVERSE - 1

    def test_hashable_in_sets(self):
        assert len({Tag(1), Tag(1, "x"), Tag(2)}) == 2


class TestTagAllocator:
    def test_allocations_are_unique(self):
        alloc = TagAllocator()
        seen = {alloc.alloc().value for _ in range(1000)}
        assert len(seen) == 1000

    def test_allocations_are_sequential_from_first(self):
        alloc = TagAllocator(first=100)
        assert alloc.alloc().value == 100
        assert alloc.alloc().value == 101

    def test_lookup_returns_allocated_tag_with_name(self):
        alloc = TagAllocator()
        tag = alloc.alloc("calendar")
        assert alloc.lookup(tag.value) is tag
        assert alloc.lookup(tag.value).name == "calendar"

    def test_lookup_unknown_returns_none(self):
        assert TagAllocator().lookup(424242) is None

    def test_exhaustion_raises(self):
        alloc = TagAllocator(first=0, limit=3)
        for _ in range(3):
            alloc.alloc()
        with pytest.raises(TagExhaustedError):
            alloc.alloc()

    def test_contains(self):
        alloc = TagAllocator()
        tag = alloc.alloc()
        assert tag in alloc
        assert Tag(999_999) not in alloc

    def test_allocated_count(self):
        alloc = TagAllocator()
        for _ in range(7):
            alloc.alloc()
        assert alloc.allocated_count == 7

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            TagAllocator(first=10, limit=5)
