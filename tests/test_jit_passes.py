"""Compiler passes: barrier insertion, redundancy elimination, inlining,
cloning — the Section 5.1 machinery."""

import pytest

from repro.jit import (
    CFG,
    CompileContext,
    Compiler,
    BarrierFlavor,
    IN_SUFFIX,
    JITConfig,
    Opcode,
    clone_for_contexts,
    count_barriers,
    eliminate_redundant_barriers,
    inline_program,
    insert_barriers,
    parse_program,
)

STRAIGHT_LINE = """
class Box { v }
method main() {
entry:
  new b, Box
  const one, 1
  putfield b, v, one
  getfield x, b, v
  getfield y, b, v
  ret x
}
"""


def barrier_ops(program, method="main"):
    return [
        i.op
        for i in program.method(method).all_instrs()
        if i.op in (Opcode.READBAR, Opcode.WRITEBAR, Opcode.ALLOCBAR)
    ]


class TestInsertion:
    def test_every_heap_op_instrumented(self):
        program = parse_program(STRAIGHT_LINE)
        inserted = insert_barriers(program, CompileContext.UNKNOWN)
        # 1 alloc + 1 write + 2 reads
        assert inserted == 4
        assert barrier_ops(program) == [
            Opcode.ALLOCBAR, Opcode.WRITEBAR, Opcode.READBAR, Opcode.READBAR
        ]

    def test_flavors_follow_context(self):
        for context, flavor in (
            (CompileContext.IN_REGION, BarrierFlavor.STATIC_IN),
            (CompileContext.OUT_OF_REGION, BarrierFlavor.STATIC_OUT),
            (CompileContext.UNKNOWN, BarrierFlavor.DYNAMIC),
        ):
            program = parse_program(STRAIGHT_LINE)
            insert_barriers(program, context)
            flavors = {
                i.flavor
                for i in program.method("main").all_instrs()
                if i.flavor is not None
            }
            assert flavors == {flavor}

    def test_double_instrumentation_rejected(self):
        program = parse_program(STRAIGHT_LINE)
        insert_barriers(program)
        with pytest.raises(ValueError):
            insert_barriers(program)

    def test_barrier_precedes_access(self):
        program = parse_program(STRAIGHT_LINE)
        insert_barriers(program)
        instrs = program.method("main").blocks["entry"].instrs
        for idx, instr in enumerate(instrs):
            if instr.op is Opcode.GETFIELD:
                assert instrs[idx - 1].op is Opcode.READBAR
            if instr.op is Opcode.PUTFIELD:
                assert instrs[idx - 1].op is Opcode.WRITEBAR


class TestElimination:
    def test_fresh_allocation_covers_both_kinds(self):
        program = parse_program(STRAIGHT_LINE)
        insert_barriers(program)
        removed = eliminate_redundant_barriers(program)
        # write after new: redundant; first read after write: the write
        # fact doesn't imply read... but the ALLOC fact covers both, so all
        # three post-alloc barriers go.
        assert removed == 3
        assert barrier_ops(program) == [Opcode.ALLOCBAR]

    def test_repeated_read_same_register(self):
        program = parse_program("""
        class Box { v }
        method m(b) {
        entry:
          getfield x, b, v
          getfield y, b, v
          ret x
        }
        """)
        insert_barriers(program)
        assert eliminate_redundant_barriers(program) == 1

    def test_read_does_not_imply_write(self):
        program = parse_program("""
        class Box { v }
        method m(b) {
        entry:
          getfield x, b, v
          putfield b, v, x
          ret
        }
        """)
        insert_barriers(program)
        assert eliminate_redundant_barriers(program) == 0

    def test_redefinition_kills_facts(self):
        program = parse_program("""
        class Box { v }
        method m(b, c) {
        entry:
          getfield x, b, v
          mov b, c
          getfield y, b, v
          ret y
        }
        """)
        insert_barriers(program)
        assert eliminate_redundant_barriers(program) == 0

    def test_mov_copies_facts(self):
        program = parse_program("""
        class Box { v }
        method m(b) {
        entry:
          getfield x, b, v
          mov c, b
          getfield y, c, v
          ret y
        }
        """)
        insert_barriers(program)
        assert eliminate_redundant_barriers(program) == 1

    def test_must_analysis_requires_all_paths(self):
        program = parse_program("""
        class Box { v }
        method m(b, flag) {
        entry:
          br flag, checked, skipped
        checked:
          getfield x, b, v
          jmp join
        skipped:
          const x, 0
          jmp join
        join:
          getfield y, b, v
          ret y
        }
        """)
        insert_barriers(program)
        # the join barrier survives: only one incoming path checked b
        assert eliminate_redundant_barriers(program) == 0

    def test_both_paths_checked_enables_elimination(self):
        program = parse_program("""
        class Box { v }
        method m(b, flag) {
        entry:
          br flag, left, right
        left:
          getfield x, b, v
          jmp join
        right:
          getfield x, b, v
          jmp join
        join:
          getfield y, b, v
          ret y
        }
        """)
        insert_barriers(program)
        assert eliminate_redundant_barriers(program) == 1

    def test_loop_hoisting_effect(self):
        # A barrier inside a loop on a loop-invariant object is redundant
        # from the second iteration; the must-analysis proves it stays
        # checked around the back edge (one barrier remains, executed once
        # per *entry*, not per iteration — checked by the interpreter test).
        program = parse_program("""
        class Box { v }
        method m(b, n) {
        entry:
          const i, 0
          getfield warm, b, v
          jmp loop
        loop:
          binop c, lt, i, n
          br c, body, done
        body:
          getfield x, b, v
          const one, 1
          binop i, add, i, one
          jmp loop
        done:
          ret i
        }
        """)
        insert_barriers(program)
        assert eliminate_redundant_barriers(program) == 1

    def test_calls_do_not_kill_facts(self):
        program = parse_program("""
        class Box { v }
        method sub() {
        entry:
          ret
        }
        method m(b) {
        entry:
          getfield x, b, v
          call _, sub
          getfield y, b, v
          ret y
        }
        """)
        # disable inlining to keep the call
        compiler = Compiler(JITConfig.DYNAMIC, inline=False)
        compiled, report = compiler.compile(program)
        assert report.barriers_removed == 1


class TestInlining:
    def test_small_callee_inlined(self):
        program = parse_program("""
        method add(a, b) {
        entry:
          binop s, add, a, b
          ret s
        }
        method main() {
        entry:
          const x, 2
          const y, 3
          call r, add, x, y
          ret r
        }
        """)
        assert inline_program(program) == 1
        main_calls = [
            i for i in program.method("main").all_instrs()
            if i.op is Opcode.CALL
        ]
        assert main_calls == []

    def test_inlined_program_computes_same_result(self, vanilla):
        from repro.jit import Interpreter
        from repro.runtime import LaminarVM

        src = """
        method sq(a) {
        entry:
          binop s, mul, a, a
          ret s
        }
        method main() {
        entry:
          const x, 7
          call r, sq, x
          call r2, sq, r
          binop out, add, r, r2
          ret out
        }
        """
        plain = parse_program(src)
        inlined = parse_program(src)
        inline_program(inlined)
        vm = LaminarVM(vanilla)
        assert Interpreter(plain, vm).run("main") == \
            Interpreter(inlined, vm).run("main") == 49 + 49 * 49

    def test_threshold_respected(self):
        program = parse_program("""
        method big(a) {
        entry:
          binop s, add, a, a
          binop s, add, s, a
          binop s, add, s, a
          ret s
        }
        method main() {
        entry:
          const x, 1
          call r, big, x
          ret r
        }
        """)
        assert inline_program(program, threshold=2) == 0
        assert inline_program(program, threshold=10) == 1

    def test_recursive_callee_not_inlined(self):
        program = parse_program("""
        method rec(a) {
        entry:
          call r, rec, a
          ret r
        }
        method main() {
        entry:
          const x, 1
          call r, rec, x
          ret r
        }
        """)
        assert inline_program(program) == 0

    def test_region_methods_never_inlined(self):
        program = parse_program("""
        region method r(obj) {
        entry:
          getfield x, obj, v
          print x
        }
        class Box { v }
        method main(obj) {
        entry:
          call _, r, obj
          ret
        }
        """)
        assert inline_program(program) == 0

    def test_inlining_widens_elimination_scope(self):
        """The paper: inlining increases the scope of redundancy
        elimination.  Reading a field in a helper then again in the caller
        is only provably redundant once the helper is inlined."""
        src = """
        class Box { v }
        method readv(b) {
        entry:
          getfield x, b, v
          ret x
        }
        method main(b) {
        entry:
          call x, readv, b
          getfield y, b, v
          ret y
        }
        """
        without = Compiler(JITConfig.DYNAMIC, inline=False).compile(
            parse_program(src)
        )[1]
        with_inline = Compiler(JITConfig.DYNAMIC, inline=True).compile(
            parse_program(src)
        )[1]
        assert with_inline.barriers_removed > without.barriers_removed


class TestCloning:
    def test_clone_creates_both_variants(self):
        program = clone_for_contexts(parse_program(STRAIGHT_LINE))
        assert "main" in program.methods
        assert "main" + IN_SUFFIX in program.methods

    def test_callsites_resolve_to_matching_variant(self):
        program = parse_program("""
        method helper() {
        entry:
          ret
        }
        method main() {
        entry:
          call _, helper
          ret
        }
        """)
        cloned = clone_for_contexts(program)
        out_call = [i for i in cloned.method("main").all_instrs()
                    if i.op is Opcode.CALL][0]
        in_call = [i for i in cloned.method("main" + IN_SUFFIX).all_instrs()
                   if i.op is Opcode.CALL][0]
        assert out_call.operands[1] == "helper"
        assert in_call.operands[1] == "helper" + IN_SUFFIX

    def test_region_methods_single_variant(self):
        program = parse_program("""
        class Box { v }
        region method r(obj) {
        entry:
          getfield x, obj, v
          print x
        }
        method main(obj) {
        entry:
          call _, r, obj
          ret
        }
        """)
        cloned = clone_for_contexts(program)
        assert "r" in cloned.methods
        assert "r" + IN_SUFFIX not in cloned.methods

    def test_static_compile_flavors_per_variant(self):
        program, _ = Compiler(JITConfig.STATIC, clone=True).compile(
            STRAIGHT_LINE
        )
        out_flavors = {i.flavor for i in program.method("main").all_instrs()
                       if i.flavor}
        in_flavors = {i.flavor
                      for i in program.method("main" + IN_SUFFIX).all_instrs()
                      if i.flavor}
        assert out_flavors == {BarrierFlavor.STATIC_OUT}
        assert in_flavors == {BarrierFlavor.STATIC_IN}


class TestCompilerDriver:
    def test_baseline_has_no_barriers(self):
        program, report = Compiler(JITConfig.BASELINE).compile(STRAIGHT_LINE)
        assert count_barriers(program) == 0
        assert report.barriers_inserted == 0

    def test_report_accounting_consistent(self):
        program, report = Compiler(JITConfig.DYNAMIC).compile(STRAIGHT_LINE)
        assert report.barriers_inserted - report.barriers_removed == \
            report.barriers_final == count_barriers(program)

    def test_dynamic_lowering_costs_more_than_static(self):
        _, static = Compiler(JITConfig.STATIC, clone=False).compile(
            STRAIGHT_LINE
        )
        _, dynamic = Compiler(JITConfig.DYNAMIC).compile(STRAIGHT_LINE)
        _, baseline = Compiler(JITConfig.BASELINE).compile(STRAIGHT_LINE)
        assert baseline.machine_ops < static.machine_ops < dynamic.machine_ops


class TestCFG:
    def test_preds_and_succs(self):
        program = parse_program("""
        method m(flag) {
        entry:
          br flag, a, b
        a:
          jmp join
        b:
          jmp join
        join:
          ret
        }
        """)
        cfg = CFG(program.method("m"))
        assert set(cfg.succs["entry"]) == {"a", "b"}
        assert set(cfg.preds["join"]) == {"a", "b"}

    def test_reverse_postorder_starts_at_entry(self):
        program = parse_program("""
        method m(flag) {
        entry:
          br flag, a, b
        a:
          jmp join
        b:
          jmp join
        join:
          ret
        }
        """)
        cfg = CFG(program.method("m"))
        order = cfg.reverse_postorder()
        assert order[0] == "entry"
        assert order.index("join") > order.index("a")
        assert order.index("join") > order.index("b")

    def test_unreachable_blocks_still_ordered(self):
        program = parse_program("""
        method m() {
        entry:
          ret
        island:
          ret
        }
        """)
        cfg = CFG(program.method("m"))
        assert set(cfg.reverse_postorder()) == {"entry", "island"}
        assert cfg.reachable() == {"entry"}
