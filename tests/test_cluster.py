"""Cluster-mode observables: byte-identical to a single-kernel replay.

The tentpole regression: N shards, each a full kernel, behind the
label-aware router — after the deterministic merge, the cluster's audit
log and traffic log are byte-for-byte what ONE kernel produces running
the same routed trace sequentially.  Sharding may only change where work
runs, never what the security record says.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Label, LabelPair
from repro.osim import (
    Cluster,
    ClusterRequest,
    EACCES,
    LaminarSecurityModule,
    ShardSpec,
    Sqe,
    TrafficLog,
    boot_shard,
    render_audit,
    replay_single,
)
from repro.osim.rpc import CapSync, SyncAck


class DenialWorld:
    """Replicated world with denial-bearing traffic: an owner with a
    secret file, and a tainted "mole" holding a pre-taint write fd to the
    plain file — the classic write-down setup."""

    def __init__(self) -> None:
        self.fds: dict[str, int] = {}
        self.tag_value = 0

    def ensure_built(self) -> "DenialWorld":
        if not self.fds:  # probe build: deterministic, describes all shards
            boot_shard(self, ShardSpec(0, "edge"))
        return self

    def build(self, kernel):
        root = kernel.init_task
        kernel.sys_mkdir(root, "/tmp/d")
        owner = kernel.spawn_task("owner", user="alice")
        tag, _ = kernel.sys_alloc_tag(owner, "s")
        self.tag_value = tag.value
        fd = kernel.sys_creat(owner, "/tmp/d/plain")
        kernel.sys_write(owner, fd, b"0123456789")
        kernel.sys_close(owner, fd)
        fd = kernel.sys_create_file_labeled(
            owner, "/tmp/d/secret", LabelPair(Label.of(tag))
        )
        kernel.sys_write(owner, fd, b"classified")
        kernel.sys_close(owner, fd)
        self.fds["owner_plain"] = kernel.sys_open(owner, "/tmp/d/plain", "r+")

        mole = kernel.spawn_task("mole", user="bob")
        self.fds["mole_plain"] = kernel.sys_open(mole, "/tmp/d/plain", "w")
        # Trusted setup path: taint the mole after it obtained the fd.
        mole.security.set_labels_unchecked(LabelPair(Label.of(tag)))
        self.fds["mole_secret"] = kernel.sys_open(mole, "/tmp/d/secret", "r")
        tasks = {"owner": owner, "mole": mole, root.name: root}
        for i in range(4):  # extra principals so the router has keys to spread
            clerk = kernel.spawn_task(f"clerk{i}", user="web")
            self.fds[f"clerk{i}_plain"] = kernel.sys_open(
                clerk, "/tmp/d/plain", "r"
            )
            tasks[f"clerk{i}"] = clerk
        return tasks

    def labels_of(self, principal: str) -> LabelPair:
        from repro.core.tags import Tag

        if principal == "mole":
            return LabelPair(Label.of(Tag(self.tag_value, "s")))
        return LabelPair.EMPTY

    def trace(self, n: int = 24, seed: int = 7) -> list[ClusterRequest]:
        """Mixed allowed/denied traffic: secret reads, write-down and
        transmit attempts by the mole, public reads/transmits by owner."""
        self.ensure_built()
        rng = random.Random(seed)
        recipes = [
            ("mole", (Sqe("lseek", self.fds["mole_secret"], 0),
                      Sqe("read", self.fds["mole_secret"], 10))),
            ("mole", (Sqe("write", self.fds["mole_plain"], b"leak"),)),
            ("mole", (Sqe("transmit", b"exfil"),)),
            ("owner", (Sqe("lseek", self.fds["owner_plain"], 0),
                       Sqe("read", self.fds["owner_plain"], 4))),
            ("owner", (Sqe("transmit", b"public"),)),
        ] + [
            (f"clerk{i}", (Sqe("lseek", self.fds[f"clerk{i}_plain"], 0),
                           Sqe("read", self.fds[f"clerk{i}_plain"], 4),
                           Sqe("transmit", f"ack{i}".encode())))
            for i in range(4)
        ]
        out = []
        for _ in range(n):
            principal, sqes = rng.choice(recipes)
            out.append(ClusterRequest(principal, self.labels_of(principal), sqes))
        return out


@pytest.fixture
def world():
    return DenialWorld()


class TestAuditParity:
    def test_merged_audit_matches_single_kernel_bytes(self, world):
        trace = world.trace(30)
        cluster = Cluster(world, shards=4)
        responses = cluster.run_trace(trace)
        assert len(responses) == len(trace)
        merged = cluster.merged_audit()
        single, _ = replay_single(world, trace)
        assert merged == render_audit(single.kernel.audit)
        # Non-trivially: the trace produced real denials.
        assert any("denial" in line for line in merged)
        # More than one shard actually served requests.
        assert len({r.shard_id for r in responses}) > 1

    def test_parity_across_shard_counts(self, world):
        trace = world.trace(20, seed=3)
        audits = []
        for shards in (1, 2, 4, 8):
            cluster = Cluster(world, shards=shards)
            cluster.run_trace(trace)
            audits.append(cluster.merged_audit())
        assert audits[0] == audits[1] == audits[2] == audits[3]

    def test_denied_write_leaves_no_trace_and_errno(self, world):
        world.ensure_built()
        trace = [
            ClusterRequest(
                "mole",
                world.labels_of("mole"),
                (Sqe("write", world.fds["mole_plain"], b"leak"),),
            )
        ]
        cluster = Cluster(world, shards=2)
        (resp,) = cluster.run_trace(trace)
        assert resp.cqes[0].errno == EACCES
        assert resp.traffic == ()  # nothing escaped
        single, _ = replay_single(world, trace)
        plain = single.kernel.fs.resolve("/tmp/d/plain")
        assert bytes(plain.data) == b"0123456789"


class TestTrafficMerge:
    def test_merged_traffic_matches_single_kernel(self, world):
        trace = world.trace(30)
        cluster = Cluster(world, shards=4)
        cluster.run_trace(trace)
        single, _ = replay_single(world, trace)
        merged = cluster.merged_traffic()
        reference = single.kernel.net.transmitted
        assert list(merged) == list(reference)
        assert merged.total_messages == reference.total_messages
        assert merged.total_bytes == reference.total_bytes
        # The omniscient-observer property survives sharding: no secret
        # payload ever reached the unlabeled network.
        assert all(b"exfil" not in bytes(p) for p in merged)

    def test_merge_is_order_independent(self, world):
        trace = world.trace(30)
        cluster = Cluster(world, shards=4)
        cluster.run_trace(trace)
        logs = cluster.worker_logs()
        shuffled = list(logs)
        random.Random(0).shuffle(shuffled)
        assert list(TrafficLog.merge(logs)) == list(TrafficLog.merge(shuffled))

    def test_merge_canonical_order_stamps(self):
        a = TrafficLog(worker_id=1)
        b = TrafficLog(worker_id=2)
        # Interleaved global stamps, appended in per-worker arrival order.
        a.stamp = 5
        a.append(b"a5")
        b.stamp = 2
        b.append(b"b2")
        a.stamp = 2
        a.append(b"a2-late")
        merged = TrafficLog.merge([a, b])
        # Canonical order: stamp first, then worker, then local order —
        # worker 1's stamp-2 entry precedes worker 2's.
        assert list(merged) == [b"a2-late", b"b2", b"a5"]
        assert merged.total_messages == 3


class TestReplication:
    def test_tag_sync_applies_then_rejects_stale(self, world):
        cluster = Cluster(world, shards=2)
        probe = boot_shard(world, ShardSpec(0, "edge"))
        coordinator = probe.kernel.tags
        fresh = coordinator.alloc("cluster-wide")
        acks = cluster.sync_tags(coordinator)
        assert all(isinstance(a, SyncAck) and a.applied for a in acks)
        for server in cluster.servers.values():
            assert server.kernel.tags.lookup(fresh.value) == fresh
        # Redelivery of the same snapshot is stale everywhere.
        acks = cluster.sync_tags(coordinator)
        assert all(not a.applied for a in acks)

    def test_cap_sync_bumps_fd_epoch_and_rejects_stale(self, world):
        cluster = Cluster(world, shards=2)
        before = [s.kernel.fd_epoch for s in cluster.servers.values()]
        acks = cluster.sync_caps([])
        assert all(a.applied for a in acks)
        after = [s.kernel.fd_epoch for s in cluster.servers.values()]
        assert after == [e + 1 for e in before]
        # A reordered older frame changes nothing.
        stale = CapSync(0, ())
        acks = cluster.executor.submit_wave(
            [(spec.shard_id, stale) for spec in cluster.specs]
        )
        assert all(not a.applied for a in acks)
        assert [s.kernel.fd_epoch for s in cluster.servers.values()] == after

    def test_cap_sync_updates_principals_cluster_wide(self, world):
        cluster = Cluster(world, shards=2)
        from repro.core import CapabilitySet
        from repro.core.tags import Tag

        taint = LabelPair(Label.of(Tag(world.tag_value, "s")))
        cluster.sync_caps([("owner", taint, CapabilitySet.EMPTY)])
        for server in cluster.servers.values():
            assert server.tasks["owner"].labels == taint


class TestMultiprocessExecutor:
    def test_multiprocess_matches_same_process_observables(self, world):
        trace = world.trace(20, seed=11)
        same = Cluster(world, shards=3)
        same_resps = same.run_trace(trace)
        multi = Cluster(world, shards=3, executor="multiprocess", workers=2)
        try:
            multi_resps = multi.run_trace(trace)
            assert [r.cqes for r in multi_resps] == [r.cqes for r in same_resps]
            assert multi.merged_audit() == same.merged_audit()
            assert list(multi.merged_traffic()) == list(same.merged_traffic())
            agg = multi.aggregate()
            assert agg["syscalls"].get("submit", 0) >= len(trace)
            assert agg["deferred_work"] > 0  # defer mode measured real work
        finally:
            multi.shutdown()

    def test_worker_reports_aggregate_fastpath_counters(self, world):
        multi = Cluster(world, shards=2, executor="multiprocess")
        try:
            multi.run_trace(world.trace(8, seed=2))
            reports = multi.shutdown()
            assert len(reports) == 2
            assert all(r.fastpath_counters for r in reports)
            agg = multi.aggregate()
            assert agg["fastpath"]  # summed across workers
        finally:
            multi.shutdown()
