"""Unit and integration tests for the kernel syscall layer + Laminar LSM."""

import pytest

from repro.core import (
    Capability,
    CapabilitySet,
    CapType,
    Label,
    LabelPair,
    LabelType,
)
from repro.osim import (
    Kernel,
    LaminarSecurityModule,
    Mask,
    NullSecurityModule,
    SyscallError,
    TCB_TAG,
)


@pytest.fixture
def k() -> Kernel:
    return Kernel(LaminarSecurityModule())


def tainted_task(k: Kernel, name="t"):
    """A task tainted with a fresh secrecy tag it can also drop."""
    task = k.spawn_task(name)
    tag, _ = k.sys_alloc_tag(task, name + "-tag")
    k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
    return task, tag


class TestTagSyscalls:
    def test_alloc_tag_grants_dual_caps(self, k):
        task = k.spawn_task("p")
        tag, granted = k.sys_alloc_tag(task, "x")
        assert task.capabilities.can_add(tag)
        assert task.capabilities.can_remove(tag)
        assert granted == CapabilitySet.dual(tag)

    def test_set_task_label_checked(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
        assert task.labels.secrecy == Label.of(tag)

    def test_set_task_label_without_cap_denied(self, k):
        task = k.spawn_task("p")
        other = k.spawn_task("q")
        tag, _ = k.sys_alloc_tag(other)
        with pytest.raises(Exception):
            k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))

    def test_drop_capabilities_is_permanent(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        k.sys_drop_capabilities(task, [Capability(tag, CapType.MINUS)])
        assert not task.capabilities.can_remove(tag)
        assert task.capabilities.can_add(tag)


class TestTCB:
    def test_drop_label_tcb_requires_tcb_tag(self, k):
        task, _ = tainted_task(k)
        imposter = k.spawn_task("imposter")
        imposter.pgid = task.pgid
        with pytest.raises(SyscallError) as err:
            k.sys_drop_label_tcb(imposter, task.tid)
        assert "tcb" in str(err.value)

    def test_drop_label_tcb_same_address_space_only(self, k):
        task, _ = tainted_task(k)
        tcb = k.spawn_task("tcb", labels=LabelPair(Label.EMPTY, Label.of(TCB_TAG)))
        assert tcb.pgid != task.pgid
        with pytest.raises(SyscallError):
            k.sys_drop_label_tcb(tcb, task.tid)

    def test_drop_label_tcb_clears_labels_without_caps(self, k):
        task, tag = tainted_task(k)
        k.sys_drop_capabilities(task, [Capability(tag, CapType.MINUS)])
        tcb = k.spawn_task(
            "tcb",
            labels=LabelPair(Label.EMPTY, Label.of(TCB_TAG)),
            pgid=task.pgid,
        )
        k.sys_drop_label_tcb(tcb, task.tid)
        assert task.labels.is_empty

    def test_set_security_tcb_guarded(self, k):
        task = k.spawn_task("p")
        with pytest.raises(SyscallError):
            k.sys_set_security_tcb(
                task, task.tid, LabelPair.EMPTY, CapabilitySet.EMPTY
            )


class TestFileSyscalls:
    def test_open_read_write_roundtrip(self, k):
        task = k.spawn_task("p")
        fd = k.sys_creat(task, "/tmp/f")
        k.sys_write(task, fd, b"data")
        k.sys_close(task, fd)
        fd = k.sys_open(task, "/tmp/f", "r")
        assert k.sys_read(task, fd) == b"data"

    def test_unlabeled_cannot_read_secret_file(self, k):
        alice = k.spawn_task("alice")
        tag, _ = k.sys_alloc_tag(alice, "a")
        fd = k.sys_create_file_labeled(
            alice, "/tmp/secret", LabelPair(Label.of(tag))
        )
        assert k.fs.resolve("/tmp/secret").labels.secrecy == Label.of(tag)
        mallory = k.spawn_task("mallory")
        with pytest.raises(SyscallError) as err:
            k.sys_open(mallory, "/tmp/secret", "r")
        assert "EACCES" in str(err.value)

    def test_tainted_plain_creat_in_unlabeled_dir_denied(self, k):
        # A tainted task's plain creat would attach its labels to a file
        # whose *name* lives in an unlabeled directory — denied.
        alice, tag = tainted_task(k, "alice")
        with pytest.raises(SyscallError):
            k.sys_creat(alice, "/tmp/secret2")

    def test_write_up_allowed_read_back_denied_until_tainted(self, k):
        writer = k.spawn_task("w")
        tag, caps = k.sys_alloc_tag(writer)
        fd = k.sys_create_file_labeled(writer, "/tmp/up", LabelPair(Label.of(tag)))
        k.sys_write(writer, fd, b"x")  # write up: {} ⊆ {tag}
        with pytest.raises(SyscallError):
            k.sys_open(writer, "/tmp/up", "r")
        k.sys_set_task_label(writer, LabelType.SECRECY, Label.of(tag))
        fd = k.sys_open(writer, "/tmp/up", "r")
        assert k.sys_read(writer, fd) == b"x"

    def test_tainted_cannot_create_labeled_file_in_unlabeled_dir(self, k):
        alice, tag = tainted_task(k, "alice")
        with pytest.raises(SyscallError):
            k.sys_create_file_labeled(
                alice, "/tmp/leakyname", LabelPair(Label.of(tag))
            )

    def test_precreate_then_taint_workflow(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        fd = k.sys_create_file_labeled(task, "/tmp/pre", LabelPair(Label.of(tag)))
        k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
        k.sys_write(task, fd, b"secret")
        k.sys_set_task_label(task, LabelType.SECRECY, Label.EMPTY)

    def test_stat_checks_inode_label(self, k):
        alice = k.spawn_task("alice")
        tag, _ = k.sys_alloc_tag(alice)
        k.sys_create_file_labeled(alice, "/tmp/s", LabelPair(Label.of(tag)))
        mallory = k.spawn_task("m")
        with pytest.raises(SyscallError):
            k.sys_stat(mallory, "/tmp/s")

    def test_stat_returns_metadata(self, k):
        task = k.spawn_task("p")
        fd = k.sys_creat(task, "/tmp/meta")
        k.sys_write(task, fd, b"12345")
        st = k.sys_stat(task, "/tmp/meta")
        assert st["size"] == 5 and st["type"] == "regular"

    def test_unlink_checks_parent_both_ways(self, k):
        alice, tag = tainted_task(k, "alice")
        plain = k.spawn_task("plain")
        fd = k.sys_creat(plain, "/tmp/junk")
        with pytest.raises(SyscallError):
            k.sys_unlink(alice, "/tmp/junk")  # alice tainted: no write down
        k.sys_unlink(plain, "/tmp/junk")

    def test_mkdir_labeled(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task)
        k.sys_mkdir_labeled(task, "/tmp/vault", LabelPair(Label.of(tag)))
        assert k.fs.resolve("/tmp/vault").labels.secrecy == Label.of(tag)

    def test_chdir_and_relative_resolution(self, k):
        task = k.spawn_task("p")
        k.sys_mkdir(task, "/tmp/wk")
        k.sys_chdir(task, "/tmp/wk")
        fd = k.sys_creat(task, "rel")
        k.sys_close(task, fd)
        assert k.fs.resolve("/tmp/wk/rel") is not None

    def test_device_io(self, k):
        task = k.spawn_task("p")
        fd = k.sys_open(task, "/dev/zero", "r")
        assert k.sys_read(task, fd, 4) == b"\0\0\0\0"
        fd = k.sys_open(task, "/dev/null", "w")
        assert k.sys_write(task, fd, b"gone") == 4


class TestProcessSyscalls:
    def test_fork_inherits_labels_and_caps(self, k):
        parent, tag = tainted_task(k)
        child = k.sys_fork(parent)
        assert child.labels == parent.labels
        assert child.capabilities == parent.capabilities
        assert child.pgid != parent.pgid

    def test_fork_capability_subset(self, k):
        parent = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(parent)
        child = k.sys_fork(parent, CapabilitySet.plus(tag))
        assert child.capabilities == CapabilitySet.plus(tag)

    def test_fork_cannot_exceed_parent(self, k):
        parent = k.spawn_task("p")
        other = k.spawn_task("q")
        tag, _ = k.sys_alloc_tag(other)
        with pytest.raises(SyscallError):
            k.sys_fork(parent, CapabilitySet.plus(tag))

    def test_spawn_thread_shares_address_space(self, k):
        parent = k.spawn_task("p")
        thread = k.sys_spawn_thread(parent)
        assert thread.pgid == parent.pgid

    def test_exec_denied_on_lower_integrity_image(self, k):
        publisher = k.spawn_task("pub")
        tag, _ = k.sys_alloc_tag(publisher)
        # unendorsed image
        fd = k.sys_creat(publisher, "/tmp/plugin")
        k.sys_close(publisher, fd)
        runner = k.spawn_task("runner")
        k.sys_alloc_tag(runner)
        runner.security.grant(CapabilitySet.plus(tag))
        k.sys_set_task_label(runner, LabelType.INTEGRITY, Label.of(tag))
        runner.cwd = k.fs.resolve("/tmp")
        with pytest.raises(SyscallError):
            k.sys_exec(runner, "plugin")

    def test_exit_suppresses_notification(self, k):
        task = k.spawn_task("p")
        k.sys_exit(task, 3)
        assert not task.alive and task.exit_code == 3
        with pytest.raises(SyscallError):
            k.sys_read(task, 3)

    def test_kill_mediated_by_labels(self, k):
        alice, _ = tainted_task(k, "alice")
        victim = k.spawn_task("victim")
        with pytest.raises(SyscallError):
            k.sys_kill(alice, victim.tid, 9)  # write down via signal
        k.sys_kill(victim, alice.tid, 9)  # write up is fine
        assert alice.pending_signals == [(9, victim.tid)]

    def test_kill_missing_task_and_denied_look_identical(self, k):
        sender = k.spawn_task("s")
        with pytest.raises(SyscallError) as missing:
            k.sys_kill(sender, 424242, 9)
        assert "ESRCH" in str(missing.value)


class TestSocketsAndNetwork:
    def test_tainted_task_cannot_transmit(self, k):
        alice, _ = tainted_task(k, "alice")
        with pytest.raises(SyscallError):
            k.sys_transmit(alice, b"secret")
        assert k.net.transmitted == []

    def test_untainted_transmit_ok(self, k):
        task = k.spawn_task("p")
        k.sys_transmit(task, b"hello")
        assert k.net.transmitted == [b"hello"]

    def test_labeled_socket_pair(self, k):
        alice, tag = tainted_task(k, "alice")
        s1 = k.sys_socket(alice)
        s2 = k.sys_socket(alice)
        s1.connect(s2)
        k.sys_send(alice, s1, b"ping")
        assert k.sys_recv(alice, s2) == b"ping"

    def test_mismatched_socket_labels_drop_silently(self, k):
        alice, tag = tainted_task(k, "alice")
        labeled = k.sys_socket(alice)
        plain_task = k.spawn_task("plain")
        plain = k.sys_socket(plain_task)
        labeled.connect(plain)
        assert k.sys_send(alice, labeled, b"leak") == 4
        assert k.sys_recv(plain_task, plain) == b""


class TestMemorySyscalls:
    def test_mmap_and_fault_recheck(self, k):
        task = k.spawn_task("p")
        fd = k.sys_creat(task, "/tmp/m")
        mapping = k.sys_mmap(task, fd, Mask.READ)
        k.fault_protection(task, mapping)

    def test_fault_after_taint_denied(self, k):
        task = k.spawn_task("p")
        fd = k.sys_creat(task, "/tmp/m")
        mapping = k.sys_mmap(task, fd, Mask.WRITE)
        tag, _ = k.sys_alloc_tag(task)
        k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
        with pytest.raises(SyscallError):
            k.fault_protection(task, mapping)


class TestVanillaModuleAllowsEverything:
    def test_no_denials(self):
        k = Kernel(NullSecurityModule())
        alice = k.spawn_task("alice")
        tag, _ = k.sys_alloc_tag(alice)
        k.sys_set_task_label(alice, LabelType.SECRECY, Label.of(tag))
        k.sys_transmit(alice, b"leak")  # vanilla Linux doesn't care
        assert k.net.transmitted == [b"leak"]
        assert k.security.denials == {}

    def test_hooks_still_counted(self):
        k = Kernel(NullSecurityModule())
        task = k.spawn_task("p")
        k.sys_creat(task, "/tmp/x")
        assert k.security.hook_calls["inode_create"] == 1


class TestFdAllocation:
    def test_lowest_free_fd_reused_after_close(self, k):
        """POSIX open() semantics: the lowest-numbered free descriptor is
        allocated, so closed numbers are recycled instead of growing the
        table forever."""
        task = k.spawn_task("p")
        a = k.sys_creat(task, "/tmp/fa")
        b = k.sys_creat(task, "/tmp/fb")
        c = k.sys_creat(task, "/tmp/fc")
        assert [a, b, c] == [3, 4, 5]
        k.sys_close(task, a)
        k.sys_close(task, c)
        assert k.sys_creat(task, "/tmp/fd") == a  # lowest free first
        assert k.sys_creat(task, "/tmp/fe") == c
        assert k.sys_creat(task, "/tmp/ff") == 6  # then fresh numbers

    def test_fd_numbers_stay_bounded_under_churn(self, k):
        task = k.spawn_task("p")
        for i in range(50):
            fd = k.sys_creat(task, f"/tmp/churn{i}")
            assert fd == 3
            k.sys_close(task, fd)

    def test_share_fd_tracks_references(self, k):
        """The same open file description installed in two tables carries
        two references; each close drops one."""
        donor = k.spawn_task("donor")
        peer = k.spawn_task("peer")
        fd = k.sys_creat(donor, "/tmp/shared")
        file = donor.lookup_fd(fd)
        assert file.refs == 1
        peer_fd = k.share_fd(donor, fd, peer)
        assert file.refs == 2
        k.sys_close(donor, fd)
        assert file.refs == 1
        k.sys_close(peer, peer_fd)
        assert file.refs == 0


class TestPathWalkCache:
    """The path-walk verdict cache must be invisible: identical hook
    counts, and immediate invalidation on anything that could change a
    walk's outcome."""

    def test_repeated_stat_hits_cache_with_identical_hook_counts(self, k):
        from repro.core import fastpath

        task = k.spawn_task("p")
        k.sys_mkdir(task, "/tmp/wc")
        k.sys_creat(task, "/tmp/wc/f")
        k.sys_stat(task, "/tmp/wc/f")
        hooks_per_stat = None
        before = k.security.hook_calls["inode_permission"]
        k.sys_stat(task, "/tmp/wc/f")
        hooks_per_stat = k.security.hook_calls["inode_permission"] - before
        hits_before = fastpath.counters.walk_hits
        for _ in range(5):
            before = k.security.hook_calls["inode_permission"]
            k.sys_stat(task, "/tmp/wc/f")
            assert (
                k.security.hook_calls["inode_permission"] - before
                == hooks_per_stat
            )
        assert fastpath.counters.walk_hits >= hits_before + 5

    def test_label_change_invalidates(self, k):
        """Raising secrecy must not let a task keep using walk verdicts
        from its old label: the epoch in the key forces a re-walk."""
        task = k.spawn_task("p")
        k.sys_mkdir(task, "/tmp/wc2")
        k.sys_creat(task, "/tmp/wc2/f")
        k.sys_stat(task, "/tmp/wc2/f")  # warm
        tag, _ = k.sys_alloc_tag(task)
        k.sys_set_task_label(task, LabelType.INTEGRITY, Label.of(tag))
        # Now the walk through unlabeled /tmp is a read-down for an
        # integrity-labeled task: must be re-checked and denied, cached
        # verdict notwithstanding.
        with pytest.raises(SyscallError):
            k.sys_stat(task, "/tmp/wc2/f")

    def test_unlink_invalidates(self, k):
        task = k.spawn_task("p")
        k.sys_mkdir(task, "/tmp/wc3")
        k.sys_creat(task, "/tmp/wc3/f")
        k.sys_stat(task, "/tmp/wc3/f")  # warm the prefix
        k.sys_unlink(task, "/tmp/wc3/f")
        with pytest.raises(SyscallError) as e:
            k.sys_stat(task, "/tmp/wc3/f")
        assert e.value.errno == 2  # ENOENT, not a stale cached walk

    def test_directory_relabel_invalidates(self, k):
        """Relabeling a traversed directory is caught by per-hit label
        identity revalidation even though no generation bumped."""
        owner = k.spawn_task("owner")
        tag, _ = k.sys_alloc_tag(owner)
        k.sys_mkdir(owner, "/tmp/wc4")
        k.sys_creat(owner, "/tmp/wc4/f")
        walker = k.spawn_task("walker")
        k.sys_stat(walker, "/tmp/wc4/f")  # warm
        # Directly relabel the directory (what revoke_by_relabel does).
        d = k.fs.resolve("/tmp/wc4")
        d.labels = LabelPair(Label.of(tag))
        with pytest.raises(SyscallError):
            k.sys_stat(walker, "/tmp/wc4/f")

    def test_security_module_swap_flushes(self, k):
        task = k.spawn_task("p")
        k.sys_mkdir(task, "/tmp/wc5")
        k.sys_creat(task, "/tmp/wc5/f")
        k.sys_stat(task, "/tmp/wc5/f")
        assert k._walk_cache
        k.set_security_module(NullSecurityModule())
        assert not k._walk_cache
        k.sys_stat(task, "/tmp/wc5/f")  # works under the new module

    def test_cache_disabled_by_flag(self, k):
        from repro.core import fastpath

        task = k.spawn_task("p")
        k.sys_mkdir(task, "/tmp/wc6")
        k.sys_creat(task, "/tmp/wc6/f")
        with fastpath.configured(path_walk_cache=False):
            before = fastpath.counters.walk_hits
            k.sys_stat(task, "/tmp/wc6/f")
            k.sys_stat(task, "/tmp/wc6/f")
            assert fastpath.counters.walk_hits == before
