"""Baseline systems: Flume-style monitor and HiStar-style page enforcement.

These tests pin down the *differences* Table 1 and Section 7.5 claim:
address-space granularity taints everything, endpoints gate communication,
page-granularity fragments heterogeneously labeled data and pays mapping
flushes on label changes.
"""

import pytest

from repro.baselines import (
    FlumeMonitor,
    PagedHeap,
    PagedThread,
    vanilla_kernel,
    vanilla_vm,
)
from repro.core import (
    CapabilitySet,
    IFCViolation,
    Label,
    LabelChangeViolation,
    LabelPair,
    Tag,
)
from repro.osim import SyscallError


class TestFlumeGranularity:
    @pytest.fixture()
    def flume(self):
        return FlumeMonitor()

    def test_raise_label_taints_whole_process(self, flume):
        proc = flume.spawn("worker")
        tag = flume.create_tag(proc, "secret")
        proc.raise_label(Label.of(tag))
        assert proc.labels.secrecy == Label.of(tag)

    def test_raise_without_capability_denied(self, flume):
        alice = flume.spawn("alice")
        secret = flume.create_tag(alice, "alice-secret")
        mallory = flume.spawn("mallory")
        with pytest.raises(LabelChangeViolation):
            mallory.raise_label(Label.of(secret))

    def test_tainted_process_loses_all_unlabeled_files(self, flume):
        """The contrast with Laminar: in Flume one secret read poisons the
        entire address space, so even the process's own unrelated output
        file becomes unwritable."""
        proc = flume.spawn("worker")
        task = proc.task
        fd = flume.kernel.sys_creat(task, "/tmp/notes")
        flume.kernel.sys_close(task, fd)
        tag = flume.create_tag(proc, "secret")
        proc.raise_label(Label.of(tag))
        with pytest.raises(SyscallError):
            flume.open(proc, "/tmp/notes", "w")

    def test_endpoint_mediates_communication(self, flume):
        sender = flume.spawn("sender")
        receiver = flume.spawn("receiver")
        endpoint = flume.create_endpoint(sender, LabelPair.EMPTY)
        flume.send(sender, endpoint, b"hello")
        assert flume.receive(receiver, endpoint) == b"hello"

    def test_tainted_sender_blocked_at_unlabeled_endpoint(self, flume):
        sender = flume.spawn("sender")
        endpoint = flume.create_endpoint(sender, LabelPair.EMPTY)
        tag = flume.create_tag(sender)
        sender.raise_label(Label.of(tag))
        with pytest.raises(IFCViolation):
            flume.send(sender, endpoint, b"secret")

    def test_every_operation_pays_an_rpc(self, flume):
        proc = flume.spawn("worker")
        before = flume.rpc_count
        fd = flume.open(proc, "/tmp", "r")
        flume.stat(proc, "/tmp")
        assert flume.rpc_count == before + 2

    def test_monitor_runs_on_unmodified_kernel(self, flume):
        assert flume.kernel.security.name == "vanilla-linux"


class TestPageLevelEnforcement:
    def test_different_labels_never_share_a_page(self):
        heap = PagedHeap(page_slots=16)
        t1, t2 = Tag(1, "x"), Tag(2, "y")
        obj1 = heap.allocate(LabelPair(Label.of(t1)), "one")
        obj2 = heap.allocate(LabelPair(Label.of(t2)), "two")
        assert obj1.page is not obj2.page

    def test_same_label_packs_pages(self):
        heap = PagedHeap(page_slots=4)
        pair = LabelPair(Label.of(Tag(1)))
        objs = [heap.allocate(pair, i) for i in range(10)]
        assert heap.stats.pages == 3  # ceil(10/4)

    def test_heterogeneous_labels_fragment(self):
        """GradeSheet's cell matrix under page granularity: every cell has
        a distinct label pair, so every cell gets its own page."""
        heap = PagedHeap(page_slots=64)
        students, projects = 10, 4
        for i in range(students):
            for j in range(projects):
                pair = LabelPair(Label.of(Tag(100 + i)), Label.of(Tag(200 + j)))
                heap.allocate(pair, 0)
        assert heap.stats.pages == students * projects
        assert heap.fragmentation() > 0.95

    def test_homogeneous_labels_do_not_fragment(self):
        heap = PagedHeap(page_slots=64)
        pair = LabelPair(Label.of(Tag(1)))
        for _ in range(64):
            heap.allocate(pair, 0)
        assert heap.fragmentation() == 0.0

    def test_fault_once_then_mapping_hits(self):
        heap = PagedHeap()
        pair = LabelPair(Label.of(Tag(1)))
        obj = heap.allocate(pair, 41)
        thread = PagedThread("t")
        thread.set_labels(pair, heap.stats)
        assert heap.read(thread, obj) == 41
        heap.read(thread, obj)
        heap.read(thread, obj)
        assert heap.stats.faults == 1
        assert heap.stats.mapping_hits == 2

    def test_label_change_flushes_mappings(self):
        heap = PagedHeap()
        pair = LabelPair(Label.of(Tag(1)))
        obj = heap.allocate(pair, 0)
        thread = PagedThread("t")
        thread.set_labels(pair, heap.stats)
        heap.read(thread, obj)
        # region-style label switch: everything must re-fault
        thread.set_labels(LabelPair(Label.of(Tag(1), Tag(2))), heap.stats)
        heap.read(thread, obj)
        assert heap.stats.faults == 2
        assert heap.stats.flushes >= 2

    def test_incompatible_mapping_denied(self):
        heap = PagedHeap()
        secret = heap.allocate(LabelPair(Label.of(Tag(1))), 0)
        thread = PagedThread("plain")
        with pytest.raises(IFCViolation):
            heap.read(thread, secret)

    def test_write_mapping_checked_separately(self):
        heap = PagedHeap()
        pair = LabelPair(Label.of(Tag(1)))
        obj = heap.allocate(pair, 0)
        thread = PagedThread("t")
        thread.set_labels(pair, heap.stats)
        heap.write(thread, obj, 9)
        assert heap.read(thread, obj) == 9
        assert heap.stats.faults == 2  # one read map + one write map


class TestVanillaFactories:
    def test_vanilla_kernel_enforces_nothing(self):
        k = vanilla_kernel()
        assert k.security.name == "vanilla-linux"

    def test_vanilla_vm_has_no_barriers(self):
        vm = vanilla_vm()
        obj = vm.alloc({"x": 1})
        obj.get("x")
        assert vm.barriers.stats.total == 0


class TestFlatNamespace:
    """Flume's answer (§5.2) to the integrity/directory tension: labeled
    objects in a flat store, no directories, no name channel."""

    def test_high_integrity_storage_without_admin_trust(self):
        from repro.baselines import FlumeMonitor
        from repro.core import Label, LabelPair

        flume = FlumeMonitor()
        publisher = flume.spawn("publisher")
        vouch = flume.create_tag(publisher, "vouch")
        publisher.labels = LabelPair(Label.EMPTY, Label.of(vouch))
        handle = flume.flatns.put(
            publisher, LabelPair(Label.EMPTY, Label.of(vouch)), b"plugin"
        )
        # A high-integrity consumer reads it with no directory walk at all.
        consumer = flume.spawn("consumer")
        consumer.labels = LabelPair(Label.EMPTY, Label.of(vouch))
        assert flume.flatns.get(consumer, handle) == b"plugin"

    def test_low_integrity_data_invisible_to_high_integrity_reader(self):
        from repro.baselines import FlumeMonitor
        from repro.core import Label, LabelPair

        flume = FlumeMonitor()
        rando = flume.spawn("rando")
        handle = flume.flatns.put(rando, LabelPair.EMPTY, b"junk")
        reader = flume.spawn("reader")
        tag = flume.create_tag(reader, "hi")
        reader.labels = LabelPair(Label.EMPTY, Label.of(tag))
        with pytest.raises(KeyError):
            flume.flatns.get(reader, handle)

    def test_unknown_and_unreadable_indistinguishable(self):
        from repro.baselines import FlumeMonitor
        from repro.core import Label, LabelPair

        flume = FlumeMonitor()
        alice = flume.spawn("alice")
        secret = flume.create_tag(alice, "s")
        alice.raise_label(Label.of(secret))
        handle = flume.flatns.put(alice, LabelPair(Label.of(secret)), b"x")
        peeker = flume.spawn("peeker")
        denied = missing = None
        with pytest.raises(KeyError) as denied:
            flume.flatns.get(peeker, handle)
        with pytest.raises(KeyError) as missing:
            flume.flatns.get(peeker, 424242)
        assert str(denied.value) == str(missing.value)
