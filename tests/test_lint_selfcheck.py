"""Self-check: ``lamc lint`` over every ``.ir`` fixture under ``tests/``.

Each fixture's first line declares its expected findings::

    # lint: LAM001,LAM005     (exact set of codes the linter must report)
    # lint: clean             (the linter must report nothing)

Running the real CLI (not the library) over every fixture means analyzer
regressions — a rule that stops firing, a new false positive, a changed
exit code — fail tier-1 immediately.
"""

from __future__ import annotations

import io
import json
import pathlib
import re

import pytest

from repro.tools.lamc import main as lamc_main

FIXTURE_DIR = pathlib.Path(__file__).parent
FIXTURES = sorted(FIXTURE_DIR.rglob("*.ir"))

_HEADER_RE = re.compile(r"#\s*lint:\s*(.+?)\s*$")


def _expected_codes(path: pathlib.Path) -> str:
    first_line = path.read_text(encoding="utf-8").splitlines()[0]
    match = _HEADER_RE.match(first_line)
    assert match, (
        f"{path.name}: every .ir fixture must start with a '# lint: ...' "
        f"header declaring its expected findings ('clean' if none)"
    )
    return match.group(1)


def test_fixtures_exist():
    assert len(FIXTURES) >= 8, "expected the lint fixture corpus under tests/"


@pytest.mark.lint
@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.name)
def test_fixture_lint_selfcheck(path: pathlib.Path):
    expected = _expected_codes(path)
    out = io.StringIO()
    exit_code = lamc_main(["lint", str(path), "--json"], out=out)
    findings = json.loads(out.getvalue())
    reported = sorted({f["code"] for f in findings})

    if expected == "clean":
        assert reported == [], f"unexpected findings: {reported}"
        assert exit_code == 0
    else:
        want = sorted(code.strip() for code in expected.split(","))
        assert reported == want, (
            f"{path.name}: expected codes {want}, linter reported {reported}"
        )
        has_error = any(f["severity"] == "error" for f in findings)
        assert exit_code == (1 if has_error else 0)

    # Every finding carries a stable, addressable location.
    for finding in findings:
        assert finding["code"] in {
            "LAM000", "LAM001", "LAM002", "LAM003", "LAM004", "LAM005",
            "LAM006",
        }
        assert finding["severity"] in {"error", "warning", "info"}
        assert finding["method"]


@pytest.mark.lint
def test_violation_fixture_has_flow_trace():
    """The acceptance fixture: a guaranteed secrecy violation must fail
    lint *with a propagation path* from allocation to forbidden write."""
    path = FIXTURE_DIR / "fixtures" / "secrecy_violation.ir"
    out = io.StringIO()
    exit_code = lamc_main(["lint", str(path), "--json"], out=out)
    assert exit_code == 1
    findings = json.loads(out.getvalue())
    lam001 = [f for f in findings if f["code"] == "LAM001"]
    assert lam001, "secrecy_violation.ir must report LAM001"
    trace = lam001[0]["trace"]
    assert len(trace) >= 2, "LAM001 must carry a flow trace"
    # Source: the out-of-region allocation in main; sink: the region write.
    assert trace[0]["method"] == "main"
    assert trace[-1]["method"] == "stomp"

    # The human rendering shows the same trace.
    out = io.StringIO()
    lamc_main(["lint", str(path)], out=out)
    text = out.getvalue()
    assert "error[LAM001]" in text
    assert "flow trace:" in text
