"""Barriers and the labeled heap: modes, checks, allocation labeling."""

import pytest

from repro.core import (
    CapabilitySet,
    IntegrityViolation,
    Label,
    LabelPair,
    RegionViolation,
    SecrecyViolation,
)
from repro.runtime import BarrierMode, LaminarAPI, LaminarVM
from repro.runtime.heap import Heap


@pytest.fixture
def setup(vm):
    api = LaminarAPI(vm)
    a = api.create_and_add_capability("a")
    i = api.create_and_add_capability("i")
    return vm, api, a, i


class TestHeap:
    def test_labeled_space_membership(self):
        heap = Heap()
        plain = heap.allocate_header(LabelPair.EMPTY)
        from repro.core import Tag

        labeled = heap.allocate_header(LabelPair(Label.of(Tag(1))))
        assert not heap.is_labeled(plain)
        assert heap.is_labeled(labeled)
        assert heap.labeled_count == 1

    def test_stats(self):
        heap = Heap()
        from repro.core import Tag

        heap.allocate_header(LabelPair.EMPTY)
        heap.allocate_header(LabelPair(Label.of(Tag(1))))
        assert heap.stats.allocations == 2
        assert heap.stats.labeled_allocations == 1
        assert heap.stats.label_words_written == 2

    def test_label_fresh_moves_into_labeled_space(self):
        heap = Heap()
        from repro.core import Tag

        header = heap.allocate_header(LabelPair.EMPTY)
        heap.label_fresh(header, LabelPair(Label.of(Tag(1))))
        assert heap.is_labeled(header)
        heap.label_fresh(header, LabelPair.EMPTY)
        assert not heap.is_labeled(header)


class TestOutOfRegionBarriers:
    def test_unlabeled_access_ok(self, setup):
        vm, api, a, i = setup
        obj = vm.alloc({"x": 1})
        assert obj.get("x") == 1
        obj.set("x", 2)

    def test_labeled_read_blocked(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1})
        with pytest.raises(RegionViolation):
            obj.get("x")

    def test_labeled_write_blocked(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1})
        with pytest.raises(RegionViolation):
            obj.set("x", 9)

    def test_labeled_allocation_blocked(self, setup):
        vm, api, a, i = setup
        with pytest.raises(RegionViolation):
            vm.alloc({"x": 1}, labels=LabelPair(Label.of(a)))


class TestInRegionBarriers:
    def test_read_requires_secrecy_coverage(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = vm.alloc({"x": 42})
        b = api.create_and_add_capability("b")
        outcome = {}
        with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b),
                       catch=lambda e: outcome.update(err=e)):
            secret.get("x")
        assert isinstance(outcome["err"], SecrecyViolation)

    def test_write_down_blocked(self, setup):
        vm, api, a, i = setup
        low = vm.alloc({"x": 0})  # unlabeled
        outcome = {}
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a),
                       catch=lambda e: outcome.update(err=e)):
            low.set("x", 1)  # tainted thread writing unlabeled object
        assert isinstance(outcome["err"], SecrecyViolation)
        assert low.get("x") == 0

    def test_read_down_integrity_blocked(self, setup):
        vm, api, a, i = setup
        low = vm.alloc({"x": 0})
        outcome = {}
        with vm.region(integrity=Label.of(i), caps=CapabilitySet.dual(i),
                       catch=lambda e: outcome.update(err=e)):
            low.get("x")
        assert isinstance(outcome["err"], IntegrityViolation)

    def test_default_alloc_labels_are_regions(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1})
            assert obj.labels.secrecy == Label.of(a)

    def test_explicit_alloc_labels_checked(self, setup):
        vm, api, a, i = setup
        b = api.create_and_add_capability("b")
        outcome = {}
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a),
                       catch=lambda e: outcome.update(err=e)):
            # thread {a} writing into {b} object: secrecy fails
            vm.alloc({"x": 1}, labels=LabelPair(Label.of(b)))
        assert isinstance(outcome["err"], SecrecyViolation)

    def test_explicit_higher_alloc_labels_ok(self, setup):
        vm, api, a, i = setup
        b = api.create_and_add_capability("b")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1}, labels=LabelPair(Label.of(a, b)))
            assert obj.labels.secrecy == Label.of(a, b)


class TestArrays:
    def test_element_access(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            arr = vm.alloc_array([1, 2, 3])
            assert arr.length() == 3
            arr.set(1, 99)
            assert arr.get(1) == 99
        with pytest.raises(RegionViolation):
            arr.get(0)

    def test_length_is_guarded_metadata(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            arr = vm.alloc_array([0] * 5)
        with pytest.raises(RegionViolation):
            arr.length()


class TestBarrierModes:
    def test_none_mode_checks_nothing(self, kernel):
        vm = LaminarVM(kernel, mode=BarrierMode.NONE)
        obj = vm.alloc({"x": 1})
        obj.get("x")
        assert vm.barriers.stats.total == 0

    def test_static_mode_counts_no_dispatches(self, setup):
        vm, api, a, i = setup
        obj = vm.alloc({"x": 1})
        obj.get("x")
        assert vm.barriers.stats.dynamic_dispatches == 0
        assert vm.barriers.stats.read_barriers >= 1

    def test_dynamic_mode_counts_dispatches(self, kernel):
        vm = LaminarVM(kernel, mode=BarrierMode.DYNAMIC)
        obj = vm.alloc({"x": 1})
        obj.get("x")
        obj.set("x", 2)
        assert vm.barriers.stats.dynamic_dispatches == 3  # alloc+read+write

    def test_stats_reset(self, setup):
        vm, api, a, i = setup
        vm.alloc({"x": 1}).get("x")
        vm.reset_stats()
        assert vm.barriers.stats.total == 0
        assert vm.heap.stats.allocations == 0


class TestCopyAndLabel:
    def test_declassify_with_minus(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = vm.alloc({"x": 5})
            public = api.copy_and_label(secret)
            assert public.labels.is_empty
        assert public.get("x") == 5

    def test_declassify_without_minus_denied(self, setup):
        vm, api, a, i = setup
        outcome = {}
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a),
                       catch=lambda e: outcome.update(err=e)):
            secret = vm.alloc({"x": 5})
            api.copy_and_label(secret)
        from repro.core import LabelChangeViolation

        assert isinstance(outcome["err"], LabelChangeViolation)

    def test_classify_up_with_plus(self, setup):
        vm, api, a, i = setup
        plain = vm.alloc({"x": 1})
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = api.copy_and_label(plain, secrecy=Label.of(a))
            assert secret.labels.secrecy == Label.of(a)

    def test_labeled_copy_outside_region_denied(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = vm.alloc({"x": 5})
        with pytest.raises(RegionViolation):
            api.copy_and_label(secret)

    def test_copy_is_independent(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = vm.alloc({"x": 5})
            copy = api.copy_and_label(secret, secrecy=Label.of(a))
            copy.set("x", 6)
            assert secret.get("x") == 5

    def test_array_copy(self, setup):
        vm, api, a, i = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            arr = vm.alloc_array([1, 2])
            pub = api.copy_and_label(arr)
        assert pub.get(0) == 1 and pub.length() == 2

    def test_get_current_label(self, setup):
        vm, api, a, i = setup
        from repro.core import LabelType

        assert api.get_current_label(LabelType.SECRECY).is_empty
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            assert api.get_current_label(LabelType.SECRECY) == Label.of(a)
