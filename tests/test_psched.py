"""Parallel scheduler backend (:mod:`repro.osim.psched`).

The equivalence currency: a world partitioned across N fork workers must
produce *byte-identical* observables — merged audit text, transmitted
traffic, denial counters, hook counters, pipe drops — to the same world
run group-by-group on one kernel under the cooperative scheduler.  And
within the parallel backend, the denied ≡ empty discipline must survive:
a worker whose group contains a denied reader is indistinguishable from
one whose group contains an allowed reader of an empty pipe.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workloads import OSServerWorld
from repro.core import Label, LabelPair
from repro.osim import Kernel, LaminarSecurityModule
from repro.osim.psched import (
    GroupHandle,
    ParallelScheduler,
    replay_cooperative,
    run_group,
)
from repro.osim.rpc import seed_worker_rng, worker_seed
from repro.osim.sched import read_blocking, syscall, yield_


# =========================================================================
# Parallel ≡ cooperative: the hypothesis sweep and directed fork cases
# =========================================================================


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    users=st.integers(min_value=1, max_value=4),
    requests=st.integers(min_value=1, max_value=6),
    chunks=st.integers(min_value=1, max_value=4),
    batched=st.booleans(),
    heartbeat=st.booleans(),
    workers=st.integers(min_value=1, max_value=3),
)
def test_fork_matches_cooperative_baseline(
    users, requests, chunks, batched, heartbeat, workers
):
    world = OSServerWorld(
        users=users,
        requests=requests,
        chunks=chunks,
        chunk_size=16,
        batched=batched,
        heartbeat=heartbeat,
    )
    base = replay_cooperative(world)
    ps = ParallelScheduler(world, workers=workers, executor="fork")
    ps.run()
    assert ps.observables() == base.observables()
    ps.shutdown()
    base.shutdown()


def test_fork_observables_identical_across_worker_counts():
    """The directed non-vacuous case: denials, silent pipe drops, and
    heartbeat traffic all present, bytes identical at 1, 2, and 4
    workers."""
    world = OSServerWorld(users=4, requests=10, chunks=4, chunk_size=32)
    base = replay_cooperative(world)
    obs0 = base.observables()
    base.shutdown()
    # Non-vacuous: the workload exercises every observable channel.
    assert len(obs0["audit"]) == 4 * 10  # one denied transmit per request
    assert len(obs0["traffic"]) == 4 * 10  # one courier heartbeat each
    assert obs0["pipe_drops"] == 4 * 10  # one silent drop per request
    assert dict(obs0["denials"])["socket_sendmsg"] == 4 * 10
    assert obs0["stuck"] == ()
    for workers in (1, 2, 4):
        ps = ParallelScheduler(world, workers=workers, executor="fork")
        ps.run()
        assert ps.observables() == obs0, f"workers={workers}"
        ps.shutdown()


def test_inline_executor_round_trips_the_codec():
    world = OSServerWorld(users=2, requests=6, chunks=3, chunk_size=16)
    base = replay_cooperative(world)
    ps = ParallelScheduler(world, workers=2, executor="inline")
    ps.run()
    assert ps.observables() == base.observables()
    # Partition labels are a pure function of the trace even inline.
    assert [r.worker for r in ps.results] == [0, 1]


def test_audit_text_restamped_in_global_group_order():
    world = OSServerWorld(users=3, requests=10, chunks=2, chunk_size=16)
    ps = ParallelScheduler(world, workers=3, executor="fork")
    ps.run()
    audit = ps.merged_audit()
    assert [int(line[1:7]) for line in audit] == list(range(1, len(audit) + 1))
    # Group order, not worker arrival order: user0's denials come first.
    assert "pcli0" in audit[0] and "pcli2" in audit[-1]
    ps.shutdown()


def test_worker_failure_is_reported_not_hung():
    class Broken:
        group_count = 1

        def build(self, kernel):
            def spawn(sched):
                def body(task):
                    raise RuntimeError("kaboom")
                    yield  # pragma: no cover

                sched.spawn(body, task=kernel.spawn_task("b"))

            return [GroupHandle("broken", spawn)]

    ps = ParallelScheduler(Broken(), workers=1, executor="fork")
    with pytest.raises(RuntimeError, match="kaboom"):
        ps.run()


# =========================================================================
# Satellite 1: deterministic per-worker seeding
# =========================================================================


def test_worker_seed_rule_is_the_documented_crc32():
    assert worker_seed(1234, 3) == zlib.crc32(b"1234:3")
    assert worker_seed(0, 0) == zlib.crc32(b"0:0")
    # Derivation must separate workers and bases.
    assert len({worker_seed(b, w) for b in (0, 1) for w in range(4)}) == 8


def test_seed_worker_rng_is_reproducible():
    import random

    state = random.getstate()
    try:
        assert seed_worker_rng(99, 1) == worker_seed(99, 1)
        a = [random.random() for _ in range(3)]
        seed_worker_rng(99, 1)
        b = [random.random() for _ in range(3)]
        assert a == b
    finally:
        random.setstate(state)


def test_fork_runs_bit_reproducible_same_seed():
    world = OSServerWorld(users=2, requests=6, chunks=2, chunk_size=16)
    runs = []
    for _ in range(2):
        ps = ParallelScheduler(world, workers=2, executor="fork", seed=77)
        ps.run()
        reports = ps.shutdown()
        runs.append(
            (
                ps.observables(),
                {r.worker_id: r.seed for r in reports},
                {r.worker_id: r.fastpath_counters for r in reports},
            )
        )
    assert runs[0] == runs[1]
    assert runs[0][1] == {0: worker_seed(77, 0), 1: worker_seed(77, 1)}


# =========================================================================
# Denied ≡ empty across workers
# =========================================================================


class DeniedEmptyWorld:
    """Two identical groups of the scheduler suite's denied-vs-empty
    scenario: a labeled writer feeds a labeled pipe drained by a labeled
    poller, while a blocked reader — unlabeled (denied) or labeled but
    always finding an empty queue — polls ``read_blocking``.  The two
    variants differ in exactly one label bit per group."""

    group_count = 2

    def __init__(self, denied: bool) -> None:
        self.denied = denied

    def build(self, kernel):
        handles = []
        owner = kernel.spawn_task("owner")
        for g in range(self.group_count):
            tag, _ = kernel.sys_alloc_tag(owner, f"secret{g}")
            secret = LabelPair(Label.of(tag))
            setup = kernel.spawn_task(f"plumber{g}")
            rfd, wfd = kernel.sys_pipe(setup, labels=secret)
            reader = kernel.spawn_task(
                f"reader{g}", labels=LabelPair.EMPTY if self.denied else secret
            )
            drainer = kernel.spawn_task(f"drainer{g}", labels=secret)
            writer = kernel.spawn_task(f"writer{g}", labels=secret)
            r = kernel.share_fd(setup, rfd, reader)
            d = kernel.share_fd(setup, rfd, drainer)
            w = kernel.share_fd(setup, wfd, writer)
            kernel.sys_close(setup, rfd)
            kernel.sys_close(setup, wfd)
            events: list[int] = []

            def read_body(task, r=r, events=events):
                while True:
                    data = yield read_blocking(r)
                    events.append(len(data))
                    if not data:
                        return

            def drain_body(task, d=d):
                for _ in range(12):
                    yield syscall("read", d)

            def write_body(task, w=w):
                for i in range(3):
                    yield syscall("write", w, b"msg%d" % i)
                    yield yield_()
                yield syscall("close", w)

            def spawn(sched, _rb=read_body, _r=reader, _db=drain_body,
                      _d=drainer, _wb=write_body, _w=writer):
                sched.spawn(_rb, task=_r)
                sched.spawn(_db, task=_d)
                sched.spawn(_wb, task=_w)

            def stats(_events=events):
                return {"reader_events": list(_events)}

            handles.append(GroupHandle(f"g{g}", spawn, stats))
        return handles


def _denied_empty_observed(denied: bool):
    """Everything an application (or a timing observer watching the
    scheduler) can see, per group, under 2 fork workers."""
    ps = ParallelScheduler(
        DeniedEmptyWorld(denied), workers=2, executor="fork", trace=True
    )
    ps.run()
    observed = [
        {
            "group": r.group,
            "worker": r.worker,
            "steps": r.steps,
            "trace": r.sched_trace,
            "hooks": r.hooks,
            "stuck": r.stuck,
            "reader_events": r.stats["reader_events"],
        }
        for r in ps.results
    ]
    ps.shutdown()
    return observed


def test_denied_reader_identical_to_empty_reader_across_workers():
    """The PR 3 tentpole regression, now across process boundaries: the
    scheduling trace, step counts, hook-call record, and reader-visible
    data of a *denied* group are byte-identical to an *empty* group —
    running on separate fork workers changes nothing.  (Tids align
    because both variants build identical worlds.)"""
    denied = _denied_empty_observed(denied=True)
    empty = _denied_empty_observed(denied=False)
    assert denied == empty
    assert [g["worker"] for g in denied] == [0, 1]
    for g in denied:
        assert g["reader_events"] == [0]
        assert g["stuck"] == ()
        parks = [e for e in g["trace"] if e[0] == "park"]
        assert len(parks) >= 2


# =========================================================================
# run_group capture discipline
# =========================================================================


def test_run_group_deltas_are_interleaving_independent():
    """A group's captured observables must not depend on which groups ran
    before it on the same kernel image — the property that makes the
    static partition sound."""
    world = OSServerWorld(users=3, requests=6, chunks=2, chunk_size=16)

    def capture(order):
        kernel = Kernel(LaminarSecurityModule())
        kernel.defer_work = True
        handles = world.build(kernel)
        kernel.drain_deferred_work()
        kernel.defer_work = False
        out = {}
        for index in order:
            r = run_group(kernel, index, handles[index])
            out[index] = (r.audit, r.denials, r.hooks, r.steps, r.stats)
        return out

    assert capture([0, 1, 2]) == capture([2, 0, 1])
