"""Cooperative scheduler: fairness, blocking I/O, and the timing-channel
regression — a denied blocking reader must be observationally identical
to an empty-pipe blocking reader (parks, wakeups, retries, syscall and
hook counts)."""

from __future__ import annotations

import pytest

from repro.core import Label, LabelPair
from repro.osim import (
    Kernel,
    LaminarSecurityModule,
    SIGKILL,
    Scheduler,
    SyscallError,
    fork,
    read_blocking,
    recv_blocking,
    submit,
    syscall,
    yield_,
)
from repro.osim.kernel import Sqe


def make_pipe_pair(kernel, labels=None):
    """A pipe shared between a fresh reader task and writer task, with no
    stray fd references (so the writer's close is the last close)."""
    setup = kernel.spawn_task("plumber")
    rfd, wfd = kernel.sys_pipe(setup, labels=labels)
    reader = kernel.spawn_task("reader", labels=labels or LabelPair.EMPTY)
    writer = kernel.spawn_task("writer", labels=labels or LabelPair.EMPTY)
    r = kernel.share_fd(setup, rfd, reader)
    w = kernel.share_fd(setup, wfd, writer)
    kernel.sys_close(setup, rfd)
    kernel.sys_close(setup, wfd)
    return reader, r, writer, w


class TestRoundRobinFairness:
    def test_tasks_interleave_one_op_per_step(self, kernel):
        order = []

        def body(task):
            for _ in range(3):
                order.append(task.tid)
                yield yield_()

        sched = Scheduler(kernel)
        a = sched.spawn(body, name="a")
        b = sched.spawn(body, name="b")
        c = sched.spawn(body, name="c")
        assert sched.run() == []
        assert order == [a.tid, b.tid, c.tid] * 3

    def test_busy_task_cannot_starve_others(self, kernel):
        """A task yielding 100 ops does not monopolize the processor: a
        2-op task admitted alongside it finishes within its first few
        scheduling rounds, not after the busy task drains."""
        finish_step = {}
        sched = Scheduler(kernel)

        def busy(task):
            for _ in range(100):
                yield yield_()
            finish_step["busy"] = sched.steps

        def light(task):
            yield yield_()
            yield yield_()
            finish_step["light"] = sched.steps

        sched.spawn(busy)
        sched.spawn(light)
        assert sched.run() == []
        assert finish_step["light"] <= 6
        assert finish_step["busy"] > finish_step["light"]

    def test_generator_return_exits_task(self, kernel):
        def body(task):
            yield yield_()
            return 7

        sched = Scheduler(kernel)
        task = sched.spawn(body)
        sched.run()
        assert not task.alive
        assert task.exit_code == 7


class TestBlockingIO:
    def test_reader_wakes_on_write(self, kernel):
        reader, r, writer, w = make_pipe_pair(kernel)
        got = []

        def read_body(task):
            got.append((yield read_blocking(r)))

        def write_body(task):
            # A few empty rounds first so the reader is genuinely parked.
            yield yield_()
            yield yield_()
            yield syscall("write", w, b"ping")

        sched = Scheduler(kernel, trace=True)
        sched.spawn(read_body, task=reader)
        sched.spawn(write_body, task=writer)
        assert sched.run() == []
        assert got == [b"ping"]
        assert ("park", reader.tid) in sched.trace
        assert ("wake", reader.tid) in sched.trace

    def test_reader_wakes_on_close_with_empty_read(self, kernel):
        reader, r, writer, w = make_pipe_pair(kernel)
        got = []

        def read_body(task):
            got.append((yield read_blocking(r)))

        def write_body(task):
            yield yield_()
            yield syscall("close", w)

        sched = Scheduler(kernel)
        sched.spawn(read_body, task=reader)
        sched.spawn(write_body, task=writer)
        assert sched.run() == []
        assert got == [b""]

    def test_data_then_close_drains_before_eof(self, kernel):
        reader, r, writer, w = make_pipe_pair(kernel)
        got = []

        def read_body(task):
            while True:
                data = yield read_blocking(r)
                if not data:
                    return
                got.append(data)

        def write_body(task):
            yield syscall("write", w, b"a")
            yield syscall("write", w, b"b")
            yield syscall("close", w)

        sched = Scheduler(kernel)
        sched.spawn(read_body, task=reader)
        sched.spawn(write_body, task=writer)
        assert sched.run() == []
        assert got == [b"a", b"b"]

    def test_task_exit_does_not_wake_reader(self, kernel):
        """Termination-channel suppression survives the scheduler: a
        writer that exits WITHOUT closing leaves the reader parked
        forever (reported stuck), exactly like a writer that never
        existed."""
        reader, r, writer, w = make_pipe_pair(kernel)

        def read_body(task):
            yield read_blocking(r)

        def write_body(task):
            yield yield_()
            # falls off the end: task exits, fd refs drop, no hangup

        sched = Scheduler(kernel)
        sched.spawn(read_body, task=reader)
        sched.spawn(write_body, task=writer)
        assert sched.run() == [reader]
        assert not writer.alive
        assert reader.alive

    def test_file_read_never_blocks(self, kernel):
        actor = kernel.spawn_task("filer")
        fd = kernel.sys_creat(actor, "/tmp/f")
        kernel.sys_write(actor, fd, b"xy")
        kernel.sys_close(actor, fd)
        got = []

        def body(task):
            fd = yield syscall("open", "/tmp/f", "r")
            got.append((yield read_blocking(fd)))
            got.append((yield read_blocking(fd)))  # at EOF: b"", no park

        sched = Scheduler(kernel, trace=True)
        sched.spawn(body, task=actor)
        assert sched.run() == []
        assert got == [b"xy", b""]
        assert ("park", actor.tid) not in sched.trace

    def test_socket_recv_blocking(self, kernel):
        a = kernel.sys_socket(kernel.init_task)
        b = kernel.sys_socket(kernel.init_task)
        a.connect(b)
        got = []

        def recv_body(task):
            got.append((yield recv_blocking(b)))
            got.append((yield recv_blocking(b)))  # wakes on close -> b""

        def send_body(task):
            yield yield_()
            yield syscall("send", a, b"hello")
            yield yield_()
            a.close()

        sched = Scheduler(kernel)
        sched.spawn(recv_body)
        sched.spawn(send_body)
        assert sched.run() == []
        assert got == [b"hello", b""]

    def test_syscall_error_raised_inside_body(self, kernel):
        caught = []

        def body(task):
            try:
                yield syscall("open", "/no/such/file")
            except SyscallError as exc:
                caught.append(exc.errno)

        sched = Scheduler(kernel)
        sched.spawn(body)
        assert sched.run() == []
        assert caught == [2]  # ENOENT


class TestForkExitKill:
    def test_fork_schedules_child_body(self, kernel):
        seen = []

        def child_body(task):
            seen.append(task.name)
            yield yield_()

        def parent_body(task):
            child = yield fork(child_body)
            seen.append(child.parent is task)

        sched = Scheduler(kernel)
        parent = sched.spawn(parent_body, name="p")
        assert sched.run() == []
        # The child is admitted ahead of the parent's re-enqueue, so it
        # runs its first step first.
        assert seen == ["p-child", True]
        assert all(not c.alive for c in parent.children)

    def test_kill_terminates_at_next_step(self, kernel):
        progress = []

        def victim_body(task):
            while True:
                progress.append(1)
                yield yield_()

        def killer_body(task, victim_tid):
            yield yield_()
            yield syscall("kill", victim_tid, SIGKILL)

        sched = Scheduler(kernel, trace=True)
        victim = sched.spawn(victim_body)
        sched.spawn(lambda t: killer_body(t, victim.tid))
        assert sched.run() == []
        assert not victim.alive
        assert victim.exit_code == 128 + SIGKILL
        assert ("killed", victim.tid) in sched.trace
        assert len(progress) <= 3

    def test_kill_wakes_and_terminates_parked_reader(self, kernel):
        reader, r, writer, w = make_pipe_pair(kernel)

        def read_body(task):
            yield read_blocking(r)

        def killer_body(task):
            yield yield_()
            yield syscall("kill", reader.tid, SIGKILL)

        sched = Scheduler(kernel)
        sched.spawn(read_body, task=reader)
        sched.spawn(killer_body, task=writer)
        assert sched.run() == []
        assert not reader.alive

    def test_submit_runs_whole_batch_in_one_step(self, kernel):
        results = []

        def body(task):
            fd = yield syscall("open", "/tmp/batched", "w+")
            cqes = yield submit(
                [Sqe("write", fd, b"abc"), Sqe("lseek", fd, 0), Sqe("read", fd)]
            )
            results.extend(c.result for c in cqes)

        sched = Scheduler(kernel)
        sched.spawn(body)
        assert sched.run() == []
        assert results == [3, 0, b"abc"]
        # creat + submit + the final advance-to-return: batch did not
        # consume one step per entry.
        assert sched.steps <= 4


class TestDenialIndistinguishableFromEmpty:
    """The tentpole security regression: under the scheduler, a reader
    whose labels forbid a pipe behaves *identically* to a reader of an
    empty pipe driven by the same writer — same scheduler trace, same
    syscall counts, same hook counts, same returned data."""

    @staticmethod
    def _scenario(denied: bool):
        """One kernel run where the two variants differ in exactly one
        bit: the blocked reader's label.

        A secrecy-labeled pipe is fed by a labeled writer (3 messages,
        then an explicit close) and drained by a labeled *drainer* that
        polls non-blocking reads.  Round-robin order guarantees the
        drainer always runs before a freshly woken blocked reader, so
        the queue is empty whenever the blocked reader attempts a read:

        * ``denied=True`` — the reader is unlabeled: every read attempt
          is silently denied.
        * ``denied=False`` — the reader holds the tag: every read
          attempt is *allowed* but finds an empty queue.

        Writer, drainer, pipe, message pattern, and scheduling are
        byte-identical.  If any observable differs between the variants,
        the scheduler has turned the label verdict into a signal."""
        kernel = Kernel(LaminarSecurityModule())
        owner = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(owner, "secret")
        secret = LabelPair(Label.of(tag))

        setup = kernel.spawn_task("plumber")
        rfd, wfd = kernel.sys_pipe(setup, labels=secret)
        reader = kernel.spawn_task(
            "reader", labels=LabelPair.EMPTY if denied else secret
        )
        drainer = kernel.spawn_task("drainer", labels=secret)
        writer = kernel.spawn_task("writer", labels=secret)
        r = kernel.share_fd(setup, rfd, reader)
        d = kernel.share_fd(setup, rfd, drainer)
        w = kernel.share_fd(setup, wfd, writer)
        kernel.sys_close(setup, rfd)
        kernel.sys_close(setup, wfd)

        events: list[int] = []
        drained: list[bytes] = []

        def read_body(task):
            while True:
                data = yield read_blocking(r)
                events.append(len(data))
                if not data:
                    return

        def drain_body(task):
            for _ in range(12):
                data = yield syscall("read", d)
                if data:
                    drained.append(data)

        def write_body(task):
            for i in range(3):
                yield syscall("write", w, b"msg%d" % i)
                yield yield_()
            yield syscall("close", w)

        sched = Scheduler(kernel, trace=True)
        sched.spawn(read_body, task=reader)
        sched.spawn(drain_body, task=drainer)
        sched.spawn(write_body, task=writer)
        stuck = sched.run()

        # Normalize tids out of the trace: (event, role) with stable roles.
        roles = {reader.tid: "R", drainer.tid: "D", writer.tid: "W"}
        trace = [(ev, roles[tid]) for ev, tid in sched.trace]
        return {
            "stuck": [t.name for t in stuck],
            "events": events,
            "drained": list(drained),
            "trace": trace,
            "steps": sched.steps,
            "syscalls": dict(kernel.syscall_counts),
            "hooks": dict(kernel.security.hook_calls),
        }

    def test_denied_reader_identical_to_empty_reader(self):
        denied = self._scenario(denied=True)
        empty = self._scenario(denied=False)
        assert denied == empty

    def test_denied_reader_sees_only_empty_reads(self):
        result = self._scenario(denied=True)
        assert result["events"] == [0]
        assert result["stuck"] == []

    def test_wakeups_follow_writer_activity_not_verdicts(self):
        """The reader parks and wakes in lockstep with write attempts in
        both scenarios: the park/wake pattern encodes writer activity,
        never whether delivery succeeded."""
        result = self._scenario(denied=True)
        parks = [e for e in result["trace"] if e == ("park", "R")]
        wakes = [e for e in result["trace"] if e == ("wake", "R")]
        assert len(parks) >= 2
        assert len(wakes) == len(parks)


class TestSchedulerHygiene:
    def test_run_respects_max_steps(self, kernel):
        def forever(task):
            while True:
                yield yield_()

        sched = Scheduler(kernel)
        sched.spawn(forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sched.run(max_steps=10)

    def test_non_generator_body_rejected(self, kernel):
        sched = Scheduler(kernel)
        with pytest.raises(TypeError, match="generator"):
            sched.spawn(lambda task: 42)
