"""Router label-tier invariant and denied ≡ empty at the routing layer.

The router is outside every kernel's TCB, so it gets its own invariants:

* **Tier invariant** (hypothesis sweep): no request whose labels exceed a
  shard's trust-tier capacity is ever routed — let alone delivered — to
  that shard.  If no tier can hold the labels, routing fails closed.
* **Denied ≡ empty at the router**: routing is a pure function of
  (principal, labels).  A request that the shard's kernel will deny takes
  exactly the same route, costs the same routing work, and leaves the
  same router-visible record as one that succeeds — the router cannot be
  used as an oracle for in-kernel verdicts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Label, LabelPair
from repro.core.tags import Tag
from repro.osim import (
    Cluster,
    ClusterRequest,
    LabelAwareRouter,
    RoutingError,
    Sqe,
    TIER_CAPACITY,
    make_specs,
    tier_can_hold,
)

from tests.test_cluster import DenialWorld

labels_strategy = st.builds(
    lambda values: LabelPair(Label.of(*(Tag(v, f"t{v}") for v in values))),
    st.lists(st.integers(1, 32), max_size=4, unique=True),
)

topology_strategy = st.lists(
    st.sampled_from(sorted(TIER_CAPACITY)), min_size=1, max_size=8
).map(",".join)


class TestTierInvariant:
    @settings(max_examples=120, deadline=None)
    @given(
        topology=topology_strategy,
        shards=st.integers(1, 8),
        requests=st.lists(
            st.tuples(st.sampled_from(["gw0", "gw1", "mole", "a b"]), labels_strategy),
            max_size=20,
        ),
    )
    def test_no_request_routed_beyond_tier_capacity(self, topology, shards, requests):
        specs = make_specs(shards, topology)
        router = LabelAwareRouter(specs)
        tier_of = {spec.shard_id: spec.tier for spec in specs}
        for principal, labels in requests:
            try:
                spec = router.route(principal, labels)
            except RoutingError:
                # Fail-closed is only acceptable when NO tier could hold it.
                assert all(not tier_can_hold(s.tier, labels) for s in specs)
            else:
                assert tier_can_hold(spec.tier, labels)
        # The routing trace agrees with what route() returned.
        for principal, labels, shard_id in router.trace:
            assert tier_can_hold(tier_of[shard_id], labels)

    @settings(max_examples=60, deadline=None)
    @given(principal=st.text(min_size=1, max_size=12), labels=labels_strategy)
    def test_routing_is_deterministic_across_router_instances(self, principal, labels):
        specs = make_specs(5, "edge,edge,shuffle,shuffle,central")
        a, b = LabelAwareRouter(specs), LabelAwareRouter(specs)
        try:
            ra = a.route(principal, labels)
        except RoutingError:
            ra = None
        try:
            rb = b.route(principal, labels)
        except RoutingError:
            rb = None
        assert (ra.shard_id if ra else None) == (rb.shard_id if rb else None)

    def test_central_tier_never_sees_secrecy(self):
        """End-to-end: run a mixed trace through a cluster whose shard 3
        is central; verify from the responses that every request a
        tainted principal issued was served by a taint-capable shard."""
        world = DenialWorld()
        trace = world.trace(40, seed=5)
        cluster = Cluster(world, shards=4, topology="edge,edge,shuffle,central")
        responses = cluster.run_trace(trace)
        tier_of = {spec.shard_id: spec.tier for spec in cluster.specs}
        for req, resp in zip(trace, responses):
            assert tier_can_hold(tier_of[resp.shard_id], req.labels)

    def test_routing_fails_closed_when_no_tier_fits(self):
        specs = make_specs(2, "central")
        router = LabelAwareRouter(specs)
        wide = LabelPair(Label.of(Tag(1, "a")))
        try:
            router.route("anyone", wide)
        except RoutingError:
            pass
        else:
            raise AssertionError("central-only cluster accepted tainted request")
        assert router.trace == []  # failed routes leave no delivery record


class TestDeniedEqualsEmptyAtRouter:
    def test_denied_and_allowed_requests_route_identically(self):
        """Same (principal, labels), different in-kernel fate: the denied
        write-down and the allowed secret read must route to the same
        shard with identical router-side records."""
        world = DenialWorld()
        world.ensure_built()
        labels = world.labels_of("mole")
        denied = ClusterRequest(
            "mole", labels, (Sqe("write", world.fds["mole_plain"], b"x"),)
        )
        allowed = ClusterRequest(
            "mole", labels, (Sqe("read", world.fds["mole_secret"], 4),)
        )
        ca = Cluster(world, shards=4)
        cb = Cluster(DenialWorld(), shards=4)
        (ra,) = ca.run_trace([denied])
        (rb,) = cb.run_trace([allowed])
        assert ca.router.trace == cb.router.trace  # identical routing record
        assert ra.shard_id == rb.shard_id
        # Both produce a structurally identical observable surface: no
        # traffic, one response, a cqe either way.
        assert ra.traffic == rb.traffic == ()
        assert len(ra.cqes) == len(rb.cqes) == 1

    def test_route_key_ignores_request_body(self):
        """The routing hash has no access to the batch at all — its inputs
        are (principal, secrecy tags), nothing else."""
        labels = LabelPair(Label.of(Tag(9, "t9")))
        k1 = LabelAwareRouter.route_key("gw", labels)
        k2 = LabelAwareRouter.route_key("gw", labels)
        assert k1 == k2
        # Integrity does not influence placement (capacity bounds secrecy,
        # the leak-relevant half of the pair).
        with_integrity = LabelPair(Label.of(Tag(9, "t9")), Label.of(Tag(4, "i")))
        assert LabelAwareRouter.route_key("gw", with_integrity) == k1
