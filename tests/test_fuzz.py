"""lamfuzz self-checks: generator determinism, the secret-swap oracle
over whole-OS traces, planted-leak negative controls, shrinker
minimality, and the ``lamc fuzz`` CLI contract (exit codes, replay
line, bit-reproducible output)."""

import io

import pytest

from repro.analysis.fuzz import (
    ARMS,
    OP_KINDS,
    FuzzWorld,
    check_trace,
    default_secrets,
    diff_observables,
    fuzz_sweep,
    generate_plan,
    leak_catch_budget,
    normalize_cross_arm,
    public_tree,
    run_forked,
    run_replicated,
    shrink_trace,
)
from repro.core import Label, LabelPair
from repro.osim import Kernel
from repro.osim.lsm import (
    LaminarSecurityModule,
    LeakySecurityModule,
    chain_bakeable_hooks,
)
from repro.tools.lamc import main as lamc_main


def run_lamc(*argv):
    out = io.StringIO()
    code = lamc_main(list(argv), out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# Generator determinism
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_same_seed_bit_identical(self):
        assert generate_plan(42).serialize() == generate_plan(42).serialize()

    def test_different_seeds_differ(self):
        serialized = {generate_plan(s).serialize() for s in range(12)}
        assert len(serialized) == 12

    def test_truncation_is_a_prefix(self):
        plan = generate_plan(3)
        short = plan.truncated(5)
        assert [op.index for op in short.ops] == [
            op.index for op in plan.ops[:5]
        ]

    def test_every_group_opens_with_probes(self):
        for seed in range(20):
            plan = generate_plan(seed)
            for g in range(plan.group_count):
                kinds = [op.kind for op in plan.ops if op.group == g][:2]
                assert kinds == ["probe_vault", "probe_pipe"]

    def test_vocabulary_reachable(self):
        # A modest sweep must exercise the full op vocabulary.
        report = fuzz_sweep(1000, 60, arms=())
        assert set(report.coverage) == set(OP_KINDS)

    def test_secrets_distinct_equal_length(self):
        a, b = default_secrets(7)
        assert a != b and len(a) == len(b)


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


class TestOracle:
    def test_clean_traces_have_no_violations(self):
        report = fuzz_sweep(0, 6)
        assert report.ok, [
            (v.seed, v.violations) for v in report.failures
        ]

    def test_verdict_is_deterministic(self):
        plan = generate_plan(9)
        v1 = check_trace(plan, arms=ARMS)
        v2 = check_trace(plan, arms=ARMS)
        assert v1.ok == v2.ok and v1.violations == v2.violations

    def test_coop_and_replicated_arms_agree(self):
        plan = generate_plan(5)
        secret = default_secrets(5)[0]
        coop = run_replicated(plan, secret, workers=1)
        par = run_replicated(plan, secret, workers=2)
        assert not diff_observables(
            normalize_cross_arm(coop), normalize_cross_arm(par)
        )

    def test_fork_executor_matches_replica_arm(self):
        plan = generate_plan(5)
        secret = default_secrets(5)[0]
        forked = run_forked(plan, secret, workers=2)
        repl = run_replicated(plan, secret, workers=2)
        assert not diff_observables(
            normalize_cross_arm(forked), normalize_cross_arm(repl)
        )

    def test_pipe_read_leak_caught(self):
        assert leak_catch_budget("pipe-read", max_traces=3) == 1

    def test_file_read_leak_caught(self):
        assert leak_catch_budget("file-read", max_traces=3) == 1

    def test_leak_surfaces_in_data_not_denials(self):
        # The planted pipe leak must be caught through the *extended*
        # observables (payload bytes), not a trivially different denial
        # count — the denial counters still tick in the leaky module.
        plan = generate_plan(0)
        verdict = check_trace(plan, leak="pipe-read", arms=("coop",))
        assert not verdict.ok
        assert all("oplogs" in v.detail or "group_fs" in v.detail
                   or "traffic" in v.detail for v in verdict.violations)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


class TestShrinker:
    def test_shrinks_planted_leak_to_minimal_prefix(self):
        plan = generate_plan(0)
        k, minimal = shrink_trace(plan, leak="pipe-read")
        # Prefix K must fail and K-1 must pass (minimality of the
        # binary-searched prefix).
        assert not check_trace(
            plan.truncated(k), leak="pipe-read", arms=("coop",)
        ).ok
        if k > 1:
            assert check_trace(
                plan.truncated(k - 1), leak="pipe-read", arms=("coop",)
            ).ok
        # The greedy pass may only remove further ops, never add.
        assert len(minimal.ops) <= k
        assert not check_trace(minimal, leak="pipe-read", arms=("coop",)).ok

    def test_subset_closes_over_dependencies(self):
        plan = generate_plan(3)  # seed 3 generates scratch consumers
        assert any(
            op.kind in ("scratch_rw", "unlink_scratch") for op in plan.ops
        )
        providers = {
            op.index for op in plan.ops if op.kind == "creat_scratch"
        }
        keep = frozenset(
            op.index for op in plan.ops if op.index not in providers
        )
        reduced = plan.subset(keep)
        kept_kinds = {op.kind for op in reduced.ops}
        assert "scratch_rw" not in kept_kinds
        assert "unlink_scratch" not in kept_kinds


# ---------------------------------------------------------------------------
# The leaky module and observable extractor units
# ---------------------------------------------------------------------------


class TestLeakyModule:
    def test_unknown_leak_rejected(self):
        with pytest.raises(ValueError):
            LeakySecurityModule("timing")

    def test_overridden_hooks_are_not_bakeable(self):
        # The hook-chain compiler must refuse to bake the overridden
        # permission hooks — otherwise a baked allow-verdict would mask
        # the planted leak (and, symmetrically, could mask a real bug).
        leaky = LeakySecurityModule("file-read")
        assert "inode_permission" not in chain_bakeable_hooks(leaky)
        assert "file_permission" not in chain_bakeable_hooks(leaky)
        assert chain_bakeable_hooks(LaminarSecurityModule()) >= {
            "inode_permission",
            "file_permission",
        }

    def test_public_tree_masks_secret_files(self):
        kernel = Kernel(LaminarSecurityModule())
        task = kernel.spawn_task("setup")
        tag, caps = kernel.sys_alloc_tag(task, "t")
        kernel.sys_mkdir(task, "/tmp/pt")
        fd = kernel.sys_creat(task, "/tmp/pt/pub")
        kernel.sys_write(task, fd, b"hello")
        kernel.sys_close(task, fd)
        fd = kernel.sys_create_file_labeled(
            task, "/tmp/pt/sec", LabelPair(secrecy=Label.of(tag))
        )
        kernel.sys_write(task, fd, b"classified")
        kernel.sys_close(task, fd)
        snapshot = dict(
            (path, data) for path, data, _ in public_tree(kernel, "/tmp/pt")
        )
        assert snapshot["/tmp/pt/pub"] == b"hello"
        assert snapshot["/tmp/pt/sec"] == "<secret>"

    def test_world_replicas_are_identical(self):
        # The determinism bedrock: two boots of the same world produce
        # byte-identical public state (tids, inos, tags all replayed).
        plan = generate_plan(2)
        secret = default_secrets(2)[0]
        world = FuzzWorld(plan, secret)
        from repro.analysis.fuzz import _boot

        k1, _ = _boot(world)
        k2, _ = _boot(world)
        assert public_tree(k1) == public_tree(k2)


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


class TestCLI:
    def test_clean_run_exits_zero(self):
        code, text = run_lamc("fuzz", "--seed", "3", "--traces", "2")
        assert code == 0
        assert "ok" in text

    def test_planted_leak_exits_one_with_replay(self):
        code, text = run_lamc("fuzz", "--seed", "0", "--leak", "pipe-read")
        assert code == 1
        assert "replay locally: lamc fuzz --seed 0 --ops" in text

    def test_output_bit_reproducible(self):
        args = ("fuzz", "--seed", "0", "--leak", "file-read")
        assert run_lamc(*args) == run_lamc(*args)

    def test_replay_command_reproduces_failure(self):
        code, text = run_lamc(
            "fuzz", "--seed", "0", "--leak", "pipe-read", "--no-shrink"
        )
        assert code == 1
        replay_line = [
            ln for ln in text.splitlines() if ln.startswith("replay locally:")
        ][0]
        argv = replay_line.split("lamc ")[1].split()
        code2, _ = run_lamc(*argv)
        assert code2 == 1

    def test_ops_truncation_matches_plan_prefix(self):
        code, dumped = run_lamc("fuzz", "--seed", "6", "--dump-trace",
                                "--ops", "4")
        assert code == 0
        assert dumped == generate_plan(6).truncated(4).serialize()

    def test_json_report(self):
        import json

        code, text = run_lamc(
            "fuzz", "--seed", "0", "--leak", "pipe-read", "--json"
        )
        payload = json.loads(text)
        assert code == 1 and payload["ok"] is False
        entry = payload["violations"][0]
        assert entry["replay"].startswith("lamc fuzz --seed 0 --ops")
        assert "probe_pipe" in entry["minimal_trace"]

    def test_artifacts_written(self, tmp_path):
        code, _ = run_lamc(
            "fuzz", "--seed", "0", "--leak", "pipe-read",
            "--artifacts", str(tmp_path),
        )
        assert code == 1
        trace = (tmp_path / "fuzz_seed0.trace").read_text()
        assert trace.startswith("# replay locally: lamc fuzz --seed 0")

    def test_unknown_arm_and_leak_exit_two(self):
        assert run_lamc("fuzz", "--arms", "warp")[0] == 2
        assert run_lamc("fuzz", "--leak", "timing")[0] == 2

    def test_fork_arm_smoke(self):
        code, text = run_lamc("fuzz", "--seed", "11", "--arms", "coop,fork")
        assert code == 0, text
