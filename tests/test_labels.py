"""Unit tests for labels and label pairs: the lattice of Section 3.1."""

import pytest

from repro.core import Label, LabelPair, LabelType, Tag

A, B, C = Tag(1, "a"), Tag(2, "b"), Tag(3, "c")


class TestLabelConstruction:
    def test_empty_is_interned(self):
        assert Label() == Label.EMPTY
        assert Label.empty() is Label.EMPTY

    def test_of_builds_from_tags(self):
        assert set(Label.of(A, B)) == {A, B}

    def test_duplicates_collapse(self):
        assert Label.of(A, A, B) == Label.of(A, B)

    def test_tags_sorted(self):
        assert Label.of(B, A).tags() == (A, B)

    def test_rejects_non_tags(self):
        with pytest.raises(TypeError):
            Label(["a"])  # type: ignore[list-item]

    def test_len_and_contains(self):
        label = Label.of(A, B)
        assert len(label) == 2
        assert A in label and C not in label


class TestLabelAlgebra:
    def test_subset(self):
        assert Label.of(A).is_subset_of(Label.of(A, B))
        assert not Label.of(A, B).is_subset_of(Label.of(A))
        assert Label.EMPTY.is_subset_of(Label.of(A))

    def test_union_is_lub(self):
        union = Label.of(A).union(Label.of(B))
        assert union == Label.of(A, B)
        # sharing: union with a superset returns the superset object
        big = Label.of(A, B)
        assert Label.of(A).union(big) is big

    def test_intersection_is_glb(self):
        assert Label.of(A, B).intersection(Label.of(B, C)) == Label.of(B)

    def test_difference(self):
        assert Label.of(A, B).difference(Label.of(B)) == Label.of(A)

    def test_with_without_tag(self):
        label = Label.of(A)
        assert label.with_tag(B) == Label.of(A, B)
        assert label.with_tag(A) is label
        assert label.without_tag(A) == Label.EMPTY
        assert label.without_tag(B) is label

    def test_comparison_operators(self):
        assert Label.of(A) <= Label.of(A, B)
        assert Label.of(A) < Label.of(A, B)
        assert not (Label.of(A) < Label.of(A))

    def test_hash_equals_consistent(self):
        assert hash(Label.of(A, B)) == hash(Label.of(B, A))
        assert len({Label.of(A, B), Label.of(B, A)}) == 1

    def test_immutability_via_operations(self):
        original = Label.of(A)
        original.union(Label.of(B))
        original.with_tag(C)
        assert original == Label.of(A)


class TestLabelPair:
    def test_empty_pair(self):
        assert LabelPair.EMPTY.is_empty
        assert LabelPair(Label.of(A)).is_empty is False

    def test_get_by_type(self):
        pair = LabelPair(Label.of(A), Label.of(B))
        assert pair.get(LabelType.SECRECY) == Label.of(A)
        assert pair.get(LabelType.INTEGRITY) == Label.of(B)

    def test_replacing(self):
        pair = LabelPair(Label.of(A), Label.of(B))
        replaced = pair.replacing(LabelType.SECRECY, Label.of(C))
        assert replaced.secrecy == Label.of(C)
        assert replaced.integrity == Label.of(B)
        assert pair.secrecy == Label.of(A)  # original untouched

    def test_immutable(self):
        pair = LabelPair()
        with pytest.raises(AttributeError):
            pair.secrecy = Label.of(A)  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert LabelPair(Label.of(A)) == LabelPair(Label.of(A))
        assert LabelPair(Label.of(A)) != LabelPair(Label.EMPTY, Label.of(A))
        assert len({LabelPair(Label.of(A)), LabelPair(Label.of(A))}) == 1

    def test_type_checked(self):
        with pytest.raises(TypeError):
            LabelPair("not a label")  # type: ignore[arg-type]

    def test_repr_shows_both(self):
        assert "S{a}" in repr(LabelPair(Label.of(A)))
