"""The security-type certifier (repro.analysis.typecheck)."""

import pytest

from repro.analysis import (
    SecurityCertificate,
    check_certificate,
    detect_races,
    typecheck_program,
)
from repro.analysis.typecheck import (
    RULE_CONTEXT_LABEL_FREE,
    RULE_FRESH,
    RULE_UNLABELED_INTEGRITY,
    postdominators,
)
from repro.jit.compiler import Compiler
from repro.jit.parser import parse_program


def certify(source: str, **kw):
    program = parse_program(source)
    return program, typecheck_program(program, **kw)


class TestDischargeRules:
    def test_fresh_allocation_discharges_reads_and_writes(self):
        _, result = certify("""
        class Box { v }
        method main() {
        entry:
          new b, Box
          const x, 1
          putfield b, v, x
          getfield y, b, v
          ret y
        }
        """)
        cert = result.certificates["main"]
        assert cert.certified
        rules = {ob.rule for ob in cert.obligations}
        assert rules <= {RULE_FRESH, RULE_CONTEXT_LABEL_FREE}
        assert all(ob.discharged for ob in cert.obligations)

    def test_unlabeled_read_in_secrecy_region_discharges(self):
        # Reads of an unlabeled object under a secrecy region pass: the
        # space/Biba side only needs empty governor *integrity*.
        _, result = certify("""
        class Box { v }
        region method peek(b) secrecy(s) {
        entry:
          getfield y, b, v
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, peek, b
          ret
        }
        """)
        cert = result.certificates["peek"]
        read = [ob for ob in cert.obligations if ob.kind == "read-check"]
        assert read and read[0].discharged
        assert read[0].rule == RULE_UNLABELED_INTEGRITY

    def test_write_in_secrecy_region_stays_open(self):
        # Writing an unlabeled object under nonempty secrecy would fail
        # Bell-LaPadula: the obligation must stay open (it is in fact a
        # guaranteed violation — lint's LAM001 — but the certifier's job
        # is only to refuse the certificate).
        _, result = certify("""
        class Box { v }
        region method poke(b) secrecy(s) {
        entry:
          const x, 1
          putfield b, v, x
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, poke, b
          ret
        }
        """)
        cert = result.certificates["poke"]
        writes = [ob for ob in cert.obligations if ob.kind == "write-check"]
        assert writes and not writes[0].discharged
        assert not cert.certified

    def test_alloc_under_labels_stays_open(self):
        # Labeling a fresh object under a secrecy region is not a no-op,
        # so the allocation obligation cannot discharge.
        _, result = certify("""
        class Box { v }
        region method make() secrecy(s) {
        entry:
          new b, Box
          ret
        }
        method main() {
        entry:
          call _, make
          ret
        }
        """)
        cert = result.certificates["make"]
        allocs = [ob for ob in cert.obligations if ob.kind == "alloc-label"]
        assert allocs and not allocs[0].discharged

    def test_unreachable_method_never_certifies(self):
        _, result = certify("""
        method orphan() {
        entry:
          const x, 1
          ret x
        }
        method main() {
        entry:
          ret
        }
        """)
        # orphan IS a root (no callers), so it has a context; make an
        # actually context-free method via an uncalled region body's
        # contexts instead — here both are roots, so both certify.
        assert result.certificates["orphan"].certified

    def test_obligations_attach_to_barriers_after_compilation(self):
        src = """
        class Box { v }
        method main() {
        entry:
          new b, Box
          const x, 1
          putfield b, v, x
          ret x
        }
        """
        program, _ = Compiler(optimize_barriers=False).compile(src)
        result = typecheck_program(program)
        cert = result.certificates["main"]
        # Instrumented: obligations sit on the barrier instructions.
        subjects = {
            (ob.kind, ob.subject) for ob in cert.obligations
        }
        assert ("write-check", "b") in subjects
        assert ("alloc-label", "b") in subjects
        assert cert.certified


class TestLeaks:
    def test_explicit_leak_blocks_certification(self):
        _, result = certify("""
        class Box { v }
        method peek(b) {
        entry:
          getfield y, b, v
          ret y
        }
        region method tally(b) secrecy(s) {
        entry:
          call x, peek, b
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, tally, b
          call y, peek, b
          print y
          ret
        }
        """)
        cert = result.certificates["main"]
        assert cert.leaks
        assert cert.leaks[0].kind == "explicit"
        assert not cert.certified

    def test_implicit_pc_leak_detected(self):
        # Branching on a secret and printing different constants in the
        # arms: no tainted value reaches print, but the *pc* does.
        _, result = certify("""
        class Box { v }
        method peek(b) {
        entry:
          getfield y, b, v
          ret y
        }
        region method tally(b) secrecy(s) {
        entry:
          call x, peek, b
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, tally, b
          call y, peek, b
          const t, 10
          binop c, gt, y, t
          br c, hi, lo
        hi:
          const a, 1
          print a
          jmp done
        lo:
          const z, 0
          print z
          jmp done
        done:
          ret
        }
        """)
        cert = result.certificates["main"]
        assert any(leak.kind == "implicit" for leak in cert.leaks)
        assert not cert.certified

    def test_root_return_is_a_sink(self):
        # A root method's return value reaches the embedder: returning
        # secret-derived data from main blocks certification.
        _, result = certify("""
        class Box { v }
        method peek(b) {
        entry:
          getfield y, b, v
          ret y
        }
        region method tally(b) secrecy(s) {
        entry:
          call x, peek, b
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, tally, b
          call y, peek, b
          ret y
        }
        """)
        cert = result.certificates["main"]
        assert cert.leaks
        assert not cert.certified
        # The non-root helper returning the same data is NOT a sink.
        assert not result.certificates["peek"].leaks

    def test_transitive_cleanliness_through_calls(self):
        _, result = certify("""
        class Box { v }
        method peek(b) {
        entry:
          getfield y, b, v
          ret y
        }
        region method tally(b) secrecy(s) {
        entry:
          call x, peek, b
          ret
        }
        method leaky(b) {
        entry:
          call y, peek, b
          print y
          ret
        }
        method outer(b) {
        entry:
          call _, leaky, b
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, tally, b
          call _, outer, b
          ret
        }
        """)
        assert result.certificates["leaky"].leaks
        # outer itself has no leak but calls a leaky method.
        outer = result.certificates["outer"]
        assert not outer.leaks
        assert not outer.transitively_clean
        assert not outer.certified

    def test_transitive_cleanliness_through_spawn(self):
        _, result = certify("""
        class Box { v }
        method peek(b) {
        entry:
          getfield y, b, v
          ret y
        }
        region method tally(b) secrecy(s) {
        entry:
          call x, peek, b
          ret
        }
        method snoop(b) {
        entry:
          call y, peek, b
          print y
          ret
        }
        method main() {
        entry:
          new b, Box
          call _, tally, b
          spawn h, snoop, b
          join h
          ret
        }
        """)
        # The spawn edge (not in the call graph) still carries dirt.
        assert not result.certificates["main"].transitively_clean
        assert not result.certificates["main"].certified


class TestRaceIntegration:
    SRC = open("tests/fixtures/label_race.ir").read()

    def test_race_implication_blocks_certificates(self):
        program = parse_program(self.SRC)
        races = detect_races(program)
        result = typecheck_program(program, races=races)
        assert result.certified() == frozenset()
        assert result.certificates["tally"].races

    def test_without_race_report_methods_may_certify(self):
        program = parse_program(self.SRC)
        result = typecheck_program(program)
        # The certifier alone cannot see the schedule dependence.
        assert "main" in result.certified()


class TestMachineChecker:
    SRC = open("examples/labeled_pipeline.ir").read()

    def test_real_example_certificates_check_out(self):
        program, result = certify(self.SRC)
        assert "ingest" in result.certified()
        for cert in result.certificates.values():
            assert check_certificate(program, cert) == []

    def test_tampered_rule_is_rejected(self):
        program, result = certify(self.SRC)
        cert = result.certificates["tally"]
        forged = SecurityCertificate(
            method=cert.method,
            contexts=cert.contexts,
            governors=cert.governors,
            obligations=tuple(
                ob if ob.discharged else type(ob)(
                    kind=ob.kind, method=ob.method, block=ob.block,
                    index=ob.index, subject=ob.subject, discharged=True,
                    rule=RULE_FRESH, evidence=("forged",),
                )
                for ob in cert.obligations
            ),
            leaks=cert.leaks,
            races=cert.races,
            transitively_clean=cert.transitively_clean,
            certified=True,
        )
        problems = check_certificate(program, forged)
        assert problems
        assert any("does not re-derive" in p for p in problems)

    def test_unknown_method_rejected(self):
        program, _ = certify(self.SRC)
        ghost = SecurityCertificate(
            method="ghost", contexts=frozenset(), governors=frozenset()
        )
        assert check_certificate(program, ghost)


class TestPostdominators:
    def test_diamond(self):
        program = parse_program("""
        method main() {
        entry:
          const c, 1
          br c, a, b
        a:
          jmp done
        b:
          jmp done
        done:
          ret
        }
        """)
        post = postdominators(program.methods["main"])
        assert "done" in post["entry"]
        assert "a" not in post["entry"]
        assert post["a"] == {"a", "done"}
