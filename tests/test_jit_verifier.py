"""The bytecode verifier: definite assignment, call integrity, block
structure (the Section 5.1 'bytecode verification' production path)."""

import pytest

from repro.jit import (
    Compiler,
    JITConfig,
    VerificationError,
    parse_program,
    verify_method,
    verify_program,
)
from repro.jit.ir import Instr, Method, Opcode, Program


def verify_src(src: str) -> None:
    verify_program(parse_program(src))


class TestDefiniteAssignment:
    def test_clean_program_verifies(self):
        verify_src("""
        method main() {
        entry:
          const x, 1
          binop y, add, x, x
          ret y
        }
        """)

    def test_use_before_def_rejected(self):
        with pytest.raises(VerificationError) as err:
            verify_src("""
            method main() {
            entry:
              binop y, add, x, x
              ret y
            }
            """)
        assert "'x'" in str(err.value) and "before assignment" in str(err.value)

    def test_conditionally_defined_register_rejected(self):
        with pytest.raises(VerificationError):
            verify_src("""
            method main(flag) {
            entry:
              br flag, set, skip
            set:
              const x, 1
              jmp join
            skip:
              jmp join
            join:
              ret x
            }
            """)

    def test_defined_on_both_paths_accepted(self):
        verify_src("""
        method main(flag) {
        entry:
          br flag, left, right
        left:
          const x, 1
          jmp join
        right:
          const x, 2
          jmp join
        join:
          ret x
        }
        """)

    def test_parameters_count_as_defined(self):
        verify_src("""
        method main(a, b) {
        entry:
          binop c, add, a, b
          ret c
        }
        """)

    def test_loop_carried_definition_accepted(self):
        verify_src("""
        method main() {
        entry:
          const i, 0
          const n, 3
          jmp loop
        loop:
          binop c, lt, i, n
          br c, body, done
        body:
          const one, 1
          binop i, add, i, one
          jmp loop
        done:
          ret i
        }
        """)

    def test_definition_only_on_backedge_rejected(self):
        # y is defined only inside the loop body; using it in the loop
        # header would read garbage on the first iteration.
        with pytest.raises(VerificationError):
            verify_src("""
            method main(flag) {
            entry:
              jmp loop
            loop:
              br flag, body, done
            done:
              ret y
            body:
              const y, 1
              jmp loop
            }
            """)


class TestCallIntegrity:
    def test_unknown_callee_rejected(self):
        with pytest.raises(VerificationError) as err:
            verify_src("""
            method main() {
            entry:
              const x, 1
              call r, ghost, x
              ret r
            }
            """)
        assert "ghost" in str(err.value)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(VerificationError) as err:
            verify_src("""
            method two(a, b) {
            entry:
              ret a
            }
            method main() {
            entry:
              const x, 1
              call r, two, x
              ret r
            }
            """)
        assert "expected 2" in str(err.value)

    def test_region_call_with_destination_rejected(self):
        with pytest.raises(VerificationError) as err:
            verify_src("""
            class Box { v }
            region method r(o) {
            entry:
              getfield x, o, v
              print x
            }
            method main(o) {
            entry:
              call leak, r, o
              ret leak
            }
            """)
        assert "no value" in str(err.value)


class TestBlockStructure:
    def test_instruction_after_terminator_rejected(self):
        method = Method("m")
        block = method.add_block("entry")
        block.instrs = [
            Instr(Opcode.RET, (None,)),
            Instr(Opcode.CONST, ("x", 1)),
        ]
        program = Program()
        program.add_method(method)
        errors = verify_method(method, program)
        assert any("after terminator" in e for e in errors)

    def test_empty_block_rejected(self):
        method = Method("m")
        method.add_block("entry")
        program = Program()
        program.add_method(method)
        errors = verify_method(method, program)
        assert any("empty block" in e for e in errors)


class TestPipelineIntegration:
    def test_compiler_rejects_unverifiable_code(self):
        with pytest.raises(VerificationError):
            Compiler(JITConfig.BASELINE).compile(
                "method main() {\nentry:\n  print ghost_reg\n  ret\n}"
            )

    def test_all_workloads_verify(self):
        from repro.bench import ALL_WORKLOADS

        for gen in ALL_WORKLOADS.values():
            verify_src(gen())

    def test_verify_pass_recorded_in_report(self):
        _, report = Compiler(JITConfig.BASELINE).compile(
            "method main() {\nentry:\n  const x, 1\n  ret x\n}"
        )
        assert report.passes[1] == "verify"
