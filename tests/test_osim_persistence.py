"""Persistent capabilities, login, and the revocation idiom (Section 4.4)."""

import pytest

from repro.core import CapabilitySet, Label, LabelPair, LabelType
from repro.osim import (
    Kernel,
    SyscallError,
    decode_capabilities,
    encode_capabilities,
    grant_persistent,
    load_user_capabilities,
    login,
    revoke_by_relabel,
    store_user_capabilities,
)


@pytest.fixture
def k():
    return Kernel()


class TestWireFormat:
    def test_roundtrip(self, k):
        task = k.spawn_task("p")
        t1, _ = k.sys_alloc_tag(task, "x")
        t2, _ = k.sys_alloc_tag(task, "y")
        caps = CapabilitySet.dual(t1).union(CapabilitySet.plus(t2))
        assert decode_capabilities(encode_capabilities(caps), k) == caps

    def test_empty_set(self, k):
        assert decode_capabilities(b"", k) == CapabilitySet.EMPTY

    def test_corrupt_rejected(self, k):
        with pytest.raises(ValueError):
            decode_capabilities(b"12345", k)


class TestLogin:
    def test_login_grants_stored_capabilities(self, k):
        task = k.spawn_task("admin")
        tag, caps = k.sys_alloc_tag(task, "payroll")
        store_user_capabilities(k, "carol", caps)
        shell = login(k, "carol")
        assert shell.capabilities == caps
        assert shell.user == "carol"

    def test_unknown_user_gets_empty_shell(self, k):
        shell = login(k, "nobody")
        assert shell.capabilities == CapabilitySet.EMPTY

    def test_grant_persistent_accumulates(self, k):
        task = k.spawn_task("admin")
        t1, c1 = k.sys_alloc_tag(task)
        t2, c2 = k.sys_alloc_tag(task)
        grant_persistent(k, "dave", c1)
        grant_persistent(k, "dave", c2)
        assert load_user_capabilities(k, "dave") == c1.union(c2)

    def test_store_survives_remount(self, k):
        task = k.spawn_task("admin")
        tag, caps = k.sys_alloc_tag(task, "k")
        store_user_capabilities(k, "erin", caps)
        k.fs.remount(k.tags)
        assert load_user_capabilities(k, "erin") == caps

    def test_missing_capability_file(self, k):
        with pytest.raises(SyscallError):
            load_user_capabilities(k, "ghost")


class TestRevocation:
    def test_revoke_by_relabel_cuts_off_old_capability_holders(self, k):
        owner = k.spawn_task("owner")
        old_tag, _ = k.sys_alloc_tag(owner, "doc")
        k.sys_create_file_labeled(owner, "/tmp/doc", LabelPair(Label.of(old_tag)))

        # Owner shared old_tag+ with a friend, who can taint and read.
        friend = k.spawn_task("friend")
        friend.security.grant(CapabilitySet.plus(old_tag))
        k.sys_set_task_label(friend, LabelType.SECRECY, Label.of(old_tag))
        k.sys_open(friend, "/tmp/doc", "r")

        # Revoke: allocate a new tag, relabel the file.
        new_tag = revoke_by_relabel(k, owner, "/tmp/doc", old_tag)

        # The friend's old capability no longer reaches the file.
        fresh_friend = k.spawn_task("friend2")
        fresh_friend.security.grant(CapabilitySet.plus(old_tag))
        k.sys_set_task_label(fresh_friend, LabelType.SECRECY, Label.of(old_tag))
        with pytest.raises(SyscallError):
            k.sys_open(fresh_friend, "/tmp/doc", "r")

        # The owner holds the new tag and can still read.
        k.sys_set_task_label(owner, LabelType.SECRECY, Label.of(new_tag))
        k.sys_open(owner, "/tmp/doc", "r")

    def test_revoke_requires_both_capabilities(self, k):
        owner = k.spawn_task("owner")
        other = k.spawn_task("other")
        tag, _ = k.sys_alloc_tag(other, "notmine")
        k.sys_create_file_labeled(other, "/tmp/x", LabelPair(Label.of(tag)))
        from repro.core import CapabilityViolation

        with pytest.raises(CapabilityViolation):
            revoke_by_relabel(k, owner, "/tmp/x", tag)

    def test_relabel_persists_in_xattrs(self, k):
        owner = k.spawn_task("owner")
        old_tag, _ = k.sys_alloc_tag(owner)
        k.sys_create_file_labeled(owner, "/tmp/p", LabelPair(Label.of(old_tag)))
        new_tag = revoke_by_relabel(k, owner, "/tmp/p", old_tag)
        k.fs.remount(k.tags)
        assert k.fs.resolve("/tmp/p").labels.secrecy == Label.of(new_tag)
