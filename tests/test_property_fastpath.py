"""Property: the fast-path caches never change an observable outcome.

One random operation sequence — region entries/exits, barrier reads and
writes, labeled allocation, kernel label changes, declassification via
``copy_and_label``, and raw flow/label-change checks — is executed twice
on fresh kernels: once with every cache enabled and once with every cache
disabled.  The traces (operation outcomes, exception types and messages),
the audit logs, and the denial counters must be identical.  This is the
ISSUE's required equivalence argument in randomized form: caching may
only change *when* set algebra runs, never what any check decides.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CapabilitySet,
    Label,
    LabelPair,
    LabelType,
    LaminarError,
    check_flow,
    check_pair_change,
    fastpath,
)
from repro.osim import Kernel, LaminarSecurityModule
from repro.runtime import LaminarAPI, LaminarVM

N_TAGS = 3  # owned tags; one extra unowned tag exercises denial paths

op_kind = st.sampled_from(
    ["enter", "enter_unowned", "exit", "alloc", "read", "write",
     "declassify", "set_label", "flow_check", "change_check"]
)
tag_idx = st.integers(min_value=0, max_value=N_TAGS - 1)
obj_idx = st.integers(min_value=0, max_value=7)
operations = st.lists(
    st.tuples(op_kind, tag_idx, obj_idx), min_size=1, max_size=40
)


def _label_for(tags, i, j):
    """A small deterministic label universe over the owned tags."""
    choices = (
        Label.EMPTY,
        Label.of(tags[i]),
        Label.of(tags[(i + 1) % N_TAGS]),
        Label.of(tags[i], tags[(i + 1) % N_TAGS]),
    )
    return choices[j % len(choices)]


def _run_trace(ops: list[tuple[str, int, int]]) -> tuple:
    """Execute ``ops`` on a fresh kernel/VM, recording every outcome."""
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    api = LaminarAPI(vm)
    tags = [api.create_and_add_capability(f"t{i}") for i in range(N_TAGS)]
    unowned = kernel.tags.alloc("locked")
    regions: list = []
    headers: list = []
    trace: list = []

    def record(kind, thunk):
        try:
            value = thunk()
            trace.append((kind, "ok", value))
        except LaminarError as exc:
            trace.append((kind, type(exc).__name__, str(exc)))

    for kind, i, j in ops:
        if kind == "enter":
            def enter(i=i):
                region = vm.region(
                    secrecy=Label.of(tags[i]),
                    caps=CapabilitySet.dual(*tags),
                )
                region.__enter__()
                regions.append(region)
                return None
            record(kind, enter)
        elif kind == "enter_unowned":
            def enter_unowned():
                region = vm.region(secrecy=Label.of(unowned))
                region.__enter__()
                regions.append(region)
                return None
            record(kind, enter_unowned)
        elif kind == "exit" and regions:
            record(kind, lambda: regions.pop().__exit__(None, None, None))
        elif kind == "alloc":
            def alloc(i=i):
                # A stable ``what`` keeps process-global object ids out of
                # violation messages; both runs must produce identical text.
                header = vm.barriers.alloc_barrier(
                    vm.current_thread, LabelPair(Label.of(tags[i])),
                    what=f"obj{len(headers)}",
                )
                headers.append(header)
                return header.labels
            record(kind, alloc)
        elif kind == "read" and headers:
            idx = j % len(headers)
            record(kind, lambda: vm.barriers.read_barrier(
                vm.current_thread, headers[idx], what=f"obj{idx}"
            ))
        elif kind == "write" and headers:
            idx = j % len(headers)
            record(kind, lambda: vm.barriers.write_barrier(
                vm.current_thread, headers[idx], what=f"obj{idx}"
            ))
        elif kind == "declassify":
            def declassify(i=i):
                with vm.region(
                    secrecy=Label.of(tags[i]),
                    caps=CapabilitySet.dual(*tags),
                ):
                    secret = vm.alloc(
                        {"v": 1}, labels=LabelPair(Label.of(tags[i]))
                    )
                    public = api.copy_and_label(secret, secrecy=Label.EMPTY)
                    return public.header.labels
            record(kind, declassify)
        elif kind == "set_label":
            def set_label(i=i):
                if vm.current_thread.in_region:
                    return None  # kernel label is region-managed here
                kernel.sys_set_task_label(
                    vm.main_task, LabelType.SECRECY, Label.of(tags[i])
                )
                kernel.sys_set_task_label(
                    vm.main_task, LabelType.SECRECY, Label.EMPTY
                )
                return None
            record(kind, set_label)
        elif kind == "flow_check":
            src = LabelPair(_label_for(tags, i, j))
            dst = LabelPair(_label_for(tags, (i + 1) % N_TAGS, j + 1))
            record(kind, lambda: check_flow(src, dst))
        elif kind == "change_check":
            frm = LabelPair(_label_for(tags, i, j))
            to = LabelPair(_label_for(tags, (i + 2) % N_TAGS, j + 2))
            caps = (
                CapabilitySet.dual(*tags) if j % 2 else
                CapabilitySet.plus(tags[i])
            )
            record(kind, lambda: check_pair_change(frm, to, caps))
    while regions:
        regions.pop().__exit__(None, None, None)
    audit = [str(entry) for entry in kernel.audit.entries()]
    denials = dict(kernel.security.denials)
    return tuple(trace), tuple(audit), denials


@settings(max_examples=40, deadline=None)
@given(operations)
def test_caches_never_change_outcomes(ops):
    every = fastpath.flags.as_dict()
    with fastpath.configured(**{name: True for name in every}):
        fastpath.clear_caches()
        cached = _run_trace(ops)
    with fastpath.configured(**{name: False for name in every}):
        fastpath.clear_caches()
        uncached = _run_trace(ops)
    assert cached[0] == uncached[0], "operation outcomes diverged"
    assert cached[1] == uncached[1], "audit logs diverged"
    assert cached[2] == uncached[2], "denial counters diverged"
