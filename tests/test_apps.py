"""The four case studies: policies enforced, flaws of the originals
demonstrated, and unmodified/Laminar behavioral equivalence."""

import pytest

from repro.apps import (
    AccessDenied,
    ChatDenied,
    LaminarBattleship,
    LaminarCalendar,
    LaminarFreeCS,
    LaminarGradeSheet,
    UnmodifiedBattleship,
    UnmodifiedCalendar,
    UnmodifiedFreeCS,
    UnmodifiedGradeSheet,
    run_request_mix,
)
from repro.core import IFCViolation, RegionViolation


# --------------------------------------------------------------- GradeSheet

@pytest.fixture(scope="module")
def sheet():
    return LaminarGradeSheet(students=5, projects=3)


class TestGradeSheetPolicy:
    """Table 4, exercised as an exhaustive access matrix."""

    def test_professor_reads_and_writes_everything(self, sheet):
        for i in range(sheet.students):
            for j in range(sheet.projects):
                assert sheet.read_grade("professor", i, j) is not None
                sheet.write_grade("professor", i, j, 50)

    def test_students_read_only_their_own_rows(self, sheet):
        for i in range(sheet.students):
            for j in range(sheet.projects):
                assert sheet.read_grade(f"student{i}", i, j) is not None
                other = (i + 1) % sheet.students
                with pytest.raises(AccessDenied):
                    sheet.read_grade(f"student{i}", other, j)

    def test_students_never_write(self, sheet):
        with pytest.raises(AccessDenied):
            sheet.write_grade("student0", 0, 0, 100)

    def test_tas_read_all_write_own_project_only(self, sheet):
        for j in range(sheet.projects):
            ta = f"ta{j}"
            for i in range(sheet.students):
                assert sheet.read_grade(ta, i, j) is not None
            sheet.write_grade(ta, 0, j, 60)
            wrong = (j + 1) % sheet.projects
            with pytest.raises(AccessDenied):
                sheet.write_grade(ta, 0, wrong, 60)

    def test_only_professor_declassifies_average(self, sheet):
        assert isinstance(sheet.project_average("professor", 0), float)
        for who in ("student0", "ta0"):
            with pytest.raises(AccessDenied):
                sheet.project_average(who, 0)

    def test_original_policy_leaks_average(self):
        legacy = UnmodifiedGradeSheet(students=5, projects=3)
        # the leak Laminar found: any student computes the class average
        assert isinstance(legacy.project_average("student0", 0), float)

    def test_write_visible_to_owner(self, sheet):
        sheet.write_grade("ta1", 2, 1, 93)
        assert sheet.read_grade("student2", 2, 1) == 93

    def test_query_mix_matches_unmodified(self):
        lam = LaminarGradeSheet(students=6, projects=3)
        old = UnmodifiedGradeSheet(students=6, projects=3)
        assert lam.run_query_mix(200) == old.run_query_mix(200)

    def test_unknown_principal_rejected(self, sheet):
        with pytest.raises(AccessDenied):
            sheet.read_grade("intruder", 0, 0)


# --------------------------------------------------------------- Battleship

class TestBattleship:
    def test_identical_games(self):
        for seed in (1, 7):
            lam = LaminarBattleship(grid=8, fleet=(3, 2), seed=seed)
            old = UnmodifiedBattleship(grid=8, fleet=(3, 2), seed=seed)
            assert lam.play() == old.play()
            assert lam.rounds == old.rounds

    def test_direct_board_inspection_blocked(self):
        game = LaminarBattleship(grid=8, fleet=(3, 2), seed=1)
        with pytest.raises(RegionViolation):
            game.peek_opponent_board(0)
        with pytest.raises(RegionViolation):
            game.peek_opponent_board(1)

    def test_exactly_one_bit_declassified_per_shot(self):
        game = LaminarBattleship(grid=8, fleet=(3, 2), seed=1)
        before = game.vm.stats.copy_and_labels
        game.shoot(0, (0, 0))
        assert game.vm.stats.copy_and_labels == before + 1

    def test_shot_results_correct(self):
        game = LaminarBattleship(grid=8, fleet=(3, 2), seed=5)
        ships1 = game.boards[1].raw_fields()["ships"]  # omniscient test view
        some_ship = next(iter(ships1))
        assert game.shoot(0, some_ship) is True
        empty = next(
            (r, c) for r in range(8) for c in range(8)
            if (r, c) not in ships1
        )
        assert game.shoot(0, empty) is False

    def test_repeat_hit_counts_once(self):
        game = LaminarBattleship(grid=8, fleet=(3, 2), seed=5)
        ships1 = game.boards[1].raw_fields()["ships"]
        cell = next(iter(ships1))
        assert game.shoot(0, cell) is True
        assert game.shoot(0, cell) is False  # already hit
        remaining = game.counters[1].raw_fields()["remaining"]
        assert remaining == len(ships1) - 1


# ----------------------------------------------------------------- Calendar

class TestCalendar:
    @pytest.fixture()
    def cal(self):
        cal = LaminarCalendar(seed=31)
        cal.add_user("alice")
        cal.add_user("bob")
        return cal

    def test_owner_views_own_calendar(self, cal):
        slots = cal.view_calendar("alice", "alice")
        assert isinstance(slots, set) and slots

    def test_cross_user_view_denied(self, cal):
        with pytest.raises(IFCViolation):
            cal.view_calendar("bob", "alice")

    def test_scheduling_matches_unmodified(self):
        lam = LaminarCalendar(seed=31)
        old = UnmodifiedCalendar(seed=31)
        for user in ("alice", "bob"):
            lam.add_user(user)
            old.add_user(user)
        assert lam.schedule_meeting("alice", "bob") == \
            old.schedule_meeting("alice", "bob")

    def test_meeting_lands_in_alice_inbox(self, cal):
        slot = cal.schedule_meeting("alice", "bob")
        assert slot in cal.read_meetings("alice")

    def test_output_file_labeled_for_alice(self, cal):
        cal.schedule_meeting("alice", "bob")
        from repro.core import Label

        inode = cal.kernel.fs.resolve("/tmp/cal/meeting-alice-bob.out")
        assert inode.labels.secrecy == Label.of(cal.tags["alice"])

    def test_scheduler_cannot_leak_to_network(self, cal):
        """The scheduler thread is tainted with both tags inside the
        region; the unlabeled network must reject it."""
        from repro.core import Label
        from repro.osim import SyscallError

        caps = cal.scheduler_caps("alice", "bob")
        thread = cal.vm.create_thread("leaky", caps_subset=caps)
        with cal.vm.running(thread):
            with cal.vm.region(
                secrecy=Label.of(cal.tags["alice"], cal.tags["bob"]),
                caps=caps,
            ):
                with pytest.raises(SyscallError):
                    cal.vm.syscall("transmit", b"calendar dump")
        assert cal.kernel.net.transmitted == []

    def test_many_meetings(self, cal):
        for _ in range(20):
            assert cal.schedule_meeting("alice", "bob") is not None


# ------------------------------------------------------------------- FreeCS

class TestFreeCS:
    @pytest.fixture()
    def server(self):
        server = LaminarFreeCS()
        server.login("root", vip=True)
        server.create_group("root", "lobby")
        server.login("eve")
        server.login("vip-only", vip=True)
        return server

    def test_join_say_who(self, server):
        server.command("eve", "join", "lobby")
        server.command("eve", "say", "lobby", "hi")
        assert "eve" in server.command("eve", "who", "lobby")

    def test_ban_requires_vip_and_superuser(self, server):
        server.command("eve", "join", "lobby")
        with pytest.raises(ChatDenied):
            server.command("eve", "ban", "lobby", "root")
        with pytest.raises(ChatDenied):
            server.command("vip-only", "ban", "lobby", "eve")
        server.command("root", "ban", "lobby", "eve")
        assert "eve" not in server.command("root", "who", "lobby")

    def test_banned_user_cannot_rejoin_or_be_invited(self, server):
        server.command("root", "ban", "lobby", "eve")
        with pytest.raises(ChatDenied):
            server.command("eve", "join", "lobby")
        server.login("friend")
        server.command("friend", "join", "lobby")
        with pytest.raises(ChatDenied):
            server.command("friend", "invite", "lobby", "eve")

    def test_unban_restores_access(self, server):
        server.command("root", "ban", "lobby", "eve")
        server.command("root", "unban", "lobby", "eve")
        server.command("eve", "join", "lobby")

    def test_theme_requires_superuser(self, server):
        with pytest.raises(ChatDenied):
            server.command("eve", "theme", "lobby", "neon")
        server.command("root", "theme", "lobby", "neon")

    def test_say_requires_membership(self, server):
        with pytest.raises(ChatDenied):
            server.command("eve", "say", "lobby", "not a member yet")

    def test_unknown_command(self, server):
        with pytest.raises(ChatDenied):
            server.command("eve", "frobnicate", "lobby")

    def test_request_mix_matches_unmodified(self):
        lam = run_request_mix(LaminarFreeCS(), users=60)
        old = run_request_mix(UnmodifiedFreeCS(), users=60)
        assert lam == old
