"""Property-based tests (hypothesis) on the DIFC core.

The lattice and rule algebra have clean mathematical structure; these
properties pin it down over randomized inputs:

* labels form a bounded join-semilattice under union/subset;
* the flow relation composes (transitivity) and is reflexive;
* the label-change rule is sound: a permitted change decomposes into
  permitted single-tag steps, and dual capabilities permit everything;
* capability-set algebra respects the set model.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    Capability,
    CapabilitySet,
    CapType,
    Label,
    LabelPair,
    Tag,
    can_change_label,
    can_flow,
    integrity_allows,
    secrecy_allows,
)

TAG_POOL = [Tag(i, f"t{i}") for i in range(1, 9)]

labels = st.builds(
    Label, st.lists(st.sampled_from(TAG_POOL), max_size=6).map(tuple)
)
pairs = st.builds(LabelPair, labels, labels)
cap_kinds = st.sampled_from([CapType.PLUS, CapType.MINUS])
capsets = st.builds(
    CapabilitySet,
    st.lists(
        st.builds(Capability, st.sampled_from(TAG_POOL), cap_kinds), max_size=10
    ),
)


class TestLatticeProperties:
    @given(labels, labels)
    def test_union_commutative(self, x, y):
        assert x.union(y) == y.union(x)

    @given(labels, labels, labels)
    def test_union_associative(self, x, y, z):
        assert x.union(y).union(z) == x.union(y.union(z))

    @given(labels)
    def test_union_idempotent(self, x):
        assert x.union(x) == x

    @given(labels)
    def test_empty_is_bottom(self, x):
        assert Label.EMPTY.is_subset_of(x)
        assert x.union(Label.EMPTY) == x

    @given(labels, labels)
    def test_union_is_least_upper_bound(self, x, y):
        lub = x.union(y)
        assert x.is_subset_of(lub) and y.is_subset_of(lub)

    @given(labels, labels)
    def test_subset_antisymmetric(self, x, y):
        if x.is_subset_of(y) and y.is_subset_of(x):
            assert x == y

    @given(labels, labels, labels)
    def test_subset_transitive(self, x, y, z):
        if x.is_subset_of(y) and y.is_subset_of(z):
            assert x.is_subset_of(z)

    @given(labels, labels)
    def test_difference_union_reconstructs(self, x, y):
        assert x.difference(y).union(x.intersection(y)) == x

    @given(labels, labels)
    def test_hash_respects_equality(self, x, y):
        if x == y:
            assert hash(x) == hash(y)


class TestFlowProperties:
    @given(pairs)
    def test_flow_reflexive(self, x):
        assert can_flow(x, x)

    @given(pairs, pairs, pairs)
    def test_flow_transitive(self, x, y, z):
        if can_flow(x, y) and can_flow(y, z):
            assert can_flow(x, z)

    @given(labels, labels)
    def test_secrecy_and_integrity_are_duals(self, x, y):
        # The integrity rule is the secrecy rule with arrows reversed.
        assert secrecy_allows(x, y) == integrity_allows(y, x)

    @given(pairs)
    def test_everything_flows_to_top_secrecy(self, x):
        top = LabelPair(Label(TAG_POOL), Label.EMPTY)
        if x.integrity.is_empty:
            assert can_flow(x, top)

    @given(pairs)
    def test_unlabeled_flows_nowhere_with_integrity(self, x):
        if not x.integrity.is_empty:
            assert not can_flow(LabelPair.EMPTY, x)


class TestLabelChangeProperties:
    @given(labels, labels)
    def test_dual_caps_permit_any_change(self, old, new):
        assert can_change_label(old, new, CapabilitySet.dual(*TAG_POOL))

    @given(labels, labels)
    def test_no_caps_permit_only_identity(self, old, new):
        allowed = can_change_label(old, new, CapabilitySet.EMPTY)
        assert allowed == (old == new)

    @given(labels, labels, capsets)
    def test_change_decomposes_into_single_tag_steps(self, old, new, caps):
        if not can_change_label(old, new, caps):
            return
        current = old
        for tag in new.difference(old):
            assert can_change_label(current, current.with_tag(tag), caps)
            current = current.with_tag(tag)
        for tag in old.difference(new):
            assert can_change_label(current, current.without_tag(tag), caps)
            current = current.without_tag(tag)
        assert current == new

    @given(labels, capsets)
    def test_raising_by_plus_tags_always_allowed(self, old, caps):
        assert can_change_label(old, old.union(caps.plus_tags()), caps)


class TestCapabilitySetProperties:
    @given(capsets, capsets)
    def test_union_respects_queries(self, x, y):
        merged = x.union(y)
        for tag in TAG_POOL:
            assert merged.can_add(tag) == (x.can_add(tag) or y.can_add(tag))
            assert merged.can_remove(tag) == (
                x.can_remove(tag) or y.can_remove(tag)
            )

    @given(capsets, capsets)
    def test_intersection_subset_of_both(self, x, y):
        inter = x.intersection(y)
        assert inter.is_subset_of(x) and inter.is_subset_of(y)

    @given(capsets)
    def test_plus_minus_tags_partition(self, caps):
        for tag in caps.plus_tags():
            assert caps.can_add(tag)
        for tag in caps.minus_tags():
            assert caps.can_remove(tag)
