"""Cross-layer integration scenarios: VM + OS + persistence working as one
system, the way the paper's deployment story requires."""

import pytest

from repro.core import (
    Capability,
    CapabilitySet,
    CapType,
    Label,
    LabelPair,
    LabelType,
)
from repro.osim import Kernel, SyscallError, grant_persistent, login
from repro.runtime import LaminarAPI, LaminarVM


class TestFullLifecycle:
    """login → taint → read secret → compute → declassify → publish."""

    def test_end_to_end_report_pipeline(self):
        kernel = Kernel()
        vm = LaminarVM(kernel)
        api = LaminarAPI(vm)

        # Day 0: the admin provisions Carol's tag persistently.
        carol_tag, carol_caps = kernel.sys_alloc_tag(kernel.init_task, "carol")
        grant_persistent(kernel, "carol", carol_caps)

        # Carol logs in; her shell holds the persisted capabilities.
        shell = login(kernel, "carol")
        assert shell.capabilities.can_add(carol_tag)

        # Her data was written earlier, labeled with her tag.
        fd = kernel.sys_create_file_labeled(
            shell, "/tmp/payroll", LabelPair(Label.of(carol_tag))
        )
        kernel.sys_set_task_label(shell, LabelType.SECRECY, Label.of(carol_tag))
        kernel.sys_write(shell, fd, b"salary:100")
        kernel.sys_set_task_label(shell, LabelType.SECRECY, Label.EMPTY)

        # A report worker thread in the VM gets exactly her capabilities.
        worker = vm.create_thread("report-worker")
        worker.gain_capabilities(carol_caps)
        published = {}
        with vm.running(worker):
            with vm.region(secrecy=Label.of(carol_tag), caps=carol_caps):
                rfd = api.open("/tmp/payroll", "r")
                raw = api.read(rfd)
                api.close(rfd)
                summary = vm.alloc({"over_50k": b"100" in raw}, name="summary")
                public = api.copy_and_label(summary)  # carol- justifies it
                published["flag"] = public.get("over_50k")
            # untainted again: publishing is legal
            api.transmit(b"over50k=" + str(published["flag"]).encode())
        assert kernel.net.transmitted == [b"over50k=True"]
        # the declassification is on the audit record
        assert kernel.audit.declassifications()

    def test_label_survives_remount_and_still_guards(self):
        kernel = Kernel()
        task = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(task, "persist")
        kernel.sys_create_file_labeled(
            task, "/tmp/durable", LabelPair(Label.of(tag))
        )
        kernel.fs.remount(kernel.tags)
        stranger = kernel.spawn_task("stranger")
        with pytest.raises(SyscallError):
            kernel.sys_open(stranger, "/tmp/durable", "r")
        kernel.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
        kernel.sys_open(task, "/tmp/durable", "r")


class TestTrustedPartnerSharing:
    """Section 3.3's 'sharing secrets with trusted partners': Alice hands
    the scheduler her a- capability through a kernel-mediated pipe, which
    is what lets the scheduler declassify *her* data and nobody else's."""

    def test_capability_handoff_enables_declassification(self):
        kernel = Kernel()
        vm = LaminarVM(kernel)
        api = LaminarAPI(vm)

        alice_thread = vm.create_thread("alice")
        with vm.running(alice_thread):
            a = api.create_and_add_capability("a")

        scheduler = vm.create_thread("scheduler")
        # Before the handoff the scheduler cannot even enter an {a} region.
        from repro.core import RegionViolation

        with vm.running(scheduler):
            with pytest.raises(RegionViolation):
                with vm.region(secrecy=Label.of(a)):
                    pass

        # Alice sends a+ and a- over a pipe; the kernel mediates each hop.
        rfd, wfd = kernel.sys_pipe(alice_thread.task)
        rfd_sched = kernel.share_fd(alice_thread.task, rfd, scheduler.task)
        with vm.running(alice_thread):
            api.write_capability(Capability(a, CapType.PLUS), wfd)
            api.write_capability(Capability(a, CapType.MINUS), wfd)
        with vm.running(scheduler):
            got_plus = api.read_capability(rfd_sched)
            got_minus = api.read_capability(rfd_sched)
        assert got_plus and got_minus

        # Now the scheduler can read and selectively declassify her data.
        with vm.running(alice_thread):
            with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
                secret = vm.alloc({"when": "tue 9am"})
        with vm.running(scheduler):
            with vm.region(secrecy=Label.of(a),
                           caps=scheduler.capabilities):
                slot = api.copy_and_label(secret)
                assert slot.get("when") == "tue 9am"

    def test_tainted_handoff_is_silently_dropped(self):
        kernel = Kernel()
        vm = LaminarVM(kernel)
        api = LaminarAPI(vm)
        alice = vm.create_thread("alice")
        mallory = vm.create_thread("mallory")
        with vm.running(alice):
            a = api.create_and_add_capability("a")
            secret_tag = api.create_and_add_capability("s")
        rfd_a, wfd = kernel.sys_pipe(alice.task, LabelPair.EMPTY)
        rfd = kernel.share_fd(alice.task, rfd_a, mallory.task)
        # Alice, while tainted, tries to slip a capability out through an
        # unlabeled pipe: the kernel drops it without an error.
        with vm.running(alice):
            with vm.region(secrecy=Label.of(secret_tag),
                           caps=CapabilitySet.dual(secret_tag)):
                api.write_capability(Capability(a, CapType.MINUS), wfd)
        with vm.running(mallory):
            assert api.read_capability(rfd) is None


class TestSharedNamespace:
    """'Alice's program uses the same label namespace present in the file
    system': one tag guards a file and a heap object interchangeably."""

    def test_one_tag_guards_file_and_object(self):
        kernel = Kernel()
        vm = LaminarVM(kernel)
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("shared")
        pair = LabelPair(Label.of(tag))
        fd = api.create_file_labeled("/tmp/shared", pair)
        with vm.region(secrecy=pair.secrecy, caps=CapabilitySet.dual(tag)):
            api.write(fd, b"from-disk")
            obj = vm.alloc({"data": None}, labels=pair)
            # file -> heap: both sides carry the same tag, one region
            rfd = api.open("/tmp/shared", "r")
            obj.set("data", api.read(rfd))
            api.close(rfd)
            assert obj.get("data") == b"from-disk"
        # both are unreachable outside regions / to unlabeled tasks
        from repro.core import RegionViolation

        with pytest.raises(RegionViolation):
            obj.get("data")
        stranger = kernel.spawn_task("stranger")
        with pytest.raises(SyscallError):
            kernel.sys_open(stranger, "/tmp/shared", "r")

    def test_file_label_equals_object_label(self):
        kernel = Kernel()
        vm = LaminarVM(kernel)
        api = LaminarAPI(vm)
        tag = api.create_and_add_capability("t")
        pair = LabelPair(Label.of(tag))
        api.create_file_labeled("/tmp/x", pair)
        with vm.region(secrecy=pair.secrecy, caps=CapabilitySet.dual(tag)):
            obj = vm.alloc({})
        inode = kernel.fs.resolve("/tmp/x")
        assert inode.labels == obj.labels
