"""Property-based fault sweep + the faulted timing-channel regression.

Two closure properties over the fault plane:

* **Prefix consistency** (hypothesis): for a random workload and a
  random single fault anywhere in it, the recovered machine's
  observables are a *prefix-consistent, never-weaker-labeled* subset of
  the no-fault run — every surviving file's label is at least as
  restrictive as a state the no-fault run exposed for that path (or
  quarantined), and every user's persistent capabilities equal the union
  of some prefix of the grants issued (a torn grant never manufactures a
  capability state that no prefix of the workload produced).
* **Schedule indistinguishability**: a kernel that crashed and recovered
  must not leak the fault through the scheduler — a denied reader on the
  recovered machine produces byte-identical observables to an allowed
  reader of an empty pipe on an identically-recovered machine, the same
  bar ``test_osim_sched.py`` sets for never-faulted kernels.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import CapabilitySet, Label, LabelPair, can_flow
from repro.osim import (
    FaultKind,
    FaultPlan,
    FaultRule,
    Kernel,
    KernelCrash,
    LaminarSecurityModule,
    Scheduler,
    SyscallError,
    check_recovery_invariants,
    decode_capabilities,
    grant_persistent,
    read_blocking,
    syscall,
    yield_,
)

# -- a tiny deterministic workload language ----------------------------------

N_FILES = 3
N_TAGS = 3
N_USERS = 2

op_strategy = st.one_of(
    st.tuples(st.just("create"), st.integers(0, N_FILES - 1),
              st.integers(0, N_TAGS - 1)),
    st.tuples(st.just("write"), st.integers(0, N_FILES - 1),
              st.integers(1, 3)),
    st.tuples(st.just("relabel"), st.integers(0, N_FILES - 1),
              st.integers(0, N_TAGS - 1)),
    st.tuples(st.just("grant"), st.integers(0, N_USERS - 1),
              st.integers(0, N_TAGS - 1)),
)

FAULT_KINDS = (
    FaultKind.CRASH,
    FaultKind.TORN_WRITE,
    FaultKind.SHORT_WRITE,
    FaultKind.EIO,
    FaultKind.ENOSPC,
)


def run_ops(kernel: Kernel, ops) -> list:
    """Execute the op sequence; returns the tag pool.  Total and
    deterministic: ops against files that don't exist are skipped."""
    admin = kernel.spawn_task("admin")
    tags = [kernel.sys_alloc_tag(admin, f"t{i}")[0] for i in range(N_TAGS)]
    for op in ops:
        if op[0] == "create":
            _, i, t = op
            path = f"/tmp/f{i}"
            if f"f{i}" in kernel.fs.root.children["tmp"].children:
                continue
            fd = kernel.sys_create_file_labeled(
                admin, path, LabelPair(Label.of(tags[t]))
            )
            kernel.sys_close(admin, fd)
        elif op[0] == "write":
            _, i, nblocks = op
            inode = kernel.fs.root.children["tmp"].children.get(f"f{i}")
            if inode is None:
                continue
            fd = kernel.sys_open(admin, f"/tmp/f{i}", "a")
            kernel.sys_write(admin, fd, bytes([65 + i]) * (nblocks * 32))
            kernel.sys_close(admin, fd)
        elif op[0] == "relabel":
            _, i, t = op
            inode = kernel.fs.root.children["tmp"].children.get(f"f{i}")
            if inode is None:
                continue
            kernel.fs.set_labels(inode, LabelPair(Label.of(tags[t])))
        elif op[0] == "grant":
            _, u, t = op
            grant_persistent(
                kernel, f"u{u}", CapabilitySet.dual(tags[t])
            )
    return tags


def _cap_prefix_states(ops, tags) -> dict[str, list[CapabilitySet]]:
    """For each user, every capability state some prefix of the grant
    sequence produces (grants are unions, so states grow monotonically)."""
    states: dict[str, list[CapabilitySet]] = {
        f"u{u}": [CapabilitySet.EMPTY] for u in range(N_USERS)
    }
    for op in ops:
        if op[0] != "grant":
            continue
        _, u, t = op
        user = f"u{u}"
        states[user].append(states[user][-1].union(CapabilitySet.dual(tags[t])))
    return states


class TestPrefixConsistency:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=3, max_size=10),
        frac=st.floats(0.0, 1.0),
        kind=st.sampled_from(FAULT_KINDS),
    )
    def test_single_fault_recovers_to_a_prefix(self, ops, frac, kind):
        # No-fault oracle: the exposed label history per path, and the
        # capability states every grant prefix produces.
        baseline = Kernel()
        base_tags = run_ops(baseline, ops)
        base_history = {
            name: list(baseline.fs.exposed[inode.ino])
            for name, inode in baseline.fs.root.children["tmp"].children.items()
        }
        cap_states = _cap_prefix_states(ops, base_tags)

        # Same workload, one fault at a seed-chosen crossing.
        recording = Kernel()
        plan = recording.install_faults(FaultPlan(record=True))
        run_ops(recording, ops)
        if not plan.trace:
            return  # nothing to inject into (all ops were skips)
        site, nth = plan.trace[int(frac * (len(plan.trace) - 1))]

        kernel = Kernel()
        kernel.install_faults(FaultPlan([FaultRule(site, kind, nth=nth)]))
        try:
            run_ops(kernel, ops)
        except (KernelCrash, SyscallError):
            pass
        kernel.crash()
        kernel.remount()
        check_recovery_invariants(kernel)  # strict: per-run oracle

        # Cross-run: never weaker than anything the no-fault run exposed.
        qtag = kernel.quarantine_tag
        for name, inode in kernel.fs.root.children["tmp"].children.items():
            history = base_history.get(name)
            if history is None:
                continue  # fault cut the run before this file existed
            recovered = inode.labels
            assert (
                any(can_flow(h, recovered) for h in history)
                or qtag in recovered.secrecy
            ), (name, recovered, history)

        # Capabilities: exactly some prefix of the grants (or quarantined).
        caps_dir = (
            kernel.fs.root.children["etc"].children["laminar"].children["caps"]
        )
        for user, inode in caps_dir.children.items():
            if user.endswith(".corrupt"):
                continue
            recovered = decode_capabilities(bytes(inode.data), kernel)
            assert recovered in cap_states[user], (user, recovered)


class TestFaultedTimingChannel:
    """After a crash-and-recovery cycle, a denied reader must still be
    schedule-indistinguishable from an empty-pipe reader."""

    @staticmethod
    def _scenario(denied: bool):
        kernel = Kernel(LaminarSecurityModule())

        # Faulted prefix, identical in both variants: a relabel dies at
        # its first xattr write; the machine crashes and recovers.
        pre = kernel.spawn_task("pre")
        ptag, _ = kernel.sys_alloc_tag(pre, "pre")
        fd = kernel.sys_create_file_labeled(
            pre, "/tmp/prefile", LabelPair(Label.of(ptag))
        )
        kernel.sys_close(pre, fd)
        ptag2, _ = kernel.sys_alloc_tag(pre, "pre2")
        inode = kernel.fs.resolve("/tmp/prefile", pre.cwd)
        kernel.install_faults(
            FaultPlan([FaultRule("xattr.write", FaultKind.CRASH, nth=1)])
        )
        try:
            kernel.fs.set_labels(inode, LabelPair(Label.of(ptag2)))
        except KernelCrash:
            pass
        kernel.crash()
        kernel.remount()
        check_recovery_invariants(kernel)

        # The sched-test scenario, verbatim, on the recovered machine.
        owner = kernel.spawn_task("owner")
        tag, _ = kernel.sys_alloc_tag(owner, "secret")
        secret = LabelPair(Label.of(tag))
        setup = kernel.spawn_task("plumber")
        rfd, wfd = kernel.sys_pipe(setup, labels=secret)
        reader = kernel.spawn_task(
            "reader", labels=LabelPair.EMPTY if denied else secret
        )
        drainer = kernel.spawn_task("drainer", labels=secret)
        writer = kernel.spawn_task("writer", labels=secret)
        r = kernel.share_fd(setup, rfd, reader)
        d = kernel.share_fd(setup, rfd, drainer)
        w = kernel.share_fd(setup, wfd, writer)
        kernel.sys_close(setup, rfd)
        kernel.sys_close(setup, wfd)

        events: list[int] = []
        drained: list[bytes] = []

        def read_body(task):
            while True:
                data = yield read_blocking(r)
                events.append(len(data))
                if not data:
                    return

        def drain_body(task):
            for _ in range(12):
                data = yield syscall("read", d)
                if data:
                    drained.append(data)

        def write_body(task):
            for i in range(3):
                yield syscall("write", w, b"msg%d" % i)
                yield yield_()
            yield syscall("close", w)

        sched = Scheduler(kernel, trace=True)
        sched.spawn(read_body, task=reader)
        sched.spawn(drain_body, task=drainer)
        sched.spawn(write_body, task=writer)
        stuck = sched.run()
        return {
            "stuck": [t.name for t in stuck],
            "events": events,
            "drained": list(drained),
            "trace": sched.trace,
            "steps": sched.steps,
            "syscalls": dict(kernel.syscall_counts),
            "hooks": dict(kernel.security.hook_calls),
        }

    def test_faulted_then_denied_matches_faulted_then_empty(self):
        assert self._scenario(denied=True) == self._scenario(denied=False)

    def test_denied_reader_on_recovered_kernel_terminates(self):
        result = self._scenario(denied=True)
        assert result["stuck"] == []
        assert result["events"] == [0]
