"""Additional application-behavior coverage: command surfaces, rendering,
persistence interplay, and barrier-mode variants."""

import pytest

from repro.apps import (
    ChatDenied,
    LaminarBattleship,
    LaminarCalendar,
    LaminarFreeCS,
    LaminarGradeSheet,
    UnmodifiedBattleship,
    UnmodifiedCalendar,
)
from repro.apps.battleship import render_tracking_board
from repro.runtime import BarrierMode


class TestFreeCSCommandSurface:
    @pytest.fixture()
    def server(self):
        server = LaminarFreeCS()
        server.login("root", vip=True)
        server.create_group("root", "room")
        server.login("ann")
        server.login("ben")
        server.command("ann", "join", "room")
        return server

    def test_whisper_needs_no_membership(self, server):
        server.command("ben", "whisper", "room", "psst")
        assert ("ben", "room", "(whisper) psst") in server.messages

    def test_topic_open_to_all(self, server):
        server.command("ann", "topic", "room", "today: barriers")
        # topic is su-maintained state written via the server worker; the
        # user-facing command has no role gate (like the original)
        assert server._read_group("ann", "room", "topic") == "today: barriers"

    def test_invite_adds_member(self, server):
        server.command("ann", "invite", "room", "ben")
        assert "ben" in server.command("ann", "who", "room")

    def test_invite_requires_membership(self, server):
        server.login("outsider")
        with pytest.raises(ChatDenied):
            server.command("outsider", "invite", "room", "ben")

    def test_leave_removes_member(self, server):
        server.command("ann", "leave", "room")
        assert "ann" not in server.command("root", "who", "room")

    def test_denied_ban_lands_in_audit(self, server):
        with pytest.raises(ChatDenied):
            server.command("ann", "ban", "room", "root")
        # the denial is visible to the auditor as a region-entry rejection
        assert server.vm.stats.region_entries > 0


class TestBattleshipRendering:
    def test_render_marks_hits_and_misses(self):
        board = render_tracking_board(4, {(0, 0), (1, 1)}, {(1, 1)})
        lines = board.splitlines()
        assert " o" in lines[1]  # miss at (0,0)
        assert " X" in lines[2]  # hit at (1,1)

    def test_render_mode_counts_frames_in_both_variants(self):
        lam = LaminarBattleship(grid=8, fleet=(3, 2), seed=2, render=True)
        old = UnmodifiedBattleship(grid=8, fleet=(3, 2), seed=2, render=True)
        lam.play()
        old.play()
        assert lam.frames_rendered == lam.rounds
        assert old.frames_rendered == old.rounds
        assert lam.rounds == old.rounds

    def test_dynamic_mode_plays_identically(self):
        static = LaminarBattleship(grid=8, fleet=(3, 2), seed=4,
                                   mode=BarrierMode.STATIC)
        dynamic = LaminarBattleship(grid=8, fleet=(3, 2), seed=4,
                                    mode=BarrierMode.DYNAMIC)
        assert static.play() == dynamic.play()
        assert dynamic.vm.barriers.stats.dynamic_dispatches > 0


class TestCalendarPersistence:
    def test_labels_survive_remount_and_still_guard(self):
        cal = LaminarCalendar(seed=5)
        cal.add_user("alice")
        cal.add_user("bob")
        cal.kernel.fs.remount(cal.kernel.tags)
        # after remount: owner still reads, stranger still denied
        assert cal.view_calendar("alice", "alice")
        from repro.core import IFCViolation

        with pytest.raises(IFCViolation):
            cal.view_calendar("bob", "alice")

    def test_unmodified_read_meetings(self):
        cal = UnmodifiedCalendar(seed=5)
        cal.add_user("alice")
        cal.add_user("bob")
        slot = cal.schedule_meeting("alice", "bob")
        assert slot in cal.read_meetings("alice")

    def test_scheduler_audit_trail(self):
        cal = LaminarCalendar(seed=5)
        cal.add_user("alice")
        cal.add_user("bob")
        cal.schedule_meeting("alice", "bob")
        # the selective declassification (dropping bob's tag) is audited
        declass = cal.kernel.audit.declassifications()
        assert declass and "bob" in declass[0].detail


class TestGradeSheetModes:
    def test_dynamic_barrier_mode_enforces_identically(self):
        static = LaminarGradeSheet(students=4, projects=2,
                                   mode=BarrierMode.STATIC)
        dynamic = LaminarGradeSheet(students=4, projects=2,
                                    mode=BarrierMode.DYNAMIC)
        assert static.run_query_mix(80) == dynamic.run_query_mix(80)
        assert dynamic.vm.barriers.stats.dynamic_dispatches > 0

    def test_query_mix_outcome_totals(self):
        sheet = LaminarGradeSheet(students=4, projects=2)
        outcomes = sheet.run_query_mix(120)
        assert sum(outcomes.values()) == 120
