"""Extension features beyond the measured prototype: the restrictive
termination model, labeled statics, the audit log, and declassifier
modules.  Each is something the paper describes as a design alternative or
production feature (Sections 4.3.3, 5.1, 3.3)."""

import pytest

from repro.core import (
    AuditKind,
    AuditLog,
    CapabilitySet,
    Label,
    LabelPair,
    LaminarUsageError,
    ProcessExit,
    RegionViolation,
)
from repro.jit import Compiler, Interpreter, JITConfig, RegionSpec
from repro.osim import Kernel, SyscallError
from repro.runtime import (
    Declassifier,
    DeclassifierRegistry,
    LaminarAPI,
    LaminarVM,
)


@pytest.fixture()
def world():
    kernel = Kernel()
    vm = LaminarVM(kernel)
    return kernel, vm, LaminarAPI(vm)


class TestRestrictiveTermination:
    """Section 4.3.3: only a region with full declassification
    capabilities may kill the process."""

    def test_exit_outside_regions_always_allowed(self, world):
        kernel, vm, api = world
        with pytest.raises(ProcessExit) as err:
            vm.exit_process(7)
        assert err.value.code == 7
        assert not vm.main_task.alive

    def test_exit_without_full_declassification_blocked(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        seen = {}
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a),
                       catch=lambda e: seen.update(err=e)):
            vm.exit_process(1)
        assert isinstance(seen["err"], RegionViolation)
        assert vm.main_task.alive  # the termination channel stayed closed

    def test_exit_with_full_declassification_allowed(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with pytest.raises(ProcessExit):
            with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
                vm.exit_process(2)
        assert not vm.main_task.alive

    def test_integrity_tags_also_need_minus(self, world):
        kernel, vm, api = world
        i = api.create_and_add_capability("i")
        seen = {}
        with vm.region(integrity=Label.of(i), caps=CapabilitySet.plus(i),
                       catch=lambda e: seen.update(err=e)):
            vm.exit_process(0)
        assert isinstance(seen["err"], RegionViolation)


class TestLabeledStatics:
    """Section 5.1: 'a production implementation could support labeling
    statics with modest overhead'."""

    REGION_SRC = """
    region method bump(o) {
    entry:
      getstatic c, counter
      const one, 1
      binop c, add, c, one
      putstatic counter, c
    }
    class Box { v }
    method main(o) {
    entry:
      call _, bump, o
      ret
    }
    """

    def _box(self, vm):
        from repro.jit.interpreter import IRObject

        return IRObject(vm.heap.allocate_header(LabelPair.EMPTY), "Box", {"v": 0})

    def test_prototype_rejects_statics_in_regions(self):
        from repro.core import StaticCheckError

        with pytest.raises(StaticCheckError):
            Compiler(JITConfig.DYNAMIC).compile(self.REGION_SRC)

    def test_extension_compiles_and_guards(self, world):
        kernel, vm, api = world
        tag = api.create_and_add_capability("t")
        program, report = Compiler(
            JITConfig.DYNAMIC, labeled_statics=True
        ).compile(self.REGION_SRC)
        assert report.barriers_inserted >= 2
        program.method("bump").region_spec = RegionSpec(
            secrecy=Label.of(tag), caps=CapabilitySet.dual(tag)
        )
        interp = Interpreter(program, vm)
        interp.declare_static("counter", LabelPair(Label.of(tag)), 5)
        interp.run("main", self._box(vm))
        assert interp.statics["counter"] == 6

    def test_labeled_static_unreachable_outside_regions(self, world):
        kernel, vm, api = world
        tag = api.create_and_add_capability("t")
        program, _ = Compiler(JITConfig.DYNAMIC, labeled_statics=True).compile(
            "method main() {\nentry:\n  getstatic x, secret\n  ret x\n}"
        )
        interp = Interpreter(program, vm)
        interp.declare_static("secret", LabelPair(Label.of(tag)))
        with pytest.raises(RegionViolation):
            interp.run("main")

    def test_wrong_region_label_blocked(self, world):
        kernel, vm, api = world
        t1 = api.create_and_add_capability("t1")
        t2 = api.create_and_add_capability("t2")
        program, _ = Compiler(JITConfig.DYNAMIC, labeled_statics=True).compile(
            """
            region method peek(o) {
            entry:
              getstatic x, secret
              print x
            }
            class Box { v }
            method main(o) {
            entry:
              call _, peek, o
              ret
            }
            """
        )
        program.method("peek").region_spec = RegionSpec(
            secrecy=Label.of(t2), caps=CapabilitySet.dual(t2)
        )
        interp = Interpreter(program, vm)
        interp.declare_static("secret", LabelPair(Label.of(t1)))
        interp.run("main", self._box(vm))  # violation suppressed by region
        assert interp.output == []  # the read never succeeded

    def test_static_barrier_elimination(self):
        program, report = Compiler(
            JITConfig.DYNAMIC, labeled_statics=True
        ).compile(
            "method main() {\nentry:\n  getstatic x, c\n  getstatic y, c\n"
            "  binop z, add, x, y\n  ret z\n}"
        )
        assert report.barriers_inserted == 2
        assert report.barriers_removed == 1  # second read provably checked

    def test_redeclaration_rejected(self, world):
        kernel, vm, api = world
        program, _ = Compiler(JITConfig.BASELINE).compile(
            "method main() {\nentry:\n  const x, 1\n  ret x\n}"
        )
        interp = Interpreter(program, vm)
        interp.declare_static("s", LabelPair.EMPTY)
        with pytest.raises(ValueError):
            interp.declare_static("s", LabelPair.EMPTY)


class TestAuditLog:
    def test_lsm_denials_recorded(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            with pytest.raises(SyscallError):
                api.transmit(b"leak")
        denials = kernel.audit.denials()
        assert len(denials) == 1
        assert "socket_sendmsg" in str(denials[0])

    def test_declassifications_recorded(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            secret = vm.alloc({"x": 1})
            api.copy_and_label(secret)
        declass = kernel.audit.declassifications()
        assert len(declass) == 1
        assert "dropped" in declass[0].detail

    def test_endorsements_recorded(self, world):
        kernel, vm, api = world
        i = api.create_and_add_capability("i")
        plain = vm.alloc({"x": 1})
        with vm.region(integrity=Label.of(i), caps=CapabilitySet.dual(i)):
            api.copy_and_label(plain, integrity=Label.of(i))
        assert len(kernel.audit.entries(AuditKind.ENDORSE)) == 1

    def test_region_suppressions_recorded(self, world):
        kernel, vm, api = world
        with vm.region(name="risky"):
            raise ValueError("boom")
        entries = kernel.audit.entries(AuditKind.REGION_SUPPRESS)
        assert len(entries) == 1
        assert "risky" in entries[0].detail and "boom" in entries[0].detail

    def test_sequence_numbers_monotonic(self):
        log = AuditLog()
        for i in range(5):
            log.record(AuditKind.DENIAL, "t", "p", f"d{i}")
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5

    def test_capacity_truncates_oldest(self):
        log = AuditLog(capacity=3)
        for i in range(6):
            log.record(AuditKind.DENIAL, "t", "p", f"d{i}")
        assert len(log) == 3
        assert log.entries()[0].detail == "d3"

    def test_by_principal_filter(self, world):
        kernel, vm, api = world
        kernel.audit.record(AuditKind.DENIAL, "t", "alice", "x")
        kernel.audit.record(AuditKind.DENIAL, "t", "bob", "y")
        assert len(kernel.audit.by_principal("alice")) == 1


class TestDeclassifierModules:
    @pytest.fixture()
    def setup(self, world):
        kernel, vm, api = world
        alice = api.create_and_add_capability("alice")
        with vm.region(secrecy=Label.of(alice), caps=CapabilitySet.dual(alice)):
            cal = vm.alloc(
                {"mon": ["9 busy", "10 free"], "tue": ["11 free"]},
                name="cal",
            )
        registry = DeclassifierRegistry(vm)
        return kernel, vm, api, alice, cal, registry

    def test_filter_releases_only_selected_data(self, setup):
        kernel, vm, api, alice, cal, registry = setup
        registry.register(Declassifier(
            "free-only",
            CapabilitySet.dual(alice),
            lambda fields: {
                day: [s for s in slots if "free" in s]
                for day, slots in fields.items()
            },
        ))
        host = vm.create_thread("host", caps_subset=CapabilitySet.dual(alice))
        with vm.running(host):
            out = registry.run("free-only", cal)
        assert out.labels.is_empty
        assert out.get("mon") == ["10 free"]
        assert "9 busy" not in str(out.raw_fields())

    def test_module_without_minus_capability_declines(self, setup):
        kernel, vm, api, alice, cal, registry = setup
        registry.register(Declassifier(
            "powerless", CapabilitySet.plus(alice), lambda fields: fields
        ))
        host = vm.create_thread("host2", caps_subset=CapabilitySet.plus(alice))
        with vm.running(host):
            out = registry.run("powerless", cal)
        assert out is None
        assert kernel.audit.denials(), "the decline must be audited"

    def test_invocations_audited(self, setup):
        kernel, vm, api, alice, cal, registry = setup
        registry.register(Declassifier(
            "all", CapabilitySet.dual(alice), lambda fields: fields
        ))
        host = vm.create_thread("host3", caps_subset=CapabilitySet.dual(alice))
        with vm.running(host):
            registry.run("all", cal)
        names = [e.detail for e in kernel.audit.declassifications()]
        assert any("all:" in d for d in names)

    def test_duplicate_registration_rejected(self, setup):
        kernel, vm, api, alice, cal, registry = setup
        module = Declassifier("m", CapabilitySet.EMPTY, lambda f: f)
        registry.register(module)
        with pytest.raises(LaminarUsageError):
            registry.register(module)

    def test_unknown_module(self, setup):
        kernel, vm, api, alice, cal, registry = setup
        with pytest.raises(LaminarUsageError):
            registry.run("ghost", cal)
