"""Heterogeneously labeled threads in one address space — the paper's
headline claim ("Laminar supports a more general class of multithreaded
DIFC programs that can access heterogeneously labeled data").

The VM threads are cooperatively scheduled; these tests interleave several
threads' region entries, labeled accesses, syscalls, and exits at the
granularity of individual steps (via generators) and check that

* every thread sees exactly its own labels/capabilities at every step,
* the kernel task labels track each thread's current region independently,
* labeled data created by one thread is invisible to a concurrent thread
  whose current region does not cover it.
"""

from __future__ import annotations

import pytest

from repro.core import CapabilitySet, Label, LabelPair, SecrecyViolation
from repro.osim import Kernel
from repro.runtime import LaminarAPI, LaminarVM


@pytest.fixture()
def world():
    kernel = Kernel()
    vm = LaminarVM(kernel)
    return kernel, vm, LaminarAPI(vm)


def run_interleaved(vm, threads_and_steps):
    """Round-robin scheduler: each item is (thread, generator).  The
    generator yields between steps; every step runs with its thread
    current.  This is what the kernel's scheduler would do to real
    threads, compressed into one Python thread."""
    live = [(thread, gen) for thread, gen in threads_and_steps]
    while live:
        still = []
        for thread, gen in live:
            with vm.running(thread):
                try:
                    next(gen)
                    still.append((thread, gen))
                except StopIteration:
                    pass
        live = still


class TestHeterogeneousThreads:
    def test_interleaved_regions_keep_labels_separate(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")
        t1 = vm.create_thread("t1", caps_subset=CapabilitySet.dual(a))
        t2 = vm.create_thread("t2", caps_subset=CapabilitySet.dual(b))
        seen = {"t1": [], "t2": []}

        def worker(thread, tag, log):
            region = vm.region(secrecy=Label.of(tag),
                               caps=thread.capabilities)
            region.__enter__()
            yield
            log.append(thread.labels.secrecy)
            yield
            obj = vm.alloc({"who": thread.name})
            log.append(obj.labels.secrecy)
            yield
            region.__exit__(None, None, None)
            log.append(thread.labels.secrecy)

        run_interleaved(vm, [
            (t1, worker(t1, a, seen["t1"])),
            (t2, worker(t2, b, seen["t2"])),
        ])
        assert seen["t1"] == [Label.of(a), Label.of(a), Label.EMPTY]
        assert seen["t2"] == [Label.of(b), Label.of(b), Label.EMPTY]

    def test_kernel_labels_track_threads_independently(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")
        t1 = vm.create_thread("t1", caps_subset=CapabilitySet.dual(a))
        t2 = vm.create_thread("t2", caps_subset=CapabilitySet.dual(b))
        kernel_views = []

        def worker(thread, tag):
            region = vm.region(secrecy=Label.of(tag),
                               caps=thread.capabilities)
            region.__enter__()
            yield
            vm.syscall("stat", "/tmp")  # forces the lazy kernel sync
            kernel_views.append((thread.name, thread.task.labels.secrecy))
            yield
            region.__exit__(None, None, None)
            kernel_views.append((thread.name, thread.task.labels.secrecy))

        run_interleaved(vm, [(t1, worker(t1, a)), (t2, worker(t2, b))])
        assert ("t1", Label.of(a)) in kernel_views
        assert ("t2", Label.of(b)) in kernel_views
        assert kernel_views.count(("t1", Label.EMPTY)) == 1
        assert kernel_views.count(("t2", Label.EMPTY)) == 1

    def test_concurrent_thread_cannot_read_other_labels(self, world):
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")
        t1 = vm.create_thread("t1", caps_subset=CapabilitySet.dual(a))
        t2 = vm.create_thread("t2", caps_subset=CapabilitySet.dual(b))
        box = {}
        outcome = {}

        def producer():
            region = vm.region(secrecy=Label.of(a), caps=t1.capabilities)
            region.__enter__()
            yield
            box["secret"] = vm.alloc({"x": 41})
            yield
            region.__exit__(None, None, None)

        def thief():
            region = vm.region(secrecy=Label.of(b), caps=t2.capabilities)
            region.__enter__()
            yield
            yield  # wait until the producer has allocated
            try:
                box["secret"].get("x")
                outcome["stole"] = True
            except SecrecyViolation as exc:
                outcome["blocked"] = exc
            region.__exit__(None, None, None)

        run_interleaved(vm, [(t1, producer()), (t2, thief())])
        assert "stole" not in outcome
        assert isinstance(outcome["blocked"], SecrecyViolation)

    def test_many_threads_nested_regions_stress(self, world):
        kernel, vm, api = world
        tags = [api.create_and_add_capability(f"g{i}") for i in range(5)]
        threads = [
            vm.create_thread(f"w{i}", caps_subset=CapabilitySet.dual(tags[i]))
            for i in range(5)
        ]
        checks = []

        def worker(i):
            thread, tag = threads[i], tags[i]
            outer = vm.region(secrecy=Label.of(tag), caps=thread.capabilities)
            outer.__enter__()
            yield
            inner = vm.region(secrecy=Label.of(tag), caps=thread.capabilities)
            inner.__enter__()
            yield
            checks.append(thread.depth == 2 and
                          thread.labels.secrecy == Label.of(tag))
            yield
            inner.__exit__(None, None, None)
            yield
            outer.__exit__(None, None, None)
            checks.append(thread.labels.is_empty)

        run_interleaved(vm, [(threads[i], worker(i)) for i in range(5)])
        assert all(checks) and len(checks) == 10

    def test_same_address_space(self, world):
        kernel, vm, api = world
        t1 = vm.create_thread("t1")
        t2 = vm.create_thread("t2")
        assert t1.task.pgid == t2.task.pgid == vm.main_task.pgid
