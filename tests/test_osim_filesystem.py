"""Unit tests for the simulated filesystem: paths, xattrs, persistence."""

import pytest

from repro.core import Label, LabelPair, Tag, TagAllocator
from repro.osim import (
    File,
    Filesystem,
    Inode,
    InodeType,
    OpenMode,
    SyscallError,
    XATTR_INTEGRITY,
    XATTR_SECRECY,
    decode_label,
    encode_label,
)

A, B = Tag(11, "a"), Tag(12, "b")


@pytest.fixture
def fs() -> Filesystem:
    fs = Filesystem()
    etc = Inode(InodeType.DIRECTORY, mode=0o755)
    fs.link_child(fs.root, "etc", etc)
    fs.link_child(etc, "hosts", Inode(InodeType.REGULAR))
    return fs


class TestPathResolution:
    def test_absolute(self, fs):
        assert fs.resolve("/etc/hosts").itype is InodeType.REGULAR

    def test_root(self, fs):
        assert fs.resolve("/") is fs.root

    def test_relative_from_cwd(self, fs):
        etc = fs.resolve("/etc")
        assert fs.resolve("hosts", cwd=etc).itype is InodeType.REGULAR

    def test_dot_segments_ignored(self, fs):
        assert fs.resolve("/./etc/./hosts") is fs.resolve("/etc/hosts")

    def test_enoent(self, fs):
        with pytest.raises(SyscallError) as err:
            fs.resolve("/missing")
        assert "ENOENT" in str(err.value)

    def test_enotdir(self, fs):
        with pytest.raises(SyscallError) as err:
            fs.resolve("/etc/hosts/inner")
        assert "ENOTDIR" in str(err.value)

    def test_resolve_parent(self, fs):
        parent, name = fs.resolve_parent("/etc/hosts")
        assert parent is fs.resolve("/etc") and name == "hosts"

    def test_walk_components_yields_directories(self, fs):
        walked = list(fs.walk_components("/etc/hosts"))
        assert walked == [fs.root, fs.resolve("/etc")]


class TestLinking:
    def test_duplicate_name_rejected(self, fs):
        with pytest.raises(SyscallError) as err:
            fs.link_child(fs.root, "etc", Inode(InodeType.DIRECTORY))
        assert "EEXIST" in str(err.value)

    def test_bad_names_rejected(self, fs):
        for name in ("", "a/b"):
            with pytest.raises(SyscallError):
                fs.link_child(fs.root, name, Inode(InodeType.REGULAR))

    def test_unlink(self, fs):
        etc = fs.resolve("/etc")
        fs.unlink_child(etc, "hosts")
        with pytest.raises(SyscallError):
            fs.resolve("/etc/hosts")

    def test_unlink_nonempty_dir_rejected(self, fs):
        with pytest.raises(SyscallError) as err:
            fs.unlink_child(fs.root, "etc")
        assert "ENOTEMPTY" in str(err.value)


class TestDataAccess:
    def test_write_then_read(self, fs):
        inode = fs.resolve("/etc/hosts")
        wfile = File(inode, OpenMode.parse("w"))
        assert fs.write(wfile, b"localhost") == 9
        rfile = File(inode, OpenMode.parse("r"))
        assert fs.read(rfile) == b"localhost"

    def test_offset_tracking(self, fs):
        inode = fs.resolve("/etc/hosts")
        fs.write(File(inode, OpenMode.parse("w")), b"abcdef")
        rfile = File(inode, OpenMode.parse("r"))
        assert fs.read(rfile, 2) == b"ab"
        assert fs.read(rfile, 2) == b"cd"

    def test_append_mode(self, fs):
        inode = fs.resolve("/etc/hosts")
        fs.write(File(inode, OpenMode.parse("w")), b"one")
        fs.write(File(inode, OpenMode.parse("a")), b"two")
        assert bytes(inode.data) == b"onetwo"

    def test_sparse_write_zero_fills(self, fs):
        inode = fs.resolve("/etc/hosts")
        file = File(inode, OpenMode.parse("w"))
        file.offset = 3
        fs.write(file, b"x")
        assert bytes(inode.data) == b"\0\0\0x"

    def test_directory_io_rejected(self, fs):
        with pytest.raises(SyscallError):
            fs.read(File(fs.root, OpenMode.parse("r")))


class TestLabelPersistence:
    def test_encode_decode_roundtrip(self):
        allocator = TagAllocator()
        t1, t2 = allocator.alloc("x"), allocator.alloc("y")
        label = Label.of(t1, t2)
        assert decode_label(encode_label(label), allocator) == label

    def test_decode_unknown_tags_reconstructed(self):
        blob = encode_label(Label.of(A, B))
        decoded = decode_label(blob, TagAllocator())
        assert {t.value for t in decoded} == {A.value, B.value}

    def test_corrupt_xattr_rejected(self):
        with pytest.raises(ValueError):
            decode_label(b"\x00\x01\x02", TagAllocator())

    def test_labels_written_to_xattrs_at_creation(self):
        inode = Inode(InodeType.REGULAR, LabelPair(Label.of(A)))
        assert inode.xattrs[XATTR_SECRECY] == encode_label(Label.of(A))
        assert inode.xattrs[XATTR_INTEGRITY] == b""

    def test_remount_restores_labels(self, fs):
        allocator = TagAllocator()
        tag = allocator.alloc("secret")
        labeled = Inode(InodeType.REGULAR, LabelPair(Label.of(tag)))
        fs.link_child(fs.resolve("/etc"), "secret", labeled)
        fs.remount(allocator)
        restored = fs.resolve("/etc/secret")
        assert restored.labels.secrecy == Label.of(tag)
        # the in-memory label was actually dropped and re-read
        assert restored.labels.secrecy.tags()[0] is tag

    def test_pipe_and_socket_inodes_have_no_xattrs(self):
        assert Inode(InodeType.PIPE).xattrs == {}


class TestOpenMode:
    def test_parse_variants(self):
        assert OpenMode.parse("r") == OpenMode.READ
        assert OpenMode.parse("w") & OpenMode.WRITE
        assert OpenMode.parse("a") & OpenMode.APPEND
        assert OpenMode.parse("r+") & OpenMode.READ

    def test_bad_mode(self):
        with pytest.raises(SyscallError):
            OpenMode.parse("rw+x")
