"""Security regions: entry rules, nesting, catch semantics, label
save/restore, the lazy VM↔OS sync, and capability scoping (Section 4.3/4.4)."""

import pytest

from repro.core import (
    CapabilitySet,
    CapType,
    Label,
    LabelPair,
    LabelChangeViolation,
    RegionViolation,
)
from repro.runtime import LaminarAPI, LaminarVM


@pytest.fixture
def setup(vm):
    api = LaminarAPI(vm)
    a = api.create_and_add_capability("a")
    b = api.create_and_add_capability("b")
    return vm, api, a, b


class TestEntryRules:
    def test_entry_with_plus_cap(self, setup):
        vm, api, a, b = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
            assert vm.current_thread.labels.secrecy == Label.of(a)

    def test_entry_without_cap_denied(self, setup):
        vm, api, a, b = setup
        thread = vm.create_thread(name="weak", caps_subset=CapabilitySet.EMPTY)
        with vm.running(thread):
            with pytest.raises(RegionViolation):
                with vm.region(secrecy=Label.of(a)):
                    pass

    def test_region_caps_exceeding_thread_denied(self, setup):
        vm, api, a, b = setup
        thread = vm.create_thread(name="limited", caps_subset=CapabilitySet.plus(a))
        with vm.running(thread):
            with pytest.raises(RegionViolation):
                with vm.region(caps=CapabilitySet.dual(a)):
                    pass

    def test_nested_entry_inherits_labels(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.plus(a, b)
        with vm.region(secrecy=Label.of(a), caps=caps):
            # inner region keeps a (already held) and adds b via b+
            with vm.region(secrecy=Label.of(a, b), caps=caps):
                assert vm.current_thread.labels.secrecy == Label.of(a, b)
            assert vm.current_thread.labels.secrecy == Label.of(a)

    def test_nested_label_lowering_requires_minus(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.plus(a, b)  # no minus caps
        outcome = {}
        with vm.region(secrecy=Label.of(a, b), caps=caps,
                       catch=lambda e: outcome.update(err=e)):
            with vm.region(secrecy=Label.of(b), caps=caps):
                outcome["entered"] = True
        assert "entered" not in outcome
        assert isinstance(outcome["err"], LabelChangeViolation)

    def test_nested_label_lowering_with_minus(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.plus(a, b).union(CapabilitySet.minus(a))
        with vm.region(secrecy=Label.of(a, b), caps=caps):
            with vm.region(secrecy=Label.of(b), caps=caps):
                assert vm.current_thread.labels.secrecy == Label.of(b)


class TestExitRestoration:
    def test_labels_empty_outside_regions(self, setup):
        vm, api, a, b = setup
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
            pass
        assert vm.current_thread.labels.is_empty

    def test_exit_without_minus_cap_still_restores(self, setup):
        vm, api, a, b = setup
        # Thread enters with only a+: cannot declassify itself, but the
        # region exit must still drop the label (the TCB mechanism).
        thread = vm.create_thread(name="t", caps_subset=CapabilitySet.plus(a))
        with vm.running(thread):
            with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
                assert thread.labels.secrecy == Label.of(a)
            assert thread.labels.is_empty

    def test_region_cannot_change_own_labels(self, setup):
        vm, api, a, b = setup
        from repro.core import LaminarUsageError

        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            frame_labels = vm.current_thread.labels
            # no API exists to mutate the region label; the only way to a
            # different label is a nested region
            assert frame_labels.secrecy == Label.of(a)


class TestCatchSemantics:
    def test_catch_runs_with_region_labels(self, setup):
        vm, api, a, b = setup
        seen = {}

        def catch(exc):
            seen["labels"] = vm.current_thread.labels
            seen["exc"] = exc

        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a),
                       catch=catch):
            raise ValueError("boom")
        assert seen["labels"].secrecy == Label.of(a)
        assert isinstance(seen["exc"], ValueError)

    def test_all_exceptions_suppressed(self, setup):
        vm, api, a, b = setup
        with vm.region():
            raise RuntimeError("not visible outside")
        # control continues after the region — reaching here is the test

    def test_exception_in_catch_suppressed(self, setup):
        vm, api, a, b = setup

        def bad_catch(exc):
            raise RuntimeError("catch also failed")

        with vm.region(catch=bad_catch) as region:
            raise ValueError("original")
        assert isinstance(region.suppressed, ValueError)

    def test_suppression_hides_termination_mode(self, setup):
        """Fig. 5: code after the region cannot distinguish an execution
        where the region threw from one where it didn't."""
        vm, api, a, b = setup

        def run(secret: bool) -> str:
            low = "false"
            with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
                if secret:
                    raise ValueError("implicit flow attempt")
            return low  # unchanged on both paths

        assert run(True) == run(False)

    def test_keyboard_interrupt_not_swallowed(self, setup):
        vm, api, a, b = setup
        with pytest.raises(KeyboardInterrupt):
            with vm.region():
                raise KeyboardInterrupt

    def test_stats_count_exceptions(self, setup):
        vm, api, a, b = setup
        before = vm.stats.region_exceptions
        with vm.region():
            raise ValueError
        assert vm.stats.region_exceptions == before + 1


class TestKernelSync:
    def test_no_syscall_no_sync(self, setup):
        vm, api, a, b = setup
        before = vm.stats.kernel_syncs
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
            pass  # no syscalls
        assert vm.stats.kernel_syncs == before
        assert vm.current_thread.task.labels.is_empty

    def test_first_syscall_syncs_once(self, setup):
        vm, api, a, b = setup
        before = vm.stats.kernel_syncs
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            fd = api.create_file_labeled("/tmp/sync1", LabelPair(Label.of(a)))
            assert vm.current_thread.task.labels.secrecy == Label.of(a)
            api.write(fd, b"x")
            api.close(fd)
        assert vm.stats.kernel_syncs == before + 1
        assert vm.current_thread.task.labels.is_empty

    def test_restore_happens_only_if_synced(self, setup):
        vm, api, a, b = setup
        before = vm.stats.kernel_restores
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.plus(a)):
            pass
        assert vm.stats.kernel_restores == before

    def test_nested_sync_restores_outer_kernel_state(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.dual(a, b)
        with vm.region(secrecy=Label.of(a), caps=caps):
            vm.syscall("stat", "/tmp")  # sync outer
            assert vm.current_thread.task.labels.secrecy == Label.of(a)
            with vm.region(secrecy=Label.of(a, b), caps=caps):
                vm.syscall("stat", "/tmp")  # sync inner
                assert vm.current_thread.task.labels.secrecy == Label.of(a, b)
            assert vm.current_thread.task.labels.secrecy == Label.of(a)
        assert vm.current_thread.task.labels.is_empty


class TestCapabilityScoping:
    def test_gains_inside_region_persist_after_exit(self, setup):
        vm, api, a, b = setup
        with vm.region(caps=vm.current_thread.capabilities):
            fresh = api.create_and_add_capability("fresh")
        assert vm.current_thread.capabilities.can_add(fresh)
        assert vm.current_thread.capabilities.can_remove(fresh)

    def test_scoped_drop_restored_at_exit(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.dual(a)
        with vm.region(caps=caps):
            api.remove_capability(CapType.MINUS, a, global_=False)
            assert not vm.current_thread.capabilities.can_remove(a)
        assert vm.current_thread.capabilities.can_remove(a)

    def test_global_drop_survives_exit(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.dual(a)
        with vm.region(caps=caps):
            api.remove_capability(CapType.MINUS, a, global_=True)
        assert not vm.current_thread.capabilities.can_remove(a)

    def test_global_drop_not_resurrected_by_kernel_restore(self, setup):
        vm, api, a, b = setup
        caps = CapabilitySet.dual(a)
        with vm.region(caps=caps):
            vm.syscall("stat", "/tmp")  # force kernel sync + snapshot
            api.remove_capability(CapType.MINUS, a, global_=True)
        assert not vm.current_thread.task.capabilities.can_remove(a)

    def test_region_capability_narrowing(self, setup):
        vm, api, a, b = setup
        with vm.region(caps=CapabilitySet.plus(a)):
            assert not vm.current_thread.capabilities.can_remove(a)
            assert not vm.current_thread.capabilities.can_add(b)
        assert vm.current_thread.capabilities.can_remove(a)


class TestThreadCreation:
    def test_create_thread_inside_region_rejected(self, setup):
        vm, api, a, b = setup
        from repro.core import LaminarUsageError

        seen = {}
        with vm.region(catch=lambda e: seen.update(err=e)):
            vm.create_thread("nested")
        assert isinstance(seen["err"], LaminarUsageError)

    def test_child_capability_subset(self, setup):
        vm, api, a, b = setup
        child = vm.create_thread("child", caps_subset=CapabilitySet.plus(a))
        assert child.capabilities == CapabilitySet.plus(a)
