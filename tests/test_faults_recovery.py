"""Unit tests for the fault-injection plane and journal recovery.

The crash-point *sweep* lives in ``test_crash_consistency.py``; this
file pins down the primitives it is built from: deterministic
:class:`FaultPlan` addressing, per-kind injection semantics at each
site, journal rollback/replay, quarantine of undecodable metadata, and
the auditor's individual invariants.
"""

import pytest

from repro.core import CapabilitySet, Label, LabelPair, can_flow
from repro.core.audit import AuditKind
from repro.osim import (
    BLOCK_SIZE,
    EIO,
    ENOSPC,
    FaultKind,
    FaultPlan,
    FaultRule,
    Journal,
    Kernel,
    KernelCrash,
    RecoveryInvariantError,
    SyscallError,
    XATTR_INTEGRITY,
    XATTR_SECRECY,
    check_recovery_invariants,
    grant_persistent,
    load_user_capabilities,
    login,
    store_user_capabilities,
)
from repro.osim.recovery import LOST_FOUND


@pytest.fixture
def k():
    return Kernel()


def _labeled_file(kernel, path="/tmp/secret", data=b"x" * 100):
    """A task that owns a secrecy-labeled file; returns (task, tag, inode)."""
    task = kernel.spawn_task("owner")
    tag, _ = kernel.sys_alloc_tag(task, "t")
    fd = kernel.sys_create_file_labeled(task, path, LabelPair(Label.of(tag)))
    kernel.sys_write(task, fd, data)
    kernel.sys_close(task, fd)
    name = path.rsplit("/", 1)[1]
    return task, tag, kernel.fs.root.children["tmp"].children[name]


class TestFaultPlan:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultRule("s", FaultKind.EIO, nth=3)])
        fired = [plan.fire("s") for _ in range(6)]
        assert fired == [None, None, FaultKind.EIO, None, None, None]
        assert plan.fired == [("s", 3, FaultKind.EIO)]

    def test_every_fires_periodically(self):
        plan = FaultPlan([FaultRule("s", FaultKind.EIO, every=2)])
        fired = [plan.fire("s") for _ in range(6)]
        assert fired == [None, FaultKind.EIO] * 3

    def test_site_prefix_match(self):
        plan = FaultPlan([FaultRule("syscall:*", FaultKind.EIO, nth=1)])
        assert plan.fire("fs.block_write") is None
        assert plan.fire("syscall:read") is FaultKind.EIO

    def test_counters_are_per_site(self):
        plan = FaultPlan([FaultRule("b", FaultKind.EIO, nth=1)])
        assert plan.fire("a") is None
        assert plan.fire("b") is FaultKind.EIO  # b's own first crossing
        assert plan.counts == {"a": 1, "b": 1}

    def test_rule_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultRule("s", FaultKind.EIO)
        with pytest.raises(ValueError):
            FaultRule("s", FaultKind.EIO, nth=1, every=2)

    def test_recording_plan_fires_nothing_and_traces_everything(self):
        plan = FaultPlan(record=True)
        assert [plan.fire("a"), plan.fire("a"), plan.fire("b")] == [None] * 3
        assert plan.trace == [("a", 1), ("a", 2), ("b", 1)]
        assert plan.sites_seen == {"a", "b"}

    def test_randomized_is_a_pure_function_of_seed(self):
        points = [("a", 1), ("b", 2), ("c", 3)]

        def shape(plans):
            return [(p.rules[0].site, p.rules[0].nth, p.rules[0].kind)
                    for p in plans]

        assert shape(FaultPlan.randomized(7, points, 10)) == shape(
            FaultPlan.randomized(7, points, 10)
        )
        assert shape(FaultPlan.randomized(7, points, 10)) != shape(
            FaultPlan.randomized(8, points, 10)
        )

    def test_firing_is_audited_when_installed(self, k):
        k.install_faults(FaultPlan([FaultRule("syscall:stat", FaultKind.EIO,
                                              nth=1)]))
        task = k.spawn_task("p")
        with pytest.raises(SyscallError):
            k.sys_stat(task, "/tmp")
        events = k.audit.entries(AuditKind.FAULT)
        assert len(events) == 1
        assert "syscall:stat" in events[0].detail


class TestInjectionSemantics:
    def test_syscall_eio_fails_before_mutation(self, k):
        task, _tag, inode = _labeled_file(k, data=b"stable")
        k.install_faults(
            FaultPlan([FaultRule("syscall:write", FaultKind.EIO, nth=1)])
        )
        fd = k.sys_open(task, "/tmp/secret", "w")
        with pytest.raises(SyscallError) as exc:
            k.sys_write(task, fd, b"overwrite")
        assert exc.value.errno == EIO
        assert bytes(inode.data) == b"stable"

    def test_syscall_enospc_maps_to_errno(self, k):
        task = k.spawn_task("p")
        k.install_faults(
            FaultPlan([FaultRule("syscall:mkdir", FaultKind.ENOSPC, nth=1)])
        )
        with pytest.raises(SyscallError) as exc:
            k.sys_mkdir(task, "/tmp/d")
        assert exc.value.errno == ENOSPC

    def test_short_write_returns_short_count(self, k):
        task, _tag, inode = _labeled_file(k, data=b"")
        k.install_faults(
            FaultPlan([FaultRule("fs.block_write", FaultKind.SHORT_WRITE,
                                 nth=3)])
        )
        fd = k.sys_open(task, "/tmp/secret", "w")
        n = k.sys_write(task, fd, b"A" * (BLOCK_SIZE * 4))
        assert n == 2 * BLOCK_SIZE  # two blocks landed, third was short
        assert bytes(inode.data) == b"A" * (2 * BLOCK_SIZE)

    def test_crash_mid_data_write_keeps_prefix(self, k):
        task, _tag, inode = _labeled_file(k, data=b"")
        k.install_faults(
            FaultPlan([FaultRule("fs.block_write", FaultKind.CRASH, nth=2)])
        )
        fd = k.sys_open(task, "/tmp/secret", "w")
        with pytest.raises(KernelCrash):
            k.sys_write(task, fd, b"B" * (BLOCK_SIZE * 3))
        assert bytes(inode.data) == b"B" * BLOCK_SIZE

    def test_torn_data_write_is_non_prefix(self, k):
        task, _tag, inode = _labeled_file(k, data=b"o" * (BLOCK_SIZE * 3))
        k.install_faults(
            FaultPlan([FaultRule("fs.block_write", FaultKind.TORN_WRITE,
                                 nth=2)])
        )
        fd = k.sys_open(task, "/tmp/secret", "w")
        with pytest.raises(KernelCrash):
            k.sys_write(task, fd, b"N" * (BLOCK_SIZE * 3))
        # Block 2 kept its old bytes; blocks 1 and 3 carry the new ones.
        assert bytes(inode.data) == (
            b"N" * BLOCK_SIZE + b"o" * BLOCK_SIZE + b"N" * BLOCK_SIZE
        )

    def test_submit_boundary_eio_fails_one_entry_not_the_batch(self, k):
        from repro.core import LabelType
        from repro.osim import Sqe

        task, tag, _inode = _labeled_file(k, data=b"d" * 64)
        k.sys_set_task_label(task, LabelType.SECRECY, Label.of(tag))
        fd = k.sys_open(task, "/tmp/secret", "r")
        k.install_faults(
            FaultPlan([FaultRule("submit.boundary", FaultKind.EIO, nth=2)])
        )
        cqes = k.sys_submit(
            task, [Sqe("read", fd, 16), Sqe("read", fd, 16), Sqe("read", fd, 16)]
        )
        assert [c.errno for c in cqes] == [0, EIO, 0]
        assert cqes[0].result == b"d" * 16

    def test_crash_discards_volatile_state_not_disk(self, k):
        task, tag, inode = _labeled_file(k)
        k.install_faults(FaultPlan())
        k.crash()
        assert k.tasks == {}
        assert k.faults is None
        assert bytes(inode.data) == b"x" * 100
        report = k.remount()
        assert report.clean
        # Labels were re-hydrated from xattrs, not remembered.
        assert tag in inode.labels.secrecy


class TestJournal:
    def test_lifecycle(self):
        j = Journal()
        rec = j.begin("relabel", ino=1)
        assert j.in_flight() == [rec]
        Journal.commit(rec)
        assert j.in_flight() == []
        j.checkpoint()
        assert len(j) == 0 and j.checkpointed == 1

    def test_abort_is_not_in_flight(self):
        j = Journal()
        rec = j.begin("capwrite", ino=2)
        Journal.abort(rec)
        assert j.in_flight() == []

    def test_relabel_crash_before_commit_rolls_back(self, k):
        task, tag, inode = _labeled_file(k)
        new_tag, _ = k.sys_alloc_tag(task, "t2")
        k.install_faults(
            FaultPlan([FaultRule("xattr.write", FaultKind.CRASH, nth=1)])
        )
        with pytest.raises(KernelCrash):
            k.fs.set_labels(inode, LabelPair(Label.of(new_tag)))
        k.crash()
        report = k.remount()
        assert report.rolled_back == 1
        assert inode.labels == LabelPair(Label.of(tag))
        check_recovery_invariants(k)

    def test_relabel_torn_xattrs_resolved_by_journal(self, k):
        task, tag, inode = _labeled_file(k)
        new_tag, _ = k.sys_alloc_tag(task, "t2")
        k.install_faults(
            FaultPlan([FaultRule("xattr.write", FaultKind.TORN_WRITE, nth=1)])
        )
        with pytest.raises(KernelCrash):
            k.fs.set_labels(inode, LabelPair(Label.of(new_tag)))
        k.crash()
        k.remount()
        # Never a torn mixture: exactly the old label.
        assert inode.labels == LabelPair(Label.of(tag))
        check_recovery_invariants(k)

    def test_relabel_detected_failure_restores_inline(self, k):
        task, tag, inode = _labeled_file(k)
        new_tag, _ = k.sys_alloc_tag(task, "t2")
        k.install_faults(
            FaultPlan([FaultRule("xattr.write", FaultKind.SHORT_WRITE, nth=1)])
        )
        with pytest.raises(SyscallError):
            k.fs.set_labels(inode, LabelPair(Label.of(new_tag)))
        assert inode.labels == LabelPair(Label.of(tag))
        assert k.fs.journal.in_flight() == []
        k.install_faults(None)
        check_recovery_invariants(k)

    def test_capwrite_crash_rolls_back_to_old_caps(self, k):
        task = k.spawn_task("admin")
        t1, c1 = k.sys_alloc_tag(task, "a")
        t2, c2 = k.sys_alloc_tag(task, "b")
        store_user_capabilities(k, "eve", c1)
        k.install_faults(
            FaultPlan([FaultRule("caps.block_write", FaultKind.TORN_WRITE,
                                 nth=1)])
        )
        with pytest.raises(KernelCrash):
            store_user_capabilities(k, "eve", c1.union(c2))
        k.crash()
        k.remount()
        assert load_user_capabilities(k, "eve") == c1
        check_recovery_invariants(k)

    def test_capwrite_crash_on_fresh_file_unlinks_it(self, k):
        task = k.spawn_task("admin")
        _t, caps = k.sys_alloc_tag(task, "a")
        k.install_faults(
            FaultPlan([FaultRule("caps.block_write", FaultKind.CRASH, nth=1)])
        )
        with pytest.raises(KernelCrash):
            store_user_capabilities(k, "mallory", caps)
        k.crash()
        k.remount()
        shell = login(k, "mallory")
        assert shell.capabilities == CapabilitySet.EMPTY
        check_recovery_invariants(k)

    def test_create_crash_between_begin_and_commit_unlinks(self, k):
        task = k.spawn_task("p")
        tag, _ = k.sys_alloc_tag(task, "t")
        k.install_faults(
            FaultPlan([FaultRule("create.link", FaultKind.CRASH, nth=1)])
        )
        with pytest.raises(KernelCrash):
            k.sys_create_file_labeled(
                task, "/tmp/ghost", LabelPair(Label.of(tag))
            )
        k.crash()
        report = k.remount()
        assert report.rolled_back == 1
        assert "ghost" not in k.fs.root.children["tmp"].children
        check_recovery_invariants(k)


class TestQuarantine:
    def test_undecodable_xattr_moves_inode_to_lost_found(self, k):
        _task, _tag, inode = _labeled_file(k)
        inode.xattrs[XATTR_SECRECY] = b"\x01\x02\x03"  # not a multiple of 8
        k.crash()
        report = k.remount()
        assert report.quarantined_inodes == [inode.ino]
        lf = k.fs.root.children[LOST_FOUND]
        assert lf.children[f"ino{inode.ino}"] is inode
        assert k.quarantine_tag in inode.labels.secrecy
        check_recovery_invariants(k)

    def test_quarantined_data_is_readable_by_no_one(self, k):
        from repro.osim import LaminarSecurityModule

        k = Kernel(LaminarSecurityModule())
        _task, _tag, inode = _labeled_file(k)
        inode.xattrs[XATTR_SECRECY] = b"\xff" * 7
        k.crash()
        k.remount()
        snoop = login(k, "snoop")
        with pytest.raises(SyscallError):
            k.sys_open(snoop, f"/{LOST_FOUND}/ino{inode.ino}", "r")

    def test_corrupt_capability_file_quarantined_at_recovery(self, k):
        task = k.spawn_task("admin")
        _t, caps = k.sys_alloc_tag(task, "a")
        store_user_capabilities(k, "frank", caps)
        inode = k.fs.root.children["etc"].children["laminar"].children[
            "caps"
        ].children["frank"]
        inode.data[:] = inode.data[:-2]  # truncate: no longer 9-aligned
        k.crash()
        report = k.remount()
        assert report.quarantined_caps == ["frank"]
        check_recovery_invariants(k)

    def test_login_quarantines_corrupt_capability_file(self, k):
        """The decode_capabilities fix: login never propagates ValueError."""
        task = k.spawn_task("admin")
        _t, caps = k.sys_alloc_tag(task, "a")
        store_user_capabilities(k, "grace", caps)
        caps_dir = k.fs.root.children["etc"].children["laminar"].children["caps"]
        caps_dir.children["grace"].data[:] = b"garbage!"
        shell = login(k, "grace")
        assert shell.capabilities == CapabilitySet.EMPTY
        assert "grace" not in caps_dir.children
        corrupt = caps_dir.children["grace.corrupt"]
        assert k.admin_integrity in corrupt.labels.integrity
        assert k.audit.entries(AuditKind.QUARANTINE)

    def test_relogin_after_quarantine_is_clean(self, k):
        caps_dir = k.fs.root.children["etc"].children["laminar"].children["caps"]
        store_user_capabilities(k, "heidi", CapabilitySet.EMPTY)
        caps_dir.children["heidi"].data[:] = b"x"
        login(k, "heidi")
        shell = login(k, "heidi")  # no file now: plain unknown-user path
        assert shell.capabilities == CapabilitySet.EMPTY


class TestAuditor:
    def test_clean_kernel_passes(self, k):
        _labeled_file(k)
        assert check_recovery_invariants(k) == []

    def test_in_flight_record_is_a_violation(self, k):
        k.fs.journal.begin("relabel", ino=999)
        with pytest.raises(RecoveryInvariantError, match="in-flight"):
            check_recovery_invariants(k)

    def test_memory_disk_divergence_is_a_violation(self, k):
        _task, tag, inode = _labeled_file(k)
        inode.xattrs[XATTR_SECRECY] = b""  # disk says unlabeled
        violations = check_recovery_invariants(k, strict=False)
        assert any("diverge" in v for v in violations)

    def test_label_weakening_is_a_violation(self, k):
        _task, tag, inode = _labeled_file(k)
        inode.labels = LabelPair.EMPTY
        inode.xattrs[XATTR_SECRECY] = b""
        violations = check_recovery_invariants(k, strict=False)
        assert any("weaker than exposed history" in v for v in violations)

    def test_restriction_is_not_weakening(self, k):
        task, tag, inode = _labeled_file(k)
        extra, _ = k.sys_alloc_tag(task, "extra")
        stricter = LabelPair(Label.of(tag, extra))
        assert can_flow(inode.labels, stricter)
        k.fs.set_labels(inode, stricter)
        inode.labels = stricter
        assert check_recovery_invariants(k) == []

    def test_quarantine_capability_grant_is_a_violation(self, k):
        k.spawn_task("evil", caps=CapabilitySet.dual(k.quarantine_tag))
        violations = check_recovery_invariants(k, strict=False)
        assert any("quarantine-tag capability" in v for v in violations)

    def test_exposed_history_survives_crash(self, k):
        _task, tag, inode = _labeled_file(k)
        history = list(k.fs.exposed[inode.ino])
        k.crash()
        k.remount()
        assert k.fs.exposed[inode.ino] == history
