"""The generalized dataflow framework: directions, meets, boundary facts.

``ForwardMustAnalysis`` predates the generalization and its behavior is
pinned by the verifier/elimination tests; these tests cover the new
axes — may-meet, backward direction, and entry-fact seeding — on small
hand-built CFGs where the expected solutions are computable by hand.
"""

from __future__ import annotations

from repro.jit import parse_program
from repro.jit.cfg import CFG
from repro.jit.dataflow import (
    BackwardMayAnalysis,
    BackwardMustAnalysis,
    Direction,
    ForwardMayAnalysis,
    ForwardMustAnalysis,
    Meet,
)
from repro.jit.ir import Opcode

DIAMOND = """
method main(p) {
entry:
  const a, 1
  br a, left, right
left:
  const b, 2
  jmp join
right:
  const c, 3
  jmp join
join:
  const d, 4
  ret d
}
"""

LOOP = """
method main(p) {
entry:
  const i, 0
  jmp head
head:
  binop c, lt, i, i
  br c, body, exit
body:
  const one, 1
  binop i, add, i, one
  jmp head
exit:
  ret i
}
"""


def _defs(instr, facts):
    reg = instr.defined_register()
    return facts | {reg} if reg is not None else facts


def _uses(instr, facts):
    """Backward liveness: kill the def, add the uses."""
    reg = instr.defined_register()
    if reg is not None:
        facts = facts - {reg}
    return facts | set(instr.used_registers())


def _method(source):
    return next(iter(parse_program(source).methods.values()))


class TestForwardMeets:
    def test_must_intersects_over_diamond(self):
        analysis = ForwardMustAnalysis(CFG(_method(DIAMOND)), _defs)
        analysis.solve()
        at_join = analysis.block_in["join"]
        # Only 'a' is defined on *every* path into join.
        assert "a" in at_join
        assert "b" not in at_join and "c" not in at_join

    def test_may_unions_over_diamond(self):
        analysis = ForwardMayAnalysis(CFG(_method(DIAMOND)), _defs)
        analysis.solve()
        at_join = analysis.block_in["join"]
        # Anything defined on *some* path is a may-fact.
        assert {"a", "b", "c"} <= at_join

    def test_boundary_seeds_entry(self):
        analysis = ForwardMustAnalysis(
            CFG(_method(DIAMOND)), _defs, boundary=frozenset({"seeded"})
        )
        analysis.solve()
        assert "seeded" in analysis.block_in["entry"]
        assert "seeded" in analysis.block_in["join"]

    def test_empty_boundary_matches_unseeded(self):
        cfg = CFG(_method(LOOP))
        plain = ForwardMustAnalysis(cfg, _defs)
        plain.solve()
        seeded = ForwardMustAnalysis(cfg, _defs, boundary=frozenset())
        seeded.solve()
        assert plain.block_in == seeded.block_in
        assert plain.block_out == seeded.block_out


class TestBackward:
    def test_liveness_on_straight_line(self):
        method = _method(DIAMOND)
        analysis = BackwardMayAnalysis(CFG(method), _uses)
        analysis.solve()
        # 'd' is defined then returned inside join: live before ret only.
        before = analysis.facts_before_each_instr("join")
        assert "d" not in before[0]
        assert "d" in before[1]

    def test_liveness_through_loop(self):
        method = _method(LOOP)
        analysis = BackwardMayAnalysis(CFG(method), _uses)
        analysis.solve()
        # 'i' is used by head's compare, body's add and exit's ret; it is
        # live around the whole loop, including at entry's jmp.
        assert "i" in analysis.block_in["body"]
        assert "i" in analysis.block_in["head"]
        assert "i" in analysis.block_out["entry"]

    def test_backward_must_intersects_branch_targets(self):
        method = _method(DIAMOND)
        analysis = BackwardMustAnalysis(CFG(method), _uses)
        analysis.solve()
        # Both successors of entry eventually need 'd'? No — 'd' is defined
        # in join itself, so it is NOT anticipated at entry.
        assert "d" not in analysis.block_in["entry"]

    def test_direction_and_meet_attributes(self):
        assert ForwardMayAnalysis.direction is Direction.FORWARD
        assert ForwardMayAnalysis.meet is Meet.MAY
        assert BackwardMustAnalysis.direction is Direction.BACKWARD
        assert BackwardMustAnalysis.meet is Meet.MUST

    def test_instruction_granularity_round_trip(self):
        method = _method(LOOP)
        analysis = BackwardMayAnalysis(CFG(method), _uses)
        analysis.solve()
        for label, block in method.blocks.items():
            before = analysis.facts_before_each_instr(label)
            after = analysis.facts_after_each_instr(label)
            assert len(before) == len(after) == len(block.instrs)
            # Convention check: before[i] is the result of applying the
            # transfer to after[i] (backward flow).
            for i, instr in enumerate(block.instrs):
                assert before[i] == frozenset(_uses(instr, after[i]))
