"""The exhaustive crash-point sweep: crash everywhere, recover, audit.

This is the CI chaos gate's engine (``.github/workflows/ci.yml`` runs it
directly and via ``lamc fsck``).  One deterministic workload is recorded
to enumerate every fault-site crossing; the sweep then re-runs it once
per scheduled point, killing the machine there, remounting, and holding
recovery to :func:`check_recovery_invariants`.  A deliberate
label-weakening bug (``recovery._WEAKENING_BUG``) must make the sweep
fail — the negative control proving the sweep actually checks something.
"""

import pytest

from repro.osim import FaultPlan, Kernel
from repro.osim import recovery as recovery_mod
from repro.osim.chaos import (
    REQUIRED_SITES,
    chaos_workload,
    enumerate_crash_points,
    run_crash_sweep,
    run_random_sweep,
    sample_crash_points,
)

#: The acceptance floor from the issue: the sweep visits at least this
#: many distinct crash points.
MIN_CRASH_POINTS = 50


@pytest.fixture(scope="module")
def crossings():
    return enumerate_crash_points()


@pytest.fixture(scope="module")
def sweep(crossings):
    return run_crash_sweep(sample_crash_points(crossings, target=60))


class TestEnumeration:
    def test_workload_is_deterministic(self, crossings):
        assert crossings == enumerate_crash_points()

    def test_workload_crosses_every_required_site(self, crossings):
        sites = {site for site, _ in crossings}
        for required in REQUIRED_SITES:
            assert required in sites, f"workload never crosses {required}"

    def test_enough_crash_points_exist(self, crossings):
        assert len(crossings) >= MIN_CRASH_POINTS

    def test_recording_run_completes_without_firing(self):
        kernel = Kernel()
        plan = kernel.install_faults(FaultPlan(record=True))
        chaos_workload(kernel)
        assert plan.fired == []

    def test_sample_keeps_every_site(self, crossings):
        sample = sample_crash_points(crossings, target=60)
        assert len(sample) >= min(60, len(crossings))
        assert {s for s, _ in sample} == {s for s, _ in crossings}


class TestExhaustiveSweep:
    def test_every_point_recovers_soundly(self, sweep):
        assert sweep.ok, sweep.summary()

    def test_sweep_covers_the_floor(self, sweep):
        assert len(sweep.results) >= MIN_CRASH_POINTS
        for required in REQUIRED_SITES:
            assert required in sweep.sites

    def test_scheduled_faults_actually_fire(self, sweep):
        fired = [r for r in sweep.results if r.fired]
        # Sampling is taken from a recorded run of the *same* workload,
        # so nearly every scheduled point is reached; a handful sit past
        # an earlier fault's cut and legitimately never fire.  Demand the
        # overwhelming majority.
        assert len(fired) >= 0.9 * len(sweep.results), (
            f"only {len(fired)}/{len(sweep.results)} scheduled faults fired"
        )

    def test_crash_points_actually_crash(self, sweep):
        outcomes = {r.outcome for r in sweep.results if r.fired}
        assert "crash" in outcomes
        for r in sweep.results:
            if r.fired:
                assert r.outcome == "crash", (r.site, r.nth, r.outcome)

    def test_every_run_produced_a_recovery_report(self, sweep):
        assert all(r.report is not None for r in sweep.results)


class TestRandomSweep:
    def test_seeded_sweep_is_sound_and_replayable(self):
        first = run_random_sweep(101, count=12)
        again = run_random_sweep(101, count=12)
        assert first.ok, first.summary()
        assert [(r.site, r.nth, r.kind, r.outcome) for r in first.results] == [
            (r.site, r.nth, r.kind, r.outcome) for r in again.results
        ]

    def test_random_sweep_mixes_fault_kinds(self):
        result = run_random_sweep(202, count=25)
        assert result.ok, result.summary()
        assert len({r.kind for r in result.results}) >= 3


class TestNegativeControl:
    """If the sweep cannot catch a planted label-weakening bug, it is
    theater.  ``_WEAKENING_BUG`` makes rollback restore *empty* xattrs
    instead of the journaled pre-image."""

    def test_planted_weakening_bug_is_caught(self, crossings):
        xattr_points = [
            (site, nth) for site, nth in crossings if site == "xattr.write"
        ]
        assert xattr_points, "workload must cross xattr.write"
        recovery_mod._WEAKENING_BUG = True
        try:
            buggy = run_crash_sweep(xattr_points)
        finally:
            recovery_mod._WEAKENING_BUG = False
        assert not buggy.ok, (
            "sweep passed with a planted label-weakening bug: "
            "the invariants are not checking anything"
        )
        assert any(
            "weaker than exposed history" in v for _, _, v in buggy.violations
        )

    def test_flag_restored_and_sweep_green_again(self, crossings):
        assert recovery_mod._WEAKENING_BUG is False
        points = [
            (site, nth) for site, nth in crossings if site == "xattr.write"
        ][:2]
        assert run_crash_sweep(points).ok
