"""Compatibility pitfalls (Section 4.6) and miscellaneous DIFC semantics.

"Some implementation techniques are incompatible with any DIFC system.
For instance, a library might memoize results without regard for labels.
If a function memoized its result in a security region with one label, a
later call with a different label may attempt to return the memoized
value.  Because the memoized result is secret, the attempt to return it
will be prevented by the system."
"""

import pytest

from repro.core import CapabilitySet, Label, LabelPair, SecrecyViolation
from repro.osim import Kernel
from repro.runtime import LaminarAPI, LaminarVM


@pytest.fixture()
def world():
    kernel = Kernel()
    vm = LaminarVM(kernel)
    return kernel, vm, LaminarAPI(vm)


class TestMemoizationPitfall:
    def test_label_oblivious_memoization_breaks(self, world):
        """A cache populated under label {a} poisons calls under {b}."""
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")

        # The library's cache: an unlabeled dict holding labeled objects.
        cache: dict[int, object] = {}

        def expensive(vm_, n):
            if n not in cache:
                cache[n] = vm_.alloc({"result": n * n}, name=f"memo{n}")
            return cache[n].get("result")

        # First call inside an {a} region: the cached object is labeled {a}.
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            assert expensive(vm, 12) == 144
        assert cache[12].labels.secrecy == Label.of(a)

        # Later call from a {b} region: the memoized value is {a}-secret,
        # and the read is prevented — exactly the paper's incompatibility.
        failure = {}
        with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b),
                       catch=lambda e: failure.update(err=e)):
            expensive(vm, 12)
        assert isinstance(failure["err"], SecrecyViolation)

    def test_label_aware_memoization_works(self, world):
        """The fix any DIFC port needs: key the cache by label."""
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        b = api.create_and_add_capability("b")
        cache: dict[tuple, object] = {}

        def expensive(vm_, n):
            key = (n, vm_.current_thread.labels)
            if key not in cache:
                cache[key] = vm_.alloc({"result": n * n})
            return cache[key].get("result")

        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            assert expensive(vm, 12) == 144
        with vm.region(secrecy=Label.of(b), caps=CapabilitySet.dual(b)):
            assert expensive(vm, 12) == 144
        assert len(cache) == 2  # one entry per label context


class TestImmutableLabelsRaceFreedom:
    def test_no_relabel_api_exists(self, world):
        """Section 4.5: labels are immutable to avoid the check/relabel
        race; the only label-changing operation is copyAndLabel, which
        creates a new object."""
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            obj = vm.alloc({"x": 1})
            before = obj.labels
            copy = api.copy_and_label(obj, secrecy=Label.EMPTY)
        assert obj.labels == before
        assert copy is not obj
        assert not hasattr(obj, "set_labels")

    def test_labels_objects_shared_not_copied(self, world):
        """Immutability enables sharing: objects allocated in the same
        region share the same Label instance."""
        kernel, vm, api = world
        a = api.create_and_add_capability("a")
        with vm.region(secrecy=Label.of(a), caps=CapabilitySet.dual(a)):
            o1 = vm.alloc({"x": 1})
            o2 = vm.alloc({"x": 2})
        assert o1.header.secrecy is o2.header.secrecy
