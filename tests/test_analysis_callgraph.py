"""Call-graph construction, SCCs, and region-context derivation."""

from __future__ import annotations

from repro.analysis.callgraph import (
    CallGraph,
    IN_REGION,
    OUT_OF_REGION,
    build_callgraph,
)
from repro.jit import parse_program

DIAMOND = """
class Box { val }

method leaf(b) {
entry:
  getfield r0, b, val
  ret r0
}

method left(b) {
entry:
  call r0, leaf, b
  ret r0
}

method right(b) {
entry:
  call r0, leaf, b
  ret r0
}

region method top(b) {
entry:
  call r0, left, b
  call r1, right, b
  ret
}

method main() {
entry:
  new b, Box
  const r0, 1
  putfield b, val, r0
  call _, top, b
  call r1, left, b
  ret r1
}
"""

RECURSIVE = """
method even(n) {
entry:
  binop c, le, n, n
  br c, base, rec
base:
  const r, 1
  ret r
rec:
  const one, 1
  binop m, sub, n, one
  call r, odd, m
  ret r
}

method odd(n) {
entry:
  const one, 1
  binop m, sub, n, one
  call r, even, m
  ret r
}

method main() {
entry:
  const n, 4
  call r, even, n
  ret r
}
"""


class TestEdges:
    def test_callees_and_callers(self):
        cg = build_callgraph(parse_program(DIAMOND))
        assert cg.callees["top"] == {"left", "right"}
        assert cg.callers["leaf"] == {"left", "right"}
        assert cg.callers["main"] == set()

    def test_roots(self):
        cg = build_callgraph(parse_program(DIAMOND))
        assert cg.roots() == ["main"]

    def test_sites_in_program_order(self):
        cg = build_callgraph(parse_program(DIAMOND))
        sites = cg.sites_in["top"]
        assert [s.callee for s in sites] == ["left", "right"]
        assert sites[0].location() == "top/entry[0]"
        assert sites[0].args == ("b",)

    def test_reachable_from(self):
        cg = build_callgraph(parse_program(DIAMOND))
        assert cg.reachable_from({"left"}) == {"left", "leaf"}


class TestSCCs:
    def test_acyclic_sccs_are_singletons_in_bottom_up_order(self):
        cg = build_callgraph(parse_program(DIAMOND))
        sccs = cg.sccs()
        assert all(len(s) == 1 for s in sccs)
        order = {next(iter(s)): i for i, s in enumerate(sccs)}
        # Callees come before callers.
        assert order["leaf"] < order["left"]
        assert order["left"] < order["top"]
        assert order["top"] < order["main"]

    def test_mutual_recursion_is_one_component(self):
        cg = build_callgraph(parse_program(RECURSIVE))
        assert frozenset({"even", "odd"}) in cg.sccs()
        assert cg.recursive_methods() == {"even", "odd"}

    def test_no_recursion_in_diamond(self):
        cg = build_callgraph(parse_program(DIAMOND))
        assert cg.recursive_methods() == set()


class TestRegionContexts:
    def test_contexts(self):
        cg = build_callgraph(parse_program(DIAMOND))
        contexts = cg.region_contexts()
        assert contexts["main"] == frozenset({OUT_OF_REGION})
        assert contexts["top"] == frozenset({IN_REGION})
        # right is only called from the region; left from both worlds.
        assert contexts["right"] == frozenset({IN_REGION})
        assert contexts["left"] == frozenset({IN_REGION, OUT_OF_REGION})
        assert contexts["leaf"] == frozenset({IN_REGION, OUT_OF_REGION})

    def test_governing_regions(self):
        cg = build_callgraph(parse_program(DIAMOND))
        gov = cg.governing_regions()
        assert gov["top"] == frozenset({"top"})
        assert gov["right"] == frozenset({"top"})
        assert gov["left"] == frozenset({"top"})
        assert gov["main"] == frozenset()

    def test_call_chain(self):
        cg = build_callgraph(parse_program(DIAMOND))
        chain = cg.call_chain("top", "leaf")
        assert [s.callee for s in chain] == ["left", "leaf"]
        # Chains do not cross region boundaries by default...
        assert cg.call_chain("main", "right") == []
        # ...unless asked to.
        through = cg.call_chain("main", "right", through_regions=True)
        assert [s.callee for s in through] == ["top", "right"]
