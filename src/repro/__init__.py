"""Laminar: practical fine-grained decentralized information flow control.

A from-scratch Python reproduction of Roy, Porter, Bond, McKinley, and
Witchel's PLDI 2009 system: a DIFC model enforced by a unified pair of
trusted components — a managed-runtime VM (:mod:`repro.runtime` plus the
:mod:`repro.jit` mini-compiler) and an operating system security module
(:mod:`repro.osim`) — with comparison baselines (:mod:`repro.baselines`),
the paper's four application case studies (:mod:`repro.apps`), and the
benchmark substrate (:mod:`repro.bench`).

Quickstart::

    from repro import (
        Kernel, LaminarVM, LaminarAPI, Label, LabelPair, CapabilitySet,
    )

    kernel = Kernel()
    vm = LaminarVM(kernel)
    api = LaminarAPI(vm)
    secret_tag = api.create_and_add_capability("secret")
    with vm.region(secrecy=Label.of(secret_tag),
                   caps=CapabilitySet.dual(secret_tag)):
        diary = vm.alloc({"entry": "met Bob at 10"},
                         labels=LabelPair(Label.of(secret_tag)))
        ...

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from .core import (
    Capability,
    CapabilitySet,
    CapType,
    IFCViolation,
    IntegrityViolation,
    Label,
    LabelChangeViolation,
    LabelPair,
    LabelType,
    LaminarError,
    Principal,
    RegionViolation,
    SecrecyViolation,
    StaticCheckError,
    Tag,
    TagAllocator,
    can_flow,
    check_flow,
)
from .osim import Kernel, LaminarSecurityModule, NullSecurityModule, SyscallError
from .runtime import (
    BarrierMode,
    LabeledArray,
    LabeledObject,
    LaminarAPI,
    LaminarVM,
    SecurityRegion,
    SimThread,
    laminar_api,
    secure_method,
)

__version__ = "1.0.0"

__all__ = [
    "BarrierMode",
    "Capability",
    "CapabilitySet",
    "CapType",
    "IFCViolation",
    "IntegrityViolation",
    "Kernel",
    "Label",
    "LabelChangeViolation",
    "LabelPair",
    "LabelType",
    "LabeledArray",
    "LabeledObject",
    "LaminarAPI",
    "LaminarError",
    "LaminarSecurityModule",
    "LaminarVM",
    "NullSecurityModule",
    "Principal",
    "RegionViolation",
    "SecrecyViolation",
    "SecurityRegion",
    "SimThread",
    "StaticCheckError",
    "SyscallError",
    "Tag",
    "TagAllocator",
    "can_flow",
    "check_flow",
    "laminar_api",
    "secure_method",
    "__version__",
]
