"""Secret-swap noninterference oracle for certified programs.

A :class:`~.typecheck.SecurityCertificate` claims that deleting a
method's barriers cannot change observable behavior.  The type system
argues this statically; this module checks it *dynamically*, using the
classic two-run formulation of noninterference: run the same program
twice with different high (secret) inputs and compare everything a
public observer can see.  If a certified program's public observables
differ between the runs, the certificate is wrong — the test suite
treats that as a hard failure, not a statistic.

The oracle is deliberately strict about what counts as observable:

* the entry method's return value (``lamc run`` prints it),
* everything ``print`` emitted, in order,
* the final static cells,
* the escaped exception type (a security fault *is* an observable), and
* the kernel audit log (declassification trails are public record).

It deliberately excludes enforcement *counters* (barrier hit/pass
statistics): certified elimination removes the counting itself, so
counters differ between build modes by design — they are observables of
the implementation, not of the program.

Programs under test mark their secret with a placeholder (default
``@SECRET@``) in the assembler source; :func:`swap_check` substitutes
the two candidate values, builds each variant with the same compiler
configuration, runs both under a fresh kernel/VM (with id counters
reset so heap/audit identifiers are byte-comparable), and diffs the
observables.  Execution modes cover the whole stack: the reference
interpreter, the threaded exec tables, and the tier-2 template JIT.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core import CapabilitySet
from ..jit.compiler import Compiler
from ..jit.interpreter import Interpreter
from ..jit.tier2 import TierPolicy
from ..osim import Kernel, LaminarSecurityModule
from ..osim.filesystem import Inode
from ..runtime.heap import ObjectHeader
from ..runtime.vm import LaminarVM

#: Placeholder substituted with the secret value in assembler sources.
SECRET_PLACEHOLDER = "@SECRET@"

#: Execution modes the oracle sweeps.
MODES = ("interp", "tables", "tier2")

#: Everything is hot, so tier-2 actually runs on small test programs.
_HOT = TierPolicy(
    invocation_threshold=1, backedge_threshold=2,
    deopt_recompile_threshold=1,
)


def _reset_id_counters() -> None:
    """Restart the global id counters so two runs allocate identical
    inode/object ids and the audit logs are byte-comparable."""
    Inode._ino_counter = itertools.count(1)
    ObjectHeader._oid_counter = itertools.count(1)


@dataclass(frozen=True)
class Observables:
    """Everything a public observer can see from one run."""

    result: object
    exc: str | None
    output: tuple
    statics: tuple
    audit: tuple

    def diff(self, other: "Observables") -> list[str]:
        out = []
        for field_name in ("result", "exc", "output", "statics", "audit"):
            mine, theirs = getattr(self, field_name), getattr(
                other, field_name
            )
            if mine != theirs:
                out.append(
                    f"{field_name} differs: {mine!r} vs {theirs!r}"
                )
        return out


def collect_observables(
    source: str,
    entry: str = "main",
    args: tuple = (),
    *,
    mode: str = "interp",
    **compile_kw,
) -> Observables:
    """Compile and run ``source`` in one execution mode, returning its
    public observables.  ``compile_kw`` is forwarded to
    :class:`~repro.jit.compiler.Compiler` (e.g.
    ``optimize_barriers="certified"``)."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    _reset_id_counters()
    tier = "interp" if mode == "interp" else "jit"
    program, _report = Compiler(tier=tier, **compile_kw).compile(source)
    kernel = Kernel(LaminarSecurityModule())
    vm = LaminarVM(kernel)
    if program.tags:
        vm.current_thread.gain_capabilities(
            CapabilitySet.dual(*program.tags.values())
        )
    policy = _HOT if mode == "tier2" else None
    interp = Interpreter(program, vm, tier2=policy)
    try:
        result = interp.run(entry, *args)
        exc = None
    except Exception as error:  # noqa: BLE001 - the type is the observable
        result = None
        exc = type(error).__name__
    return Observables(
        result=result,
        exc=exc,
        output=tuple(interp.output),
        statics=tuple(sorted(interp.statics.items(), key=str)),
        audit=tuple(str(entry_) for entry_ in kernel.audit.entries()),
    )


def swap_check(
    template: str,
    secret_a: object,
    secret_b: object,
    *,
    entry: str = "main",
    args: tuple = (),
    modes: tuple = MODES,
    placeholder: str = SECRET_PLACEHOLDER,
    **compile_kw,
) -> dict[str, list[str]]:
    """Two-run noninterference check.

    Substitutes ``secret_a`` / ``secret_b`` for ``placeholder`` in
    ``template``, runs both variants in every requested mode, and
    returns ``{mode: [divergence, ...]}`` containing only modes that
    diverged (empty dict = indistinguishable everywhere).
    """
    if placeholder not in template:
        raise ValueError(
            f"template does not contain the placeholder {placeholder!r}"
        )
    divergences: dict[str, list[str]] = {}
    for mode in modes:
        obs = []
        for secret in (secret_a, secret_b):
            src = template.replace(placeholder, str(secret))
            obs.append(
                collect_observables(
                    src, entry, args, mode=mode, **compile_kw
                )
            )
        delta = obs[0].diff(obs[1])
        if delta:
            divergences[mode] = delta
    return divergences


def assert_swap_indistinguishable(
    template: str,
    secret_a: object,
    secret_b: object,
    **kw,
) -> None:
    """Raise ``AssertionError`` with a full divergence report if the two
    secret variants are distinguishable in any mode.  Divergence on a
    certified program means the certifier is unsound — tests treat this
    as a hard failure."""
    divergences = swap_check(template, secret_a, secret_b, **kw)
    if divergences:
        lines = [
            "secret-swap distinguishable "
            f"({secret_a!r} vs {secret_b!r}):"
        ]
        for mode, deltas in sorted(divergences.items()):
            for delta in deltas:
                lines.append(f"  [{mode}] {delta}")
        raise AssertionError("\n".join(lines))
