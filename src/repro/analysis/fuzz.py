"""lamfuzz — production-scale noninterference fuzzing over the whole OS.

PR 6's secret-swap oracle (:mod:`repro.analysis.secretswap`) checks
noninterference over single IR programs.  This module scales the same
two-run formulation to whole-OS workloads: a seed-deterministic
generator produces random syscall traces — file create/open/read/write,
pipes, forked helpers, relabels, capability transfers, ``sys_submit``
batches — over randomly labeled principals with a designated secret
payload, runs each trace twice (secret A vs. secret B), and compares an
*extended* observable set byte-for-byte:

* public file bytes (every inode whose secrecy label is empty),
* pipe deliveries and blocking-read chunk sequences,
* the merged audit log and outbound network traffic,
* per-group denial and LSM hook counters,
* scheduler wakeup traces (run/park/wake/exit/killed event streams),
* coarse timing buckets (deferred simulated-work iterations), and
* every principal's op log — results, public byte payloads, errno names
  (``denied ≡ empty`` must hold under swap).

Each trace runs across the repo's execution matrix: the cooperative
single-kernel arm, an in-process replicated parallel arm mirroring the
``psched`` fork-worker discipline (every replica builds the identical
world and runs its assigned groups; observables merge in global group
order — a real fork-pool arm is exposed via :func:`run_forked`), and a
fault arm composing the PR 4 :class:`~repro.osim.faults.FaultPlan` with
crash/recovery, so noninterference is asserted *across* the crash.
IR micro-programs embedded in a trace run under all three VM modes
(interp / threaded tables / tier-2) and must agree with each other.

Violations shrink to a minimal failing op sequence and print a one-line
``lamc fuzz --seed N --ops K`` replay command.  Planted-leak negative
controls (:class:`repro.osim.lsm.LeakySecurityModule`) keep the oracle
honest: the fuzzer must catch a deliberately leaky kernel within a
bounded seed budget, or the CI gate fails.

Determinism discipline (inherited from :mod:`repro.osim.psched`): all
principals, tags, labeled files, pipes and helper forks are created at
world-*build* time, so every kernel replica allocates identical tids,
inode numbers and tag values; runtime ops never fork or allocate tags.
Secrets are payload *bytes* of identical length — trace structure and
control flow never branch on the secret, so a divergence in any
observable is an information leak, not generator noise.
"""

from __future__ import annotations

import random
import re
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core import Capability, CapType, Label, LabelPair, LabelType, fastpath
from ..core.audit import AuditEntry, AuditKind
from ..core.errors import IFCViolation
from ..osim import Kernel
from ..osim.faults import FaultPlan, KernelCrash
from ..osim.kernel import Sqe
from ..osim.persistence import grant_persistent, login
from ..osim.psched import GroupHandle, run_group
from ..osim.recovery import check_recovery_invariants
from ..osim.sched import read_blocking, submit, syscall, yield_
from ..osim.task import SyscallError, _ERRNO_NAMES
from .secretswap import MODES, _reset_id_counters, collect_observables

#: Default arms of the execution matrix a trace runs across.
ARMS = ("coop", "par2", "fault")

#: Every recognized arm: the defaults plus the opt-in real fork-worker
#: pool (slower — one OS process pair per run — so not in sweeps).
ALL_ARMS = ARMS + ("fork",)

#: Deferred-work bucket width — the coarse timing observable: two runs
#: may not even differ in *how much* simulated work they deferred.
TIMING_BUCKET = 256

#: Roles a runtime op can execute under.  ``owner`` holds both
#: capabilities of the group's secret tag, ``observer`` is an
#: unprivileged public principal, ``helper`` is forked from the owner
#: at build time (and so inherits its capabilities).
ROLES = ("owner", "observer", "helper")


def _errno_name(errno: int) -> str:
    return _ERRNO_NAMES.get(errno, str(errno))


def _fresh_run_state() -> None:
    """Reset process-global caches and id counters before booting a
    kernel, so every boot of the same world allocates identical ids
    (anonymous pipe inodes draw from the process-global counter) and no
    run observes cache warmth left behind by a previous one."""
    fastpath.clear_caches()
    fastpath.counters.reset()
    _reset_id_counters()


# ---------------------------------------------------------------------------
# Trace plans: the generator grammar
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzOp:
    """One runtime operation of a generated trace.

    ``args`` holds only canonical primitives (ints, strs, bytes) chosen
    at generation time, so a plan serializes byte-identically for a
    given seed.  ``requires``/``provides`` name symbolic resources
    (scratch files, stream pipes); the shrinker drops an op whose
    requirement lost its provider."""

    index: int
    group: int
    actor: str
    kind: str
    args: tuple = ()
    requires: tuple = ()
    provides: tuple = ()

    def render(self) -> str:
        return (
            f"{self.index:03d} g{self.group} {self.actor:<8} "
            f"{self.kind:<16} {self.args!r}"
        )


@dataclass(frozen=True)
class GroupPlan:
    """Build-time shape of one fd-disjoint task group."""

    index: int
    #: stream pipe specs: (stream id, "secret" | "public", message count).
    streams: tuple = ()
    #: whether the owner forks a helper task at build time.
    helper: bool = False
    #: whether a cap-transfer op clears (secret-privies) the observer.
    observer_cleared: bool = False


@dataclass(frozen=True)
class TracePlan:
    """A complete generated workload: groups plus a flat runtime op list."""

    seed: int
    groups: tuple
    ops: tuple

    @property
    def group_count(self) -> int:
        return len(self.groups)

    def serialize(self) -> str:
        """Canonical text form; bit-identical for a given seed."""
        lines = [f"lamfuzz trace seed={self.seed} groups={len(self.groups)}"]
        for g in self.groups:
            lines.append(
                f"group {g.index}: streams={g.streams!r} helper={g.helper} "
                f"observer_cleared={g.observer_cleared}"
            )
        lines.extend(op.render() for op in self.ops)
        return "\n".join(lines) + "\n"

    def truncated(self, max_ops: int) -> "TracePlan":
        """Keep only the first ``max_ops`` runtime ops — the ``--ops K``
        replay form.  Providers always precede dependents, so a prefix
        is dependency-closed by construction."""
        kept = tuple(op for op in self.ops if op.index < max_ops)
        return replace(self, ops=kept, groups=self._regroup(kept))

    def subset(self, keep: frozenset) -> "TracePlan":
        """Keep the given op indices, closed under resource dependencies
        (an op whose requirement lost its provider is dropped too).
        Stream requirements are satisfied at build time, not by ops."""
        provided: set = set()
        kept = []
        for op in self.ops:
            if op.index not in keep:
                continue
            if all(r in provided or r.startswith("stream:") for r in op.requires):
                kept.append(op)
                provided.update(op.provides)
        kept_t = tuple(kept)
        return replace(self, ops=kept_t, groups=self._regroup(kept_t))

    def _regroup(self, ops: tuple) -> tuple:
        """Recompute per-group build flags for a reduced op set (streams
        not consumed by any surviving op are not built)."""
        groups = []
        for g in self.groups:
            gops = [op for op in ops if op.group == g.index]
            used = {
                r for op in gops for r in op.requires if r.startswith("stream:")
            }
            groups.append(
                replace(
                    g,
                    streams=tuple(
                        s
                        for s in g.streams
                        if f"stream:{g.index}:{s[0]}" in used
                    ),
                    observer_cleared=any(op.kind == "cap_send" for op in gops),
                )
            )
        return tuple(groups)


#: (kind, role, weight) — the generator's op vocabulary.  Weights bias
#: toward the observation/denial surface; structural ops stay rarer.
#: Role "any" is resolved per-op by the generator.
_VOCAB = (
    ("probe_vault", "observer", 5),
    ("probe_pipe", "observer", 5),
    ("probe_stat", "observer", 3),
    ("pub_write", "any", 5),
    ("pub_read", "any", 4),
    ("secret_write", "owner", 4),
    ("pipe_secret_send", "owner", 4),
    ("pipe_pub_send", "any", 3),
    ("pipe_pub_recv", "any", 3),
    ("taint", "owner", 3),
    ("untaint", "owner", 3),
    ("transmit", "any", 3),
    ("signal", "observer", 2),
    ("creat_scratch", "any", 3),
    ("scratch_rw", "any", 3),
    ("unlink_scratch", "any", 2),
    ("submit_probe", "observer", 3),
    ("submit_rw", "any", 2),
    ("stream_run", "owner", 2),
    ("cap_send", "owner", 1),
    ("relabel_vault", "owner", 1),
    ("exec_board", "observer", 1),
    ("ir_check", "observer", 1),
)

OP_KINDS = tuple(kind for kind, _, _ in _VOCAB)


def generate_plan(seed: int) -> TracePlan:
    """Generate the trace plan for ``seed`` — a pure function of it.
    Replay at reduced length goes through :meth:`TracePlan.truncated`
    (never a shorter generation, which would draw a different trace)."""
    rng = random.Random(seed)
    n_groups = rng.randint(1, 3)
    total = rng.randint(10, 22)
    kinds = [item[0] for item in _VOCAB]
    weights = [item[2] for item in _VOCAB]
    roles = {item[0]: item[1] for item in _VOCAB}

    state = [
        {
            "streams": [],
            "scratch": 0,
            "live_scratch": [],
            "relabeled": False,
            "cleared": False,
            "helper": rng.random() < 0.4,
        }
        for _ in range(n_groups)
    ]
    ops_out: list = []
    ir_used = False

    # Leak-catchability floor: every group opens with one vault probe and
    # one secret-pipe probe, so a planted leak is observable in any trace.
    index = 0
    for g in range(n_groups):
        for kind in ("probe_vault", "probe_pipe"):
            ops_out.append(FuzzOp(index, g, "observer", kind))
            index += 1

    while index < total:
        kind = rng.choices(kinds, weights)[0]
        g = rng.randrange(n_groups)
        st = state[g]
        role = roles[kind]
        if role == "any":
            role = rng.choice(
                ROLES if st["helper"] else ("owner", "observer")
            )
        args: tuple = ()
        requires: tuple = ()
        provides: tuple = ()
        if kind in ("pub_write", "pipe_pub_send", "transmit"):
            args = (b"pub-%03d" % rng.randrange(1000),)
        elif kind == "creat_scratch":
            slot = st["scratch"]
            st["scratch"] += 1
            st["live_scratch"].append(slot)
            args = (slot,)
            provides = (f"scratch:{g}:{slot}",)
        elif kind in ("scratch_rw", "unlink_scratch"):
            if not st["live_scratch"]:
                continue
            slot = rng.choice(st["live_scratch"])
            if kind == "unlink_scratch":
                st["live_scratch"].remove(slot)
            args = (slot, b"s-%03d" % rng.randrange(1000))
            requires = (f"scratch:{g}:{slot}",)
        elif kind == "stream_run":
            sid = len(st["streams"])
            flavor = rng.choice(("secret", "public"))
            msgs = rng.randint(2, 4)
            st["streams"].append((sid, flavor, msgs))
            args = (sid, flavor, msgs)
            requires = (f"stream:{g}:{sid}",)
        elif kind == "relabel_vault":
            if st["relabeled"]:
                continue
            st["relabeled"] = True
        elif kind == "cap_send":
            # Group 0's observer stays uncleared so its op log always
            # records probe payloads — the leak oracle never goes blind.
            if g == 0 or st["cleared"]:
                continue
            st["cleared"] = True
        elif kind == "ir_check":
            if ir_used:
                continue
            ir_used = True
            args = (rng.randint(1, 9), rng.randint(0, 99), rng.randint(0, 9))
        elif kind == "signal":
            args = (1,)
        elif kind == "submit_rw":
            args = (b"v-%03d" % rng.randrange(1000),)
        ops_out.append(FuzzOp(index, g, role, kind, args, requires, provides))
        index += 1

    groups = tuple(
        GroupPlan(
            index=g,
            streams=tuple(state[g]["streams"]),
            helper=state[g]["helper"],
            observer_cleared=state[g]["cleared"],
        )
        for g in range(n_groups)
    )
    return TracePlan(seed=seed, groups=groups, ops=tuple(ops_out))


def default_secrets(seed: int) -> tuple:
    """The swapped secret payload pair: distinct, equal length, and a
    pure function of the seed (trace structure never depends on which
    one is in effect)."""
    return (b"SECRET-A:%08d" % (seed % 10**8), b"SECRET-B:%08d" % (seed % 10**8))


# ---------------------------------------------------------------------------
# The fuzz world: build-time setup + runtime op bodies
# ---------------------------------------------------------------------------

#: IR template an ``ir_check`` op runs under every VM mode; the secret
#: flows only into a secrecy region writing a fresh labeled object.
_IR_TEMPLATE = """\
class Cell {{ val }}
class Total {{ sum }}

region method tally(c) secrecy(pay) {{
entry:
  getfield x, c, val
  const k0, {k0}
  binop x0, add, x, k0
  new t, Total
  putfield t, sum, x0
  ret
}}

method main() {{
entry:
  new c, Cell
  const s, {secret}
  putfield c, val, s
  call _, tally, c
  const p0, {p0}
  print p0
  const ok, {ok}
  ret ok
}}
"""


def run_ir_modes(k0: int, p0: int, ok: int, secret: bytes) -> tuple:
    """Run the embedded IR program under every VM mode and return
    ``((mode, result, exc, output, statics, audit), ...)`` — the full
    secret-swap observable per mode, compared A-vs-B through the op log
    and mode-vs-mode by :func:`_check_tiers`."""
    secret_int = int.from_bytes(secret[:8], "big") % 9973
    source = _IR_TEMPLATE.format(k0=k0, p0=p0, ok=ok, secret=secret_int)
    out = []
    for mode in MODES:
        obs = collect_observables(source, mode=mode)
        out.append(
            (mode, obs.result, obs.exc, obs.output, obs.statics, obs.audit)
        )
    return tuple(out)


class FuzzWorld:
    """The psched world protocol over a :class:`TracePlan`.

    ``build(kernel)`` performs every allocation (principals, tags,
    labeled files, pipes, helper forks) so replicas are identical; the
    returned :class:`GroupHandle`\\ s carry generator bodies executing
    the plan's runtime ops and a ``stats()`` closure shipping the
    group's op log, pipe-drop counts, and a public snapshot of the
    group's directory subtree (all picklable)."""

    def __init__(
        self, plan: TracePlan, secret: bytes, leak: Optional[str] = None
    ) -> None:
        self.plan = plan
        self.secret = secret
        self.leak = leak

    @property
    def group_count(self) -> int:
        return self.plan.group_count

    def security_module(self):
        from ..osim.lsm import LaminarSecurityModule, LeakySecurityModule

        if self.leak:
            return LeakySecurityModule(self.leak)
        return LaminarSecurityModule()

    # -- build ---------------------------------------------------------------

    def build(self, kernel: Kernel) -> list:
        setup = kernel.spawn_task("fuzz-setup")
        kernel.sys_mkdir(setup, "/tmp/fuzz")
        return [
            self._build_group(kernel, setup, gplan) for gplan in self.plan.groups
        ]

    def _build_group(self, kernel, setup, gplan) -> GroupHandle:
        g = gplan.index
        gdir = f"/tmp/fuzz/g{g}"
        secret = self.secret
        kernel.sys_mkdir(setup, gdir)
        tag, caps = kernel.sys_alloc_tag(setup, f"g{g}s")
        tag2, caps2 = kernel.sys_alloc_tag(setup, f"g{g}r")
        grant_persistent(kernel, f"u{g}o", caps.union(caps2))
        owner = login(kernel, f"u{g}o")
        observer = login(kernel, f"u{g}b")
        tasks = {"owner": owner, "observer": observer}
        if gplan.helper:
            tasks["helper"] = kernel.sys_fork(owner)

        secret_labels = LabelPair(secrecy=Label.of(tag))
        fd = kernel.sys_create_file_labeled(owner, f"{gdir}/vault", secret_labels)
        kernel.sys_write(owner, fd, secret)
        kernel.sys_close(owner, fd)
        kernel.sys_close(observer, kernel.sys_creat(observer, f"{gdir}/board"))

        # The secret pipe is pre-loaded with one secret message so a
        # pipe-read leak is observable from the very first probe op.
        sp_r, sp_w = kernel.sys_pipe(owner, labels=secret_labels)
        kernel.sys_write(owner, sp_w, secret + b":pipe")
        pp_r, pp_w = kernel.sys_pipe(owner)
        fds = {
            ("owner", "spipe_w"): sp_w,
            ("owner", "ppipe_r"): pp_r,
            ("owner", "ppipe_w"): pp_w,
            ("observer", "spipe_r"): kernel.share_fd(owner, sp_r, observer),
        }
        for role in ("observer", "helper"):
            if role in tasks:
                fds[(role, "ppipe_r")] = kernel.share_fd(
                    owner, pp_r, tasks[role]
                )
                fds[(role, "ppipe_w")] = kernel.share_fd(
                    owner, pp_w, tasks[role]
                )
        spipe = owner.lookup_fd(sp_w).inode.pipe
        ppipe = owner.lookup_fd(pp_w).inode.pipe
        stream_pipes = {}
        for sid, flavor, _msgs in gplan.streams:
            labels = secret_labels if flavor == "secret" else LabelPair.EMPTY
            st_r, st_w = kernel.sys_pipe(owner, labels=labels)
            fds[("owner", f"stream_w:{sid}")] = st_w
            fds[("observer", f"stream_r:{sid}")] = kernel.share_fd(
                owner, st_r, observer
            )
            stream_pipes[sid] = owner.lookup_fd(st_w).inode.pipe

        cleared = {"owner", "helper"}
        if gplan.observer_cleared:
            cleared.add("observer")
        oplog: list = []
        ctx = {
            "gdir": gdir,
            "kernel": kernel,
            "tag": tag,
            "tag2": tag2,
            "fds": fds,
            "tasks": tasks,
            "oplog": oplog,
            "cleared": cleared,
            "secret": secret,
            "owner_tid": owner.tid,
        }
        my_ops = [op for op in self.plan.ops if op.group == g]

        def spawn(sched) -> None:
            for role, task in tasks.items():
                sched.spawn(_make_body(ctx, role, my_ops), task=task)

        def stats() -> dict:
            return {
                "oplog": tuple(sorted(oplog)),
                "pipe_drops": spipe.dropped
                + ppipe.dropped
                + sum(p.dropped for p in stream_pipes.values()),
                "group_fs": public_tree(kernel, gdir),
            }

        return GroupHandle(name=f"g{g}", spawn=spawn, stats=stats)


def _make_body(ctx, role, group_ops):
    """Generator body for one task: the role's own ops in index order;
    the observer additionally interleaves the consumer half of every
    ``stream_run`` (reading until hangup through blocking reads)."""
    halves = []
    for op in group_ops:
        if op.actor == role:
            halves.append((op.index, 0, "main", op))
        if role == "observer" and op.kind == "stream_run":
            halves.append((op.index, 1, "consume", op))
    halves.sort(key=lambda item: item[:2])

    def body(task):
        for _idx, _sub, half, op in halves:
            try:
                if half == "consume":
                    yield from _consume_stream(ctx, role, task, op)
                else:
                    yield from _run_op(ctx, role, task, op)
            except SyscallError as exc:
                _log(ctx, role, op, "errno", _errno_name(exc.errno))
            except IFCViolation as exc:
                _log(ctx, role, op, "violation", type(exc).__name__)

    return body


def _log(ctx, role, op, status, payload=None) -> None:
    """Record one op outcome.  Payloads of cleared (secret-privy)
    principals are stripped at record time — only public principals'
    data is an observable; statuses and errnos stay (the *shape* of the
    trace is public for everyone)."""
    if role in ctx["cleared"]:
        payload = "<cleared>"
    ctx["oplog"].append((op.index, role, op.kind, status, payload))


def _canon_stat(st: dict) -> tuple:
    """Canonicalize a stat result: drop the inode number — runtime
    creations shift per-fs numbering between the cooperative arm (all
    groups on one kernel) and a replica that ran a subset."""
    return tuple(sorted((k, v) for k, v in st.items() if k != "ino"))


def _canon_cqe(cqe, record_data: bool):
    result = cqe.result
    if isinstance(result, dict):
        result = _canon_stat(result)
    elif isinstance(result, list):
        result = tuple(bytes(b) for b in result)
    elif isinstance(result, bytearray):
        result = bytes(result)
    if not record_data and cqe.errno == 0:
        result = "<data>"
    return (cqe.op, cqe.errno, result)


def _run_op(ctx, role, task, op):
    """The op interpreter: one generator segment per runtime op kind."""
    kernel, fds, gdir = ctx["kernel"], ctx["fds"], ctx["gdir"]
    kind, args = op.kind, op.args
    if kind == "probe_vault":
        fd = yield syscall("open", f"{gdir}/vault", "r")
        data = yield syscall("read", fd, -1)
        yield syscall("close", fd)
        _log(ctx, role, op, "ok", bytes(data))
    elif kind == "probe_pipe":
        data = yield syscall("read", fds[("observer", "spipe_r")], -1)
        _log(ctx, role, op, "ok", bytes(data))
    elif kind == "probe_stat":
        st = yield syscall("stat", f"{gdir}/vault")
        _log(ctx, role, op, "ok", _canon_stat(st))
    elif kind == "pub_write":
        fd = yield syscall("open", f"{gdir}/board", "a")
        n = yield syscall("write", fd, args[0])
        yield syscall("close", fd)
        _log(ctx, role, op, "ok", n)
    elif kind == "pub_read":
        fd = yield syscall("open", f"{gdir}/board", "r")
        data = yield syscall("read", fd, -1)
        yield syscall("close", fd)
        _log(ctx, role, op, "ok", bytes(data))
    elif kind == "secret_write":
        fd = yield syscall("open", f"{gdir}/vault", "w")
        n = yield syscall("write", fd, ctx["secret"] + b":%03d" % op.index)
        yield syscall("close", fd)
        _log(ctx, role, op, "ok", n)
    elif kind == "pipe_secret_send":
        n = yield syscall(
            "write", fds[("owner", "spipe_w")], ctx["secret"] + b":%03d" % op.index
        )
        _log(ctx, role, op, "ok", n)
    elif kind == "pipe_pub_send":
        n = yield syscall("write", fds[(role, "ppipe_w")], args[0])
        _log(ctx, role, op, "ok", n)
    elif kind == "pipe_pub_recv":
        data = yield syscall("read", fds[(role, "ppipe_r")], -1)
        _log(ctx, role, op, "ok", bytes(data))
    elif kind == "taint":
        yield syscall("set_task_label", LabelType.SECRECY, Label.of(ctx["tag"]))
        _log(ctx, role, op, "ok")
    elif kind == "untaint":
        yield syscall("set_task_label", LabelType.SECRECY, Label.EMPTY)
        _log(ctx, role, op, "ok")
    elif kind == "transmit":
        n = yield syscall("transmit", args[0])
        _log(ctx, role, op, "ok", n)
    elif kind == "signal":
        yield syscall("kill", ctx["owner_tid"], args[0])
        _log(ctx, role, op, "ok")
    elif kind == "creat_scratch":
        fd = yield syscall("creat", f"{gdir}/scratch{args[0]}")
        yield syscall("close", fd)
        _log(ctx, role, op, "ok")
    elif kind == "scratch_rw":
        fd = yield syscall("open", f"{gdir}/scratch{args[0]}", "r+")
        yield syscall("write", fd, args[1])
        yield syscall("lseek", fd, 0)
        data = yield syscall("read", fd, -1)
        yield syscall("close", fd)
        _log(ctx, role, op, "ok", bytes(data))
    elif kind == "unlink_scratch":
        yield syscall("unlink", f"{gdir}/scratch{args[0]}")
        _log(ctx, role, op, "ok")
    elif kind == "submit_probe":
        cqes = yield submit(
            [
                Sqe("stat", f"{gdir}/board"),
                Sqe("stat", f"{gdir}/vault"),
                Sqe("transmit", b"probe-%03d" % op.index),
            ]
        )
        record = role not in ctx["cleared"]
        _log(ctx, role, op, "ok", tuple(_canon_cqe(c, record) for c in cqes))
    elif kind == "submit_rw":
        fd = yield syscall("open", f"{gdir}/board", "r+")
        cqes = yield submit(
            [
                Sqe("writev", fd, [args[0], args[0]]),
                Sqe("lseek", fd, 0),
                Sqe("readv", fd, [3, 3]),
            ]
        )
        yield syscall("close", fd)
        record = role not in ctx["cleared"]
        _log(ctx, role, op, "ok", tuple(_canon_cqe(c, record) for c in cqes))
    elif kind == "stream_run":
        sid, flavor, msgs = args
        wfd = fds[("owner", f"stream_w:{sid}")]
        for i in range(msgs):
            payload = (
                ctx["secret"] + b":st%d:%d" % (sid, i)
                if flavor == "secret"
                else b"st%d:%d" % (sid, i)
            )
            yield syscall("write", wfd, payload)
        yield syscall("close", wfd)
        _log(ctx, role, op, "ok", msgs)
    elif kind == "cap_send":
        cap = Capability(ctx["tag2"], CapType.MINUS)
        yield syscall("write_capability", cap, fds[("owner", "ppipe_w")])
        observer = ctx["tasks"]["observer"]
        got = kernel.sys_read_capability(
            observer, fds[("observer", "ppipe_r")]
        )
        _log(ctx, role, op, "ok", repr(got))
    elif kind == "relabel_vault":
        # The paper's revocation idiom with a *pre-allocated* tag:
        # allocating at run time would break replica parity, so build
        # minted tag2 and the op only re-labels (a journaled mutation).
        task.security.require_capability(ctx["tag"], CapType.BOTH)
        task.security.require_capability(ctx["tag2"], CapType.BOTH)
        inode = kernel.fs.resolve(f"{gdir}/vault")
        kernel.fs.set_labels(
            inode, LabelPair(Label.of(ctx["tag2"]), inode.labels.integrity)
        )
        yield yield_()
        _log(ctx, role, op, "ok")
    elif kind == "exec_board":
        yield syscall("exec", f"{gdir}/board")
        _log(ctx, role, op, "ok")
    elif kind == "ir_check":
        modes = run_ir_modes(*args, ctx["secret"])
        yield yield_()
        _log(ctx, role, op, "ok", modes)
    else:  # pragma: no cover - generator and executor share OP_KINDS
        raise ValueError(f"unknown fuzz op kind {kind!r}")


def _consume_stream(ctx, role, task, op):
    """Observer half of a ``stream_run``: blocking-read until hangup.
    A denied reader parks and wakes exactly like an empty-pipe reader
    (the PR 3 discipline), so both the chunk sequence and the scheduler
    trace are secret-independent unless the kernel leaks."""
    rfd = ctx["fds"][("observer", f"stream_r:{op.args[0]}")]
    chunks = []
    while True:
        data = yield read_blocking(rfd, -1)
        if not data:
            break
        chunks.append(bytes(data))
    _log(ctx, role, op, "consumed", tuple(chunks))


# ---------------------------------------------------------------------------
# Observable extraction
# ---------------------------------------------------------------------------


def public_tree(kernel: Kernel, start: str = "/") -> tuple:
    """Snapshot every *public* file under ``start``: ``(path, bytes,
    labels)`` for inodes with an empty secrecy label.  Secret inodes
    contribute existence only — their names live in public directories —
    and are never descended into or sized."""
    try:
        root = kernel.fs.resolve(start)
    except SyscallError:
        return ()
    out: list = []

    def walk(inode, path) -> None:
        for name in sorted(inode.children):
            child = inode.children[name]
            cpath = f"{path.rstrip('/')}/{name}"
            if len(child.labels.secrecy):
                out.append((cpath, "<secret>", ""))
            elif child.is_dir:
                out.append((cpath, "<dir>", repr(child.labels)))
                walk(child, cpath)
            else:
                out.append((cpath, bytes(child.data), repr(child.labels)))

    if len(root.labels.secrecy):
        return ((start, "<secret>", ""),)
    walk(root, start if start != "/" else "")
    return tuple(out)


def _merge_results(results) -> dict:
    """Deterministic merge of per-group observables in global group
    order (the psched discipline: audit re-stamped 1..n, traffic in
    stamp order), plus the fuzz extensions: op logs, per-group public
    subtrees, scheduler traces, and coarse timing buckets."""
    audit_items: list = []
    traffic: list = []
    denials: Counter = Counter()
    hooks: Counter = Counter()
    for r in results:
        audit_items.extend(r.audit)
        traffic.extend(r.traffic)
        denials.update(dict(r.denials))
        hooks.update(dict(r.hooks))
    traffic.sort(key=lambda item: item[0][0])
    return {
        "audit": tuple(
            str(AuditEntry(seq, AuditKind(kind), subsystem, principal, detail))
            for seq, (kind, subsystem, principal, detail) in enumerate(
                audit_items, 1
            )
        ),
        "traffic": tuple(payload for _, payload in traffic),
        "denials": tuple(sorted(denials.items())),
        "hooks": tuple(sorted(hooks.items())),
        "steps": tuple(r.steps for r in results),
        "timing_buckets": tuple(r.deferred // TIMING_BUCKET for r in results),
        "sched": tuple(r.sched_trace for r in results),
        "stuck": tuple((r.group, r.stuck) for r in results if r.stuck),
        "oplogs": tuple(r.stats.get("oplog", ()) for r in results),
        "pipe_drops": tuple(r.stats.get("pipe_drops", 0) for r in results),
        "group_fs": tuple(r.stats.get("group_fs", ()) for r in results),
    }


_INO_RE = re.compile(r"ino=\d+")


def normalize_cross_arm(observables: dict) -> dict:
    """Project observables for the *cross-arm* parity check (cooperative
    vs. replicated): blur inode numbers out of audit details (runtime
    creations shift per-fs numbering between a kernel that ran every
    group and replicas that each ran a subset) and drop the hook-call
    counters (walk-cache warmth differs by construction).  The
    secret-swap comparison within an arm is always exact bytes."""
    out = dict(observables)
    out["audit"] = tuple(_INO_RE.sub("ino=?", line) for line in out["audit"])
    out.pop("hooks", None)
    out.pop("caps_fs", None)
    return out


def diff_observables(a: dict, b: dict, limit: int = 200) -> list:
    """Human-readable field-by-field divergence list (empty = equal)."""
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            ra, rb = repr(va), repr(vb)
            out.append(f"{key} differs: {ra[:limit]} vs {rb[:limit]}")
    return out


# ---------------------------------------------------------------------------
# Arms of the execution matrix
# ---------------------------------------------------------------------------


def _boot(world, *, faults: Optional[FaultPlan] = None, worker_id: int = 0):
    """Boot one kernel replica from clean process-global state: install
    the fault plan *before* build so a recording run's crossing numbers
    cover build-time sites too, then build the world with boot work
    deferred and drained (boot cost is not service time)."""
    _fresh_run_state()
    kernel = Kernel(world.security_module())
    kernel.net.transmitted.worker_id = worker_id
    if faults is not None:
        kernel.install_faults(faults)
    kernel.defer_work = True
    handles = list(world.build(kernel))
    kernel.drain_deferred_work()
    return kernel, handles


def run_replicated(
    plan: TracePlan,
    secret: bytes,
    *,
    leak: Optional[str] = None,
    workers: int = 1,
    record: Optional[FaultPlan] = None,
) -> dict:
    """Run the trace across ``workers`` in-process kernel replicas, each
    building the full world and running its assigned groups (``g %
    workers`` — the deterministic mirror of the psched fork pool; the
    real fork-pool arm is :func:`run_forked`).  Observables merge in
    global group order.  ``record`` (a recording :class:`FaultPlan`) is
    installed on worker 0 and captures its fault-site crossing trace."""
    world = FuzzWorld(plan, secret, leak)
    workers = max(1, workers)
    by_group: dict = {}
    caps_fs: tuple = ()
    for wid in range(workers):
        kernel, handles = _boot(
            world, faults=record if wid == 0 else None, worker_id=wid
        )
        for g in range(plan.group_count):
            if g % workers == wid:
                by_group[g] = run_group(
                    kernel, g, handles[g], worker=wid, trace=True
                )
        if wid == 0:
            caps_fs = public_tree(kernel, "/caps")
    merged = _merge_results([by_group[g] for g in sorted(by_group)])
    merged["caps_fs"] = caps_fs
    return merged


def run_forked(
    plan: TracePlan,
    secret: bytes,
    *,
    workers: int = 2,
    leak: Optional[str] = None,
) -> dict:
    """The parallel arm over *real* fork workers via
    :class:`~repro.osim.psched.ParallelScheduler` — the opt-in ``fork``
    arm (tests and ``lamc fuzz --arms ...,fork``); the in-process
    replica executor is the sweep default (same replication discipline,
    no process overhead)."""
    from ..osim.psched import ParallelScheduler

    _fresh_run_state()
    sched = ParallelScheduler(
        FuzzWorld(plan, secret, leak),
        workers=workers,
        executor="fork",
        defer_work=True,
        trace=True,
    )
    results = sched.run()
    sched.shutdown()
    merged = _merge_results(results)
    merged["caps_fs"] = ()  # worker-local; parity asserted via replica arm
    return merged


def run_faulted(
    plan: TracePlan,
    secret: bytes,
    fault_plan: FaultPlan,
    *,
    leak: Optional[str] = None,
) -> dict:
    """The crash/recovery arm: run the trace under an injected fault,
    then crash, remount, audit the recovery invariants, and snapshot the
    recovered public state.  All of it must be identical under secret
    swap — noninterference asserted across the crash."""
    world = FuzzWorld(plan, secret, leak)
    outcome: tuple = ("clean",)
    results: list = []
    kernel = None
    try:
        kernel, handles = _boot(world, faults=fault_plan)
        for g in range(plan.group_count):
            results.append(run_group(kernel, g, handles[g]))
    except KernelCrash as crash:
        outcome = ("crash", crash.site, crash.occurrence)
    except SyscallError as exc:
        # An injected EIO/ENOSPC escaping the *build* (runtime bodies
        # catch their own): the machine stays up but boot is degraded.
        outcome = ("boot-error", _errno_name(exc.errno))
    obs = _merge_results(results)
    obs["outcome"] = outcome
    obs["fired"] = tuple(
        (site, nth, kind.value) for site, nth, kind in fault_plan.fired
    )
    if kernel is not None:
        kernel.crash()
        kernel.remount()
        obs["recovery_violations"] = tuple(
            check_recovery_invariants(kernel, strict=False)
        )
        obs["post_audit"] = tuple(str(e) for e in kernel.audit.entries())
        obs["post_fs"] = public_tree(kernel, "/")
    return obs


# ---------------------------------------------------------------------------
# The oracle: two runs per arm, byte-compared
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One observable divergence (or broken invariant) in one arm."""

    arm: str
    kind: str
    detail: str


@dataclass
class TraceVerdict:
    """Outcome of checking one generated trace."""

    seed: int
    plan: TracePlan
    violations: list = field(default_factory=list)
    op_kinds: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_trace(
    plan: TracePlan,
    *,
    leak: Optional[str] = None,
    arms: tuple = ARMS,
    workers: int = 2,
    secrets: Optional[tuple] = None,
) -> TraceVerdict:
    """Run one trace across the execution matrix under the secret-swap
    oracle.  The verdict's ``violations`` list is empty iff every arm's
    observables are byte-identical under swap, the cooperative and
    replicated arms agree with each other, embedded IR programs agree
    across VM tiers, and crash recovery upholds its invariants."""
    secret_a, secret_b = secrets or default_secrets(plan.seed)
    verdict = TraceVerdict(seed=plan.seed, plan=plan)
    verdict.op_kinds = dict(Counter(op.kind for op in plan.ops))

    def swap(arm: str, runner) -> dict:
        obs_a, obs_b = runner(secret_a), runner(secret_b)
        for delta in diff_observables(obs_a, obs_b):
            verdict.violations.append(Violation(arm, "secret-swap", delta))
        return obs_a

    coop_a = None
    crossings: dict = {}
    if "coop" in arms:

        def coop(secret):
            rec = FaultPlan(record=True)
            obs = run_replicated(plan, secret, leak=leak, workers=1, record=rec)
            crossings[secret] = tuple(rec.trace)
            return obs

        coop_a = swap("coop", coop)
        if crossings[secret_a] != crossings[secret_b]:
            verdict.violations.append(
                Violation(
                    "coop",
                    "fault-trace",
                    "fault-site crossing trace differs under secret swap",
                )
            )
        _check_tiers(verdict, coop_a)
    if "par2" in arms:
        par_a = swap(
            "par2",
            lambda s: run_replicated(plan, s, leak=leak, workers=workers),
        )
        if coop_a is not None:
            for delta in diff_observables(
                normalize_cross_arm(coop_a), normalize_cross_arm(par_a)
            ):
                verdict.violations.append(
                    Violation("par2", "determinism", delta)
                )
    if "fork" in arms:
        fork_a = swap(
            "fork",
            lambda s: run_forked(plan, s, workers=workers, leak=leak),
        )
        if coop_a is not None:
            for delta in diff_observables(
                normalize_cross_arm(coop_a), normalize_cross_arm(fork_a)
            ):
                verdict.violations.append(
                    Violation("fork", "determinism", delta)
                )
    if "fault" in arms:
        points = crossings.get(secret_a) or record_crossings(
            plan, secret_a, leak
        )
        if points:
            fault_a = swap(
                "fault",
                lambda s: run_faulted(
                    plan,
                    s,
                    FaultPlan.randomized(plan.seed ^ 0x5EED, points, 1)[0],
                    leak=leak,
                ),
            )
            for violation in fault_a.get("recovery_violations", ()):
                verdict.violations.append(
                    Violation("fault", "recovery", violation)
                )
    return verdict


def record_crossings(plan: TracePlan, secret: bytes, leak: Optional[str]) -> tuple:
    """One recording run (cooperative arm shape) returning every fault
    site crossing — the sample space for the composed fault arm."""
    rec = FaultPlan(record=True)
    run_replicated(plan, secret, leak=leak, workers=1, record=rec)
    return tuple(rec.trace)


def _check_tiers(verdict: TraceVerdict, obs: dict) -> None:
    """Embedded IR ops ran under all three VM modes inline; result,
    exception, and printed output must agree mode-to-mode (statics and
    the fresh kernel's audit may legitimately differ across tiers —
    they are still exact A-vs-B observables through the op log)."""
    for oplog in obs.get("oplogs", ()):
        for _idx, _role, kind, _status, payload in oplog:
            if kind != "ir_check" or not isinstance(payload, tuple):
                continue
            outcomes = {entry[1:4] for entry in payload}
            if len(outcomes) > 1:
                verdict.violations.append(
                    Violation(
                        "coop",
                        "vm-tier",
                        f"tier divergence: {sorted(outcomes)!r:.300}",
                    )
                )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_trace(
    plan: TracePlan,
    *,
    leak: Optional[str] = None,
    arms: tuple = ("coop",),
    workers: int = 2,
) -> tuple:
    """Shrink a failing trace.  Returns ``(K, minimal_plan)``: ``K`` is
    the smallest failing prefix length (the ``--ops K`` replay knob,
    found by binary search over prefixes), and ``minimal_plan``
    additionally drops interior ops greedily (dependency-closed) while
    the failure reproduces."""

    def fails(candidate: TracePlan) -> bool:
        return bool(candidate.ops) and not check_trace(
            candidate, leak=leak, arms=arms, workers=workers
        ).ok

    total = len(plan.ops)
    lo, hi = 1, total
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(plan.truncated(mid)):
            hi = mid
        else:
            lo = mid + 1
    k = lo
    minimal = plan.truncated(k)
    keep = {op.index for op in minimal.ops}
    for index in sorted(keep, reverse=True):
        if len(keep) == 1:
            break
        trial = plan.subset(frozenset(keep - {index}))
        if fails(trial):
            keep.discard(index)
            minimal = trial
    return k, minimal


# ---------------------------------------------------------------------------
# Sweeps and budgets
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Aggregate outcome of a multi-trace sweep."""

    base_seed: int
    traces: int = 0
    ops_total: int = 0
    coverage: dict = field(default_factory=dict)
    verdicts: list = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = (
            "ok"
            if self.ok
            else f"{sum(len(v.violations) for v in self.failures)} VIOLATIONS"
        )
        return (
            f"{self.traces} traces (seeds {self.base_seed}.."
            f"{self.base_seed + self.traces - 1}), {self.ops_total} ops, "
            f"{len(self.coverage)}/{len(OP_KINDS)} op kinds: {status}"
        )


def fuzz_sweep(
    base_seed: int,
    traces: int,
    *,
    ops: Optional[int] = None,
    leak: Optional[str] = None,
    arms: tuple = ARMS,
    workers: int = 2,
    stop_on_violation: bool = True,
) -> FuzzReport:
    """Check ``traces`` consecutive seeds; a violation under seed ``s``
    replays with ``lamc fuzz --seed s`` alone (plus ``--ops K`` after
    shrinking)."""
    report = FuzzReport(base_seed=base_seed)
    coverage: Counter = Counter()
    for i in range(traces):
        plan = generate_plan(base_seed + i)
        if ops is not None:
            plan = plan.truncated(ops)
        verdict = check_trace(plan, leak=leak, arms=arms, workers=workers)
        report.verdicts.append(verdict)
        report.traces += 1
        report.ops_total += len(plan.ops)
        coverage.update(verdict.op_kinds)
        if verdict.violations and stop_on_violation:
            break
    report.coverage = dict(sorted(coverage.items()))
    return report


def leak_catch_budget(
    leak: str,
    *,
    base_seed: int = 0,
    max_traces: int = 5,
    arms: tuple = ("coop",),
) -> Optional[int]:
    """Negative-control budget: number of traces until the planted leak
    is caught, or ``None`` if the budget is exhausted — the oracle has
    gone blind and the caller must fail hard."""
    for i in range(max_traces):
        if not check_trace(generate_plan(base_seed + i), leak=leak, arms=arms).ok:
            return i + 1
    return None
