"""lamlint: compile-time IFC violation detection over mini-JIT programs.

``run_lint`` drives every rule and returns a :class:`LintReport`; the
``lamc lint`` subcommand is a thin shell around it.  The rules:

* **LAM000** — front-end rejection.  The bytecode verifier and the region
  static checker run first; their findings are wrapped as diagnostics so
  one tool reports everything.  Structural verification failures stop the
  deeper rules (their dataflow would be meaningless).
* **LAM001** — *guaranteed* label-flow violations.  Combines three
  interprocedural facts: the method's body provably always runs inside a
  region (call-graph context analysis), every region that can govern it
  declares nonempty secrecy (for writes) or integrity (for reads), and the
  accessed object is definitely unlabeled (label-flow must-analysis).
  ``check_flow`` against an empty label set cannot pass, so if the
  instruction executes, the barrier throws — Bell–LaPadula for writes,
  Biba for reads.  Reported with a source-to-sink flow trace.
* **LAM002** — region methods whose label checks are all provably
  redundant (after whole-program barrier analysis): the region still pays
  entry/exit and allocation labeling, but enforces no checks.
* **LAM003** — unreachable blocks inside region methods, and region
  methods no call site ever enters (closed world).
* **LAM004** — dead ``catch`` handlers: the region body (transitively,
  through non-region callees) cannot raise any exception the region would
  suppress, so the declared handler can never run.
* **LAM005** — statics smuggling: a non-region helper that may execute
  under a region (nonempty governing-region set) touches statics.  The
  region checker bans statics in region bodies, but the runtime performs
  no check when a *callee* does it — the classic way around the ban.
  Suppressed under ``labeled_statics``, where static barriers guard these
  accesses dynamically.
* **LAM006** — possible secret leaks: a value that *may* derive from
  secrecy-labeled data (interprocedural taint) reaches ``print`` or an
  unlabeled static — output channels no barrier guards.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..core import StaticCheckError
from ..jit.barrier_insertion import (
    BARRIER_OPS,
    CompileContext,
    _accessed_register,
    insert_barriers,
)
from ..jit.cfg import CFG
from ..jit.ir import Opcode, Program, READ_OPS, WRITE_OPS
from ..jit.region_checker import check_region_method
from ..jit.verifier import verify_method
from .callgraph import CallGraph, IN_REGION
from .diagnostics import Diagnostic, make, sort_key
from .labelflow import FlowStep, TaintAnalysis, UnlabeledAnalysis
from .safety import compute_interprocedural_facts, may_raise_suppressible

#: Rule classes this linter implements (stable API, mirrored in docs).
RULES = ("LAM000", "LAM001", "LAM002", "LAM003", "LAM004", "LAM005", "LAM006")


@dataclass
class LintReport:
    """Every finding for one program, sorted by severity/code/location."""

    diagnostics: list = field(default_factory=list)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def finish(self) -> "LintReport":
        self.diagnostics.sort(key=sort_key)
        return self

    @property
    def errors(self) -> list:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def codes(self) -> set:
        return {d.code for d in self.diagnostics}

    def to_dicts(self) -> list:
        return [d.to_dict() for d in self.diagnostics]

    def format_human(self) -> str:
        if not self.diagnostics:
            return "clean: no findings"
        parts = [d.format_human() for d in self.diagnostics]
        counts = {}
        for d in self.diagnostics:
            counts[d.severity] = counts.get(d.severity, 0) + 1
        summary = ", ".join(
            f"{n} {sev}{'s' if n != 1 else ''}"
            for sev, n in sorted(counts.items())
        )
        return "\n".join(parts) + f"\n-- {summary}"


def run_lint(program: Program, labeled_statics: bool = False) -> LintReport:
    """Run every rule over a parsed (uninstrumented) program."""
    report = LintReport()
    front_end, structural = _rule_front_end(program, labeled_statics)
    report.extend(front_end)
    if structural:
        # Broken block structure / unknown callees invalidate CFG and
        # call-graph construction; deeper rules would crash or lie.
        return report.finish()

    cg = CallGraph(program)
    unlabeled = UnlabeledAnalysis(program, cg)
    taint = TaintAnalysis(program, cg)

    report.extend(_rule_definite_violations(program, cg, unlabeled))
    report.extend(_rule_redundant_regions(program, labeled_statics))
    report.extend(_rule_unreachable_regions(program, cg))
    report.extend(_rule_dead_catch(program, cg))
    if not labeled_statics:
        report.extend(_rule_statics_smuggling(program, cg))
    report.extend(_rule_possible_leaks(program, cg, taint))
    return report.finish()


# ---------------------------------------------------------------------------
# LAM000
# ---------------------------------------------------------------------------


def _rule_front_end(program: Program, labeled_statics: bool):
    diags: list[Diagnostic] = []
    structural = False
    for method in program.methods.values():
        errors = verify_method(method, program)
        if errors:
            structural = True
        for message in errors:
            diags.append(make("LAM000", method.name, message))
    if structural:
        return diags, True
    for method in program.methods.values():
        if not method.is_region:
            continue
        try:
            check_region_method(method, allow_statics=labeled_statics)
        except StaticCheckError as exc:
            diags.append(make("LAM000", method.name, str(exc)))
    return diags, False


# ---------------------------------------------------------------------------
# LAM001
# ---------------------------------------------------------------------------


def _governors_all(program: Program, governors, name: str, kind: str):
    """True (with the governing set) iff every region that can govern
    ``name`` declares a nonempty ``kind`` label set."""
    govs = governors[name]
    if not govs:
        return False, govs
    for gov in govs:
        spec = program.methods[gov].region_spec
        if spec is None:
            return False, govs
        labels = spec.secrecy if kind == "secrecy" else spec.integrity
        if labels.is_empty:
            return False, govs
    return True, govs


def _unlabeled_trace(
    unlabeled: UnlabeledAnalysis, cg: CallGraph, name: str, reg: str
) -> list[FlowStep]:
    """Walk parameter origins up the call graph to the allocation site."""
    steps: list[FlowStep] = []
    program = unlabeled.program
    seen: set[tuple[str, str]] = set()
    cur_name, cur_reg = name, reg
    for _ in range(8):
        if (cur_name, cur_reg) in seen:
            break
        seen.add((cur_name, cur_reg))
        step = unlabeled.origin(cur_name, cur_reg)
        if step is None:
            break
        steps.append(step)
        method = program.methods[cur_name]
        if cur_reg not in method.params:
            break
        sites = cg.sites_of[cur_name]
        if not sites:
            break
        site = sites[0]
        pidx = method.params.index(cur_reg)
        if pidx >= len(site.args):
            break
        cur_name, cur_reg = site.caller, site.args[pidx]
    steps.reverse()
    return steps


def _rule_definite_violations(
    program: Program, cg: CallGraph, unlabeled: UnlabeledAnalysis
):
    diags = []
    contexts = cg.region_contexts()
    governors = cg.governing_regions()
    for name, method in program.methods.items():
        if contexts[name] != frozenset({IN_REGION}):
            continue
        secrecy_ok, secrecy_govs = _governors_all(
            program, governors, name, "secrecy"
        )
        integrity_ok, integrity_govs = _governors_all(
            program, governors, name, "integrity"
        )
        if not secrecy_ok and not integrity_ok:
            continue
        for label, block in method.blocks.items():
            facts_before = unlabeled.facts_before(name, label)
            for index, instr in enumerate(block.instrs):
                if instr.op in BARRIER_OPS or instr.op not in (
                    READ_OPS | WRITE_OPS
                ):
                    continue
                obj = _accessed_register(instr)
                if obj not in facts_before[index]:
                    continue
                is_write = instr.op in WRITE_OPS
                if is_write and secrecy_ok:
                    govs, rule = secrecy_govs, "secrecy (Bell-LaPadula)"
                    what = "write to"
                elif not is_write and integrity_ok:
                    govs, rule = integrity_govs, "integrity (Biba)"
                    what = "read from"
                else:
                    continue
                trace = _unlabeled_trace(unlabeled, cg, name, obj)
                trace.append(FlowStep(
                    name, label, index,
                    f"{what} unlabeled '{obj}' while the thread holds "
                    f"nonempty {rule.split()[0]} labels — the barrier must "
                    f"throw",
                ))
                diags.append(make(
                    "LAM001", name,
                    f"guaranteed {rule} violation: {what} "
                    f"definitely-unlabeled object '{obj}' under region(s) "
                    f"{', '.join(sorted(govs))} — this access can never "
                    f"succeed",
                    block=label, index=index, trace=trace,
                ))
    return diags


# ---------------------------------------------------------------------------
# LAM002
# ---------------------------------------------------------------------------


def _rule_redundant_regions(program: Program, labeled_statics: bool):
    diags = []
    instrumented = program
    if not any(
        instr.op in BARRIER_OPS
        for m in program.methods.values()
        for instr in m.all_instrs()
    ):
        instrumented = copy.deepcopy(program)
        insert_barriers(
            instrumented,
            CompileContext.UNKNOWN,
            labeled_statics=labeled_statics,
        )
    facts = compute_interprocedural_facts(instrumented)
    check_ops = (
        Opcode.READBAR, Opcode.WRITEBAR, Opcode.SREADBAR, Opcode.SWRITEBAR,
    )
    for name, method in instrumented.methods.items():
        if not method.is_region:
            continue
        checks = sum(
            1 for instr in method.all_instrs() if instr.op in check_ops
        )
        if checks == 0:
            continue
        redundant = facts.redundant_barriers(name)
        if len(redundant) == checks:
            diags.append(make(
                "LAM002", name,
                f"all {checks} label check(s) in region {name!r} are "
                f"provably redundant — every accessed object is "
                f"region-fresh or already checked; the region enforces "
                f"nothing beyond entry/exit",
            ))
    return diags


# ---------------------------------------------------------------------------
# LAM003
# ---------------------------------------------------------------------------


def _rule_unreachable_regions(program: Program, cg: CallGraph):
    diags = []
    for name, method in program.methods.items():
        if not method.is_region:
            continue
        if not cg.callers[name]:
            diags.append(make(
                "LAM003", name,
                f"region method {name!r} is never called — its checks and "
                f"labels are dead code (closed-world assumption)",
            ))
        reachable = CFG(method).reachable()
        for label in method.blocks:
            if label not in reachable:
                diags.append(make(
                    "LAM003", name,
                    f"block {label!r} in region {name!r} is unreachable "
                    f"from entry — the code inside never executes",
                    block=label,
                ))
    return diags


# ---------------------------------------------------------------------------
# LAM004
# ---------------------------------------------------------------------------


def _rule_dead_catch(program: Program, cg: CallGraph):
    diags = []
    may_raise = may_raise_suppressible(program, cg)
    for name, method in program.methods.items():
        spec = method.region_spec
        if not method.is_region or spec is None or spec.catch is None:
            continue
        if not may_raise[name]:
            diags.append(make(
                "LAM004", name,
                f"catch handler {spec.catch!r} of region {name!r} can "
                f"never run: the region body (including callees) cannot "
                f"raise any exception the region would suppress",
            ))
    return diags


# ---------------------------------------------------------------------------
# LAM005
# ---------------------------------------------------------------------------


def _rule_statics_smuggling(program: Program, cg: CallGraph):
    diags = []
    governors = cg.governing_regions()
    for name, method in program.methods.items():
        if method.is_region:
            continue  # region bodies are already policed by LAM000
        govs = governors[name]
        if not govs:
            continue
        for label, block in method.blocks.items():
            for index, instr in enumerate(block.instrs):
                if instr.op not in (Opcode.GETSTATIC, Opcode.PUTSTATIC):
                    continue
                static = (
                    instr.operands[1]
                    if instr.op is Opcode.GETSTATIC
                    else instr.operands[0]
                )
                verb = (
                    "read" if instr.op is Opcode.GETSTATIC else "written"
                )
                trace = []
                for gov in sorted(govs):
                    chain = cg.call_chain(gov, name)
                    if chain:
                        for site in chain:
                            trace.append(FlowStep(
                                site.caller, site.block, site.index,
                                f"call to '{site.callee}' under region "
                                f"'{gov}'",
                            ))
                        break
                trace.append(FlowStep(
                    name, label, index,
                    f"static '{static}' {verb} while the thread may hold "
                    f"region labels — no barrier checks this access",
                ))
                diags.append(make(
                    "LAM005", name,
                    f"statics smuggling: non-region helper {name!r} "
                    f"accesses static {static!r} but may run under "
                    f"region(s) {', '.join(sorted(govs))}, bypassing the "
                    f"region checker's static ban",
                    block=label, index=index, trace=trace,
                ))
    return diags


# ---------------------------------------------------------------------------
# LAM006
# ---------------------------------------------------------------------------


def _rule_possible_leaks(program: Program, cg: CallGraph, taint: TaintAnalysis):
    diags = []
    for name, method in program.methods.items():
        for label, block in method.blocks.items():
            for index, instr in enumerate(block.instrs):
                if instr.op is Opcode.PRINT:
                    reg, channel = instr.operands[0], "print"
                elif instr.op is Opcode.PUTSTATIC:
                    reg, channel = (
                        instr.operands[1],
                        f"static '{instr.operands[0]}'",
                    )
                else:
                    continue
                regions = taint.tainted_regions(name, label, index, reg)
                if not regions:
                    continue
                trace = []
                source = taint.source(name, reg)
                if source is not None:
                    trace.append(source)
                trace.append(FlowStep(
                    name, label, index,
                    f"'{reg}' reaches {channel}, an output channel no "
                    f"barrier guards",
                ))
                diags.append(make(
                    "LAM006", name,
                    f"possible secret leak: {reg!r} may derive from "
                    f"secrecy region(s) {', '.join(sorted(regions))} and "
                    f"flows to {channel}",
                    block=label, index=index, trace=trace,
                ))
    return diags
