"""Interprocedural label-flow analysis over mini-JIT IR.

Two complementary passes, both context-insensitive with per-method
summaries, both built on the generalized dataflow framework:

**Definitely-unlabeled** (a forward *must* analysis, used by the
``LAM001`` rule): which registers are guaranteed to hold an object that
carries no labels?  Objects allocated while provably outside every region
(or inside regions whose label sets are empty) are unlabeled, labels are
immutable, and the fact follows the object through ``mov``, calls (via
argument/return summaries) and returns.  Writing such an object from a
region with nonempty secrecy — or reading it from a region with nonempty
integrity — *must* throw: ``check_flow`` compares against an empty label
set, so no run can pass the barrier.

**May-taint** (a forward *may* analysis, used by the ``LAM006`` rule):
which registers may hold data *derived from* a secrecy-labeled object?
A ``getfield``/``aload`` executed under a secrecy region, from an object
that is not provably region-fresh, produces tainted data; arithmetic and
moves propagate it; call summaries carry it through returns.  The runtime
checks accesses, not values — once a secret-derived value sits in a
register it can leave the region unchecked.  Printing it, storing it to a
static, or writing it into a definitely-unlabeled object are therefore
*possible* leaks that no barrier will ever catch, which is exactly what a
compile-time lint is for.

Both passes record provenance (:class:`FlowStep`) so diagnostics can show
*how* a value got somewhere, not just that it did.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..jit.cfg import CFG
from ..jit.dataflow import ForwardMayAnalysis, ForwardMustAnalysis
from ..jit.ir import ALLOC_OPS, Instr, Method, Opcode, Program
from .callgraph import CallGraph, IN_REGION
from .safety import region_fresh_registers


@dataclass(frozen=True)
class FlowStep:
    """One hop of a propagation path, printable in diagnostics."""

    method: str
    block: str
    index: int
    note: str

    def location(self) -> str:
        return f"{self.method}/{self.block}[{self.index}]"


def _labels_empty(spec) -> bool:
    return spec is None or (spec.secrecy.is_empty and spec.integrity.is_empty)


def _region_secrecy_nonempty(method: Method) -> bool:
    return (
        method.is_region
        and method.region_spec is not None
        and not method.region_spec.secrecy.is_empty
    )


# ---------------------------------------------------------------------------
# Definitely-unlabeled objects
# ---------------------------------------------------------------------------


class UnlabeledAnalysis:
    """Whole-program *definitely unlabeled* facts.

    ``facts_before(m, block)`` gives, per instruction, the registers that
    must hold an unlabeled object.  ``origin(m, reg)`` explains where the
    proof starts (an allocation site, or a parameter all of whose call
    sites pass unlabeled objects).
    """

    def __init__(self, program: Program, callgraph: CallGraph | None = None):
        self.program = program
        self.cg = callgraph or CallGraph(program)
        self.contexts = self.cg.region_contexts()
        self.governors = self.cg.governing_regions()
        #: (method, reg) -> witness step for the start of the proof.
        self._origins: dict[tuple[str, str], FlowStep] = {}
        #: method -> frozenset of *parameter* registers proven unlabeled.
        self.entry_facts: dict[str, frozenset] = {}
        #: method -> does every ``ret`` return a definitely-unlabeled object?
        self.ret_unlabeled: dict[str, bool] = {}
        self._analyses: dict[str, ForwardMustAnalysis] = {}
        self._solve()

    # An allocation in ``m`` yields an unlabeled object iff every context
    # the body may run in labels fresh objects with the empty pair: outside
    # regions always, inside only under regions that declare no labels.
    def _alloc_unlabeled(self, name: str) -> bool:
        ctx = self.contexts[name]
        if IN_REGION in ctx:
            govs = self.governors[name]
            if not govs:
                return False
            for gov in govs:
                if not _labels_empty(self.program.methods[gov].region_spec):
                    return False
        return bool(ctx)  # unknown-context methods prove nothing

    def _transfer_factory(self, name: str):
        alloc_ok = self._alloc_unlabeled(name)
        ret_unlabeled = self.ret_unlabeled

        def transfer(instr: Instr, facts: frozenset) -> frozenset:
            op = instr.op
            if op in ALLOC_OPS:
                dst = instr.operands[0]
                pruned = frozenset(f for f in facts if f != dst)
                return pruned | {dst} if alloc_ok else pruned
            if op is Opcode.MOV:
                dst, src = instr.operands
                pruned = frozenset(f for f in facts if f != dst)
                return pruned | {dst} if src in facts else pruned
            if op is Opcode.CALL:
                dst = instr.operands[0]
                if dst is None:
                    return facts
                pruned = frozenset(f for f in facts if f != dst)
                if ret_unlabeled.get(instr.operands[1], False):
                    return pruned | {dst}
                return pruned
            defined = instr.defined_register()
            if defined is not None:
                return frozenset(f for f in facts if f != defined)
            return facts

        return transfer

    def _solve(self) -> None:
        program, cg = self.program, self.cg
        # Optimistic start (must-analysis): trust everything, descend.
        # Unlike barrier-safety facts, region methods trust their call
        # sites too — region entry does not relabel already-allocated
        # objects, so an unlabeled argument stays unlabeled inside.
        for name, method in program.methods.items():
            has_callers = bool(cg.callers[name])
            self.entry_facts[name] = (
                frozenset(method.params) if has_callers else frozenset()
            )
            self.ret_unlabeled[name] = True

        for _ in range(len(program.methods) * 2 + 2):
            changed = False
            incoming: dict[str, list[frozenset]] = {
                m: [] for m in program.methods
            }
            for name, method in program.methods.items():
                analysis = ForwardMustAnalysis(
                    CFG(method),
                    self._transfer_factory(name),
                    boundary=self.entry_facts[name],
                )
                analysis.solve()
                returns_ok = True
                for label, block in method.blocks.items():
                    facts_before = analysis.facts_before_each_instr(label)
                    for index, instr in enumerate(block.instrs):
                        if instr.op is Opcode.RET:
                            reg = instr.operands[0]
                            if reg is None or reg not in facts_before[index]:
                                returns_ok = False
                for site in cg.sites_in[name]:
                    callee = program.methods.get(site.callee)
                    if callee is None:
                        continue
                    facts = analysis.facts_before_each_instr(site.block)[
                        site.index
                    ]
                    passed = frozenset(
                        param
                        for param, arg in zip(callee.params, site.args)
                        if arg in facts
                    )
                    incoming[site.callee].append(passed)
                if returns_ok != self.ret_unlabeled[name]:
                    self.ret_unlabeled[name] = returns_ok
                    changed = True
            for name in program.methods:
                if not cg.callers[name]:
                    continue
                sets = incoming[name]
                new = (
                    frozenset.intersection(*sets) if sets else frozenset()
                )
                if new != self.entry_facts[name]:
                    self.entry_facts[name] = new
                    changed = True
            if not changed:
                break

        self._record_origins()

    def _record_origins(self) -> None:
        for name, method in self.program.methods.items():
            for param in self.entry_facts[name]:
                sites = self.cg.sites_of[name]
                where = sites[0].location() if sites else "entry"
                self._origins[(name, param)] = FlowStep(
                    name, method.entry, 0,
                    f"parameter '{param}' receives a definitely-unlabeled "
                    f"object at every call site (e.g. {where})",
                )
            if not self._alloc_unlabeled(name):
                continue
            for label, block in method.blocks.items():
                for index, instr in enumerate(block.instrs):
                    if instr.op in ALLOC_OPS:
                        dst = instr.operands[0]
                        self._origins.setdefault(
                            (name, dst),
                            FlowStep(
                                name, label, index,
                                f"'{dst}' allocated outside any labeled "
                                f"region, so it carries no labels",
                            ),
                        )

    def analysis_for(self, name: str) -> ForwardMustAnalysis:
        analysis = self._analyses.get(name)
        if analysis is None:
            method = self.program.methods[name]
            analysis = ForwardMustAnalysis(
                CFG(method),
                self._transfer_factory(name),
                boundary=self.entry_facts[name],
            )
            analysis.solve()
            self._analyses[name] = analysis
        return analysis

    def facts_before(self, name: str, label: str) -> list[frozenset]:
        return self.analysis_for(name).facts_before_each_instr(label)

    def origin(self, name: str, reg: str) -> FlowStep | None:
        """Best-effort witness for why ``reg`` is definitely unlabeled."""
        return self._origins.get((name, reg))


# ---------------------------------------------------------------------------
# May-taint (secret-derived values)
# ---------------------------------------------------------------------------

#: Taint tokens are either a region-method name (data may derive from that
#: region's secrets) or a parameter token (data may derive from whatever the
#: parameter held at entry) used to build return summaries.
_PARAM_TOKEN = "\0param\0"


@dataclass
class TaintSummary:
    """Context-insensitive summary: how taint crosses a method boundary."""

    #: Parameter names whose entry taint may flow into the return value.
    ret_from_params: frozenset = frozenset()
    #: Regions whose secrets may intrinsically taint the return value
    #: (a secret read inside this method or a transitive callee).
    ret_regions: frozenset = frozenset()

    @property
    def ret_tainted(self) -> bool:
        return bool(self.ret_regions)


class TaintAnalysis:
    """Whole-program may-taint: registers that may hold secret-derived
    data, with the secrecy regions the data may originate from.

    Facts are ``(register, token)`` pairs; see :data:`_PARAM_TOKEN`.
    """

    def __init__(self, program: Program, callgraph: CallGraph | None = None):
        self.program = program
        self.cg = callgraph or CallGraph(program)
        self.contexts = self.cg.region_contexts()
        self.governors = self.cg.governing_regions()
        self.summaries: dict[str, TaintSummary] = {
            m: TaintSummary() for m in program.methods
        }
        #: method -> (param, region) pairs that may arrive tainted.
        self.entry_taint: dict[str, frozenset] = {
            m: frozenset() for m in program.methods
        }
        #: (method, reg) -> witness for how the register became tainted.
        self._sources: dict[tuple[str, str], FlowStep] = {}
        self._fresh: dict[str, dict[str, list[frozenset]]] = {}
        self._analyses: dict[str, ForwardMayAnalysis] = {}
        self._solve()

    def _secret_regions(self, name: str) -> frozenset:
        """Secrecy-labeled regions that may govern ``name``'s body."""
        return frozenset(
            g
            for g in self.governors[name]
            if _region_secrecy_nonempty(self.program.methods[g])
        )

    def _fresh_for(self, name: str) -> dict[str, list[frozenset]]:
        fresh = self._fresh.get(name)
        if fresh is None:
            fresh = region_fresh_registers(self.program.methods[name])
            self._fresh[name] = fresh
        return fresh

    def _transfer_factory(self, name: str):
        secret_regions = self._secret_regions(name)
        fresh = self._fresh_for(name)
        summaries = self.summaries
        sources = self._sources
        method = self.program.methods[name]

        # The framework hands transfer only (instr, facts); precompute each
        # instruction's position and taint-source status by identity.
        positions: dict[int, tuple[str, int]] = {}
        source_sites: dict[int, frozenset] = {}
        for label, block in method.blocks.items():
            fresh_before = fresh[label]
            for index, instr in enumerate(block.instrs):
                positions[id(instr)] = (label, index)
                if instr.op in (Opcode.GETFIELD, Opcode.ALOAD):
                    obj = instr.operands[1]
                    if secret_regions and obj not in fresh_before[index]:
                        source_sites[id(instr)] = secret_regions

        def note_source(dst: str, step: FlowStep) -> None:
            sources.setdefault((name, dst), step)

        def carry_source(dst: str, from_regs) -> None:
            for reg in from_regs:
                step = sources.get((name, reg))
                if step is not None:
                    note_source(dst, step)
                    return

        def transfer(instr: Instr, facts: frozenset) -> frozenset:
            op = instr.op
            if op in (Opcode.GETFIELD, Opcode.ALOAD):
                dst = instr.operands[0]
                pruned = frozenset(f for f in facts if f[0] != dst)
                regions = source_sites.get(id(instr), frozenset())
                if regions:
                    label, index = positions[id(instr)]
                    note_source(dst, FlowStep(
                        name, label, index,
                        f"'{dst}' loaded from possibly-labeled object "
                        f"'{instr.operands[1]}' under secrecy region(s) "
                        f"{', '.join(sorted(regions))}",
                    ))
                return pruned | {(dst, r) for r in regions}
            if op is Opcode.MOV:
                dst, src = instr.operands
                pruned = frozenset(f for f in facts if f[0] != dst)
                copied = {(dst, t) for (reg, t) in facts if reg == src}
                if copied:
                    carry_source(dst, [src])
                return pruned | frozenset(copied)
            if op in (Opcode.BINOP, Opcode.UNOP):
                dst = instr.operands[0]
                used = instr.used_registers()
                pruned = frozenset(f for f in facts if f[0] != dst)
                derived = {(dst, t) for (reg, t) in facts if reg in used}
                if derived:
                    carry_source(dst, used)
                return pruned | frozenset(derived)
            if op is Opcode.CALL:
                dst, callee_name = instr.operands[0], instr.operands[1]
                args = instr.operands[2:]
                callee = self.program.methods.get(callee_name)
                if dst is None:
                    return facts
                pruned = frozenset(f for f in facts if f[0] != dst)
                if callee is None:
                    return pruned
                summary = summaries[callee_name]
                tokens: set = set(summary.ret_regions)
                for param, arg in zip(callee.params, args):
                    if param in summary.ret_from_params:
                        tokens |= {t for (reg, t) in facts if reg == arg}
                if tokens:
                    label, index = positions[id(instr)]
                    note_source(dst, FlowStep(
                        name, label, index,
                        f"'{dst}' returned from '{callee_name}', which may "
                        f"return secret-derived data",
                    ))
                    carry_source(dst, args)
                return pruned | {(dst, t) for t in tokens}
            defined = instr.defined_register()
            if defined is not None:
                return frozenset(f for f in facts if f[0] != defined)
            return facts

        return transfer

    def _boundary(self, name: str, with_param_tokens: bool) -> frozenset:
        method = self.program.methods[name]
        facts = set(self.entry_taint[name])
        if with_param_tokens:
            facts |= {(p, _PARAM_TOKEN + p) for p in method.params}
        return frozenset(facts)

    def _solve(self) -> None:
        program, cg = self.program, self.cg
        # Ascending fixpoint (may-analysis): start empty, grow summaries
        # and entry taint until stable.  Param tokens are seeded during
        # summary computation only, and never escape into entry taint.
        for _ in range(len(program.methods) * 2 + 2):
            changed = False
            incoming: dict[str, set] = {m: set() for m in program.methods}
            for name, method in program.methods.items():
                analysis = ForwardMayAnalysis(
                    CFG(method),
                    self._transfer_factory(name),
                    boundary=self._boundary(name, with_param_tokens=True),
                )
                analysis.solve()
                ret_from_params: set = set()
                ret_regions: set = set()
                for label, block in method.blocks.items():
                    facts_before = analysis.facts_before_each_instr(label)
                    for index, instr in enumerate(block.instrs):
                        if instr.op is not Opcode.RET:
                            continue
                        reg = instr.operands[0]
                        if reg is None:
                            continue
                        for fact_reg, token in facts_before[index]:
                            if fact_reg != reg:
                                continue
                            if token.startswith(_PARAM_TOKEN):
                                ret_from_params.add(
                                    token[len(_PARAM_TOKEN):]
                                )
                            else:
                                ret_regions.add(token)
                for site in cg.sites_in[name]:
                    callee = program.methods.get(site.callee)
                    if callee is None:
                        continue
                    facts = analysis.facts_before_each_instr(site.block)[
                        site.index
                    ]
                    for param, arg in zip(callee.params, site.args):
                        for reg, token in facts:
                            if reg == arg and not token.startswith(
                                _PARAM_TOKEN
                            ):
                                incoming[site.callee].add((param, token))
                if method.is_declassifier:
                    # Declared declassification module (the IR analog of
                    # runtime/declassifiers.py): its return value is
                    # *audited policy output*, released on purpose.  The
                    # laundered result must not stay may-tainted, or every
                    # legitimate release downstream becomes a LAM006 false
                    # positive.  Taint flowing *into* the module is still
                    # tracked — only the return boundary launders.
                    new_summary = TaintSummary()
                else:
                    new_summary = TaintSummary(
                        ret_from_params=frozenset(ret_from_params),
                        ret_regions=frozenset(ret_regions),
                    )
                if new_summary != self.summaries[name]:
                    self.summaries[name] = new_summary
                    changed = True
            for name in program.methods:
                new_entry = self.entry_taint[name] | frozenset(incoming[name])
                if new_entry != self.entry_taint[name]:
                    self.entry_taint[name] = new_entry
                    changed = True
            if not changed:
                break
        self._analyses.clear()

    def analysis_for(self, name: str) -> ForwardMayAnalysis:
        """Seeded analysis for sink checking (real region tokens only)."""
        analysis = self._analyses.get(name)
        if analysis is None:
            method = self.program.methods[name]
            analysis = ForwardMayAnalysis(
                CFG(method),
                self._transfer_factory(name),
                boundary=self._boundary(name, with_param_tokens=False),
            )
            analysis.solve()
            self._analyses[name] = analysis
        return analysis

    def facts_before(self, name: str, label: str) -> list[frozenset]:
        return self.analysis_for(name).facts_before_each_instr(label)

    def tainted_regions(self, name: str, label: str, index: int, reg: str):
        """Secrecy regions ``reg`` may derive from at this program point."""
        facts = self.facts_before(name, label)[index]
        return frozenset(
            t
            for (fact_reg, t) in facts
            if fact_reg == reg and not t.startswith(_PARAM_TOKEN)
        )

    def source(self, name: str, reg: str) -> FlowStep | None:
        """Best-effort witness for how ``reg`` became tainted."""
        return self._sources.get((name, reg))
