"""Diagnostic objects for the lamlint analyses.

A :class:`Diagnostic` pins a finding to an error code, a severity, an IR
location (method / block / instruction index) and — when the finding is
about data *getting* somewhere — a propagation path of
:class:`~repro.analysis.labelflow.FlowStep` hops.  Two renderings are
provided: ``to_dict`` for machine consumption (``lamc lint --json``) and
``format_human`` for terminal output.

Error codes are stable API (tests and downstream tooling match on them):

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
LAM000    error     front-end rejection (parser / verifier / region check)
LAM001    error     guaranteed label-flow violation (Bell–LaPadula or
                    Biba): the barrier *must* throw if this executes
LAM002    info      every label check in a region method is provably
                    redundant — the region buys no enforcement
LAM003    warning   unreachable code in a region method (or a region
                    method no call ever enters)
LAM004    warning   declared catch handler can never run: the region body
                    provably cannot raise a security exception
LAM005    warning   statics smuggling: a non-region helper that may run
                    under a region reads or writes statics, bypassing the
                    region checker's static ban
LAM006    warning   possible secret leak: a value that may derive from
                    secrecy-labeled data reaches an unchecked output
                    channel (print, unlabeled static)
LAM007    error     label race: two threads can observe the same shared
                    object under different label contexts (a write under
                    one set of region labels races with an access under
                    another), so enforcement depends on scheduling
LAM008    warning   unsynchronized shared write in a region: concurrent
                    threads write the same object with no common lock
                    while at least one runs under region labels
LAM009    info      certified secure: every check obligation in the
                    method is discharged by the security type system, so
                    its barriers are eliminable without changing behavior
========  ========  =====================================================

``LAM000``–``LAM006`` are produced by ``lamc lint`` (:mod:`.lint`);
``LAM007``–``LAM009`` only by ``lamc verify`` (:mod:`.verify`), which
layers the race detector and the security-type certifier on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .labelflow import FlowStep

#: Severities, in descending order of badness.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> default severity (kept here so every rule agrees with the table
#: in the module docstring).
SEVERITY_OF = {
    "LAM000": ERROR,
    "LAM001": ERROR,
    "LAM002": INFO,
    "LAM003": WARNING,
    "LAM004": WARNING,
    "LAM005": WARNING,
    "LAM006": WARNING,
    "LAM007": ERROR,
    "LAM008": WARNING,
    "LAM009": INFO,
}

#: One-line rule descriptions, surfaced in SARIF output and ``--help``.
RULE_SUMMARIES = {
    "LAM000": "front-end rejection (parser / verifier / region check)",
    "LAM001": "guaranteed label-flow violation (Bell-LaPadula or Biba)",
    "LAM002": "every label check in a region method is provably redundant",
    "LAM003": "unreachable code in a region method",
    "LAM004": "declared catch handler can never run",
    "LAM005": "statics smuggling past the region checker's static ban",
    "LAM006": "possible secret leak to an unchecked output channel",
    "LAM007": "label race: threads may observe different label states",
    "LAM008": "unsynchronized shared write in a region",
    "LAM009": "certified secure: all check obligations discharged",
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, addressable and renderable."""

    code: str
    severity: str
    method: str
    message: str
    block: str | None = None
    index: int | None = None
    trace: tuple[FlowStep, ...] = ()

    def location(self) -> str:
        if self.block is None:
            return self.method
        if self.index is None:
            return f"{self.method}/{self.block}"
        return f"{self.method}/{self.block}[{self.index}]"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "method": self.method,
            "block": self.block,
            "index": self.index,
            "message": self.message,
            "trace": [
                {
                    "method": step.method,
                    "block": step.block,
                    "index": step.index,
                    "note": step.note,
                }
                for step in self.trace
            ],
        }

    def format_human(self) -> str:
        lines = [
            f"{self.severity}[{self.code}] {self.location()}: {self.message}"
        ]
        if self.trace:
            lines.append("  flow trace:")
            for n, step in enumerate(self.trace, 1):
                lines.append(f"    {n}. {step.location()}: {step.note}")
        return "\n".join(lines)


def sort_key(diag: Diagnostic):
    """Stable ordering: severity first, then code, then location."""
    return (
        _SEVERITY_RANK.get(diag.severity, 99),
        diag.code,
        diag.method,
        diag.block or "",
        diag.index if diag.index is not None else -1,
    )


def make(code: str, method: str, message: str, *, block: str | None = None,
         index: int | None = None, trace=()) -> Diagnostic:
    """Construct a diagnostic with the code's canonical severity."""
    return Diagnostic(
        code=code,
        severity=SEVERITY_OF[code],
        method=method,
        message=message,
        block=block,
        index=index,
        trace=tuple(trace),
    )


# -- SARIF 2.1.0 --------------------------------------------------------------

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity -> SARIF result level.
_SARIF_LEVEL = {ERROR: "error", WARNING: "warning", INFO: "note"}


def to_sarif(
    diagnostics, tool_name: str, artifact: str | None = None
) -> dict:
    """Render diagnostics as a SARIF 2.1.0 log (one run).

    Findings have no source positions — the IR location (method / block /
    instruction index) goes into a logical location and the message.  The
    rule table lists every code the tool can emit, so empty runs still
    carry the rule metadata CI dashboards key on.
    """
    results = []
    for diag in diagnostics:
        location: dict = {
            "logicalLocations": [
                {"fullyQualifiedName": diag.location(), "kind": "function"}
            ]
        }
        if artifact is not None:
            location["physicalLocation"] = {
                "artifactLocation": {"uri": artifact}
            }
        result = {
            "ruleId": diag.code,
            "level": _SARIF_LEVEL.get(diag.severity, "warning"),
            "message": {"text": f"{diag.location()}: {diag.message}"},
            "locations": [location],
        }
        if diag.trace:
            result["codeFlows"] = [{
                "threadFlows": [{
                    "locations": [
                        {
                            "location": {
                                "logicalLocations": [{
                                    "fullyQualifiedName": step.location(),
                                }],
                                "message": {"text": step.note},
                            }
                        }
                        for step in diag.trace
                    ]
                }]
            }]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri": "https://example.invalid/laminar-repro",
                    "rules": [
                        {
                            "id": code,
                            "shortDescription": {"text": summary},
                            "defaultConfiguration": {
                                "level": _SARIF_LEVEL[SEVERITY_OF[code]]
                            },
                        }
                        for code, summary in sorted(RULE_SUMMARIES.items())
                    ],
                }
            },
            "results": results,
        }],
    }
