"""``lamc verify``: the deep static pipeline layered over ``lamc lint``.

Where :mod:`.lint` answers "is anything visibly wrong", verify answers
the stronger question "which methods are provably *right*":

1. every lint rule (LAM000–LAM006) runs first — a program the front end
   rejects gets no deeper analysis;
2. the race detector (:mod:`.races`) adds LAM007/LAM008 for label races
   and unsynchronized region writes;
3. the security-type certifier (:mod:`.typecheck`) runs with the race
   verdicts in hand and issues per-method
   :class:`~.typecheck.SecurityCertificate`\\ s; fully-certified methods
   surface as LAM009 info diagnostics ("certified secure"), and the
   certificates themselves ride on the report for tooling (``lamc
   verify --json`` embeds them, the compiler's ``certified`` mode
   consumes the same analysis).

Exit-code contract (mirrors ``lamc lint``): errors → 1, clean or
warnings-only → 0, front-end rejection → the LAM000 error path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..jit.ir import Program
from .callgraph import CallGraph
from .diagnostics import make, sort_key, to_sarif
from .lint import run_lint
from .races import RaceReport, detect_races
from .typecheck import TypecheckResult, typecheck_program


@dataclass
class VerifyReport:
    """Lint + race diagnostics plus the certifier's verdicts."""

    diagnostics: list = field(default_factory=list)
    certificates: dict = field(default_factory=dict)
    races: RaceReport | None = None
    #: True when the front end rejected the program (LAM000): the deep
    #: passes did not run and ``certificates`` is empty.
    structural: bool = False

    @property
    def errors(self) -> list:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def codes(self) -> set:
        return {d.code for d in self.diagnostics}

    def certified(self) -> frozenset:
        return frozenset(
            name
            for name, cert in self.certificates.items()
            if cert.certified
        )

    def to_dict(self) -> dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "certificates": {
                name: cert.to_dict()
                for name, cert in sorted(self.certificates.items())
            },
            "certified": sorted(self.certified()),
        }

    def to_sarif(self, artifact: str | None = None) -> dict:
        return to_sarif(self.diagnostics, "lamverify", artifact)

    def format_human(self) -> str:
        lines = [d.format_human() for d in self.diagnostics]
        total = len(self.certificates)
        if self.structural:
            lines.append("-- front-end rejection: deep analysis skipped")
        elif total:
            certified = len(self.certified())
            discharged = sum(
                c.discharged for c in self.certificates.values()
            )
            obligations = sum(
                len(c.obligations) for c in self.certificates.values()
            )
            lines.append(
                f"ok: {certified}/{total} methods certified, "
                f"{discharged}/{obligations} obligations discharged"
            )
        if self.errors:
            lines.append(f"-- {len(self.errors)} error(s)")
        return "\n".join(lines)


def run_verify(
    program: Program, labeled_statics: bool = False
) -> VerifyReport:
    """Run the full verification pipeline over a parsed program."""
    lint_report = run_lint(program, labeled_statics=labeled_statics)
    report = VerifyReport(diagnostics=list(lint_report.diagnostics))
    if "LAM000" in lint_report.codes:
        report.structural = True
        return report

    cg = CallGraph(program)
    races = detect_races(program, cg)
    report.races = races
    report.diagnostics.extend(races.diagnostics)

    result: TypecheckResult = typecheck_program(
        program,
        labeled_statics=labeled_statics,
        callgraph=cg,
        races=races,
    )
    report.certificates = dict(result.certificates)
    for name in sorted(result.certified()):
        cert = result.certificates[name]
        report.diagnostics.append(make(
            "LAM009", name,
            f"certified secure: all {len(cert.obligations)} check "
            f"obligation(s) discharged "
            f"({_rules_summary(cert)}); barriers and tier-2 guards are "
            f"eliminable",
        ))
    report.diagnostics.sort(key=sort_key)
    return report


def _rules_summary(cert) -> str:
    rules: dict[str, int] = {}
    for ob in cert.obligations:
        if ob.rule:
            rules[ob.rule] = rules.get(ob.rule, 0) + 1
    if not rules:
        return "no checks required"
    return ", ".join(
        f"{count}x {rule}" for rule, count in sorted(rules.items())
    )
