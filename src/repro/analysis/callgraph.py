"""Call-graph construction over mini-JIT IR programs.

Everything interprocedural in this package starts here: ``CALL`` edges are
resolved (callees are plain method names, so resolution is exact), strongly
connected components are found with an iterative Tarjan so recursion is
explicit, and two derived facts that the label-flow and lint passes lean on
are computed:

* **region contexts** — for each method, whether its body may execute
  inside a security region, outside one, or both.  Region-method bodies
  always run inside; methods with no callers are entry-point candidates
  and run outside; everything else inherits the union of its callers'
  body contexts (a non-region call does not change the thread's region
  state — regions are entered only by calling a ``region method``).
* **governing regions** — for each method, the set of region methods
  whose dynamic scope may enclose its body (the innermost region at
  execution time).  This is what turns "a static write in ``helper``"
  into "statics smuggling out of region ``audit``".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..jit.ir import Instr, Method, Opcode, Program

#: Context constants (kept as plain strings so fact sets stay printable).
IN_REGION = "in"
OUT_OF_REGION = "out"


@dataclass(frozen=True)
class CallSite:
    """One ``call`` instruction, addressable for diagnostics."""

    caller: str
    block: str
    index: int
    callee: str
    args: tuple[str, ...]

    def location(self) -> str:
        return f"{self.caller}/{self.block}[{self.index}]"


class CallGraph:
    """Successor/predecessor view of a whole program's methods."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.callees: dict[str, set[str]] = {m: set() for m in program.methods}
        self.callers: dict[str, set[str]] = {m: set() for m in program.methods}
        #: callee name -> every call site that targets it.
        self.sites_of: dict[str, list[CallSite]] = {
            m: [] for m in program.methods
        }
        #: caller name -> its call sites in program order.
        self.sites_in: dict[str, list[CallSite]] = {
            m: [] for m in program.methods
        }
        for method in program.methods.values():
            for label, block in method.blocks.items():
                for index, instr in enumerate(block.instrs):
                    if instr.op is not Opcode.CALL:
                        continue
                    callee = instr.operands[1]
                    site = CallSite(
                        caller=method.name,
                        block=label,
                        index=index,
                        callee=callee,
                        args=tuple(instr.operands[2:]),
                    )
                    self.sites_in[method.name].append(site)
                    if callee in self.callees:  # unresolved callees are the
                        self.callees[method.name].add(callee)  # verifier's job
                        self.callers[callee].add(method.name)
                        self.sites_of[callee].append(site)

    # -- basic queries --------------------------------------------------------

    def roots(self) -> list[str]:
        """Methods with no callers — the closed-world entry candidates."""
        return [m for m, cs in self.callers.items() if not cs]

    def reachable_from(self, names: set[str] | list[str]) -> set[str]:
        seen = set(names) & set(self.callees)
        work = list(seen)
        while work:
            for callee in self.callees[work.pop()]:
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen

    # -- SCCs (iterative Tarjan) ----------------------------------------------

    def sccs(self) -> list[frozenset[str]]:
        """Strongly connected components in *reverse topological order*
        (callees before callers), so bottom-up summary passes can walk the
        list front to back."""
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[frozenset[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = sorted(self.callees[node])
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    if succ not in index_of:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for name in self.program.methods:
            if name not in index_of:
                strongconnect(name)
        return result

    def scc_of(self) -> dict[str, frozenset[str]]:
        return {m: scc for scc in self.sccs() for m in scc}

    def recursive_methods(self) -> set[str]:
        """Methods involved in recursion (SCC of size > 1, or a self-loop)."""
        out: set[str] = set()
        for scc in self.sccs():
            if len(scc) > 1:
                out |= scc
        for name, callees in self.callees.items():
            if name in callees:
                out.add(name)
        return out

    # -- region context analysis ----------------------------------------------

    def region_contexts(self) -> dict[str, frozenset[str]]:
        """Map each method to the contexts its *body* may execute in
        (subset of ``{"in", "out"}``).

        Region-method bodies are always ``in``.  Methods with no callers
        are assumed to be program entry points, invoked outside any region.
        Other methods inherit every caller's body context through
        non-region call edges.  The result is a may-analysis: ``{"out"}``
        means *provably never inside a region* (closed world).
        """
        contexts: dict[str, set[str]] = {m: set() for m in self.program.methods}
        work: list[str] = []
        for name, method in self.program.methods.items():
            if method.is_region:
                contexts[name].add(IN_REGION)
                work.append(name)
            if not self.callers[name]:
                if not method.is_region:
                    contexts[name].add(OUT_OF_REGION)
                work.append(name)
        while work:
            name = work.pop()
            for callee in self.callees[name]:
                callee_method = self.program.methods[callee]
                if callee_method.is_region:
                    continue  # region entry resets the callee's context
                if not contexts[name] <= contexts[callee]:
                    contexts[callee] |= contexts[name]
                    work.append(callee)
        return {m: frozenset(c) for m, c in contexts.items()}

    def governing_regions(self) -> dict[str, frozenset[str]]:
        """Map each method to the region methods whose dynamic scope may be
        the *innermost* enclosing region when its body runs.

        A region method governs its own body.  A non-region callee inherits
        its callers' governors (calling does not change the innermost
        region); calling another region method switches governance to it.
        """
        gov: dict[str, set[str]] = {m: set() for m in self.program.methods}
        work: list[str] = []
        for name, method in self.program.methods.items():
            if method.is_region:
                gov[name].add(name)
                work.append(name)
        while work:
            name = work.pop()
            for callee in self.callees[name]:
                if self.program.methods[callee].is_region:
                    continue
                if not gov[name] <= gov[callee]:
                    gov[callee] |= gov[name]
                    work.append(callee)
        return {m: frozenset(g) for m, g in gov.items()}

    # -- diagnostics helpers ---------------------------------------------------

    def call_chain(
        self, source: str, target: str, through_regions: bool = False
    ) -> list[CallSite]:
        """A shortest chain of call sites from ``source``'s body to
        ``target`` (BFS); empty if none exists or source == target.  With
        ``through_regions`` false (the default), edges into region methods
        are not traversed — entering a region changes the governing
        context, so such chains would misattribute responsibility."""
        if source == target:
            return []
        parent: dict[str, CallSite] = {}
        seen = {source}
        frontier = [source]
        while frontier and target not in parent:
            next_frontier: list[str] = []
            for name in frontier:
                for site in self.sites_in[name]:
                    if site.callee not in self.callees or site.callee in seen:
                        continue
                    callee_region = self.program.methods[site.callee].is_region
                    if callee_region and not through_regions and site.callee != target:
                        continue
                    seen.add(site.callee)
                    parent[site.callee] = site
                    next_frontier.append(site.callee)
            frontier = next_frontier
        if target not in parent:
            return []
        chain: list[CallSite] = []
        node = target
        while node != source:
            site = parent[node]
            chain.append(site)
            node = site.caller
        chain.reverse()
        return chain


def build_callgraph(program: Program) -> CallGraph:
    """Convenience constructor (mirrors the other passes' free functions)."""
    return CallGraph(program)
