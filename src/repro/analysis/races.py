"""Lockset + happens-before race detector for multithreaded region programs.

The IR's thread model is deliberately small — ``spawn h, m, args...``
creates a thread poised to run ``m``, ``join h`` runs it to completion,
and ``lock r`` / ``unlock r`` are static synchronization markers — but
it is enough to exhibit the failure mode Laminar's runtime must guard
against: two threads touching the same object under *different* label
contexts, so whether an access faults (or what a secrecy region
observes) depends on scheduling.

The detector combines three method-local dataflow analyses with one
interprocedural sharing pass:

* **happens-before windows** — a may-analysis tracking pending (spawned,
  not yet joined) thread handles.  Program points where a handle is
  pending are exactly the points that race with that thread's body:
  ``spawn`` is the only *release* edge and ``join`` the only *acquire*
  edge in this model, so everything between them is concurrent.
* **object provenance** — a may-analysis naming the abstract objects
  (allocation sites and spawner parameters) each register may hold, so
  accesses can be keyed to shared state rather than register names.
* **locksets** — a must-analysis of the abstract objects whose locks are
  definitely held; two conflicting accesses holding a common lock are
  ordered and not reported.
* **sharing** — the abstract objects passed to ``spawn`` (plus all
  statics) are *shared*; a worklist pushes them through call edges into
  the spawned method and everything it reaches, so a thread body that
  forwards its argument into a region method still gets its accesses
  classified.

Findings (see :mod:`.diagnostics` for the code table):

* **LAM007** (error, the *label race*): conflicting unordered accesses
  whose sides run under different label contexts — e.g. an out-of-region
  thread writes a field while a secrecy region reads it.  Enforcement
  becomes schedule-dependent; certification is impossible.
* **LAM008** (warning): conflicting unordered accesses under the *same*
  nonempty label context — classic data race inside a region's trust
  domain.  Enforcement is schedule-independent but the data is torn.
* Races where both sides are label-free are data races but not IFC
  findings; they are reported on :attr:`RaceReport.plain_races` and do
  not gate certification severity (still returned for tooling).

Every method appearing on either side of a LAM007/LAM008 finding is
recorded in :attr:`RaceReport.implicated`; the certifier refuses to
certify implicated methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..jit.cfg import CFG
from ..jit.dataflow import ForwardMayAnalysis, ForwardMustAnalysis
from ..jit.ir import (
    Method,
    Opcode,
    Program,
    READ_OPS,
    WRITE_OPS,
)
from .callgraph import CallGraph
from .diagnostics import Diagnostic, make
from .labelflow import FlowStep

#: Abstract object ids.
#:   ("new", method, block, index)  — allocation site
#:   ("param", method, name)        — a spawning method's own parameter
#:   ("static", name)               — a static cell (always shared)


def _alloc_site(method: str, block: str, index: int):
    return ("new", method, block, index)


def _param_obj(method: str, name: str):
    return ("param", method, name)


def _static_obj(name: str):
    return ("static", name)


# ---------------------------------------------------------------------------
# per-method machinery
# ---------------------------------------------------------------------------


def _positions(method: Method) -> dict[int, tuple[str, int]]:
    """``id(instr) -> (block, index)`` — the dataflow framework hands
    transfer functions only the instruction, so site-sensitive analyses
    recover the position through instruction identity."""
    out: dict[int, tuple[str, int]] = {}
    for label, block in method.blocks.items():
        for index, instr in enumerate(block.instrs):
            out[id(instr)] = (label, index)
    return out


class _ObjIds:
    """May-analysis: per point, ``(register, objid)`` pairs for the
    abstract objects a register may reference."""

    def __init__(self, method: Method) -> None:
        self.method = method
        name = method.name
        positions = _positions(method)
        boundary = frozenset(
            (p, _param_obj(name, p)) for p in method.params
        )

        def transfer(instr, facts):
            op = instr.op
            if op in (Opcode.NEW, Opcode.NEWARRAY):
                dst = instr.operands[0]
                label, index = positions[id(instr)]
                facts = frozenset(f for f in facts if f[0] != dst)
                return facts | {(dst, _alloc_site(name, label, index))}
            if op is Opcode.MOV:
                dst, src = instr.operands[0], instr.operands[1]
                src_objs = frozenset(
                    obj for (reg, obj) in facts if reg == src
                )
                facts = frozenset(f for f in facts if f[0] != dst)
                return facts | frozenset((dst, obj) for obj in src_objs)
            defined = instr.defined_register()
            if defined is not None:
                # getfield / call / spawn results: unknown object — drop.
                return frozenset(f for f in facts if f[0] != defined)
            return facts

        self._analysis = ForwardMayAnalysis(
            CFG(method), transfer, boundary=boundary
        )
        self._analysis.solve()

    def before(self, label: str) -> list[frozenset]:
        return self._analysis.facts_before_each_instr(label)

    def objs(self, label: str, index: int, reg: str) -> frozenset:
        return frozenset(
            obj
            for (fact_reg, obj) in self.before(label)[index]
            if fact_reg == reg
        )


class _Pending:
    """May-analysis of pending thread handles: ``(register, site)`` where
    ``site = (block, index)`` of the spawn.  A site pending *at its own
    spawn instruction* means a previous loop iteration's thread may still
    run — the thread is concurrent with itself."""

    def __init__(self, method: Method) -> None:
        positions = _positions(method)

        def transfer(instr, facts):
            op = instr.op
            if op is Opcode.SPAWN:
                dst = instr.operands[0]
                label, index = positions[id(instr)]
                facts = frozenset(f for f in facts if f[0] != dst)
                return facts | {(dst, (label, index))}
            if op is Opcode.JOIN:
                handle = instr.operands[0]
                return frozenset(f for f in facts if f[0] != handle)
            if op is Opcode.MOV:
                dst, src = instr.operands[0], instr.operands[1]
                facts = frozenset(f for f in facts if f[0] != dst)
                return facts | frozenset(
                    (dst, site) for (reg, site) in facts if reg == src
                )
            defined = instr.defined_register()
            if defined is not None:
                return frozenset(f for f in facts if f[0] != defined)
            return facts

        self._analysis = ForwardMayAnalysis(
            CFG(method), transfer, boundary=frozenset()
        )
        self._analysis.solve()

    def before(self, label: str) -> list[frozenset]:
        return self._analysis.facts_before_each_instr(label)

    def sites(self, label: str, index: int) -> frozenset:
        """Spawn sites with a pending thread at this point."""
        return frozenset(site for (_reg, site) in self.before(label)[index])


class _Locksets:
    """Must-analysis of definitely-held lock objects."""

    def __init__(self, method: Method, objids: _ObjIds) -> None:
        positions = _positions(method)

        def transfer(instr, facts):
            op = instr.op
            if op is Opcode.LOCK:
                label, index = positions[id(instr)]
                held = objids.objs(label, index, instr.operands[0])
                return facts | held
            if op is Opcode.UNLOCK:
                label, index = positions[id(instr)]
                released = objids.objs(label, index, instr.operands[0])
                return facts - released
            return facts

        self._analysis = ForwardMustAnalysis(
            CFG(method), transfer, boundary=frozenset()
        )
        self._analysis.solve()

    def before(self, label: str) -> list[frozenset]:
        return self._analysis.facts_before_each_instr(label)

    def held(self, label: str, index: int) -> frozenset:
        return self.before(label)[index]


@dataclass(frozen=True)
class _Access:
    """One classified shared-state access."""

    method: str
    block: str
    index: int
    register: str  # or static name
    objids: frozenset
    is_write: bool
    lockset: frozenset
    #: Spawn sites pending at this access (spawner side); empty on the
    #: thread side, which is concurrent with its whole pending window.
    pending: frozenset
    #: Which thread body this access belongs to (spawn site), or None for
    #: the spawner itself.
    thread: tuple | None

    def location(self) -> str:
        return f"{self.method}/{self.block}[{self.index}]"


# ---------------------------------------------------------------------------
# label contexts
# ---------------------------------------------------------------------------


def _label_context(
    program: Program, governors_of: dict, method: str
) -> frozenset:
    """The label context an access in ``method`` may execute under: the
    set of governing region methods whose specs carry nonempty labels
    (the method itself when it is such a region).  Empty = label-free."""
    ctx = set()
    candidates = set(governors_of.get(method, frozenset()))
    m = program.methods.get(method)
    if m is not None and m.is_region:
        candidates.add(method)
    for gov in candidates:
        spec = program.methods[gov].region_spec
        if spec is None:
            continue
        if not (spec.secrecy.is_empty and spec.integrity.is_empty):
            ctx.add(gov)
    return frozenset(ctx)


# ---------------------------------------------------------------------------
# the detector
# ---------------------------------------------------------------------------


@dataclass
class RaceReport:
    """Race findings plus the per-method implication map the certifier
    consumes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: method -> human-readable notes for findings implicating it.
    implicated: dict[str, list[str]] = field(default_factory=dict)
    #: Conflicting unordered accesses where both sides are label-free
    #: (plain data races, not IFC findings).
    plain_races: list[tuple] = field(default_factory=list)

    def _implicate(self, method: str, note: str) -> None:
        self.implicated.setdefault(method, [])
        if note not in self.implicated[method]:
            self.implicated[method].append(note)


def _spawn_sites(method: Method):
    """All spawn instructions in a method:
    ``(block, index, handle, callee, args)``."""
    for label, block in method.blocks.items():
        for index, instr in enumerate(block.instrs):
            if instr.op is Opcode.SPAWN:
                yield (
                    label, index,
                    instr.operands[0], instr.operands[1],
                    tuple(instr.operands[2:]),
                )


def _reachable_from(cg: CallGraph, roots) -> frozenset:
    seen = set()
    work = list(roots)
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        work.extend(cg.callees.get(name, ()))
    return frozenset(seen)


def _shared_objids(
    program: Program,
    cg: CallGraph,
    spawner: str,
    objids: _ObjIds,
) -> tuple[frozenset, dict[tuple, frozenset], dict[str, frozenset]]:
    """Returns ``(shared, per_site_args, callee_shared)``:

    * ``shared`` — abstract objects escaping to any spawned thread from
      ``spawner`` (spawn arguments + all statics touched anywhere);
    * ``per_site_args`` — spawn site -> the objids passed at that site;
    * ``callee_shared`` — method -> the shared objids visible inside it
      (as its own ``("param", m, p)`` objects), propagated through call
      chains by a worklist so nested forwarding still classifies.
    """
    shared: set = set()
    per_site: dict[tuple, frozenset] = {}
    # method -> set of its own objids that alias shared state.  The
    # spawner participates with its spawner-side objids, so its own call
    # sites propagate sharing into callees too (a region method *called*
    # while a thread is pending touches the same shared object).
    alias: dict[str, set] = {spawner: set()}

    for label, index, _h, callee, args in _spawn_sites(
        program.methods[spawner]
    ):
        passed: set = set()
        callee_m = program.methods.get(callee)
        params = callee_m.params if callee_m is not None else ()
        for pos, arg in enumerate(args):
            objs = objids.objs(label, index, arg)
            passed |= objs
            shared |= objs
            alias[spawner] |= objs
            if pos < len(params):
                alias.setdefault(callee, set()).add(
                    _param_obj(callee, params[pos])
                )
                shared.add(_param_obj(callee, params[pos]))
        per_site[(label, index)] = frozenset(passed)

    # Propagate shared params down call edges: if method m's param p is
    # shared and m passes p (or an alias of it) to n's param q, then q is
    # shared too.  Iterate to a fixpoint over call sites.
    changed = True
    guard = 0
    while changed and guard <= len(program.methods) * 4 + 4:
        changed = False
        guard += 1
        for name in list(alias):
            method = program.methods.get(name)
            if method is None:
                continue
            m_objids = _ObjIds(method)
            for site in cg.sites_in.get(name, ()):
                callee_m = program.methods.get(site.callee)
                if callee_m is None:
                    continue
                instr_objs = [
                    m_objids.objs(site.block, site.index, arg)
                    for arg in site.args
                ]
                for pos, objs in enumerate(instr_objs):
                    if pos >= len(callee_m.params):
                        break
                    if objs & alias[name]:
                        target = _param_obj(
                            site.callee, callee_m.params[pos]
                        )
                        if target not in alias.setdefault(
                            site.callee, set()
                        ):
                            alias[site.callee].add(target)
                            shared.add(target)
                            changed = True

    callee_shared = {
        name: frozenset(objs) for name, objs in alias.items()
    }
    return frozenset(shared), per_site, callee_shared


def _collect_accesses(
    program: Program,
    name: str,
    objids: _ObjIds,
    shared: frozenset,
    thread: tuple | None,
    pending: _Pending | None,
    locksets: _Locksets,
) -> list[_Access]:
    """Shared-state heap and static accesses in one method."""
    method = program.methods[name]
    out: list[_Access] = []
    for label, block in method.blocks.items():
        for index, instr in enumerate(block.instrs):
            op = instr.op
            if op in READ_OPS or op in WRITE_OPS:
                reg = instr.operands[0] if op in WRITE_OPS else (
                    instr.operands[1]
                )
                objs = objids.objs(label, index, reg) & shared
                if not objs:
                    continue
                out.append(_Access(
                    method=name, block=label, index=index, register=reg,
                    objids=objs, is_write=op in WRITE_OPS,
                    lockset=locksets.held(label, index),
                    pending=(
                        pending.sites(label, index)
                        if pending is not None else frozenset()
                    ),
                    thread=thread,
                ))
            elif op in (Opcode.GETSTATIC, Opcode.PUTSTATIC):
                static_name = (
                    instr.operands[1] if op is Opcode.GETSTATIC
                    else instr.operands[0]
                )
                obj = _static_obj(static_name)
                out.append(_Access(
                    method=name, block=label, index=index,
                    register=static_name, objids=frozenset({obj}),
                    is_write=op is Opcode.PUTSTATIC,
                    lockset=locksets.held(label, index),
                    pending=(
                        pending.sites(label, index)
                        if pending is not None else frozenset()
                    ),
                    thread=thread,
                ))
    return out


def _concurrent(a: _Access, b: _Access, co_pending: frozenset) -> bool:
    """May the two accesses run concurrently (no happens-before edge)?

    ``co_pending`` holds every unordered pair of spawn sites that are
    pending at one program point together — the spawn/join structure's
    whole happens-before relation, flattened."""
    if a.thread is None and b.thread is None:
        return False  # both on the spawner: program order wins
    if a.thread is not None and b.thread is not None:
        if a.thread != b.thread:
            return frozenset((a.thread, b.thread)) in co_pending
        # Same spawn site racing with itself requires the site to be
        # pending at its own spawn point (spawn-in-loop); the caller
        # established that before pairing.
        return True
    spawner_side = a if a.thread is None else b
    thread_side = b if a.thread is None else a
    return thread_side.thread in spawner_side.pending


def _conflict(a: _Access, b: _Access) -> frozenset:
    if not (a.is_write or b.is_write):
        return frozenset()
    return a.objids & b.objids


def _obj_str(obj) -> str:
    kind = obj[0]
    if kind == "new":
        return f"object from {obj[1]}/{obj[2]}[{obj[3]}]"
    if kind == "param":
        return f"object bound to {obj[1]}({obj[2]})"
    return f"static '{obj[1]}'"


def detect_races(
    program: Program, callgraph: CallGraph | None = None
) -> RaceReport:
    """Run the detector over every spawning method of ``program``."""
    cg = callgraph or CallGraph(program)
    governors = cg.governing_regions()
    report = RaceReport()
    seen_findings: set = set()

    spawners = [
        name
        for name, method in program.methods.items()
        if any(i.op is Opcode.SPAWN for i in method.all_instrs())
    ]
    for spawner in spawners:
        method = program.methods[spawner]
        objids = _ObjIds(method)
        pending = _Pending(method)
        locks = _Locksets(method, objids)
        shared, per_site, callee_shared = _shared_objids(
            program, cg, spawner, objids
        )

        # Spawner-side accesses inside at least one pending window.
        spawner_accesses = [
            acc
            for acc in _collect_accesses(
                program, spawner, objids, shared, None, pending, locks
            )
            if acc.pending
        ]

        # Thread-side accesses: for each spawn site, the callee and
        # everything it can reach.  The callee sees shared state through
        # its own param-objids (callee_shared); transitive callees
        # likewise.  Locks on the thread side use the callee's own
        # lockset analysis.
        thread_accesses: list[_Access] = []
        site_list = list(_spawn_sites(method))
        self_concurrent = {
            (label, index)
            for label, index, *_ in site_list
            if (label, index) in pending.sites(label, index)
        }
        # Pairs of spawn sites whose windows overlap at some point.
        co_pending: set = set()
        for label, block in method.blocks.items():
            for index in range(len(block.instrs)):
                sites_here = sorted(pending.sites(label, index))
                for x, s1 in enumerate(sites_here):
                    for s2 in sites_here[x + 1:]:
                        co_pending.add(frozenset((s1, s2)))
        co_pending = frozenset(co_pending)
        for label, index, _h, callee, _args in site_list:
            if callee not in program.methods:
                continue
            site = (label, index)
            for reached in sorted(_reachable_from(cg, [callee])):
                r_method = program.methods.get(reached)
                if r_method is None:
                    continue
                r_objids = _ObjIds(r_method)
                # Statics are always shared; _collect_accesses picks
                # them up regardless of r_shared.
                r_shared = callee_shared.get(reached, frozenset())
                r_locks = _Locksets(r_method, r_objids)
                thread_accesses.extend(
                    _collect_accesses(
                        program, reached, r_objids, r_shared, site,
                        None, r_locks,
                    )
                )

        # Call-side accesses: methods the spawner *calls* while a window
        # is pending run on the spawner's timeline, but may touch shared
        # state under different labels (a region method called between
        # spawn and join).  They inherit the pending set at the call
        # site.
        call_accesses: list[_Access] = []
        for call_site in cg.sites_in.get(spawner, ()):
            pend_here = pending.sites(call_site.block, call_site.index)
            if not pend_here:
                continue
            for reached in sorted(_reachable_from(cg, [call_site.callee])):
                r_method = program.methods.get(reached)
                if r_method is None:
                    continue
                r_objids = _ObjIds(r_method)
                r_shared = callee_shared.get(reached, frozenset())
                r_locks = _Locksets(r_method, r_objids)
                for acc in _collect_accesses(
                    program, reached, r_objids, r_shared, None,
                    None, r_locks,
                ):
                    call_accesses.append(replace(acc, pending=pend_here))

        # The thread side names shared objects by callee params; map
        # both sides to spawner-side identity for conflict detection.
        # A param-objid introduced at a spawn/call edge aliases every
        # spawner objid passed there; rather than tracking the edge
        # precisely, treat all shared objids as one equivalence class
        # per spawn argument overlap: conflate via the `shared` set
        # membership (sound: may-alias), but keep statics exact.
        def canonical(objs: frozenset) -> frozenset:
            out = set()
            for obj in objs:
                if obj[0] == "static":
                    out.add(obj)
                else:
                    out.add("\0heap\0")
            return frozenset(out)

        all_accesses = spawner_accesses + call_accesses + thread_accesses
        for i, a in enumerate(all_accesses):
            for b in all_accesses[i:]:
                if a is b and a.thread is None:
                    continue
                if a is b and a.thread not in self_concurrent:
                    continue
                if (
                    a.thread is not None
                    and a.thread == b.thread
                    and a.thread not in self_concurrent
                    and a is not b
                ):
                    continue  # same single thread: program order
                if not _concurrent(a, b, co_pending) and a is not b:
                    continue
                overlap = canonical(a.objids) & canonical(b.objids)
                if not overlap or not (a.is_write or b.is_write):
                    continue
                if canonical(a.lockset) & canonical(b.lockset):
                    continue  # common lock orders them
                ctx_a = _label_context(program, governors, a.method)
                ctx_b = _label_context(program, governors, b.method)
                writer, other = (a, b) if a.is_write else (b, a)
                sample_obj = sorted(
                    writer.objids | other.objids, key=str
                )[0]
                key = tuple(sorted((
                    (a.method, a.block, a.index),
                    (b.method, b.block, b.index),
                )))
                if key in seen_findings:
                    continue
                trace = (
                    FlowStep(
                        writer.method, writer.block, writer.index,
                        f"write to {_obj_str(sample_obj)} "
                        f"({'thread body' if writer.thread else 'spawner'})",
                    ),
                    FlowStep(
                        other.method, other.block, other.index,
                        f"{'write' if other.is_write else 'read'} of the "
                        f"same object "
                        f"({'thread body' if other.thread else 'spawner'})",
                    ),
                )
                if ctx_a != ctx_b:
                    seen_findings.add(key)
                    labeled = ctx_a | ctx_b
                    diag = make(
                        "LAM007", writer.method,
                        f"label race on {_obj_str(sample_obj)}: "
                        f"{writer.location()} and {other.location()} may "
                        f"run concurrently under different label contexts "
                        f"({_ctx_str(ctx_a)} vs {_ctx_str(ctx_b)}); "
                        f"enforcement depends on thread schedule",
                        block=writer.block, index=writer.index,
                        trace=trace,
                    )
                    report.diagnostics.append(diag)
                    note = (
                        f"LAM007 label race between {writer.location()} "
                        f"and {other.location()}"
                    )
                    for m in {a.method, b.method, spawner} | labeled:
                        report._implicate(m, note)
                elif ctx_a:  # same nonempty context
                    seen_findings.add(key)
                    diag = make(
                        "LAM008", writer.method,
                        f"unsynchronized shared write to "
                        f"{_obj_str(sample_obj)}: {writer.location()} and "
                        f"{other.location()} may run concurrently under "
                        f"region labels ({_ctx_str(ctx_a)}) with no "
                        f"common lock",
                        block=writer.block, index=writer.index,
                        trace=trace,
                    )
                    report.diagnostics.append(diag)
                    note = (
                        f"LAM008 unsynchronized write between "
                        f"{writer.location()} and {other.location()}"
                    )
                    for m in {a.method, b.method, spawner}:
                        report._implicate(m, note)
                else:
                    seen_findings.add(key)
                    report.plain_races.append((
                        writer.location(), other.location(),
                        _obj_str(sample_obj),
                    ))
                    # Plain data races still make the involved methods'
                    # behavior schedule-dependent; implicate them so the
                    # certifier stays conservative, but emit no LAM code.
                    note = (
                        f"data race between {writer.location()} and "
                        f"{other.location()}"
                    )
                    for m in {a.method, b.method, spawner}:
                        report._implicate(m, note)
    return report


def _ctx_str(ctx: frozenset) -> str:
    if not ctx:
        return "label-free"
    return "+".join(sorted(ctx))
