"""Security-type certifier: flow-sensitive label typing over the IR.

This is the PR's static-analysis tentpole: a security type system whose
judgments run over the existing CFG/dataflow framework and whose output
is a per-method :class:`SecurityCertificate` — a machine-checkable list
of the runtime checks the method would perform, each either *discharged*
(statically proven to pass, or proven to be a no-op) or left open.  A
method whose every obligation is discharged, whose body (transitively)
moves no secret to an observable channel, and which is free of label
races is **certified**: its barriers can be deleted wholesale without
changing any observable behavior, and the tier-2 JIT can skip its
shape/deopt guards (there is nothing left for a guard to protect).

Judgments
---------

Per-register label types come from two existing interprocedural facts
(:mod:`.labelflow`), plus a method-local freshness fact (:mod:`.safety`):

* ``fresh(r)``      — ``r`` definitely holds an object allocated in this
  method (must-analysis); such an object carries exactly the labels of
  the context that allocated it, so every check on it passes in every
  barrier variant (the same premise the intraprocedural eliminator
  uses).
* ``unlabeled(r)``  — ``r`` definitely holds a label-free object
  (whole-program must-analysis).
* ``ctx(m)``        — the contexts the body may run in, a subset of
  ``{"in", "out"}`` from the call graph; ``S(m)`` / ``I(m)`` — whether
  every region that can govern ``m`` declares empty secrecy / integrity.

Discharge rules per obligation kind (each names the rule and the facts
used, so :func:`check_certificate` can re-derive it):

===============  =============================================================
obligation       discharged when
===============  =============================================================
read check       ``fresh(r)``, or ``unlabeled(r)`` and every in-region
                 context has empty integrity (Biba read-up cannot fail
                 against the empty object label; the out-of-region space
                 check passes on an unlabeled object)
write check      ``fresh(r)``, or ``unlabeled(r)`` and every in-region
                 context has empty secrecy (Bell-LaPadula write-down)
alloc labeling   the thread's labels are provably empty in every context
                 (labeling a fresh object is then a no-op, so removing the
                 allocation barrier leaves the heap byte-identical)
static check     never (static label maps are populated at run time, so
                 no static proof exists; methods guarding statics keep
                 their barriers)
===============  =============================================================

pc-labels
---------

Branches on secret-derived conditions raise the *program-counter label*:
everything control-dependent on the branch — the blocks between it and
its immediate postdominator — executes or not depending on a secret.
The certifier computes postdominators per method, assigns the branch
condition's taint to every register defined in the dependent blocks, and
treats an observable effect (``print``, ``putstatic``, and ``ret`` in a
closed-world entry method) under a tainted pc as an implicit leak.  Both
explicit leaks (the LAM006 sinks) and implicit leaks block
certification.

Method summaries over SCCs
--------------------------

Leak-freedom must be transitive: a certified method may not call (or
spawn) its way to a leak.  A bottom-up pass over the call graph's
strongly connected components computes ``clean*(m) = clean(m) and
clean*(callee)`` for every call and spawn edge, with SCC members sharing
one verdict; spawn edges (not part of the call graph) are closed over by
an outer fixpoint.

Closed-world entry assumption
-----------------------------

Certificates trust the call-graph context facts, which assume programs
are entered at a root method outside any region — the same assumption
the static barrier flavors already compile in (an ambient-region entry
raises ``StaleCompilationError`` there, and would equally void a
certificate here).  Certificates for methods whose context cannot be
pinned down (unreachable code) are never issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..jit.barrier_insertion import BARRIER_OPS, _accessed_register
from ..jit.cfg import CFG
from ..jit.ir import (
    ALLOC_OPS,
    Method,
    Opcode,
    Program,
    READ_OPS,
    WRITE_OPS,
)
from .callgraph import CallGraph, IN_REGION
from .labelflow import TaintAnalysis, UnlabeledAnalysis
from .safety import region_fresh_registers

#: Obligation kinds.
READ_CHECK = "read-check"
WRITE_CHECK = "write-check"
ALLOC_LABEL = "alloc-label"
STATIC_READ = "static-read-check"
STATIC_WRITE = "static-write-check"

#: Discharge rule names (stable API: certificates carry them and
#: :func:`check_certificate` re-derives them).
RULE_FRESH = "region-fresh"
RULE_UNLABELED_INTEGRITY = "unlabeled-empty-integrity"
RULE_UNLABELED_SECRECY = "unlabeled-empty-secrecy"
RULE_CONTEXT_LABEL_FREE = "context-label-free"


@dataclass(frozen=True)
class Obligation:
    """One runtime check the method performs, with its static verdict."""

    kind: str
    method: str
    block: str
    index: int
    #: The checked register (object checks) or static name.
    subject: str
    discharged: bool
    #: Discharge rule applied, or ``None`` when the obligation is open.
    rule: str | None = None
    #: Human-readable premises the rule consumed (the proof sketch).
    evidence: tuple[str, ...] = ()

    def location(self) -> str:
        return f"{self.method}/{self.block}[{self.index}]"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "block": self.block,
            "index": self.index,
            "subject": self.subject,
            "discharged": self.discharged,
            "rule": self.rule,
            "evidence": list(self.evidence),
        }


@dataclass(frozen=True)
class LeakFinding:
    """A secret-to-observable flow inside one method (explicit sink or
    implicit flow under a tainted pc)."""

    method: str
    block: str
    index: int
    register: str
    regions: frozenset
    kind: str  # "explicit" | "implicit"
    note: str

    def to_dict(self) -> dict:
        return {
            "block": self.block,
            "index": self.index,
            "register": self.register,
            "regions": sorted(self.regions),
            "kind": self.kind,
            "note": self.note,
        }


@dataclass(frozen=True)
class SecurityCertificate:
    """The certifier's verdict for one method.

    ``certified`` is true iff every obligation is discharged, the method
    is transitively leak-free, it is implicated in no label race, and
    its execution context is known under the closed-world entry
    assumption.  The obligation list with its rules and evidence is the
    machine-checkable proof sketch — :func:`check_certificate` re-derives
    every discharged rule from scratch.
    """

    method: str
    contexts: frozenset
    governors: frozenset
    obligations: tuple[Obligation, ...] = ()
    leaks: tuple[LeakFinding, ...] = ()
    #: Human-readable summaries of race findings implicating this method.
    races: tuple[str, ...] = ()
    transitively_clean: bool = True
    certified: bool = False

    @property
    def discharged(self) -> int:
        return sum(1 for ob in self.obligations if ob.discharged)

    @property
    def open(self) -> tuple[Obligation, ...]:
        return tuple(ob for ob in self.obligations if not ob.discharged)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "certified": self.certified,
            "contexts": sorted(self.contexts),
            "governors": sorted(self.governors),
            "obligations": [ob.to_dict() for ob in self.obligations],
            "discharged": self.discharged,
            "leaks": [leak.to_dict() for leak in self.leaks],
            "races": list(self.races),
            "transitively_clean": self.transitively_clean,
        }


# ---------------------------------------------------------------------------
# postdominators / pc-taint
# ---------------------------------------------------------------------------

_VIRTUAL_EXIT = "\0exit\0"


def postdominators(method: Method) -> dict[str, frozenset]:
    """Per block, the labels that postdominate it (including itself).

    Blocks with no successors postdominate through a shared virtual exit,
    so diamonds with multiple ``ret`` blocks still meet.  Unreachable
    blocks keep the full set (vacuously true), which keeps callers total.
    """
    cfg = CFG(method)
    labels = list(method.blocks)
    exits = [l for l in labels if not cfg.succs[l]]
    everything = frozenset(labels) | {_VIRTUAL_EXIT}
    post: dict[str, frozenset] = {l: everything for l in labels}
    post[_VIRTUAL_EXIT] = frozenset({_VIRTUAL_EXIT})
    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            succs = cfg.succs[label] or (_VIRTUAL_EXIT,)
            if label in exits:
                succs = (_VIRTUAL_EXIT,)
            merged = frozenset.intersection(*(post[s] for s in succs))
            new = merged | {label}
            if new != post[label]:
                post[label] = new
                changed = True
    return {l: post[l] - {_VIRTUAL_EXIT} for l in labels}


def _influence_region(
    method: Method, branch_block: str, post: dict[str, frozenset]
) -> frozenset:
    """Blocks control-dependent on the branch terminating ``branch_block``:
    everything reachable from its successors before the branch's nearest
    postdominator (the rejoin point)."""
    cfg = CFG(method)
    stop = post[branch_block] - {branch_block}
    seen: set[str] = set()
    work = [s for s in cfg.succs[branch_block] if s not in stop]
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        for succ in cfg.succs[label]:
            if succ not in stop and succ not in seen:
                work.append(succ)
    return frozenset(seen)


def _pc_tainted_registers(
    method: Method, taint: TaintAnalysis, name: str
) -> tuple[dict[str, frozenset], list[LeakFinding]]:
    """pc-label tracking: registers whose *value* may depend on a secret
    branch (defined under a tainted pc), and observable effects sitting
    directly inside a tainted influence region.

    Returns ``(tainted_defs, implicit_leaks)`` where ``tainted_defs``
    maps registers to the regions their pc-taint derives from.  The
    register set is then closed under data flow by the caller.
    """
    post = postdominators(method)
    tainted_defs: dict[str, set] = {}
    leaks: list[LeakFinding] = []
    for label, block in method.blocks.items():
        term = block.instrs[-1] if block.instrs else None
        if term is None or term.op is not Opcode.BR:
            continue
        cond = term.operands[0]
        regions = taint.tainted_regions(
            name, label, len(block.instrs) - 1, cond
        )
        if not regions:
            continue
        influence = _influence_region(method, label, post)
        for dep_label in influence:
            for index, instr in enumerate(method.blocks[dep_label].instrs):
                defined = instr.defined_register()
                if defined is not None:
                    tainted_defs.setdefault(defined, set()).update(regions)
                if instr.op in (Opcode.PRINT, Opcode.PUTSTATIC):
                    channel = (
                        "print" if instr.op is Opcode.PRINT
                        else f"static '{instr.operands[0]}'"
                    )
                    leaks.append(LeakFinding(
                        name, dep_label, index,
                        cond, frozenset(regions), "implicit",
                        f"{channel} is control-dependent on secret branch "
                        f"condition {cond!r} at {name}/{label}",
                    ))
    return (
        {reg: frozenset(rs) for reg, rs in tainted_defs.items()},
        leaks,
    )


def _close_over_dataflow(method: Method, seeds: dict[str, frozenset]):
    """Flow-insensitive closure of pc-taint over the method's def-use
    chains (a register computed from a pc-tainted register is itself
    pc-tainted).  Over-approximate by design: pc-taint gates
    certification, it does not feed diagnostics with traces."""
    tainted = {reg: set(rs) for reg, rs in seeds.items()}
    changed = True
    while changed:
        changed = False
        for instr in method.all_instrs():
            defined = instr.defined_register()
            if defined is None:
                continue
            incoming: set = set()
            for used in instr.used_registers():
                incoming |= tainted.get(used, set())
            if incoming and not incoming <= tainted.get(defined, set()):
                tainted.setdefault(defined, set()).update(incoming)
                changed = True
    return {reg: frozenset(rs) for reg, rs in tainted.items()}


# ---------------------------------------------------------------------------
# obligation discharge
# ---------------------------------------------------------------------------


def _governor_labels_empty(
    program: Program, governors: frozenset, which: str
) -> bool:
    """Every region that can govern the method declares an empty ``which``
    label set (so the thread's ``which`` labels are provably empty while
    the body runs in-region)."""
    if not governors:
        return False  # in-region with unknown governor: prove nothing
    for gov in governors:
        spec = program.methods[gov].region_spec
        if spec is None:
            continue  # no declared spec = empty labels
        labels = spec.secrecy if which == "secrecy" else spec.integrity
        if not labels.is_empty:
            return False
    return True


class _MethodFacts:
    """The per-method fact bundle the discharge rules consume."""

    def __init__(
        self,
        program: Program,
        name: str,
        contexts: frozenset,
        governors: frozenset,
        unlabeled: UnlabeledAnalysis,
    ) -> None:
        self.name = name
        self.contexts = contexts
        self.governors = governors
        self.fresh = region_fresh_registers(program.methods[name])
        self.unlabeled = unlabeled
        self.may_be_in = IN_REGION in contexts
        self.known_context = bool(contexts)
        self.secrecy_empty = not self.may_be_in or _governor_labels_empty(
            program, governors, "secrecy"
        )
        self.integrity_empty = not self.may_be_in or _governor_labels_empty(
            program, governors, "integrity"
        )

    def ctx_evidence(self) -> str:
        return f"ctx({self.name})={{{', '.join(sorted(self.contexts))}}}"


def _discharge(
    facts: _MethodFacts,
    kind: str,
    subject: str,
    block: str,
    index: int,
    unlabeled_here: frozenset,
) -> tuple[str | None, tuple[str, ...]]:
    """Apply the discharge rules; returns ``(rule, evidence)`` or
    ``(None, ())`` when the obligation stays open."""
    if not facts.known_context:
        return None, ()
    if kind in (READ_CHECK, WRITE_CHECK):
        if subject in facts.fresh[block][index]:
            return RULE_FRESH, (
                f"fresh({subject})@{block}[{index}]", facts.ctx_evidence()
            )
        if subject in unlabeled_here:
            if kind is READ_CHECK or kind == READ_CHECK:
                if facts.integrity_empty:
                    return RULE_UNLABELED_INTEGRITY, (
                        f"unlabeled({subject})@{block}[{index}]",
                        facts.ctx_evidence(),
                        "integrity(governors)=empty",
                    )
            else:
                if facts.secrecy_empty:
                    return RULE_UNLABELED_SECRECY, (
                        f"unlabeled({subject})@{block}[{index}]",
                        facts.ctx_evidence(),
                        "secrecy(governors)=empty",
                    )
        return None, ()
    if kind == ALLOC_LABEL:
        if facts.secrecy_empty and facts.integrity_empty:
            return RULE_CONTEXT_LABEL_FREE, (
                facts.ctx_evidence(),
                "labels(governors)=empty",
            )
        return None, ()
    # Static checks: labels are attached at run time, never provable.
    return None, ()


def _method_obligations(
    program: Program, name: str, facts: _MethodFacts
) -> list[Obligation]:
    """Generate and discharge the method's obligations.

    On an instrumented method (barriers present) obligations attach to
    the barrier instructions — exactly the checks certified elimination
    would delete.  On source programs they attach to the heap accesses
    the compiler *would* instrument, so ``lamc verify`` reports the same
    verdicts without compiling first.
    """
    method = program.methods[name]
    instrumented = any(
        instr.op in BARRIER_OPS for instr in method.all_instrs()
    )
    out: list[Obligation] = []
    for label, block in method.blocks.items():
        unlabeled_list = facts.unlabeled.facts_before(name, label)
        for index, instr in enumerate(block.instrs):
            op = instr.op
            kind = subject = None
            if instrumented:
                if op is Opcode.READBAR:
                    kind, subject = READ_CHECK, instr.operands[0]
                elif op is Opcode.WRITEBAR:
                    kind, subject = WRITE_CHECK, instr.operands[0]
                elif op is Opcode.ALLOCBAR:
                    kind, subject = ALLOC_LABEL, instr.operands[0]
                elif op is Opcode.SREADBAR:
                    kind, subject = STATIC_READ, instr.operands[0]
                elif op is Opcode.SWRITEBAR:
                    kind, subject = STATIC_WRITE, instr.operands[0]
            else:
                if op in READ_OPS:
                    kind, subject = READ_CHECK, _accessed_register(instr)
                elif op in WRITE_OPS:
                    kind, subject = WRITE_CHECK, _accessed_register(instr)
                elif op in ALLOC_OPS:
                    kind, subject = ALLOC_LABEL, instr.operands[0]
            if kind is None:
                continue
            rule, evidence = _discharge(
                facts, kind, subject, label, index, unlabeled_list[index]
            )
            out.append(Obligation(
                kind=kind, method=name, block=label, index=index,
                subject=subject, discharged=rule is not None,
                rule=rule, evidence=evidence,
            ))
    return out


# ---------------------------------------------------------------------------
# leak detection (explicit sinks + implicit pc flows)
# ---------------------------------------------------------------------------


def _method_leaks(
    program: Program,
    name: str,
    cg: CallGraph,
    taint: TaintAnalysis,
) -> list[LeakFinding]:
    method = program.methods[name]
    is_root = not cg.callers[name]
    leaks: list[LeakFinding] = []
    pc_seeds, implicit = _pc_tainted_registers(method, taint, name)
    leaks.extend(implicit)
    pc_tainted = _close_over_dataflow(method, pc_seeds)
    for label, block in method.blocks.items():
        for index, instr in enumerate(block.instrs):
            op = instr.op
            if op is Opcode.PRINT:
                reg, channel = instr.operands[0], "print"
            elif op is Opcode.PUTSTATIC:
                reg, channel = (
                    instr.operands[1], f"static '{instr.operands[0]}'"
                )
            elif op is Opcode.RET and is_root and instr.operands[0]:
                # Closed world: a root method's return value goes to the
                # embedder and is observable (lamc run prints it).
                reg, channel = instr.operands[0], "entry return value"
            else:
                continue
            regions = taint.tainted_regions(name, label, index, reg)
            if regions:
                leaks.append(LeakFinding(
                    name, label, index, reg, frozenset(regions), "explicit",
                    f"{reg!r} may derive from secrecy region(s) "
                    f"{', '.join(sorted(regions))} and reaches {channel}",
                ))
            pc_regions = pc_tainted.get(reg, frozenset())
            if pc_regions and not regions:
                leaks.append(LeakFinding(
                    name, label, index, reg, pc_regions, "implicit",
                    f"{reg!r} was computed under a pc tainted by secrecy "
                    f"region(s) {', '.join(sorted(pc_regions))} and "
                    f"reaches {channel}",
                ))
    return leaks


def _spawn_targets(program: Program) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {m: set() for m in program.methods}
    for name, method in program.methods.items():
        for instr in method.all_instrs():
            if instr.op is Opcode.SPAWN and instr.operands[1] in program.methods:
                out[name].add(instr.operands[1])
    return out


def _transitive_clean(
    program: Program, cg: CallGraph, local_clean: dict[str, bool]
) -> dict[str, bool]:
    """Bottom-up summary pass over call-graph SCCs: a method is
    transitively clean iff it and everything it can call or spawn is.
    Call edges resolve in one SCC walk (components arrive callees-first);
    spawn edges, which the call graph does not carry, are closed by the
    outer fixpoint."""
    spawns = _spawn_targets(program)
    trans = dict(local_clean)
    for _ in range(len(program.methods) + 1):
        changed = False
        for scc in cg.sccs():  # reverse topological: callees first
            ok = all(trans[m] for m in scc)
            if ok:
                for m in scc:
                    for callee in cg.callees[m] | spawns[m]:
                        if callee not in scc and not trans[callee]:
                            ok = False
                            break
                    if not ok:
                        break
            if not ok:
                for m in scc:
                    if trans[m]:
                        trans[m] = False
                        changed = True
        if not changed:
            break
    return trans


# ---------------------------------------------------------------------------
# the certifier
# ---------------------------------------------------------------------------


@dataclass
class TypecheckResult:
    """Certificates for every method of one program."""

    program: Program
    certificates: dict[str, SecurityCertificate] = field(default_factory=dict)

    def certified(self) -> frozenset:
        return frozenset(
            name
            for name, cert in self.certificates.items()
            if cert.certified
        )

    def to_dict(self) -> dict:
        return {
            name: cert.to_dict()
            for name, cert in sorted(self.certificates.items())
        }


def typecheck_program(
    program: Program,
    labeled_statics: bool = False,
    callgraph: CallGraph | None = None,
    races=None,
    taint: TaintAnalysis | None = None,
    unlabeled: UnlabeledAnalysis | None = None,
) -> TypecheckResult:
    """Certify every method of a (verified) program.

    ``races`` is an optional :class:`repro.analysis.races.RaceReport`;
    when given, methods implicated in a race finding are never certified
    (a method containing thread operations is certified only when the
    detector proved it race-free).  ``labeled_statics`` matches the
    compiler flag: it turns static accesses into (undischargeable)
    obligations instead of leaving them to the region checker's ban.
    """
    cg = callgraph or CallGraph(program)
    contexts = cg.region_contexts()
    governors = cg.governing_regions()
    unlabeled = unlabeled or UnlabeledAnalysis(program, cg)
    taint = taint or TaintAnalysis(program, cg)

    obligations: dict[str, list[Obligation]] = {}
    leaks: dict[str, list[LeakFinding]] = {}
    for name in program.methods:
        facts = _MethodFacts(
            program, name, contexts[name], governors[name], unlabeled
        )
        obligations[name] = _method_obligations(program, name, facts)
        leaks[name] = _method_leaks(program, name, cg, taint)

    local_clean = {name: not leaks[name] for name in program.methods}
    trans_clean = _transitive_clean(program, cg, local_clean)

    race_notes: dict[str, list[str]] = {m: [] for m in program.methods}
    if races is not None:
        for name, notes in races.implicated.items():
            if name in race_notes:
                race_notes[name] = list(notes)
        # Implication is transitive like leak-freedom: calling (or
        # spawning) into a race-implicated method forfeits certification.
        race_free = _transitive_clean(
            program, cg, {m: not race_notes[m] for m in program.methods}
        )
        for name in program.methods:
            if not race_free[name] and not race_notes[name]:
                race_notes[name] = ["calls into a race-implicated method"]

    result = TypecheckResult(program)
    for name in program.methods:
        cert_obligations = tuple(obligations[name])
        cert_leaks = tuple(leaks[name])
        notes = tuple(race_notes.get(name, ()))
        certified = (
            bool(contexts[name])
            and all(ob.discharged for ob in cert_obligations)
            and not cert_leaks
            and trans_clean[name]
            and not notes
        )
        result.certificates[name] = SecurityCertificate(
            method=name,
            contexts=contexts[name],
            governors=governors[name],
            obligations=cert_obligations,
            leaks=cert_leaks,
            races=notes,
            transitively_clean=trans_clean[name],
            certified=certified,
        )
    return result


# ---------------------------------------------------------------------------
# the machine checker
# ---------------------------------------------------------------------------


def check_certificate(
    program: Program,
    cert: SecurityCertificate,
    callgraph: CallGraph | None = None,
) -> list[str]:
    """Re-derive a certificate's proof sketch from scratch.

    Returns the list of complaints (empty means the certificate checks
    out): every discharged obligation's rule must re-prove from freshly
    computed facts, and a ``certified`` verdict must be backed by fully
    discharged obligations and empty leak/race lists.  This is the
    "machine-checkable" half of the certificate story — a consumer does
    not have to trust the certifier, only this ~50-line checker.
    """
    problems: list[str] = []
    cg = callgraph or CallGraph(program)
    if cert.method not in program.methods:
        return [f"unknown method {cert.method!r}"]
    contexts = cg.region_contexts()
    governors = cg.governing_regions()
    unlabeled = UnlabeledAnalysis(program, cg)
    facts = _MethodFacts(
        program, cert.method, contexts[cert.method],
        governors[cert.method], unlabeled,
    )
    if cert.contexts != contexts[cert.method]:
        problems.append(
            f"{cert.method}: recorded contexts {sorted(cert.contexts)} != "
            f"recomputed {sorted(contexts[cert.method])}"
        )
    method = program.methods[cert.method]
    for ob in cert.obligations:
        if not ob.discharged:
            continue
        block = method.blocks.get(ob.block)
        if block is None or ob.index >= len(block.instrs):
            problems.append(f"{ob.location()}: obligation points nowhere")
            continue
        unlabeled_here = unlabeled.facts_before(cert.method, ob.block)[
            ob.index
        ]
        rule, _ = _discharge(
            facts, ob.kind, ob.subject, ob.block, ob.index, unlabeled_here
        )
        if rule is None:
            problems.append(
                f"{ob.location()}: claimed rule {ob.rule!r} does not "
                f"re-derive for {ob.kind} on {ob.subject!r}"
            )
        elif rule != ob.rule:
            problems.append(
                f"{ob.location()}: claimed rule {ob.rule!r}, re-derivation "
                f"gives {rule!r}"
            )
    if cert.certified:
        if any(not ob.discharged for ob in cert.obligations):
            problems.append(
                f"{cert.method}: certified with open obligations"
            )
        if cert.leaks:
            problems.append(f"{cert.method}: certified with leak findings")
        if cert.races:
            problems.append(f"{cert.method}: certified with race findings")
        if not cert.contexts:
            problems.append(
                f"{cert.method}: certified with unknown execution context"
            )
    return problems
