"""Whole-program *proven-safe* facts for barrier elimination.

The intraprocedural pass in :mod:`repro.jit.barrier_elim` removes a
barrier when the same object already passed the same kind of check on
every path **within one method**.  This module lifts the same must-facts
across call edges: if every call site of ``m`` passes, as argument ``i``,
an object that has already been read-checked, then ``m``'s own read
barrier on parameter ``i`` is redundant — the check it would perform
already ran (with the same outcome) in the caller.

Soundness rests on three properties the runtime guarantees:

* object labels are immutable, so a check's outcome cannot change between
  caller and callee;
* a *non-region* callee executes in exactly the caller's region context
  (regions are entered only by calling a ``region method``), so the check
  a barrier performs is the same check the caller's barrier performed —
  provided the two barriers compile to the same variant (see
  :func:`_edge_compatible`);
* thread labels are fixed for the duration of a region, so alloc-derived
  facts ("this object is fresh and carries the allocating context's
  labels") stay valid across non-region calls.

Closed-world caveat: entry facts are trusted only for methods *with*
callers; a method that is also invoked directly from the embedder (e.g.
``lamc run --entry helper``) would bypass the callers this analysis
consulted.  Roots (methods with no callers) always get empty entry facts,
and the interprocedural pipeline is opt-in (``optimize_barriers=
"interprocedural"``).
"""

from __future__ import annotations

from ..jit.barrier_elim import READ, WRITE, _STATIC_KEY, _transfer
from ..jit.barrier_insertion import BARRIER_OPS
from ..jit.cfg import CFG
from ..jit.dataflow import ForwardMustAnalysis
from ..jit.ir import BarrierFlavor, Method, Opcode, Program
from .callgraph import CallGraph, IN_REGION, OUT_OF_REGION

#: Sentinel flavor for methods whose facts are context-faithful (no
#: compiled-in assumption): alloc-derived facts and barrier-less methods.
_ACTUAL = "actual"


def method_barrier_flavor(method: Method):
    """The unique flavor of a method's barriers: a
    :class:`~repro.jit.ir.BarrierFlavor`, ``_ACTUAL`` when the method has
    no barriers (its facts come from allocations, which are faithful to
    the executing context), or ``None`` when flavors are mixed (no
    interprocedural claims are made about such methods)."""
    flavor = _ACTUAL
    for instr in method.all_instrs():
        if instr.op in BARRIER_OPS:
            if flavor is _ACTUAL:
                flavor = instr.flavor
            elif flavor is not instr.flavor:
                return None
    return flavor


def _resolve(flavor, contexts: frozenset) -> str | None:
    """The check a barrier of ``flavor`` performs, as ``"in"``/``"out"``,
    given the contexts the enclosing method may run in; ``None`` when the
    check depends on a context we cannot pin down."""
    if flavor is BarrierFlavor.STATIC_IN:
        return IN_REGION
    if flavor is BarrierFlavor.STATIC_OUT:
        return OUT_OF_REGION
    # DYNAMIC and _ACTUAL follow the real context.
    if len(contexts) == 1:
        return next(iter(contexts))
    return None


def _edge_compatible(caller_flavor, callee_flavor, contexts: frozenset) -> bool:
    """May facts flow from a call site in a method compiled with
    ``caller_flavor`` into a callee compiled with ``callee_flavor``?

    True when the caller's already-executed check and the callee's
    would-be check are provably the same check.  Both DYNAMIC (or
    alloc-faithful) barriers test the *same* runtime context — caller and
    non-region callee share it — so they always match each other.
    Static variants match when they resolve to the same single context.
    """
    if caller_flavor is None or callee_flavor is None:
        return False
    dynamic_like = (BarrierFlavor.DYNAMIC, _ACTUAL)
    if caller_flavor in dynamic_like and callee_flavor in dynamic_like:
        return True
    resolved_caller = _resolve(caller_flavor, contexts)
    resolved_callee = _resolve(callee_flavor, contexts)
    return resolved_caller is not None and resolved_caller == resolved_callee


class InterproceduralFacts:
    """Result of the whole-program must-analysis.

    ``entry_facts[m]`` is the set of ``(register, kind)`` / static-key
    facts guaranteed to hold at ``m``'s entry on every execution that
    reaches it through a call.
    """

    def __init__(
        self,
        program: Program,
        entry_facts: dict[str, frozenset],
        callgraph: CallGraph,
    ) -> None:
        self.program = program
        self.entry_facts = entry_facts
        self.callgraph = callgraph
        self._analyses: dict[str, ForwardMustAnalysis] = {}

    def analysis_for(self, name: str) -> ForwardMustAnalysis:
        """The (cached) seeded per-method analysis for ``name``."""
        analysis = self._analyses.get(name)
        if analysis is None:
            method = self.program.methods[name]
            analysis = ForwardMustAnalysis(
                CFG(method), _transfer, boundary=self.entry_facts[name]
            )
            analysis.solve()
            self._analyses[name] = analysis
        return analysis

    def redundant_barriers(self, name: str) -> list[tuple[str, int]]:
        """``(block, index)`` of every barrier in ``name`` that is provably
        redundant given the whole-program entry facts."""
        method = self.program.methods[name]
        analysis = self.analysis_for(name)
        out: list[tuple[str, int]] = []
        for label, block in method.blocks.items():
            facts_before = analysis.facts_before_each_instr(label)
            for index, (instr, facts) in enumerate(
                zip(block.instrs, facts_before)
            ):
                if _barrier_redundant(instr, facts):
                    out.append((label, index))
        return out


def _barrier_redundant(instr, facts: frozenset) -> bool:
    op = instr.op
    if op is Opcode.READBAR:
        return (instr.operands[0], READ) in facts
    if op is Opcode.WRITEBAR:
        return (instr.operands[0], WRITE) in facts
    if op is Opcode.SREADBAR:
        return (_STATIC_KEY + instr.operands[0], READ) in facts
    if op is Opcode.SWRITEBAR:
        return (_STATIC_KEY + instr.operands[0], WRITE) in facts
    return False


def compute_interprocedural_facts(
    program: Program, callgraph: CallGraph | None = None
) -> InterproceduralFacts:
    """Fixpoint over the whole program (optimistic start, descending).

    Every non-root, non-region method begins at TOP (all parameter facts
    plus every static-key fact the program could generate) and each round
    intersects the facts actually proven at its call sites; recursion
    (SCCs) is handled by iterating to a fixpoint over the finite lattice.
    """
    cg = callgraph or CallGraph(program)
    contexts = cg.region_contexts()
    flavors = {
        name: method_barrier_flavor(method)
        for name, method in program.methods.items()
    }

    static_keys: set[str] = set()
    for method in program.methods.values():
        for instr in method.all_instrs():
            if instr.op in (Opcode.SREADBAR, Opcode.SWRITEBAR):
                static_keys.add(_STATIC_KEY + instr.operands[0])

    def full(method: Method) -> frozenset:
        facts = {(p, kind) for p in method.params for kind in (READ, WRITE)}
        facts |= {(key, kind) for key in static_keys for kind in (READ, WRITE)}
        return frozenset(facts)

    entry: dict[str, frozenset] = {}
    for name, method in program.methods.items():
        trusting = bool(cg.callers[name]) and not method.is_region
        entry[name] = full(method) if trusting else frozenset()

    for _ in range(len(program.methods) * 2 + 2):
        changed = False
        # Facts proven at each site this round, computed against the
        # current entry assumption.
        incoming: dict[str, list[frozenset]] = {m: [] for m in program.methods}
        for name, method in program.methods.items():
            analysis = ForwardMustAnalysis(
                CFG(method), _transfer, boundary=entry[name]
            )
            analysis.solve()
            for site in cg.sites_in[name]:
                callee = program.methods.get(site.callee)
                if callee is None or callee.is_region:
                    continue
                if not _edge_compatible(
                    flavors[name], flavors[site.callee], contexts[name]
                ):
                    incoming[site.callee].append(frozenset())
                    continue
                facts_before = analysis.facts_before_each_instr(site.block)
                facts = facts_before[site.index]
                mapped = set()
                for param, arg in zip(callee.params, site.args):
                    for kind in (READ, WRITE):
                        if (arg, kind) in facts:
                            mapped.add((param, kind))
                for fact in facts:
                    if isinstance(fact[0], str) and fact[0].startswith(
                        _STATIC_KEY
                    ):
                        mapped.add(fact)
                incoming[site.callee].append(frozenset(mapped))
        for name, method in program.methods.items():
            if not cg.callers[name] or method.is_region:
                continue
            sets = incoming[name]
            new = frozenset.intersection(*sets) if sets else frozenset()
            if new != entry[name]:
                entry[name] = new
                changed = True
        if not changed:
            break

    return InterproceduralFacts(program, entry, cg)


# -- no-throw analysis (for the dead-catch lint rule) ---------------------------


def region_fresh_registers(
    method: Method,
) -> dict[str, list[frozenset]]:
    """Per block, the registers that *definitely* hold an object freshly
    allocated in this method, before each instruction.  Inside a region,
    such objects carry the region's own labels, so every check on them
    passes."""
    def transfer(instr, facts: frozenset) -> frozenset:
        op = instr.op
        if op in (Opcode.NEW, Opcode.NEWARRAY):
            dst = instr.operands[0]
            return frozenset(f for f in facts if f != dst) | {dst}
        if op is Opcode.MOV:
            dst, src = instr.operands
            pruned = frozenset(f for f in facts if f != dst)
            return pruned | {dst} if src in facts else pruned
        defined = instr.defined_register()
        if defined is not None:
            return frozenset(f for f in facts if f != defined)
        return facts

    analysis = ForwardMustAnalysis(CFG(method), transfer)
    analysis.solve()
    return {
        label: analysis.facts_before_each_instr(label)
        for label in method.blocks
    }


def may_raise_suppressible(
    program: Program, callgraph: CallGraph | None = None
) -> dict[str, bool]:
    """Whether each method's body (transitively, through non-region calls)
    can raise an exception a region's ``__exit__`` would suppress — i.e.
    one that would make the region's ``catch`` handler run.

    The over-approximation is deliberately generous (it only ever *adds*
    throwers, which makes the dead-catch rule conservative):

    * a heap access throws unless its object is definitely method-fresh
      (a fresh object carries the thread's own labels, so label and space
      checks pass);
    * array loads/stores throw regardless (index errors are suppressed by
      regions too, and indices are not tracked);
    * ``div``/``mod`` can raise arithmetic errors;
    * static accesses and static barriers may throw under labeled statics;
    * calling a region method can throw at *entry* (capability check).

    VM panics (e.g. a field-name typo) are programmer-error crashes that
    propagate past regions and are outside this model.
    """
    cg = callgraph or CallGraph(program)
    local: dict[str, bool] = {}
    for name, method in program.methods.items():
        fresh = region_fresh_registers(method)
        throwing = False
        for label, block in method.blocks.items():
            for index, instr in enumerate(block.instrs):
                op = instr.op
                if op in (Opcode.GETSTATIC, Opcode.PUTSTATIC):
                    throwing = True
                elif op in (Opcode.SREADBAR, Opcode.SWRITEBAR):
                    throwing = True
                elif op in (Opcode.ALOAD, Opcode.ASTORE):
                    throwing = True
                elif op is Opcode.BINOP and instr.operands[1] in (
                    "div", "mod"
                ):
                    throwing = True
                elif op in (
                    Opcode.GETFIELD, Opcode.PUTFIELD, Opcode.ARRAYLEN,
                ):
                    obj = instr.operands[1] if op in (
                        Opcode.GETFIELD, Opcode.ARRAYLEN
                    ) else instr.operands[0]
                    if obj not in fresh[label][index]:
                        throwing = True
                if throwing:
                    break
            if throwing:
                break
        local[name] = throwing

    # Propagate through non-region call edges; calling a region method is
    # itself a potential thrower (the entry rules can reject).
    result = dict(local)
    changed = True
    while changed:
        changed = False
        for name in program.methods:
            if result[name]:
                continue
            for callee in cg.callees[name]:
                callee_method = program.methods[callee]
                if callee_method.is_region or result[callee]:
                    result[name] = True
                    changed = True
                    break
    return result
