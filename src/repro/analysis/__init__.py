"""lamlint: whole-program static analysis for the mini-JIT.

Layered on the generalized dataflow framework in :mod:`repro.jit.dataflow`:

* :mod:`repro.analysis.callgraph` — call graph, SCCs, region contexts and
  governing regions;
* :mod:`repro.analysis.safety` — interprocedural redundant-barrier facts
  (consumed by ``Compiler(optimize_barriers="interprocedural")``) and the
  may-throw analysis;
* :mod:`repro.analysis.labelflow` — definitely-unlabeled and may-taint
  label-flow passes with provenance;
* :mod:`repro.analysis.diagnostics` / :mod:`repro.analysis.lint` — the
  LAM rule set behind ``lamc lint``.
"""

from .callgraph import CallGraph, CallSite, build_callgraph
from .diagnostics import Diagnostic, SEVERITY_OF
from .labelflow import FlowStep, TaintAnalysis, UnlabeledAnalysis
from .lint import LintReport, RULES, run_lint
from .safety import (
    InterproceduralFacts,
    compute_interprocedural_facts,
    may_raise_suppressible,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "Diagnostic",
    "FlowStep",
    "InterproceduralFacts",
    "LintReport",
    "RULES",
    "SEVERITY_OF",
    "TaintAnalysis",
    "UnlabeledAnalysis",
    "build_callgraph",
    "compute_interprocedural_facts",
    "may_raise_suppressible",
    "run_lint",
]
