"""lamlint + lamverify: whole-program static analysis for the mini-JIT.

Layered on the generalized dataflow framework in :mod:`repro.jit.dataflow`:

* :mod:`repro.analysis.callgraph` — call graph, SCCs, region contexts and
  governing regions;
* :mod:`repro.analysis.safety` — interprocedural redundant-barrier facts
  (consumed by ``Compiler(optimize_barriers="interprocedural")``) and the
  may-throw analysis;
* :mod:`repro.analysis.labelflow` — definitely-unlabeled and may-taint
  label-flow passes with provenance;
* :mod:`repro.analysis.diagnostics` / :mod:`repro.analysis.lint` — the
  LAM rule set behind ``lamc lint``;
* :mod:`repro.analysis.typecheck` — the security-type certifier issuing
  machine-checkable per-method :class:`~.typecheck.SecurityCertificate`\\ s
  (consumed by ``Compiler(optimize_barriers="certified")`` and tier-2);
* :mod:`repro.analysis.races` — the lockset + happens-before label-race
  detector (LAM007/LAM008);
* :mod:`repro.analysis.verify` — the ``lamc verify`` driver combining
  lint, races and certification (LAM009);
* :mod:`repro.analysis.secretswap` — the two-run noninterference oracle
  backing the certifier's soundness tests;
* :mod:`repro.analysis.fuzz` — lamfuzz, the production-scale fuzzer
  scaling the secret-swap oracle to whole-OS workloads across the
  execution matrix (``lamc fuzz``).
"""

from .callgraph import CallGraph, CallSite, build_callgraph
from .fuzz import (
    FuzzReport,
    TracePlan,
    TraceVerdict,
    check_trace,
    fuzz_sweep,
    generate_plan,
    leak_catch_budget,
    shrink_trace,
)
from .diagnostics import Diagnostic, RULE_SUMMARIES, SEVERITY_OF, to_sarif
from .labelflow import FlowStep, TaintAnalysis, UnlabeledAnalysis
from .lint import LintReport, RULES, run_lint
from .races import RaceReport, detect_races
from .safety import (
    InterproceduralFacts,
    compute_interprocedural_facts,
    may_raise_suppressible,
)
from .secretswap import (
    Observables,
    assert_swap_indistinguishable,
    collect_observables,
    swap_check,
)
from .typecheck import (
    Obligation,
    SecurityCertificate,
    TypecheckResult,
    check_certificate,
    typecheck_program,
)
from .verify import VerifyReport, run_verify

__all__ = [
    "CallGraph",
    "CallSite",
    "Diagnostic",
    "FlowStep",
    "FuzzReport",
    "InterproceduralFacts",
    "LintReport",
    "Obligation",
    "Observables",
    "RaceReport",
    "RULES",
    "RULE_SUMMARIES",
    "SEVERITY_OF",
    "SecurityCertificate",
    "TaintAnalysis",
    "TracePlan",
    "TraceVerdict",
    "TypecheckResult",
    "UnlabeledAnalysis",
    "VerifyReport",
    "assert_swap_indistinguishable",
    "build_callgraph",
    "check_certificate",
    "check_trace",
    "collect_observables",
    "compute_interprocedural_facts",
    "detect_races",
    "fuzz_sweep",
    "generate_plan",
    "leak_catch_budget",
    "may_raise_suppressible",
    "run_lint",
    "shrink_trace",
    "run_verify",
    "swap_check",
    "to_sarif",
    "typecheck_program",
]
