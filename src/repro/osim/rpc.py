"""Inter-shard RPC: the wire protocol of the sharded multi-kernel cluster.

A cluster deployment (:mod:`repro.osim.cluster`) is N :class:`Kernel`
shards, each booted inside its own worker process, fronted by a
label-aware router.  This module is everything that crosses a process
boundary:

* **Two wire codecs** — the legacy length-prefixed pickle frames
  (:func:`encode_frame` / :func:`decode_frame`), where labels, label
  pairs, and capability sets serialize through their constructor-based
  ``__reduce__`` and *re-intern* on the receiving side, and the binary
  lamwire data plane (:mod:`repro.osim.lamwire`), which eliminates both
  the label bytes and the re-interning via per-connection dictionaries.
  :func:`worker_serve` speaks either, selected by the cluster's
  ``wire=`` mode; pickle stays as the differential-testing fallback.
  The same-process executor routes its messages through the selected
  codec too, so serialization behavior is exercised deterministically in
  tests.
* **The RPC framing is the batch path** — a :class:`ShardRequest` carries
  a tuple of :class:`~repro.osim.kernel.Sqe` and a shard answers with the
  :class:`~repro.osim.kernel.Cqe` list from one ``sys_submit`` call.
  There is no second syscall surface to audit: everything a remote
  client can ask a shard to do is exactly what a local batch could.
* **Replication messages** — :class:`TagSync` (the shared interned-tag
  namespace) and :class:`CapSync` (capability stores / principal
  security fields), both epoch-stamped: a shard rejects any sync frame
  not newer than what it already applied, so re-delivery and reordering
  are harmless, and every applied ``CapSync`` bumps the kernel's
  ``fd_epoch`` so stale permission memos can never be replayed across
  replication lag.
* **Deterministic observables** — each :class:`ShardResponse` carries
  the audit-entry and traffic-log *deltas* its request produced, stamped
  with the router-assigned global sequence number.  The cluster merges
  them into an order that is a pure function of the request trace
  (byte-identical to a single-kernel replay), never of worker timing.
"""

from __future__ import annotations

import pickle
import random
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core import fastpath
from .kernel import Cqe, Kernel, Sqe
from .task import EINVAL, SyscallError

if TYPE_CHECKING:
    from .task import Task

#: Frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: Ceiling on a single frame's payload (a corrupt header must not make a
#: receiver try to allocate gigabytes).
MAX_FRAME_PAYLOAD = 1 << 28


def worker_seed(base: int, worker_id: int) -> int:
    """The deterministic per-worker seeding rule (DESIGN.md §15).

    Every forked worker — cluster shard host or parallel-scheduler
    worker — derives its RNG seed as ``crc32("{base}:{worker_id}")``:
    stable across processes and Python hash randomization, distinct per
    worker, and a pure function of the run's base seed and the worker's
    id.  Workers reseed the global ``random`` module with it at entry
    (:func:`seed_worker_rng`), so two runs with the same base seed are
    bit-reproducible regardless of fork timing or host scheduling."""
    return zlib.crc32(f"{base}:{worker_id}".encode())


def seed_worker_rng(base: int, worker_id: int) -> int:
    """Reseed this process's RNGs for worker ``worker_id``; returns the
    derived seed (reported in :class:`WorkerReport` for reproducibility
    audits)."""
    seed = worker_seed(base, worker_id)
    random.seed(seed)
    return seed


def encode_frame(message: object) -> bytes:
    """Serialize one message into a length-prefixed wire frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(f"frame payload of {len(payload)} bytes exceeds cap")
    return HEADER.pack(len(payload)) + payload


def decode_frame(buf: bytes) -> tuple[object, bytes]:
    """Decode one frame from ``buf``; returns ``(message, remainder)`` so
    callers can consume a concatenated stream frame by frame."""
    if len(buf) < HEADER.size:
        raise ValueError("short frame: missing header")
    (length,) = HEADER.unpack_from(buf)
    if length > MAX_FRAME_PAYLOAD:
        raise ValueError(f"frame claims {length} payload bytes, over cap")
    end = HEADER.size + length
    if len(buf) < end:
        raise ValueError(f"truncated frame: want {length} payload bytes")
    return pickle.loads(buf[HEADER.size : end]), buf[end:]


# --------------------------------------------------------------- messages


@dataclass(frozen=True)
class ShardRequest:
    """One routed request: run ``sqes`` as a ``sys_submit`` batch under
    the named principal.  ``seq`` is the router's global sequence number
    — the logical clock every observable merge keys on."""

    seq: int
    principal: str
    sqes: tuple


@dataclass(frozen=True)
class ShardResponse:
    """Completion of one :class:`ShardRequest`.

    ``audit`` holds the request's audit delta as (kind value, subsystem,
    principal, detail) tuples — sequence numbers are assigned at merge
    time.  ``traffic`` holds the request's transmitted-payload delta as
    (stamp-triple, payload) pairs.  ``deferred`` is the simulated-work
    balance the request accrued (``Kernel.defer_work`` mode)."""

    seq: int
    shard_id: int
    cqes: tuple
    audit: tuple = ()
    traffic: tuple = ()
    deferred: int = 0


@dataclass(frozen=True)
class TagSync:
    """Replicate the interned-tag namespace: a
    :meth:`~repro.core.tags.TagAllocator.snapshot` with its epoch."""

    epoch: int
    next_value: int
    entries: tuple


@dataclass(frozen=True)
class CapSync:
    """Replicate principal security fields (labels + capability stores).
    ``principals`` is a tuple of (name, LabelPair, CapabilitySet)."""

    epoch: int
    principals: tuple


@dataclass(frozen=True)
class SyncAck:
    """A shard's answer to a sync frame: whether it applied (``False``
    means the frame was stale under epoch-stamped invalidation)."""

    shard_id: int
    applied: bool
    epoch: int


@dataclass(frozen=True)
class Shutdown:
    """Ask a worker to report and exit."""


@dataclass(frozen=True)
class ShardReport:
    """Final per-shard observables, returned on shutdown."""

    shard_id: int
    syscall_counts: dict
    hook_calls: dict
    denials: dict
    audit_len: int
    replication_epoch: int
    fd_epoch: int


@dataclass(frozen=True)
class WorkerReport:
    """Final per-worker state: the process-wide fastpath counters plus a
    :class:`ShardReport` for every shard the worker hosted."""

    worker_id: int
    fastpath_counters: dict = field(default_factory=dict)
    shards: tuple = ()
    #: The derived per-worker RNG seed (:func:`worker_seed`); 0 when the
    #: hosting executor predates seeding or runs unseeded.
    seed: int = 0


# ------------------------------------------------------------ shard server


class ShardServer:
    """One shard: a booted kernel plus the request/replication handlers.

    The server is executor-agnostic — the same-process executor calls
    :meth:`handle` directly (after a codec round trip), the
    multiprocessing executor calls it from :func:`worker_serve` inside a
    forked worker.

    Parameters
    ----------
    shard_id, tier:
        The shard's identity and trust tier (see
        :data:`repro.osim.cluster.TIER_CAPACITY`).
    kernel:
        The booted kernel.  Its ``shard_id`` is stamped, its traffic log
        tagged with this worker's id, and any simulated work accrued
        during boot is drained (boot cost is not service time).
    tasks:
        principal name -> :class:`Task`, the shard's principal registry.
    work_ns:
        Wall-clock nanoseconds to sleep per deferred simulated-work unit
        after each request (0 disables sleeping — the deterministic test
        mode).  Sleeping in the worker is what lets N workers overlap
        service time the way N machines would.
    mediation:
        ``"laminar"`` (default) runs each request as one ``sys_submit``
        batch under the in-kernel LSM.  ``"flume"`` models the
        distributed Flume baseline: every operation is mediated
        individually by a user-level monitor, paying the monitor hop
        (``FlumeMonitor.MONITOR_HOP_WORK``) and full per-call entry cost
        — no batching amortization.
    """

    def __init__(
        self,
        shard_id: int,
        kernel: Kernel,
        tasks: "dict[str, Task]",
        tier: str = "edge",
        work_ns: float = 0.0,
        mediation: str = "laminar",
    ) -> None:
        if mediation not in ("laminar", "flume"):
            raise ValueError(f"unknown mediation {mediation!r}")
        self.shard_id = shard_id
        self.tier = tier
        self.kernel = kernel
        self.tasks = tasks
        self.work_ns = work_ns
        self.mediation = mediation
        kernel.shard_id = shard_id
        kernel.net.transmitted.worker_id = shard_id
        kernel.drain_deferred_work()

    # -- request execution --------------------------------------------------

    def handle(self, message: object) -> object:
        """Dispatch one decoded message to its handler."""
        if isinstance(message, ShardRequest):
            return self.execute(message)
        if isinstance(message, TagSync):
            applied = self.kernel.tags.apply_snapshot(
                message.epoch, message.next_value, message.entries
            )
            return SyncAck(self.shard_id, applied, self.kernel.tags.epoch)
        if isinstance(message, CapSync):
            applied = self.kernel.apply_replication(message.epoch)
            if applied:
                for name, labels, caps in message.principals:
                    task = self.tasks.get(name)
                    if task is not None:
                        task.security.set_labels_unchecked(labels)
                        task.security.replace_capabilities(caps)
            return SyncAck(self.shard_id, applied, self.kernel.replication_epoch)
        raise ValueError(f"unroutable message {type(message).__name__}")

    def execute(self, request: ShardRequest) -> ShardResponse:
        kernel = self.kernel
        task = self.tasks.get(request.principal)
        log = kernel.net.transmitted
        log.stamp = request.seq
        audit_entries = kernel.audit._entries
        audit_before = len(audit_entries)
        traffic_before = log.total_messages
        if task is None:
            cqes: list[Cqe] = [Cqe("submit", None, EINVAL)]
        else:
            try:
                if self.mediation == "flume":
                    cqes = self._execute_flume(task, request.sqes)
                else:
                    cqes = kernel.sys_submit(task, list(request.sqes))
            except SyscallError as exc:
                cqes = [Cqe("submit", None, exc.errno)]
        audit = tuple(
            (e.kind.value, e.subsystem, e.principal, e.detail)
            for e in audit_entries[audit_before:]
        )
        delta = log.total_messages - traffic_before
        traffic = tuple(log.stamped_tail(delta)) if delta else ()
        deferred = kernel.drain_deferred_work()
        if self.work_ns and deferred:
            time.sleep(deferred * self.work_ns * 1e-9)
        return ShardResponse(
            seq=request.seq,
            shard_id=self.shard_id,
            cqes=tuple(cqes),
            audit=audit,
            traffic=traffic,
            deferred=deferred,
        )

    def _execute_flume(self, task: "Task", sqes: tuple) -> list[Cqe]:
        """The distributed-Flume arm: per-op user-level monitor mediation.
        Every entry pays the monitor round trip and its full standalone
        syscall cost; there is nothing for a batch to amortize."""
        from ..baselines.flume import FlumeMonitor  # deferred: no cycle

        kernel = self.kernel
        hop = FlumeMonitor.MONITOR_HOP_WORK
        cqes: list[Cqe] = []
        for sqe in sqes:
            kernel._extra_work(hop)
            fn = getattr(kernel, f"sys_{sqe.op}", None)
            try:
                if fn is None:
                    raise SyscallError(EINVAL, f"op {sqe.op!r} is not batchable")
                result = fn(task, *sqe.args)
            except SyscallError as exc:
                cqes.append(Cqe(sqe.op, None, exc.errno))
            else:
                cqes.append(Cqe(sqe.op, result, 0))
        return cqes

    def report(self) -> ShardReport:
        kernel = self.kernel
        return ShardReport(
            shard_id=self.shard_id,
            syscall_counts=dict(kernel.syscall_counts),
            hook_calls=dict(kernel.security.hook_calls),
            denials=dict(kernel.security.denials),
            audit_len=len(kernel.audit),
            replication_epoch=kernel.replication_epoch,
            fd_epoch=kernel.fd_epoch,
        )


# ------------------------------------------------------- worker serve loop


def worker_serve(
    conn,
    worker_id: int,
    servers: "dict[int, ShardServer]",
    seed: int = 0,
    wire: str = "pickle",
    codec=None,
) -> None:
    """Serve wire frames on a ``multiprocessing`` connection until a
    :class:`Shutdown` frame (or EOF) arrives.

    Every request frame is a *wave*: a list of ``(shard_id, message)``
    pairs; the reply frame is the list of responses in the same order.
    Waves amortize the IPC round trip the way ``sys_submit`` amortizes
    the user→kernel crossing — the RPC layer makes the same batching
    argument one level up.

    ``wire`` selects the codec (see :func:`repro.osim.lamwire.make_wire`);
    a pre-built ``codec`` wins over ``wire``.  The codec is bound to every
    hosted shard's tag allocator so its label dictionary invalidates when
    replication advances the tag-namespace epoch."""
    if codec is None:
        from .lamwire import make_wire

        codec = make_wire(wire)
    for server in servers.values():
        codec.bind_allocator(server.kernel.tags)
    decode, encode = codec.decode, codec.encode
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break
        message, _ = decode(frame)
        if isinstance(message, Shutdown):
            report = WorkerReport(
                worker_id=worker_id,
                fastpath_counters=fastpath.counters.snapshot(),
                shards=tuple(
                    servers[sid].report() for sid in sorted(servers)
                ),
                seed=seed,
            )
            conn.send_bytes(encode(report))
            break
        replies = [servers[shard_id].handle(msg) for shard_id, msg in message]
        conn.send_bytes(encode(replies))
    conn.close()
