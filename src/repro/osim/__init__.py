"""Simulated operating system: the Laminar OS half of the paper.

(Named ``osim`` because ``os`` would shadow the standard library.)

The package mirrors the Linux pieces Laminar touches: tasks with security
fields (:mod:`.task`), a VFS-like filesystem with labeled inodes and xattr
persistence (:mod:`.filesystem`), LSM hooks plus the Laminar security
module (:mod:`.lsm`), unreliable labeled pipes (:mod:`.pipes`), sockets and
the unlabeled network (:mod:`.sockets`), the syscall layer (:mod:`.kernel`),
and persistent per-user capabilities with login (:mod:`.persistence`).
The throughput layer lives in :mod:`.sched` (cooperative scheduler with
label-oblivious blocking I/O), :meth:`.kernel.Kernel.sys_submit`
(io_uring-style batched submission), :mod:`.psched` (parallel scheduler
backend partitioning task groups across a fork worker pool), and
:mod:`.hookchain` (tier-2 compilation of hot LSM hook chains).  Scale-out
lives in :mod:`.cluster` (sharded multi-kernel deployments behind a
label-aware router), :mod:`.rpc` (the inter-shard message surface), and
:mod:`.lamwire` (the zero-copy binary data plane: schema'd codec,
per-connection label dictionaries, adaptive coalescing).
"""

from .cluster import (
    Cluster,
    ClusterRequest,
    LabelAwareRouter,
    RoutingError,
    ShardSpec,
    TIER_CAPACITY,
    boot_shard,
    make_specs,
    render_audit,
    replay_single,
    tier_can_hold,
)
from .faults import FaultKind, FaultPlan, FaultRule, KernelCrash
from .hookchain import HookChainEngine
from .filesystem import (
    BLOCK_SIZE,
    File,
    Filesystem,
    Inode,
    InodeType,
    OpenMode,
    XATTR_INTEGRITY,
    XATTR_SECRECY,
    decode_label,
    encode_label,
)
from .kernel import Cqe, Kernel, Mapping, Sqe, TCB_TAG
from .lamwire import (
    AdaptiveCoalescer,
    BinaryWireCodec,
    PickleWire,
    WIRE_MODES,
    make_wire,
    request_size_hint,
)
from .recovery import (
    Journal,
    RecoveryInvariantError,
    RecoveryReport,
    check_recovery_invariants,
    recover,
)
from .lsm import (
    LaminarSecurityModule,
    LeakySecurityModule,
    Mask,
    NullSecurityModule,
    SecurityModule,
)
from .pipes import DEFAULT_PIPE_CAPACITY, Pipe, freeze
from .sched import (
    SIGKILL,
    SIGTERM,
    Scheduler,
    fork,
    read_blocking,
    recv_blocking,
    submit,
    syscall,
    yield_,
)
from .psched import (
    GroupHandle,
    GroupResult,
    ParallelScheduler,
    PschedWorkerReport,
    replay_cooperative,
    run_group,
)
from .persistence import (
    decode_capabilities,
    encode_capabilities,
    grant_persistent,
    load_user_capabilities,
    login,
    revoke_by_relabel,
    store_user_capabilities,
)
from .rpc import (
    CapSync,
    ShardRequest,
    ShardResponse,
    ShardServer,
    TagSync,
    WorkerReport,
    decode_frame,
    encode_frame,
    seed_worker_rng,
    worker_seed,
)
from .sockets import DEFAULT_TRAFFIC_LOG_CAP, Network, Socket, TrafficLog
from .task import (
    EACCES,
    EAGAIN,
    EBADF,
    EEXIST,
    EINVAL,
    EIO,
    EISDIR,
    ENOENT,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    EPERM,
    EPIPE,
    ESRCH,
    SyscallError,
    Task,
)

__all__ = [
    "AdaptiveCoalescer",
    "BLOCK_SIZE",
    "BinaryWireCodec",
    "CapSync",
    "Cluster",
    "ClusterRequest",
    "Cqe",
    "DEFAULT_PIPE_CAPACITY",
    "DEFAULT_TRAFFIC_LOG_CAP",
    "EACCES",
    "EAGAIN",
    "EBADF",
    "EEXIST",
    "EINVAL",
    "EIO",
    "EISDIR",
    "ENOENT",
    "ENOSPC",
    "ENOTDIR",
    "ENOTEMPTY",
    "EPERM",
    "EPIPE",
    "ESRCH",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "File",
    "Filesystem",
    "GroupHandle",
    "GroupResult",
    "HookChainEngine",
    "Inode",
    "InodeType",
    "Journal",
    "Kernel",
    "KernelCrash",
    "LabelAwareRouter",
    "LaminarSecurityModule",
    "LeakySecurityModule",
    "Mapping",
    "Mask",
    "Network",
    "NullSecurityModule",
    "OpenMode",
    "ParallelScheduler",
    "PickleWire",
    "Pipe",
    "PschedWorkerReport",
    "RecoveryInvariantError",
    "RecoveryReport",
    "RoutingError",
    "SIGKILL",
    "SIGTERM",
    "Scheduler",
    "SecurityModule",
    "ShardRequest",
    "ShardResponse",
    "ShardServer",
    "ShardSpec",
    "Socket",
    "Sqe",
    "SyscallError",
    "TCB_TAG",
    "TIER_CAPACITY",
    "TagSync",
    "Task",
    "TrafficLog",
    "WIRE_MODES",
    "WorkerReport",
    "XATTR_INTEGRITY",
    "XATTR_SECRECY",
    "boot_shard",
    "check_recovery_invariants",
    "decode_capabilities",
    "decode_frame",
    "decode_label",
    "encode_capabilities",
    "encode_frame",
    "encode_label",
    "fork",
    "freeze",
    "grant_persistent",
    "load_user_capabilities",
    "login",
    "make_specs",
    "make_wire",
    "read_blocking",
    "recover",
    "recv_blocking",
    "request_size_hint",
    "seed_worker_rng",
    "render_audit",
    "replay_cooperative",
    "replay_single",
    "run_group",
    "revoke_by_relabel",
    "store_user_capabilities",
    "submit",
    "syscall",
    "tier_can_hold",
    "worker_seed",
    "yield_",
]
