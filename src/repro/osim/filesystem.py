"""An in-memory Unix-like filesystem with labeled inodes.

Models the pieces of the Linux VFS that Laminar's security module hooks
(Section 5.2):

* **Inodes** carry the secrecy/integrity labels in their security field; for
  regular filesystems the labels are *persisted* in extended attributes
  (``security.laminar.secrecy`` / ``security.laminar.integrity``), as the
  paper does for ext2/ext3/xfs/reiserfs.
* The label of an inode protects its contents and metadata **except** the
  name and the label themselves, which are protected by the label of the
  parent directory — creating a file is a write to the parent.
* Directory trees follow the paper's convention that secrecy increases from
  root to leaves, and system directories get the administrator integrity
  label at install time; users who distrust the administrator use relative
  paths (resolution starting from an inode they already hold).

The filesystem performs *no* DIFC checks itself: checks live in the LSM
hooks invoked by the kernel's syscall layer, mirroring Linux's separation
between the VFS and the security module.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional

from ..core import Label, LabelPair, Tag, TagAllocator
from .faults import FaultKind
from .task import (
    EEXIST,
    EINVAL,
    EIO,
    EISDIR,
    ENOENT,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    SyscallError,
)

XATTR_SECRECY = "security.laminar.secrecy"
XATTR_INTEGRITY = "security.laminar.integrity"

#: Simulated disk block size for fault-granular data writes.  Only the
#: fault-injection path chunks writes; the normal path is one splice.
BLOCK_SIZE = 64


class InodeType(enum.Enum):
    REGULAR = "regular"
    DIRECTORY = "directory"
    PIPE = "pipe"
    SOCKET = "socket"
    DEVICE = "device"


class Inode:
    """One filesystem object.

    ``labels`` is the LSM security field.  For regular files and directories
    the same information is mirrored into ``xattrs`` so that labels survive
    a simulated unmount/remount (see :meth:`Filesystem.remount`).
    """

    _ino_counter = itertools.count(1)

    def __init__(
        self,
        itype: InodeType,
        labels: LabelPair = LabelPair.EMPTY,
        mode: int = 0o644,
    ) -> None:
        self.ino = next(self._ino_counter)
        self.itype = itype
        self.labels = labels
        self.mode = mode
        self.nlink = 1
        self.data = bytearray()
        #: name -> child inode; only meaningful for directories.
        self.children: dict[str, "Inode"] = {}
        self.xattrs: dict[str, bytes] = {}
        if itype in (InodeType.REGULAR, InodeType.DIRECTORY):
            self._persist_labels()

    # -- label persistence (extended attributes) ----------------------------

    def _persist_labels(self) -> None:
        self.xattrs[XATTR_SECRECY] = encode_label(self.labels.secrecy)
        self.xattrs[XATTR_INTEGRITY] = encode_label(self.labels.integrity)

    def restore_labels(self, allocator: TagAllocator) -> None:
        """Re-hydrate ``labels`` from xattrs after a simulated remount."""
        secrecy = decode_label(self.xattrs.get(XATTR_SECRECY, b""), allocator)
        integrity = decode_label(self.xattrs.get(XATTR_INTEGRITY, b""), allocator)
        self.labels = LabelPair(secrecy, integrity)

    # -- size/metadata -------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def is_dir(self) -> bool:
        return self.itype is InodeType.DIRECTORY

    def __repr__(self) -> str:
        return f"Inode(ino={self.ino}, {self.itype.value}, labels={self.labels!r})"


def encode_label(label: Label) -> bytes:
    """Serialize a label into the xattr wire format: 8 bytes per tag,
    big-endian, sorted — the on-disk layout of a sorted 64-bit array."""
    return b"".join(tag.value.to_bytes(8, "big") for tag in label)


def decode_label(blob: bytes, allocator: TagAllocator) -> Label:
    """Inverse of :func:`encode_label`.  Unknown tag values are re-created
    as anonymous tags (a remounted filesystem may carry tags allocated in a
    previous boot)."""
    if len(blob) % 8:
        raise ValueError("corrupt label xattr")
    tags = []
    for offset in range(0, len(blob), 8):
        value = int.from_bytes(blob[offset : offset + 8], "big")
        tags.append(allocator.lookup(value) or Tag(value))
    return Label(tags)


class OpenMode(enum.Flag):
    READ = enum.auto()
    WRITE = enum.auto()
    APPEND = enum.auto()
    CREATE = enum.auto()

    @classmethod
    def parse(cls, mode: str) -> "OpenMode":
        table = {
            "r": cls.READ,
            "w": cls.WRITE | cls.CREATE,
            "a": cls.WRITE | cls.APPEND | cls.CREATE,
            "r+": cls.READ | cls.WRITE,
            "w+": cls.READ | cls.WRITE | cls.CREATE,
        }
        try:
            return table[mode]
        except KeyError:
            raise SyscallError(EINVAL, f"bad open mode {mode!r}") from None


class File:
    """An open file description (the ``struct file`` analog): inode +
    offset + mode.  File-descriptor-level hooks (``file_permission``) take
    these, inode-level hooks take :class:`Inode`."""

    def __init__(self, inode: Inode, mode: OpenMode) -> None:
        self.inode = inode
        self.mode = mode
        self.offset = 0
        #: Number of fd-table slots referencing this description (dup /
        #: fork inheritance / SCM_RIGHTS-style sharing all install the
        #: same ``File``).  Maintained by ``Task.install_fd``/``remove_fd``;
        #: the kernel uses it to detect the last explicit close of a pipe
        #: end.
        self.refs = 0

    def readable(self) -> bool:
        return bool(self.mode & OpenMode.READ)

    def writable(self) -> bool:
        return bool(self.mode & OpenMode.WRITE)


class Filesystem:
    """A mounted tree of inodes with path resolution.

    Path resolution supports absolute paths (from ``self.root``) and
    relative paths (from a caller-supplied starting inode), which the paper
    leans on for users who do not trust the administrator's integrity label
    on system directories.
    """

    def __init__(self, root_labels: LabelPair = LabelPair.EMPTY) -> None:
        #: Per-filesystem inode numbering.  Regular files and directories
        #: are renumbered from this counter when they enter the tree
        #: (:meth:`adopt_inode`), so two kernels that perform the same
        #: setup sequence produce byte-identical ino values — regardless
        #: of how many other kernels live in the process or what anonymous
        #: pipe/socket inodes were created in between.  That determinism
        #: is what lets a sharded cluster's merged audit log (denial
        #: details embed ``Inode`` reprs) compare byte-for-byte against a
        #: single-kernel replay (repro.osim.cluster).
        self._ino_counter = itertools.count(1)
        self.root = Inode(InodeType.DIRECTORY, root_labels, mode=0o755)
        self.adopt_inode(self.root)
        #: Fault-injection plan shared with the kernel; ``None`` (the
        #: default) keeps every write on the unchunked fast path.
        self.faults = None
        #: Write-ahead journal for label/capability mutations.  Lives here
        #: — on the simulated disk — so records survive a kernel crash.
        from .recovery import Journal  # deferred: recovery imports us

        self.journal = Journal()
        #: Omniscient-observer label history: ino -> every LabelPair the
        #: running kernel ever exposed for that inode (linked or relabeled
        #: to).  Ground truth for ``check_recovery_invariants``'s
        #: no-weakening check, analogous to ``Pipe.dropped``; recovery
        #: itself never reads it.
        self.exposed: dict[int, list[LabelPair]] = {}

    # -- path handling --------------------------------------------------------

    @staticmethod
    def split(path: str) -> list[str]:
        parts = [p for p in path.split("/") if p and p != "."]
        return parts

    def resolve(self, path: str, cwd: Optional[Inode] = None) -> Inode:
        """Walk ``path`` and return the final inode.

        Raises ``ENOENT``/``ENOTDIR``.  No permission checks happen here —
        the kernel walks with LSM checks at each component via
        :meth:`walk_components`.
        """
        inode, name = self.resolve_parent(path, cwd)
        if name is None:
            return inode
        if not inode.is_dir:
            raise SyscallError(ENOTDIR, path)
        child = inode.children.get(name)
        if child is None:
            raise SyscallError(ENOENT, path)
        return child

    def resolve_parent(
        self, path: str, cwd: Optional[Inode] = None
    ) -> tuple[Inode, Optional[str]]:
        """Resolve to ``(parent_inode, final_component)``.

        ``final_component`` is ``None`` when the path denotes the start
        inode itself (e.g. ``"/"``).
        """
        if path.startswith("/") or cwd is None:
            current = self.root
        else:
            current = cwd
        parts = self.split(path)
        if not parts:
            return current, None
        for part in parts[:-1]:
            current = self._step(current, part, path)
        return current, parts[-1]

    def walk_components(
        self, path: str, cwd: Optional[Inode] = None
    ) -> Iterator[Inode]:
        """Yield every directory inode traversed while resolving ``path``
        (excluding the final component).  The kernel runs the LSM
        ``inode_permission`` (execute/search) hook on each."""
        if path.startswith("/") or cwd is None:
            current = self.root
        else:
            current = cwd
        yield current
        parts = self.split(path)
        for part in parts[:-1]:
            current = self._step(current, part, path)
            yield current

    @staticmethod
    def _step(current: Inode, part: str, full_path: str) -> Inode:
        if not current.is_dir:
            raise SyscallError(ENOTDIR, full_path)
        child = current.children.get(part)
        if child is None:
            raise SyscallError(ENOENT, full_path)
        return child

    # -- structural mutation (no DIFC checks; kernel hooks do those) -----------

    def adopt_inode(self, inode: Inode) -> Inode:
        """Assign ``inode`` a number from this filesystem's own counter.

        Idempotent: an inode already adopted by this filesystem keeps its
        number.  Anonymous inodes (pipes, sockets, devices) are never
        adopted — they keep the process-global provisional numbering from
        the :class:`Inode` constructor."""
        if getattr(inode, "_ino_home", None) is not self:
            inode.ino = next(self._ino_counter)
            inode._ino_home = self
        return inode

    def link_child(self, parent: Inode, name: str, child: Inode) -> None:
        if not parent.is_dir:
            raise SyscallError(ENOTDIR, name)
        if name in parent.children:
            raise SyscallError(EEXIST, name)
        if not name or "/" in name:
            raise SyscallError(EINVAL, name)
        if child.itype in (InodeType.REGULAR, InodeType.DIRECTORY):
            self.adopt_inode(child)
        parent.children[name] = child
        if child.itype in (InodeType.REGULAR, InodeType.DIRECTORY):
            self.exposed.setdefault(child.ino, []).append(child.labels)

    def unlink_child(self, parent: Inode, name: str) -> Inode:
        if not parent.is_dir:
            raise SyscallError(ENOTDIR, name)
        child = parent.children.get(name)
        if child is None:
            raise SyscallError(ENOENT, name)
        if child.is_dir and child.children:
            raise SyscallError(ENOTEMPTY, name)
        del parent.children[name]
        child.nlink -= 1
        return child

    # -- data access (again: checks live in the kernel) ------------------------

    @staticmethod
    def read(file: File, count: int = -1) -> bytes:
        inode = file.inode
        if inode.is_dir:
            raise SyscallError(EISDIR, "read of a directory")
        end = inode.size if count < 0 else min(inode.size, file.offset + count)
        # One copy, not two: slicing the bytearray directly would build an
        # intermediate bytearray that bytes() then copies again.  Going
        # through a memoryview materializes the result exactly once.
        data = bytes(memoryview(inode.data)[file.offset : end])
        file.offset = end
        return data

    @staticmethod
    def read_view(file: File, count: int = -1) -> memoryview:
        """Zero-copy read: a read-only :class:`memoryview` over the file's
        buffer.  TCB-internal (the batch submission path and vectored I/O
        use it to avoid materializing intermediate chunks); the view
        aliases the inode, so callers must consume it before any write to
        the same file."""
        inode = file.inode
        if inode.is_dir:
            raise SyscallError(EISDIR, "read of a directory")
        end = inode.size if count < 0 else min(inode.size, file.offset + count)
        view = memoryview(inode.data).toreadonly()[file.offset : end]
        file.offset = end
        return view

    def write(self, file: File, data: bytes) -> int:
        inode = file.inode
        if inode.is_dir:
            raise SyscallError(EISDIR, "write of a directory")
        if file.mode & OpenMode.APPEND:
            file.offset = inode.size
        if self.faults is not None and data:
            return self._write_faulted(file, data)
        end = file.offset + len(data)
        if end > inode.size:
            inode.data.extend(b"\0" * (end - inode.size))
        inode.data[file.offset : end] = data
        file.offset = end
        return len(data)

    def _write_faulted(self, file: File, data: bytes) -> int:
        """Block-granular data write, crossing the ``fs.block_write`` fault
        site once per :data:`BLOCK_SIZE` chunk.  Kind semantics:

        * ``EIO``/``ENOSPC`` — fail the call; blocks already applied stay
          (POSIX makes no atomicity promise for multi-block ``write``).
        * ``SHORT_WRITE`` — stop and return the short count, like a real
          short write the caller is supposed to check.
        * ``CRASH`` — the applied prefix survives, the machine dies.
        * ``TORN_WRITE`` — this block is *skipped* (its old content
          survives), later blocks land, then the machine dies: the
          non-prefix torn state journaling of metadata must tolerate.
        """
        inode, faults = file.inode, self.faults
        torn = False
        written = 0
        for start in range(0, len(data), BLOCK_SIZE):
            chunk = data[start : start + BLOCK_SIZE]
            kind = faults.fire("fs.block_write")
            if kind is FaultKind.EIO:
                raise SyscallError(EIO, "simulated I/O error")
            if kind is FaultKind.ENOSPC:
                raise SyscallError(ENOSPC, "simulated disk full")
            if kind is FaultKind.SHORT_WRITE:
                file.offset += written
                return written
            if kind is FaultKind.CRASH:
                faults.crash("fs.block_write")
            if kind is FaultKind.TORN_WRITE:
                torn = True
                continue
            begin = file.offset + start
            end = begin + len(chunk)
            if end > inode.size:
                inode.data.extend(b"\0" * (end - inode.size))
            inode.data[begin:end] = chunk
            written += len(chunk)
        if torn:
            faults.crash("fs.block_write")
        file.offset += len(data)
        return len(data)

    # -- journaled security-metadata writes --------------------------------

    def blob_write(
        self,
        write_cb,
        blob: bytes,
        site: str,
        old: bytes = b"",
        block: int = BLOCK_SIZE,
    ) -> None:
        """Write a whole metadata blob (an xattr value, a capability file)
        through ``write_cb``, chunked at ``block`` bytes so each chunk
        crosses the ``site`` fault point.  Without a plan installed this is
        a single callback invocation.

        Detected failures (``EIO``/``ENOSPC``/short write) raise
        :class:`SyscallError` after flushing the partial image — the caller
        holds the journal record and rolls back inline.  Crash kinds flush
        a partial (``CRASH``: prefix; ``TORN_WRITE``: non-prefix mix of old
        and new blocks) and raise :class:`KernelCrash` — recovery resolves
        the journal record instead.
        """
        faults = self.faults
        if faults is None:
            write_cb(blob)
            return
        nblocks = max(1, -(-len(blob) // block))
        applied: list[int] = []
        partial: Optional[tuple[int, int]] = None
        torn = False
        failure: Optional[SyscallError] = None
        for i in range(nblocks):
            kind = faults.fire(site)
            if kind is None:
                applied.append(i)
                continue
            if kind is FaultKind.EIO:
                failure = SyscallError(EIO, f"simulated I/O error at {site}")
                break
            if kind is FaultKind.ENOSPC:
                failure = SyscallError(ENOSPC, f"simulated disk full at {site}")
                break
            if kind is FaultKind.SHORT_WRITE:
                partial = (i, max(1, block // 2))
                failure = SyscallError(EIO, f"short write at {site}")
                break
            if kind is FaultKind.CRASH:
                partial = (i, max(1, block // 2))
                break
            # TORN_WRITE: skip this block, keep writing later ones.
            torn = True
        write_cb(self._compose(old, blob, applied, block, partial, nblocks))
        if failure is not None:
            raise failure
        if torn or partial is not None:
            faults.crash(site)

    @staticmethod
    def _compose(
        old: bytes,
        blob: bytes,
        applied: list[int],
        block: int,
        partial: Optional[tuple[int, int]],
        nblocks: int,
    ) -> bytes:
        """The on-disk image after applying ``applied`` whole blocks of
        ``blob`` (plus at most one partial block) over ``old``."""
        if len(applied) == nblocks and partial is None:
            return blob
        image = bytearray(old)
        spans = [(i * block, min((i + 1) * block, len(blob))) for i in applied]
        if partial is not None:
            i, nbytes = partial
            spans.append((i * block, min(i * block + nbytes, len(blob))))
        for start, end in spans:
            if len(image) < end:
                image.extend(b"\0" * (end - len(image)))
            image[start:end] = blob[start:end]
        return bytes(image)

    def set_labels(self, inode: Inode, labels: LabelPair) -> None:
        """Journaled relabel: the only way persistent labels change after
        creation.  Sequence: journal-begin (full pre/post xattr images) →
        write both xattrs through the ``xattr.write`` fault site → update
        the in-memory security field → journal-commit.  A detected write
        failure restores the pre-image inline and aborts the record; a
        crash leaves the begin record for :func:`~repro.osim.recovery.recover`.
        """
        old = {
            XATTR_SECRECY: inode.xattrs.get(XATTR_SECRECY, b""),
            XATTR_INTEGRITY: inode.xattrs.get(XATTR_INTEGRITY, b""),
        }
        new = {
            XATTR_SECRECY: encode_label(labels.secrecy),
            XATTR_INTEGRITY: encode_label(labels.integrity),
        }
        faults = self.faults
        if faults is not None:
            kind = faults.fire("journal.append")
            if kind in (FaultKind.CRASH, FaultKind.TORN_WRITE):
                faults.crash("journal.append")  # before begin: clean no-op
            if kind is FaultKind.ENOSPC:
                raise SyscallError(ENOSPC, "journal full")
            if kind is not None:
                raise SyscallError(EIO, "journal I/O error")
        rec = self.journal.begin("relabel", ino=inode.ino, old=old, new=new)
        try:
            for key in (XATTR_SECRECY, XATTR_INTEGRITY):

                def _store(value: bytes, _key: str = key) -> None:
                    inode.xattrs[_key] = value

                self.blob_write(
                    _store, new[key], "xattr.write", old=old[key], block=8
                )
        except SyscallError:
            inode.xattrs.update(old)  # raw: inline rollback is not re-faulted
            self.journal.abort(rec)
            raise
        inode.labels = labels
        self.journal.commit(rec)
        self.exposed.setdefault(inode.ino, []).append(labels)

    # -- persistence round-trip -------------------------------------------------

    def remount(self, allocator: TagAllocator) -> None:
        """Simulate unmount + mount: drop all in-memory security fields and
        re-read them from extended attributes.  Exercises the persistence
        path the paper gets from ext3 xattrs."""
        stack = [self.root]
        while stack:
            inode = stack.pop()
            if inode.itype in (InodeType.REGULAR, InodeType.DIRECTORY):
                inode.labels = LabelPair.EMPTY
                inode.restore_labels(allocator)
            stack.extend(inode.children.values())
