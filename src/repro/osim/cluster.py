"""Sharded multi-kernel cluster: executors, label-aware routing, merging.

One simulated :class:`~repro.osim.kernel.Kernel` is one machine.  This
module scales the reproduction out the way the paper's data-lineage
discussion scales Laminar out: N kernels ("shards"), each a full machine
image with its own LSM, filesystem, and audit log, fronted by a
**label-aware router**.

* :class:`LabelAwareRouter` hashes (principal, secrecy tags) to a shard
  — but only among shards whose *trust tier* can hold the request's
  labels.  Tiers mirror the deployment story of the MapReduce-style
  lineage systems (edge collectors may hold any user's raw taint, a
  shuffle tier only narrow aggregates, a central tier only fully
  declassified data): :data:`TIER_CAPACITY` caps the number of secrecy
  tags a shard may be asked to hold.  Routing is a pure function of the
  request's (principal, labels) — the router never looks at verdicts, so
  a denied request takes exactly the route and produces exactly the
  (empty) observable a successful one would: denied ≡ empty holds at the
  router, not just inside each kernel.
* Two executors run the shards: :class:`SameProcessExecutor` (every
  shard in this process, deterministic, for tests) and
  :class:`MultiprocessExecutor` (each worker process hosts one or more
  shards and sleeps off their simulated work, so service time overlaps
  the way it would across machines).  Both move every message through
  the wire codec (:mod:`repro.osim.rpc`), so label re-interning and
  canonical capability encoding are exercised either way.
* The shared namespaces replicate by epoch-stamped frames —
  :meth:`Cluster.sync_tags` (interned-tag namespace) and
  :meth:`Cluster.sync_caps` (capability stores) — and every applied
  ``CapSync`` bumps the receiving kernel's ``fd_epoch``, orphaning
  permission memos recorded under the pre-replication state.
* Observables merge deterministically: every request carries a
  router-assigned global sequence number; :meth:`Cluster.merged_audit`
  and :meth:`Cluster.merged_traffic` reassemble the per-shard deltas in
  stamp order, which makes cluster-mode audit and traffic byte-identical
  to :func:`replay_single` running the same routed trace on one kernel.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core import LabelPair
from ..core import fastpath
from ..core.audit import AuditEntry, AuditKind
from .kernel import Kernel
from .lsm import LaminarSecurityModule
from .rpc import (
    CapSync,
    ShardRequest,
    ShardServer,
    Shutdown,
    TagSync,
    WorkerReport,
    decode_frame,
    encode_frame,
    seed_worker_rng,
    worker_seed,
    worker_serve,
)
from .sockets import TrafficLog

if TYPE_CHECKING:
    from .task import Task

#: Trust tiers and the most secrecy tags each may be asked to hold.
#: ``None`` means unbounded (an edge shard is trusted with any user's raw
#: taint); a central shard only ever sees fully declassified requests.
TIER_CAPACITY: dict[str, Optional[int]] = {
    "edge": None,
    "shuffle": 1,
    "central": 0,
}


class RoutingError(Exception):
    """No shard's trust tier can hold the request's labels."""


@dataclass(frozen=True)
class ShardSpec:
    """A shard's identity and trust tier."""

    shard_id: int
    tier: str = "edge"

    def __post_init__(self) -> None:
        if self.tier not in TIER_CAPACITY:
            raise ValueError(f"unknown tier {self.tier!r}")


@dataclass(frozen=True)
class ClusterRequest:
    """One client request before routing: who, under what labels, doing
    which batch.  ``labels`` is what the router sees — the submitting
    principal's label pair at routing time."""

    principal: str
    labels: LabelPair
    sqes: tuple


def make_specs(shards: int, topology: str = "edge") -> list[ShardSpec]:
    """Build shard specs from a topology string: a comma-separated tier
    list, cycled over the shard count (``"edge"`` → all edge,
    ``"edge,edge,shuffle,central"`` → mixed tiers)."""
    tiers = [t.strip() for t in topology.split(",") if t.strip()]
    if not tiers:
        raise ValueError("empty topology")
    return [ShardSpec(i, tiers[i % len(tiers)]) for i in range(shards)]


def tier_can_hold(tier: str, labels: LabelPair) -> bool:
    """True iff a shard of this tier may be handed a request carrying
    ``labels``.  The capacity bound is on secrecy tags: secrecy is what a
    compromised low-trust shard could leak."""
    cap = TIER_CAPACITY[tier]
    return cap is None or len(labels.secrecy) <= cap


class LabelAwareRouter:
    """Hash (principal, secrecy tags) onto the label-eligible shards.

    The hash is :func:`zlib.crc32` over the principal name chained
    through the sorted secrecy tag values — stable across processes and
    Python hash randomization, so a trace routes identically everywhere
    (the determinism the observable merge depends on).  Every decision is
    appended to ``trace`` for the tier-invariant property tests.
    """

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("router needs at least one shard")
        #: Routing decisions: (principal, labels, shard_id) in order.
        self.trace: list[tuple[str, LabelPair, int]] = []

    def eligible(self, labels: LabelPair) -> list[ShardSpec]:
        return [spec for spec in self.specs if tier_can_hold(spec.tier, labels)]

    @staticmethod
    def route_key(principal: str, labels: LabelPair) -> int:
        key = zlib.crc32(principal.encode())
        for tag in labels.secrecy:
            key = zlib.crc32(str(tag.value).encode(), key)
        return key

    def route(self, principal: str, labels: LabelPair) -> ShardSpec:
        shards = self.eligible(labels)
        if not shards:
            raise RoutingError(
                f"no shard tier can hold {labels!r} "
                f"(secrecy width {len(labels.secrecy)})"
            )
        spec = shards[self.route_key(principal, labels) % len(shards)]
        self.trace.append((principal, labels, spec.shard_id))
        return spec


# ----------------------------------------------------------------- booting


def boot_shard(
    world,
    spec: ShardSpec,
    *,
    defer_work: bool = False,
    work_ns: float = 0.0,
    mediation: str = "laminar",
) -> ShardServer:
    """Boot one shard: a fresh kernel, the replicated world image built
    onto it by ``world.build(kernel)`` (every shard builds the *same*
    world — identical setup sequences produce identical inode numbers,
    which is what lets denial details compare byte-for-byte against a
    single-kernel replay), wrapped in a :class:`ShardServer`."""
    kernel = Kernel(LaminarSecurityModule(), shard_id=spec.shard_id)
    # World building always defers its simulated work (boot cost is not
    # service time, and busy-looping through a large world would serialize
    # worker start-up); the server constructor drains the balance.
    kernel.defer_work = True
    tasks = world.build(kernel)
    server = ShardServer(
        spec.shard_id,
        kernel,
        tasks,
        tier=spec.tier,
        work_ns=work_ns,
        mediation=mediation,
    )
    kernel.defer_work = defer_work
    return server


def replay_single(world, trace: Sequence[ClusterRequest], *, mediation: str = "laminar"):
    """Run an already-routed trace, in global sequence order, on ONE
    kernel holding the full world — the parity baseline.  Returns
    ``(server, responses)``; the server's kernel audit/traffic are what
    cluster-mode merges must reproduce byte-for-byte."""
    server = boot_shard(world, ShardSpec(0, "edge"), mediation=mediation)
    responses = [
        server.execute(ShardRequest(seq, req.principal, tuple(req.sqes)))
        for seq, req in enumerate(trace, 1)
    ]
    return server, responses


def render_audit(entries) -> list[str]:
    """Render audit entries (an :class:`AuditLog` or iterable) to their
    canonical one-line forms — the byte-comparison currency."""
    return [str(entry) for entry in entries]


# --------------------------------------------------------------- executors


class SameProcessExecutor:
    """Every shard lives in the calling process.  Deterministic (no real
    concurrency), but every wave still round-trips through the wire codec
    so serialization — label re-interning above all — is exercised."""

    def __init__(self, servers: dict[int, ShardServer], seed: int = 0) -> None:
        self.servers = servers
        # Derive (but do not install) worker 0's seed: this process is the
        # caller's, and its RNG state is the caller's business; reseeding
        # matters only in forked workers, which inherit parent state.
        self.seed = worker_seed(seed, 0)

    def submit_wave(self, wave: list) -> list:
        decoded, _ = decode_frame(encode_frame(list(wave)))
        replies = [self.servers[shard_id].handle(msg) for shard_id, msg in decoded]
        return decode_frame(encode_frame(replies))[0]

    def shutdown(self) -> list[WorkerReport]:
        return [
            WorkerReport(
                worker_id=0,
                fastpath_counters=fastpath.counters.snapshot(),
                shards=tuple(
                    self.servers[sid].report() for sid in sorted(self.servers)
                ),
                seed=self.seed,
            )
        ]


def _cluster_worker_main(
    conn, worker_id, specs, world, defer_work, work_ns, mediation, seed=0
) -> None:
    """Entry point of a forked cluster worker: reseed this process's RNG
    under the deterministic per-worker rule (fork inherits the parent's
    RNG state, so unseeded workers would all share one stream whose
    consumption depended on pre-fork parent activity), boot this worker's
    shards, signal readiness (so the driver never times boot as
    service), serve."""
    wseed = seed_worker_rng(seed, worker_id)
    servers = {
        spec.shard_id: boot_shard(
            world,
            spec,
            defer_work=defer_work,
            work_ns=work_ns,
            mediation=mediation,
        )
        for spec in specs
    }
    conn.send_bytes(encode_frame(("ready", sorted(servers))))
    worker_serve(conn, worker_id, servers, seed=wseed)


class MultiprocessExecutor:
    """Each worker process hosts one or more shards (round-robin when
    ``workers`` < shards) and serves waves over a pipe.

    A wave is split into per-worker sub-waves, all sent before any reply
    is awaited — every worker is busy at once, which is where the
    near-linear scaling comes from: in ``defer_work`` mode each worker
    *sleeps off* its shards' simulated work, and sleeps overlap across
    processes regardless of host core count, exactly as service time
    overlaps across real machines."""

    def __init__(
        self,
        world,
        specs: Sequence[ShardSpec],
        *,
        workers: Optional[int] = None,
        defer_work: bool = True,
        work_ns: float = 0.0,
        mediation: str = "laminar",
        seed: int = 0,
    ) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        nworkers = max(1, min(workers or len(specs), len(specs)))
        self.worker_of = {
            spec.shard_id: i % nworkers for i, spec in enumerate(specs)
        }
        assignment: list[list[ShardSpec]] = [[] for _ in range(nworkers)]
        for i, spec in enumerate(specs):
            assignment[i % nworkers].append(spec)
        self.conns = []
        self.procs = []
        for wid in range(nworkers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_cluster_worker_main,
                args=(
                    child_conn,
                    wid,
                    assignment[wid],
                    world,
                    defer_work,
                    work_ns,
                    mediation,
                    seed,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)
        for conn in self.conns:
            decode_frame(conn.recv_bytes())  # ready handshake
        self._down = False

    def submit_wave(self, wave: list) -> list:
        by_worker: dict[int, list[tuple[int, int, object]]] = {}
        for idx, (shard_id, msg) in enumerate(wave):
            by_worker.setdefault(self.worker_of[shard_id], []).append(
                (idx, shard_id, msg)
            )
        for wid, items in by_worker.items():
            self.conns[wid].send_bytes(
                encode_frame([(shard_id, msg) for _, shard_id, msg in items])
            )
        results: list = [None] * len(wave)
        for wid, items in by_worker.items():
            replies, _ = decode_frame(self.conns[wid].recv_bytes())
            for (idx, _, _), reply in zip(items, replies):
                results[idx] = reply
        return results

    def shutdown(self) -> list[WorkerReport]:
        if self._down:
            return []
        self._down = True
        reports = []
        for conn in self.conns:
            conn.send_bytes(encode_frame(Shutdown()))
        for conn in self.conns:
            report, _ = decode_frame(conn.recv_bytes())
            reports.append(report)
            conn.close()
        for proc in self.procs:
            proc.join(timeout=30)
        return reports


# ------------------------------------------------------------------ cluster


class Cluster:
    """The deployment object: router + executor + observable merging.

    ``world`` is any object with a ``build(kernel) -> dict[name, Task]``
    method; every shard (and the single-kernel parity replay) builds the
    same world image.  ``executor`` is ``"same-process"`` (deterministic,
    default) or ``"multiprocess"``.
    """

    def __init__(
        self,
        world,
        *,
        shards: int = 2,
        topology: str = "edge",
        executor: str = "same-process",
        workers: Optional[int] = None,
        defer_work: Optional[bool] = None,
        work_ns: float = 0.0,
        mediation: str = "laminar",
        seed: int = 0,
    ) -> None:
        self.world = world
        self.seed = seed
        self.specs = make_specs(shards, topology)
        self.router = LabelAwareRouter(self.specs)
        self.responses: list = []
        self._next_seq = 1
        self._sync_epoch = 0
        self._reports: Optional[list[WorkerReport]] = None
        if executor == "same-process":
            defer = False if defer_work is None else defer_work
            self.servers: Optional[dict[int, ShardServer]] = {
                spec.shard_id: boot_shard(
                    world,
                    spec,
                    defer_work=defer,
                    work_ns=work_ns,
                    mediation=mediation,
                )
                for spec in self.specs
            }
            self.executor = SameProcessExecutor(self.servers, seed=seed)
        elif executor == "multiprocess":
            defer = True if defer_work is None else defer_work
            self.servers = None
            self.executor = MultiprocessExecutor(
                world,
                self.specs,
                workers=workers,
                defer_work=defer,
                work_ns=work_ns,
                mediation=mediation,
                seed=seed,
            )
        else:
            raise ValueError(f"unknown executor {executor!r}")

    # -- request plane ------------------------------------------------------

    def route(self, request: ClusterRequest) -> ShardSpec:
        return self.router.route(request.principal, request.labels)

    def run_trace(
        self, trace: Sequence[ClusterRequest], wave_size: Optional[int] = None
    ) -> list:
        """Route and execute a trace.  Requests are numbered by the
        router's global sequence *before* dispatch — the logical clock the
        merge sorts on — then dispatched in waves (default: one wave)."""
        size = wave_size or len(trace) or 1
        responses: list = []
        for start in range(0, len(trace), size):
            wave = []
            for req in trace[start : start + size]:
                spec = self.router.route(req.principal, req.labels)
                wave.append(
                    (
                        spec.shard_id,
                        ShardRequest(self._next_seq, req.principal, tuple(req.sqes)),
                    )
                )
                self._next_seq += 1
            responses.extend(self.executor.submit_wave(wave))
        self.responses.extend(responses)
        return responses

    # -- replication plane --------------------------------------------------

    def sync_tags(self, allocator) -> list:
        """Broadcast the coordinator's interned-tag namespace snapshot to
        every shard (epoch-stamped; stale frames are rejected)."""
        epoch, next_value, entries = allocator.snapshot()
        message = TagSync(epoch, next_value, entries)
        return self.executor.submit_wave(
            [(spec.shard_id, message) for spec in self.specs]
        )

    def sync_caps(self, principals) -> list:
        """Broadcast principal security state — (name, LabelPair,
        CapabilitySet) triples — to every shard.  Each applied frame bumps
        the shard's ``fd_epoch``, orphaning pre-replication memos."""
        self._sync_epoch += 1
        message = CapSync(self._sync_epoch, tuple(principals))
        return self.executor.submit_wave(
            [(spec.shard_id, message) for spec in self.specs]
        )

    # -- observable merge ---------------------------------------------------

    def merged_audit(self) -> list[str]:
        """Deterministically merge per-shard audit deltas: concatenate in
        global-sequence order, re-stamp 1..n, render.  A pure function of
        the routed trace — byte-identical across executors and to the
        single-kernel replay of the same trace."""
        items: list[tuple[str, str, str, str]] = []
        for resp in sorted(self.responses, key=lambda r: r.seq):
            items.extend(resp.audit)
        return [
            str(AuditEntry(seq, AuditKind(kind), subsystem, principal, detail))
            for seq, (kind, subsystem, principal, detail) in enumerate(items, 1)
        ]

    def worker_logs(self) -> list[TrafficLog]:
        """Rebuild each shard's traffic log from the stamped deltas in its
        responses (ordered by global sequence, as shipped)."""
        logs: dict[int, TrafficLog] = {}
        for resp in sorted(self.responses, key=lambda r: r.seq):
            log = logs.setdefault(
                resp.shard_id, TrafficLog(worker_id=resp.shard_id)
            )
            for stamp, payload in resp.traffic:
                log.append_stamped(stamp, payload)
        return [logs[sid] for sid in sorted(logs)]

    def merged_traffic(self) -> TrafficLog:
        return TrafficLog.merge(self.worker_logs())

    # -- lifecycle / accounting ---------------------------------------------

    def shutdown(self) -> list[WorkerReport]:
        if self._reports is None:
            self._reports = self.executor.shutdown()
        return self._reports

    def aggregate(self) -> dict:
        """Cross-worker totals: fastpath counters, per-opcode syscall
        counts, LSM hook counts, denials, audit volume, deferred work."""
        fastpath_total: Counter = Counter()
        syscalls: Counter = Counter()
        hooks: Counter = Counter()
        denials: Counter = Counter()
        audit_entries = 0
        for report in self.shutdown():
            fastpath_total.update(report.fastpath_counters)
            for shard in report.shards:
                syscalls.update(shard.syscall_counts)
                hooks.update(shard.hook_calls)
                denials.update(shard.denials)
                audit_entries += shard.audit_len
        return {
            "fastpath": dict(fastpath_total),
            "syscalls": dict(syscalls),
            "hooks": dict(hooks),
            "denials": dict(denials),
            "audit_entries": audit_entries,
            "deferred_work": sum(r.deferred for r in self.responses),
        }
