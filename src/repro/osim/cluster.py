"""Sharded multi-kernel cluster: executors, label-aware routing, merging.

One simulated :class:`~repro.osim.kernel.Kernel` is one machine.  This
module scales the reproduction out the way the paper's data-lineage
discussion scales Laminar out: N kernels ("shards"), each a full machine
image with its own LSM, filesystem, and audit log, fronted by a
**label-aware router**.

* :class:`LabelAwareRouter` hashes (principal, secrecy tags) to a shard
  — but only among shards whose *trust tier* can hold the request's
  labels.  Tiers mirror the deployment story of the MapReduce-style
  lineage systems (edge collectors may hold any user's raw taint, a
  shuffle tier only narrow aggregates, a central tier only fully
  declassified data): :data:`TIER_CAPACITY` caps the number of secrecy
  tags a shard may be asked to hold.  Routing is a pure function of the
  request's (principal, labels) — the router never looks at verdicts, so
  a denied request takes exactly the route and produces exactly the
  (empty) observable a successful one would: denied ≡ empty holds at the
  router, not just inside each kernel.
* Two executors run the shards: :class:`SameProcessExecutor` (every
  shard in this process, deterministic, for tests) and
  :class:`MultiprocessExecutor` (each worker process hosts one or more
  shards and sleeps off their simulated work, so service time overlaps
  the way it would across machines).  Both move every message through
  a wire codec — the binary lamwire data plane by default, legacy
  pickle as the differential-testing fallback (``wire="pickle"``) — so
  label encoding and the per-connection dictionaries are exercised
  either way.
* The shared namespaces replicate by epoch-stamped frames —
  :meth:`Cluster.sync_tags` (interned-tag namespace) and
  :meth:`Cluster.sync_caps` (capability stores) — and every applied
  ``CapSync`` bumps the receiving kernel's ``fd_epoch``, orphaning
  permission memos recorded under the pre-replication state.  Both
  planes are **delta-encoded** against a per-peer high-water mark: a
  shard that already acknowledged tag values below ``v`` is never sent
  them again, and a principal whose (labels, capabilities) state is
  unchanged since the last applied ``CapSync`` is omitted from the next
  one.  Deltas change bytes only, never outcomes: ``apply_snapshot``
  ignores already-present entries and an empty ``CapSync`` still bumps
  ``fd_epoch``, so the merged observables stay byte-identical to the
  full-broadcast protocol.
* Observables merge deterministically: every request carries a
  router-assigned global sequence number; :meth:`Cluster.merged_audit`
  and :meth:`Cluster.merged_traffic` reassemble the per-shard deltas in
  stamp order, which makes cluster-mode audit and traffic byte-identical
  to :func:`replay_single` running the same routed trace on one kernel.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core import LabelPair
from ..core import fastpath
from ..core.audit import AuditEntry, AuditKind
from .kernel import Kernel
from .lsm import LaminarSecurityModule
from .lamwire import AdaptiveCoalescer, make_wire, request_size_hint
from .rpc import (
    CapSync,
    ShardRequest,
    ShardServer,
    Shutdown,
    TagSync,
    WorkerReport,
    seed_worker_rng,
    worker_seed,
    worker_serve,
)
from .sockets import TrafficLog

if TYPE_CHECKING:
    from .task import Task

#: Trust tiers and the most secrecy tags each may be asked to hold.
#: ``None`` means unbounded (an edge shard is trusted with any user's raw
#: taint); a central shard only ever sees fully declassified requests.
TIER_CAPACITY: dict[str, Optional[int]] = {
    "edge": None,
    "shuffle": 1,
    "central": 0,
}


class RoutingError(Exception):
    """No shard's trust tier can hold the request's labels."""


@dataclass(frozen=True)
class ShardSpec:
    """A shard's identity and trust tier."""

    shard_id: int
    tier: str = "edge"

    def __post_init__(self) -> None:
        if self.tier not in TIER_CAPACITY:
            raise ValueError(f"unknown tier {self.tier!r}")


@dataclass(frozen=True)
class ClusterRequest:
    """One client request before routing: who, under what labels, doing
    which batch.  ``labels`` is what the router sees — the submitting
    principal's label pair at routing time."""

    principal: str
    labels: LabelPair
    sqes: tuple


def make_specs(shards: int, topology: str = "edge") -> list[ShardSpec]:
    """Build shard specs from a topology string: a comma-separated tier
    list, cycled over the shard count (``"edge"`` → all edge,
    ``"edge,edge,shuffle,central"`` → mixed tiers)."""
    tiers = [t.strip() for t in topology.split(",") if t.strip()]
    if not tiers:
        raise ValueError("empty topology")
    return [ShardSpec(i, tiers[i % len(tiers)]) for i in range(shards)]


def tier_can_hold(tier: str, labels: LabelPair) -> bool:
    """True iff a shard of this tier may be handed a request carrying
    ``labels``.  The capacity bound is on secrecy tags: secrecy is what a
    compromised low-trust shard could leak."""
    cap = TIER_CAPACITY[tier]
    return cap is None or len(labels.secrecy) <= cap


class LabelAwareRouter:
    """Hash (principal, secrecy tags) onto the label-eligible shards.

    The hash is :func:`zlib.crc32` over the principal name chained
    through the sorted secrecy tag values — stable across processes and
    Python hash randomization, so a trace routes identically everywhere
    (the determinism the observable merge depends on).  Every decision is
    appended to ``trace`` for the tier-invariant property tests.
    """

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("router needs at least one shard")
        #: Routing decisions: (principal, labels, shard_id) in order.
        self.trace: list[tuple[str, LabelPair, int]] = []

    def eligible(self, labels: LabelPair) -> list[ShardSpec]:
        return [spec for spec in self.specs if tier_can_hold(spec.tier, labels)]

    @staticmethod
    def route_key(principal: str, labels: LabelPair) -> int:
        key = zlib.crc32(principal.encode())
        for tag in labels.secrecy:
            key = zlib.crc32(str(tag.value).encode(), key)
        return key

    def route(self, principal: str, labels: LabelPair) -> ShardSpec:
        shards = self.eligible(labels)
        if not shards:
            raise RoutingError(
                f"no shard tier can hold {labels!r} "
                f"(secrecy width {len(labels.secrecy)})"
            )
        spec = shards[self.route_key(principal, labels) % len(shards)]
        self.trace.append((principal, labels, spec.shard_id))
        return spec


# ----------------------------------------------------------------- booting


def boot_shard(
    world,
    spec: ShardSpec,
    *,
    defer_work: bool = False,
    work_ns: float = 0.0,
    mediation: str = "laminar",
) -> ShardServer:
    """Boot one shard: a fresh kernel, the replicated world image built
    onto it by ``world.build(kernel)`` (every shard builds the *same*
    world — identical setup sequences produce identical inode numbers,
    which is what lets denial details compare byte-for-byte against a
    single-kernel replay), wrapped in a :class:`ShardServer`."""
    kernel = Kernel(LaminarSecurityModule(), shard_id=spec.shard_id)
    # World building always defers its simulated work (boot cost is not
    # service time, and busy-looping through a large world would serialize
    # worker start-up); the server constructor drains the balance.
    kernel.defer_work = True
    tasks = world.build(kernel)
    server = ShardServer(
        spec.shard_id,
        kernel,
        tasks,
        tier=spec.tier,
        work_ns=work_ns,
        mediation=mediation,
    )
    kernel.defer_work = defer_work
    return server


def replay_single(world, trace: Sequence[ClusterRequest], *, mediation: str = "laminar"):
    """Run an already-routed trace, in global sequence order, on ONE
    kernel holding the full world — the parity baseline.  Returns
    ``(server, responses)``; the server's kernel audit/traffic are what
    cluster-mode merges must reproduce byte-for-byte."""
    server = boot_shard(world, ShardSpec(0, "edge"), mediation=mediation)
    responses = [
        server.execute(ShardRequest(seq, req.principal, tuple(req.sqes)))
        for seq, req in enumerate(trace, 1)
    ]
    return server, responses


def render_audit(entries) -> list[str]:
    """Render audit entries (an :class:`AuditLog` or iterable) to their
    canonical one-line forms — the byte-comparison currency."""
    return [str(entry) for entry in entries]


# --------------------------------------------------------------- executors


class SameProcessExecutor:
    """Every shard lives in the calling process.  Deterministic (no real
    concurrency), but every wave still round-trips through the wire codec
    so serialization — the label dictionary and batch dictionaries on the
    binary wire, re-interning on pickle — is exercised.

    One codec instance plays both endpoints: every encode is immediately
    decoded from the same in-order stream, so the encoder dictionary and
    the decoder dictionary stay in lockstep exactly as a connected pair
    would."""

    def __init__(
        self,
        servers: dict[int, ShardServer],
        seed: int = 0,
        wire: str = "binary",
    ) -> None:
        self.servers = servers
        self.codec = make_wire(wire)
        for server in servers.values():
            self.codec.bind_allocator(server.kernel.tags)
        # Derive (but do not install) worker 0's seed: this process is the
        # caller's, and its RNG state is the caller's business; reseeding
        # matters only in forked workers, which inherit parent state.
        self.seed = worker_seed(seed, 0)

    def submit_wave(self, wave: list) -> list:
        codec = self.codec
        decoded, _ = codec.decode(codec.encode(list(wave)))
        replies = [self.servers[shard_id].handle(msg) for shard_id, msg in decoded]
        return codec.decode(codec.encode(replies))[0]

    def bump_label_epoch(self) -> None:
        self.codec.bump_label_epoch()

    def wire_stats(self) -> dict:
        stats = self.codec.stats()
        stats["connections"] = 1
        return stats

    def shutdown(self) -> list[WorkerReport]:
        return [
            WorkerReport(
                worker_id=0,
                fastpath_counters=fastpath.counters.snapshot(),
                shards=tuple(
                    self.servers[sid].report() for sid in sorted(self.servers)
                ),
                seed=self.seed,
            )
        ]


def _cluster_worker_main(
    conn, worker_id, specs, world, defer_work, work_ns, mediation, seed=0,
    wire: str = "binary",
) -> None:
    """Entry point of a forked cluster worker: reseed this process's RNG
    under the deterministic per-worker rule (fork inherits the parent's
    RNG state, so unseeded workers would all share one stream whose
    consumption depended on pre-fork parent activity), boot this worker's
    shards, signal readiness (so the driver never times boot as
    service), serve."""
    wseed = seed_worker_rng(seed, worker_id)
    servers = {
        spec.shard_id: boot_shard(
            world,
            spec,
            defer_work=defer_work,
            work_ns=work_ns,
            mediation=mediation,
        )
        for spec in specs
    }
    codec = make_wire(wire)
    # The fork inherited the parent's process-global fastpath counter
    # state, and boot just added the world build on top; zero it so the
    # shutdown report covers only this worker's served requests (reports
    # sum cleanly across the pool — same rule as the psched workers).
    fastpath.counters.reset()
    conn.send_bytes(codec.encode(("ready", sorted(servers))))
    worker_serve(conn, worker_id, servers, seed=wseed, codec=codec)


class MultiprocessExecutor:
    """Each worker process hosts one or more shards (round-robin when
    ``workers`` < shards) and serves waves over a pipe.

    A wave is split into per-worker sub-waves, all sent before any reply
    is awaited — every worker is busy at once, which is where the
    near-linear scaling comes from: in ``defer_work`` mode each worker
    *sleeps off* its shards' simulated work, and sleeps overlap across
    processes regardless of host core count, exactly as service time
    overlaps across real machines."""

    def __init__(
        self,
        world,
        specs: Sequence[ShardSpec],
        *,
        workers: Optional[int] = None,
        defer_work: bool = True,
        work_ns: float = 0.0,
        mediation: str = "laminar",
        seed: int = 0,
        wire: str = "binary",
    ) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        nworkers = max(1, min(workers or len(specs), len(specs)))
        self.worker_of = {
            spec.shard_id: i % nworkers for i, spec in enumerate(specs)
        }
        assignment: list[list[ShardSpec]] = [[] for _ in range(nworkers)]
        for i, spec in enumerate(specs):
            assignment[i % nworkers].append(spec)
        self.conns = []
        self.procs = []
        #: One parent-side codec per connection: wire dictionaries are
        #: per-connection state (the worker's decoder must see exactly the
        #: definitions this encoder emitted, in order), so codecs can
        #: never be shared across pipes.
        self.codecs = []
        for wid in range(nworkers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_cluster_worker_main,
                args=(
                    child_conn,
                    wid,
                    assignment[wid],
                    world,
                    defer_work,
                    work_ns,
                    mediation,
                    seed,
                    wire,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)
            self.codecs.append(make_wire(wire))
        for wid, conn in enumerate(self.conns):
            self.codecs[wid].decode(conn.recv_bytes())  # ready handshake
        self._down = False

    def submit_wave(self, wave: list) -> list:
        by_worker: dict[int, list[tuple[int, int, object]]] = {}
        for idx, (shard_id, msg) in enumerate(wave):
            by_worker.setdefault(self.worker_of[shard_id], []).append(
                (idx, shard_id, msg)
            )
        for wid, items in by_worker.items():
            self.conns[wid].send_bytes(
                self.codecs[wid].encode(
                    [(shard_id, msg) for _, shard_id, msg in items]
                )
            )
        results: list = [None] * len(wave)
        for wid, items in by_worker.items():
            replies, _ = self.codecs[wid].decode(self.conns[wid].recv_bytes())
            for (idx, _, _), reply in zip(items, replies):
                results[idx] = reply
        return results

    def bump_label_epoch(self) -> None:
        for codec in self.codecs:
            codec.bump_label_epoch()

    def wire_stats(self) -> dict:
        stats: dict = {"wire": self.codecs[0].name, "connections": len(self.codecs)}
        for codec in self.codecs:
            for key, value in codec.stats().items():
                if key == "wire":
                    continue
                if key == "label_epoch":  # in lockstep, not additive
                    stats[key] = max(stats.get(key, 0), value)
                else:
                    stats[key] = stats.get(key, 0) + value
        return stats

    def shutdown(self) -> list[WorkerReport]:
        if self._down:
            return []
        self._down = True
        reports = []
        for wid, conn in enumerate(self.conns):
            conn.send_bytes(self.codecs[wid].encode(Shutdown()))
        for wid, conn in enumerate(self.conns):
            report, _ = self.codecs[wid].decode(conn.recv_bytes())
            reports.append(report)
            conn.close()
        for proc in self.procs:
            proc.join(timeout=30)
        return reports


# ------------------------------------------------------------------ cluster


class Cluster:
    """The deployment object: router + executor + observable merging.

    ``world`` is any object with a ``build(kernel) -> dict[name, Task]``
    method; every shard (and the single-kernel parity replay) builds the
    same world image.  ``executor`` is ``"same-process"`` (deterministic,
    default) or ``"multiprocess"``.
    """

    def __init__(
        self,
        world,
        *,
        shards: int = 2,
        topology: str = "edge",
        executor: str = "same-process",
        workers: Optional[int] = None,
        defer_work: Optional[bool] = None,
        work_ns: float = 0.0,
        mediation: str = "laminar",
        seed: int = 0,
        wire: str = "binary",
    ) -> None:
        self.world = world
        self.seed = seed
        self.wire = make_wire(wire).name  # validate and normalize the name
        self.specs = make_specs(shards, topology)
        self.router = LabelAwareRouter(self.specs)
        self.responses: list = []
        self._next_seq = 1
        self._sync_epoch = 0
        self._reports: Optional[list[WorkerReport]] = None
        #: Per-peer tag high-water mark: the allocator ``next_value`` as
        #: of the last TagSync the shard *applied*.  Entries below it are
        #: already replicated there and are not re-shipped.
        self._tag_hwm: dict[int, int] = {}
        #: Per-peer last-applied principal state: shard_id -> name ->
        #: (LabelPair, CapabilitySet).  Unchanged principals are omitted
        #: from the next CapSync to that shard.
        self._cap_sent: dict[int, dict] = {}
        #: Cache for :meth:`worker_logs`, keyed by response count (the
        #: logs are a pure function of the responses seen so far).
        self._logs_cache: Optional[tuple[int, list[TrafficLog]]] = None
        self.coalescer: Optional[AdaptiveCoalescer] = None
        if executor == "same-process":
            defer = False if defer_work is None else defer_work
            self.servers: Optional[dict[int, ShardServer]] = {
                spec.shard_id: boot_shard(
                    world,
                    spec,
                    defer_work=defer,
                    work_ns=work_ns,
                    mediation=mediation,
                )
                for spec in self.specs
            }
            self.executor = SameProcessExecutor(
                self.servers, seed=seed, wire=wire
            )
        elif executor == "multiprocess":
            defer = True if defer_work is None else defer_work
            self.servers = None
            self.executor = MultiprocessExecutor(
                world,
                self.specs,
                workers=workers,
                defer_work=defer,
                work_ns=work_ns,
                mediation=mediation,
                seed=seed,
                wire=wire,
            )
        else:
            raise ValueError(f"unknown executor {executor!r}")

    # -- request plane ------------------------------------------------------

    def route(self, request: ClusterRequest) -> ShardSpec:
        return self.router.route(request.principal, request.labels)

    def run_trace(
        self,
        trace: Sequence[ClusterRequest],
        wave_size: Optional[int] = None,
        *,
        arrivals: Optional[Sequence[float]] = None,
        coalescer: Optional[AdaptiveCoalescer] = None,
    ) -> list:
        """Route and execute a trace.  Requests are numbered by the
        router's global sequence *before* dispatch — the logical clock the
        merge sorts on — then dispatched in waves.

        Wave boundaries come from one of three places: a fixed
        ``wave_size``, an :class:`~repro.osim.lamwire.AdaptiveCoalescer`
        fed the trace's open-loop ``arrivals`` (Nagle-style bytes-or-
        deadline windows sized from the observed arrival rate), or —
        the default — one wave for the whole trace.  Coalescing decides
        *when* frames flush, never what is in them or in what order:
        sequence numbers are assigned before windowing, so merged audit
        and traffic are byte-identical for every wave plan, including for
        denied requests (denied ≡ empty is per-request, not per-wave)."""
        if coalescer is not None:
            if wave_size is not None:
                raise ValueError("pass wave_size or coalescer, not both")
            if arrivals is None or len(arrivals) != len(trace):
                raise ValueError(
                    "coalescer needs one arrival time per request"
                )
            sizes = [request_size_hint(req) for req in trace]
            plan = coalescer.plan(list(arrivals), sizes)
            self.coalescer = coalescer
        else:
            size = wave_size or len(trace) or 1
            plan = [
                min(size, len(trace) - start)
                for start in range(0, len(trace), size)
            ]
        responses: list = []
        start = 0
        for count in plan:
            wave = []
            for req in trace[start : start + count]:
                spec = self.router.route(req.principal, req.labels)
                wave.append(
                    (
                        spec.shard_id,
                        ShardRequest(self._next_seq, req.principal, tuple(req.sqes)),
                    )
                )
                self._next_seq += 1
            start += count
            responses.extend(self.executor.submit_wave(wave))
        self.responses.extend(responses)
        return responses

    # -- replication plane --------------------------------------------------

    def sync_tags(self, allocator) -> list:
        """Ship the coordinator's interned-tag namespace to every shard
        (epoch-stamped; stale frames are rejected), **delta-encoded**: a
        shard only receives entries at or above its high-water mark (the
        ``next_value`` it last acknowledged).  Safe because tag values
        are never reused and ``apply_snapshot`` ignores entries already
        present — a delta applies to exactly the same state as the full
        snapshot would.  Also invalidates every parent-side label
        dictionary (the epoch guard), since the frame may introduce tags
        the peers' dictionaries predate."""
        epoch, next_value, entries = allocator.snapshot()
        wave = []
        for spec in self.specs:
            hwm = self._tag_hwm.get(spec.shard_id, 0)
            delta = tuple(e for e in entries if e[0] >= hwm)
            wave.append((spec.shard_id, TagSync(epoch, next_value, delta)))
        acks = self.executor.submit_wave(wave)
        for ack in acks:
            if ack.applied:
                self._tag_hwm[ack.shard_id] = next_value
        self.executor.bump_label_epoch()
        return acks

    def sync_caps(self, principals) -> list:
        """Ship principal security state — (name, LabelPair,
        CapabilitySet) triples — to every shard, **delta-encoded**: a
        principal whose state matches what the shard last applied is
        omitted.  The frame itself is always sent (even empty): each
        applied ``CapSync`` bumps the shard's ``fd_epoch``, orphaning
        pre-replication memos, and that epoch discipline must not depend
        on how much state happened to change."""
        self._sync_epoch += 1
        principals = tuple(principals)
        wave = []
        deltas: dict[int, tuple] = {}
        for spec in self.specs:
            sent = self._cap_sent.setdefault(spec.shard_id, {})
            delta = tuple(
                (name, labels, caps)
                for name, labels, caps in principals
                if sent.get(name) != (labels, caps)
            )
            deltas[spec.shard_id] = delta
            wave.append((spec.shard_id, CapSync(self._sync_epoch, delta)))
        acks = self.executor.submit_wave(wave)
        for ack in acks:
            if ack.applied:
                sent = self._cap_sent[ack.shard_id]
                for name, labels, caps in deltas[ack.shard_id]:
                    sent[name] = (labels, caps)
        return acks

    # -- observable merge ---------------------------------------------------

    def merged_audit(self) -> list[str]:
        """Deterministically merge per-shard audit deltas: concatenate in
        global-sequence order, re-stamp 1..n, render.  A pure function of
        the routed trace — byte-identical across executors and to the
        single-kernel replay of the same trace."""
        items: list[tuple[str, str, str, str]] = []
        for resp in sorted(self.responses, key=lambda r: r.seq):
            items.extend(resp.audit)
        return [
            str(AuditEntry(seq, AuditKind(kind), subsystem, principal, detail))
            for seq, (kind, subsystem, principal, detail) in enumerate(items, 1)
        ]

    def worker_logs(self) -> list[TrafficLog]:
        """Rebuild each shard's traffic log from the stamped deltas in its
        responses (ordered by global sequence, as shipped).  Cached per
        response count, so repeated ``merged_traffic`` calls between
        trace runs rebuild (and re-sort) nothing."""
        cached = self._logs_cache
        if cached is not None and cached[0] == len(self.responses):
            return cached[1]
        logs: dict[int, TrafficLog] = {}
        for resp in sorted(self.responses, key=lambda r: r.seq):
            log = logs.setdefault(
                resp.shard_id, TrafficLog(worker_id=resp.shard_id)
            )
            for stamp, payload in resp.traffic:
                log.append_stamped(stamp, payload)
        result = [logs[sid] for sid in sorted(logs)]
        self._logs_cache = (len(self.responses), result)
        return result

    def merged_traffic(self) -> TrafficLog:
        return TrafficLog.merge(self.worker_logs())

    def wire_stats(self) -> dict:
        """Data-plane accounting: the parent-side codec dictionaries plus
        this process's frame/byte counters (request direction; the reply
        direction is counted worker-side and lands in ``aggregate()``).
        Includes the coalescer's window statistics when a coalesced
        ``run_trace`` ran."""
        stats = self.executor.wire_stats()
        stats["requests"] = len(self.responses)
        counters = fastpath.counters
        stats["bytes_on_wire"] = counters.bytes_on_wire
        stats["frames"] = counters.frames
        stats["label_dict_hits"] = counters.label_dict_hits
        stats["label_dict_misses"] = counters.label_dict_misses
        if self.responses:
            stats["bytes_per_request"] = round(
                counters.bytes_on_wire / len(self.responses), 2
            )
        if self.coalescer is not None:
            stats["coalescing"] = self.coalescer.stats()
        return stats

    # -- lifecycle / accounting ---------------------------------------------

    def shutdown(self) -> list[WorkerReport]:
        if self._reports is None:
            self._reports = self.executor.shutdown()
        return self._reports

    def aggregate(self) -> dict:
        """Cross-worker totals: fastpath counters, per-opcode syscall
        counts, LSM hook counts, denials, audit volume, deferred work."""
        fastpath_total: Counter = Counter()
        syscalls: Counter = Counter()
        hooks: Counter = Counter()
        denials: Counter = Counter()
        audit_entries = 0
        for report in self.shutdown():
            fastpath_total.update(report.fastpath_counters)
            for shard in report.shards:
                syscalls.update(shard.syscall_counts)
                hooks.update(shard.hook_calls)
                denials.update(shard.denials)
                audit_entries += shard.audit_len
        return {
            "fastpath": dict(fastpath_total),
            "syscalls": dict(syscalls),
            "hooks": dict(hooks),
            "denials": dict(denials),
            "audit_entries": audit_entries,
            "deferred_work": sum(r.deferred for r in self.responses),
        }
