"""lamwire: the zero-copy binary data plane of the sharded cluster.

PR 7's wire protocol (:mod:`repro.osim.rpc`) framed every message as
``pickle.dumps(HIGHEST_PROTOCOL)``.  Pickle is a fine differential
baseline — its memo already compresses repeated objects within a frame,
and constructor-based ``__reduce__`` re-interns labels on the far side —
but it still pays per-crossing costs the kernel's fast paths spent four
PRs eliminating *inside* the machine: every label re-validates and
re-interns on every hop, every frame re-ships strings the peer has seen
a thousand times, and every large payload is copied through pickle's
output buffer.  This module is the wire-level analogue of the in-kernel
caches, built from three ideas:

**Schema'd frames.**  Messages encode to type-tagged binary: varint
integers (zigzag for sign), UTF-8 strings, struct-packed headers, and
positional fields for the RPC dataclasses — no class names, no pickle
opcodes, no protocol framing per object.  The two hot messages
(:class:`~repro.osim.rpc.ShardRequest`,
:class:`~repro.osim.rpc.ShardResponse`) have dedicated fixed-layout
encoders and slot-direct decoders.

**Per-connection dictionaries.**  Both endpoints of a connection keep a
pair of synchronized dictionaries, populated in-band:

* a *value dictionary* — strings, small byte payloads, whole
  :class:`~repro.osim.kernel.Sqe`/:class:`~repro.osim.kernel.Cqe`
  entries (and whole uniform *batches* of them: a request's ``sqes``
  tuple is one entry), and bare :class:`~repro.core.labels.Label`
  objects are defined once (``DEF id value``) and thereafter referenced
  by a varint id (``REF id``).  A steady-state Zipfian workload repeats
  a small set of operations, so whole request bodies collapse to ~2-byte
  references and the decoder returns the *same cached object* — zero
  construction, zero re-interning.
* a *label dictionary* — each (secrecy, integrity)
  :class:`~repro.core.labels.LabelPair` is transmitted once and then
  referenced by a 16-bit id, **guarded by the tag-allocator epoch**:
  the codec registers an epoch listener on every bound
  :class:`~repro.core.tags.TagAllocator`, and any allocation or applied
  snapshot invalidates the encoder's entries, forcing the next use of
  each pair to re-send its full definition (`LPDEF`).  Definitions are
  self-contained, so the guard is pure conservatism — a decoder is
  always correct — but it means no id is ever dereferenced across a
  change of the tag namespace it was defined under.

Dictionaries are strictly per-connection, per-direction state: the
``DEF`` frames that populate the decoder travel in the same FIFO stream
as the ``REF`` frames that use them, so in-order delivery (guaranteed by
the ``multiprocessing`` pipes underneath) is the only synchronization.
They are deliberately *not* registered with
:func:`repro.core.fastpath.register_cache`: clearing one endpoint of a
connection mid-stream would desynchronize the pair.  (Encoder-side
resets alone are harmless — definitions carry explicit ids — which is
also why the epoch guard can invalidate unilaterally.)

**Scatter-gather payloads.**  Byte payloads at or past
:data:`BIG_THRESHOLD` are never copied into an intermediate buffer:
:meth:`BinaryWireCodec.encode_segments` returns the frame as a list of
segments with the payload objects (``bytes`` or ``memoryview`` — e.g. a
``sys_readv`` buffer view) placed directly in the sequence, writev
style.  ``encode`` gathers them with a single ``b"".join``; a transport
with real scatter-gather would send the segments as-is.

:class:`AdaptiveCoalescer` is the companion batching policy for the
router: Nagle-style bytes-or-deadline wave formation whose window is
sized from the open-loop arrival rate (estimated by EWMA of
inter-arrival gaps).  Coalescing only *groups dispatch* — routing,
sequencing, and per-request observables are decided before batching, so
a denied request coalesces exactly as the equivalent allowed request
would (denied ≡ empty survives batching; see DESIGN.md §17).

Both codecs count ``frames`` and ``bytes_on_wire`` into the process-wide
:data:`repro.core.fastpath.counters` on encode (payload bytes, header
excluded), so pickle-vs-binary ablations compare directly.
"""

from __future__ import annotations

import pickle
import struct
from operator import attrgetter
from typing import Optional, Sequence

from ..core.capabilities import Capability, CapabilitySet, CapType
from ..core.fastpath import counters
from ..core.labels import Label, LabelPair
from ..core.tags import Tag
from .kernel import Cqe, Sqe

#: Frame header: one big-endian u32 payload length (same framing as the
#: pickle wire, so transports treat both codecs identically).
HEADER = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Ceiling on a single frame's payload, shared with :mod:`repro.osim.rpc`.
MAX_FRAME_PAYLOAD = 1 << 28

#: Byte payloads at or past this size ship as scatter-gather segments —
#: the payload object goes into the output sequence uncopied.
BIG_THRESHOLD = 512

#: Small ``bytes`` at or under this size are value-dictionary candidates
#: (a repeated write payload becomes a 2-byte reference).
DICT_BYTES_MAX = 64

#: Entry caps.  Past the cap the encoder stops defining and falls back to
#: inline encoding; decode stays correct either way.
VALUE_DICT_CAP = 1 << 16
LABEL_DICT_CAP = 1 << 16

# Wire type tags (one byte).  32+ are the RPC message classes.
T_NONE = 0
T_TRUE = 1
T_FALSE = 2
T_INT = 3
T_FLOAT = 4
T_BYTES = 5
T_STR = 6
T_TUPLE = 7
T_LIST = 8
T_DICT = 9
T_REF = 10
T_DEF = 11
T_BIG = 12
T_LPREF = 13
T_LPDEF = 14
T_LPRAW = 15
T_LABEL = 16
T_SQE = 17
T_CQE = 18
T_CAPSET = 19
T_PICKLE = 20
T_WAVE = 21
T_RWAVE = 22
T_MESSAGE_BASE = 32
_DEC_TABLE_SIZE = 48

_OSA = object.__setattr__
# C-level column extractors for the batch-dictionary keys.
_AG_OP = attrgetter("op")
_AG_ARGS = attrgetter("args")
_AG_RESULT = attrgetter("result")
_AG_ERRNO = attrgetter("errno")


def _w_uvarint(buf: bytearray, n: int) -> None:
    """Append an unsigned LEB128 varint to the frame buffer."""
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _r_uvarint(buf, pos: int) -> tuple[int, int]:
    b = buf[pos]
    pos += 1
    if b < 0x80:
        return b, pos
    result = b & 0x7F
    shift = 7
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if b < 0x80:
            return result, pos
        shift += 7


# ------------------------------------------------------- message registry

#: RPC message classes in wire-tag order.  Built lazily (the rpc and
#: psched modules import this one): class -> (tag, field names) for the
#: generic encode path, tag -> (builder, field names) for decode.
_MSG_BY_TYPE: Optional[dict] = None
_MSG_BY_TAG: Optional[dict] = None


def _message_registry() -> tuple[dict, dict]:
    global _MSG_BY_TYPE, _MSG_BY_TAG
    if _MSG_BY_TYPE is None:
        import dataclasses

        from . import psched, rpc

        classes = (
            rpc.ShardRequest,
            rpc.ShardResponse,
            rpc.TagSync,
            rpc.CapSync,
            rpc.SyncAck,
            rpc.Shutdown,
            rpc.ShardReport,
            rpc.WorkerReport,
            psched.GroupResult,
            psched.PschedWorkerReport,
        )
        by_type: dict = {}
        by_tag: dict = {}
        for offset, cls in enumerate(classes):
            names = tuple(f.name for f in dataclasses.fields(cls))
            by_type[cls] = (T_MESSAGE_BASE + offset, names)
            by_tag[T_MESSAGE_BASE + offset] = (_make_builder(cls, names), names)
        _MSG_BY_TYPE, _MSG_BY_TAG = by_type, by_tag
    return _MSG_BY_TYPE, _MSG_BY_TAG


def _make_builder(cls, names):
    """Slot-direct constructor for a frozen message dataclass: the wire
    carries every field positionally and peers are trusted, so skip the
    generated ``__init__`` (and its frozen-guard indirection) entirely."""
    new = cls.__new__

    def build(values):
        obj = new(cls)
        for name, value in zip(names, values):
            _OSA(obj, name, value)
        return obj

    return build


# ------------------------------------------------------------ pickle wire


class PickleWire:
    """The fallback wire: PR 7's length-prefixed pickle frames, wrapped
    in the codec interface so executors treat both wires uniformly and
    both count ``frames``/``bytes_on_wire``.  Stateless — kept per
    connection anyway so ``stats()`` has a uniform shape."""

    name = "pickle"

    def __init__(self) -> None:
        self.pickle_fallbacks = 0
        self.label_epoch = 0

    def encode_segments(self, message: object) -> list:
        return [self.encode(message)]

    def encode(self, message: object) -> bytes:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > MAX_FRAME_PAYLOAD:
            raise ValueError(
                f"frame payload of {len(payload)} bytes exceeds cap"
            )
        counters.frames += 1
        counters.bytes_on_wire += len(payload)
        return HEADER.pack(len(payload)) + payload

    def decode(self, buf: bytes) -> tuple[object, bytes]:
        if len(buf) < HEADER.size:
            raise ValueError("short frame: missing header")
        (length,) = HEADER.unpack_from(buf)
        if length > MAX_FRAME_PAYLOAD:
            raise ValueError(f"frame claims {length} payload bytes, over cap")
        end = HEADER.size + length
        if len(buf) < end:
            raise ValueError(f"truncated frame: want {length} payload bytes")
        return pickle.loads(buf[HEADER.size : end]), buf[end:]

    def bind_allocator(self, allocator) -> None:  # interface parity
        pass

    def bump_label_epoch(self) -> None:
        self.label_epoch += 1

    def stats(self) -> dict:
        return {
            "wire": self.name,
            "value_dict_entries": 0,
            "decoded_value_entries": 0,
            "label_dict_entries": 0,
            "label_epoch": self.label_epoch,
            "pickle_fallbacks": self.pickle_fallbacks,
        }


# ------------------------------------------------------------ binary wire


class BinaryWireCodec:
    """One endpoint of a binary-wire connection: a stateful encoder
    (value + label dictionaries keyed by content) paired with a stateful
    decoder (the same dictionaries keyed by id, populated from in-band
    ``DEF``/``LPDEF`` frames).  One instance serves both directions of
    one connection; the two directions' id spaces are independent
    because each direction is (this encoder → peer decoder).

    The encoder streams into one ``bytearray`` per frame
    (``self._buf``); a scatter-gather payload closes the current buffer
    into the segment list and opens a new one, so large payloads are
    never copied.  Not reentrant — one codec per connection, used from
    one thread, exactly like the socket it fronts.
    """

    name = "binary"

    def __init__(self) -> None:
        # Encoder state: content -> id.  Key spaces are disjoint by
        # construction (str, bytes, Label, and ("S"/"C", ...)-prefixed
        # tuples for Sqe/Cqe entries and batches).
        self._evals: dict = {}
        # Identity memo over dictionaried batch tuples: id(t) -> (eid, t).
        # A steady-state sender re-ships the *same* sqes/cqes tuple object
        # (retries, same-process round-trips, replayed waves); the memo
        # turns those into one dict probe instead of rebuilding and
        # rehashing the column-wise content key.  The strong reference in
        # the value pins the tuple, so its id cannot be recycled while
        # the entry lives; a content miss always falls through to the
        # key path, so the memo is purely an accelerator.
        self._etid: dict[int, tuple[int, tuple]] = {}
        self._elp: dict[LabelPair, tuple[int, int]] = {}
        self._next_lp = 0
        # Decoder state: id -> decoded object.
        self._dvals: dict[int, object] = {}
        self._dlp: dict[int, LabelPair] = {}
        #: Monotonic label-dictionary epoch: bumped by every bound
        #: allocator's epoch change (and manually via
        #: :meth:`bump_label_epoch`).  Encoder entries remember the epoch
        #: they were defined under; a mismatch forces re-definition.
        self.label_epoch = 0
        self.pickle_fallbacks = 0
        self._bound: list = []
        self._buf: Optional[bytearray] = None
        self._segments: Optional[list] = None
        self._msg_by_type: Optional[dict] = None
        self._enc = {
            type(None): self._enc_none,
            bool: self._enc_bool,
            int: self._enc_int,
            float: self._enc_float,
            str: self._enc_str,
            bytes: self._enc_bytes,
            bytearray: self._enc_buffer,
            memoryview: self._enc_memoryview,
            tuple: self._enc_tuple,
            list: self._enc_list,
            dict: self._enc_dict,
            Sqe: self._enc_sqe,
            Cqe: self._enc_cqe,
            Label: self._enc_label,
            LabelPair: self._enc_labelpair,
            CapabilitySet: self._enc_capset,
        }
        dec: list = [None] * _DEC_TABLE_SIZE
        dec[T_NONE] = self._dec_none
        dec[T_TRUE] = self._dec_true
        dec[T_FALSE] = self._dec_false
        dec[T_INT] = self._dec_int
        dec[T_FLOAT] = self._dec_float
        dec[T_BYTES] = self._dec_bytes
        dec[T_STR] = self._dec_str
        dec[T_TUPLE] = self._dec_tuple
        dec[T_LIST] = self._dec_list
        dec[T_DICT] = self._dec_dict
        dec[T_REF] = self._dec_ref
        dec[T_DEF] = self._dec_def
        dec[T_BIG] = self._dec_bytes
        dec[T_LPREF] = self._dec_lpref
        dec[T_LPDEF] = self._dec_lpdef
        dec[T_LPRAW] = self._dec_lpraw
        dec[T_LABEL] = self._dec_label
        dec[T_SQE] = self._dec_sqe
        dec[T_CQE] = self._dec_cqe
        dec[T_CAPSET] = self._dec_capset
        dec[T_PICKLE] = self._dec_pickle
        dec[T_WAVE] = self._dec_wave
        dec[T_RWAVE] = self._dec_rwave
        self._dec = dec
        self._req_cls = self._resp_cls = None

    # -- epoch guard ----------------------------------------------------

    def bind_allocator(self, allocator) -> None:
        """Guard the label dictionary with ``allocator``'s epoch: any
        local allocation or applied snapshot invalidates every encoder
        entry (next use re-sends its definition)."""
        allocator.add_epoch_listener(self._on_allocator_epoch)
        self._bound.append(allocator)

    def _on_allocator_epoch(self, epoch: int) -> None:
        self.label_epoch += 1

    def bump_label_epoch(self) -> None:
        """Manual invalidation for endpoints without a local allocator to
        bind (the cluster driver bumps on every ``sync_tags``)."""
        self.label_epoch += 1

    # -- framing --------------------------------------------------------

    def encode_segments(self, message: object) -> list:
        """Encode to a writev-style segment list ``[header, piece, ...]``
        — large payloads appear as their original buffer objects, never
        copied.  ``b"".join(segments)`` is the gathered frame."""
        segments: list = []
        self._segments = segments
        self._buf = bytearray()
        self._enc_value(message)
        segments.append(self._buf)
        self._buf = None
        self._segments = None
        length = 0
        for piece in segments:
            length += len(piece)
        if length > MAX_FRAME_PAYLOAD:
            raise ValueError(f"frame payload of {length} bytes exceeds cap")
        segments.insert(0, HEADER.pack(length))
        counters.frames += 1
        counters.bytes_on_wire += length
        return segments

    def encode(self, message: object) -> bytes:
        return b"".join(self.encode_segments(message))

    def decode(self, buf: bytes) -> tuple[object, bytes]:
        """Decode one frame; returns ``(message, remainder)`` like the
        pickle wire.  Frames MUST be decoded in the order the peer
        encoded them — dictionary definitions are in-band."""
        if len(buf) < HEADER.size:
            raise ValueError("short frame: missing header")
        (length,) = HEADER.unpack_from(buf)
        if length > MAX_FRAME_PAYLOAD:
            raise ValueError(f"frame claims {length} payload bytes, over cap")
        end = HEADER.size + length
        if len(buf) < end:
            raise ValueError(f"truncated frame: want {length} payload bytes")
        message, pos = self._dec_value(buf, HEADER.size)
        if pos != end:
            raise ValueError(
                f"frame length mismatch: consumed {pos - HEADER.size} "
                f"of {length} payload bytes"
            )
        return message, buf[end:]

    def stats(self) -> dict:
        return {
            "wire": self.name,
            "value_dict_entries": len(self._evals),
            "decoded_value_entries": len(self._dvals),
            "label_dict_entries": len(self._elp),
            "label_epoch": self.label_epoch,
            "pickle_fallbacks": self.pickle_fallbacks,
        }

    # -- hot-message specializations ------------------------------------

    def _install_messages(self) -> None:
        """First encounter with an RPC message: load the registry and
        install the generic per-class decoders plus the dedicated
        fixed-layout paths for the two data-plane messages."""
        from . import rpc

        by_type, by_tag = _message_registry()
        self._msg_by_type = by_type
        for tag, (build, names) in by_tag.items():
            self._dec[tag] = self._make_msg_decoder(build, names)
        req_tag, _ = by_type[rpc.ShardRequest]
        resp_tag, _ = by_type[rpc.ShardResponse]
        self._req_tag = req_tag
        self._resp_tag = resp_tag
        self._req_cls = rpc.ShardRequest
        self._resp_cls = rpc.ShardResponse
        self._enc[rpc.ShardRequest] = self._enc_shardrequest
        self._enc[rpc.ShardResponse] = self._enc_shardresponse
        self._dec[req_tag] = self._dec_shardrequest
        self._dec[resp_tag] = self._dec_shardresponse

    def _make_msg_decoder(self, build, names):
        dec_value = self._dec_value

        def dec_msg(buf, pos):
            values = []
            for _ in names:
                value, pos = dec_value(buf, pos)
                values.append(value)
            return build(values), pos

        return dec_msg

    def _enc_shardrequest(self, req) -> None:
        seq = req.seq
        principal = req.principal
        sqes = req.sqes
        if not (
            type(seq) is int
            and 0 <= seq
            and type(principal) is str
            and type(sqes) is tuple
        ):
            # Off-schema instance (differential tests build these):
            # the fixed layout can't carry it, pickle can.
            self._enc_fallback(req)
            return
        buf = self._buf
        buf.append(self._req_tag)
        if seq < 0x80:
            buf.append(seq)
        else:
            _w_uvarint(buf, seq)
        self._enc_str(principal)
        self._enc_tuple(sqes)

    def _dec_shardrequest(self, buf, pos: int):
        seq = buf[pos]
        if seq < 0x80:
            pos += 1
        else:
            seq, pos = _r_uvarint(buf, pos)
        principal, pos = self._dec_value(buf, pos)
        sqes, pos = self._dec_value(buf, pos)
        req = self._req_cls.__new__(self._req_cls)
        _OSA(req, "seq", seq)
        _OSA(req, "principal", principal)
        _OSA(req, "sqes", sqes)
        return req, pos

    def _enc_shardresponse(self, resp) -> None:
        seq = resp.seq
        shard_id = resp.shard_id
        cqes = resp.cqes
        deferred = resp.deferred
        if not (
            type(seq) is int
            and 0 <= seq
            and type(shard_id) is int
            and 0 <= shard_id
            and type(cqes) is tuple
            and type(deferred) is int
            and 0 <= deferred
        ):
            self._enc_fallback(resp)
            return
        buf = self._buf
        buf.append(self._resp_tag)
        if seq < 0x80:
            buf.append(seq)
        else:
            _w_uvarint(buf, seq)
        _w_uvarint(buf, shard_id)
        self._enc_tuple(cqes)
        enc_value = self._enc_value
        enc_value(resp.audit)
        enc_value(resp.traffic)
        _w_uvarint(self._buf, deferred)  # refetch: cqes may have split

    def _dec_shardresponse(self, buf, pos: int):
        seq = buf[pos]
        if seq < 0x80:
            pos += 1
        else:
            seq, pos = _r_uvarint(buf, pos)
        shard_id, pos = _r_uvarint(buf, pos)
        dec_value = self._dec_value
        cqes, pos = dec_value(buf, pos)
        audit, pos = dec_value(buf, pos)
        traffic, pos = dec_value(buf, pos)
        deferred, pos = _r_uvarint(buf, pos)
        resp = self._resp_cls.__new__(self._resp_cls)
        _OSA(resp, "seq", seq)
        _OSA(resp, "shard_id", shard_id)
        _OSA(resp, "cqes", cqes)
        _OSA(resp, "audit", audit)
        _OSA(resp, "traffic", traffic)
        _OSA(resp, "deferred", deferred)
        return resp, pos

    # -- encoder --------------------------------------------------------

    def _enc_value(self, obj: object) -> None:
        fn = self._enc.get(type(obj))
        if fn is not None:
            fn(obj)
            return
        if self._msg_by_type is None:
            self._install_messages()
            fn = self._enc.get(type(obj))
            if fn is not None:
                fn(obj)
                return
        entry = self._msg_by_type.get(type(obj))
        if entry is not None:
            tag, names = entry
            self._buf.append(tag)
            enc_value = self._enc_value
            for name in names:
                enc_value(getattr(obj, name))
            return
        self._enc_fallback(obj)

    def _enc_fallback(self, obj) -> None:
        # Anything outside the schema (fuzzers ship arbitrary objects,
        # differential tests construct protocol-invalid messages) rides
        # as an embedded pickle — correctness over compactness.
        self.pickle_fallbacks += 1
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        buf = self._buf
        buf.append(T_PICKLE)
        _w_uvarint(buf, len(data))
        buf += data

    def _enc_none(self, obj) -> None:
        self._buf.append(T_NONE)

    def _enc_bool(self, obj) -> None:
        self._buf.append(T_TRUE if obj else T_FALSE)

    def _enc_int(self, n: int) -> None:
        buf = self._buf
        buf.append(T_INT)
        _w_uvarint(buf, (n << 1) if n >= 0 else ((-n << 1) - 1))

    def _enc_float(self, x: float) -> None:
        buf = self._buf
        buf.append(T_FLOAT)
        buf += _F64.pack(x)

    def _define(self, key) -> bool:
        """Try to assign ``key`` the next value-dictionary id and emit the
        ``DEF id`` prefix; returns False when the dictionary is full (the
        caller then encodes inline, undicted)."""
        evals = self._evals
        if len(evals) >= VALUE_DICT_CAP:
            return False
        eid = len(evals)
        evals[key] = eid
        buf = self._buf
        buf.append(T_DEF)
        _w_uvarint(buf, eid)
        return True

    def _enc_str(self, s: str) -> None:
        buf = self._buf
        eid = self._evals.get(s)
        if eid is not None:
            buf.append(T_REF)
            _w_uvarint(buf, eid)
            return
        self._define(s)
        data = s.encode("utf-8")
        buf.append(T_STR)
        _w_uvarint(buf, len(data))
        buf += data

    def _emit_big(self, payload) -> None:
        """Close the current buffer and place ``payload`` directly in the
        segment list — the scatter-gather path (no copy)."""
        segments = self._segments
        segments.append(self._buf)
        segments.append(payload)
        self._buf = bytearray()

    def _enc_bytes(self, b: bytes) -> None:
        buf = self._buf
        n = len(b)
        if n >= BIG_THRESHOLD:
            buf.append(T_BIG)
            _w_uvarint(buf, n)
            self._emit_big(b)
            return
        if n <= DICT_BYTES_MAX:
            eid = self._evals.get(b)
            if eid is not None:
                buf.append(T_REF)
                _w_uvarint(buf, eid)
                return
            self._define(b)
            buf = self._buf
        buf.append(T_BYTES)
        _w_uvarint(buf, n)
        buf += b

    def _enc_buffer(self, b) -> None:
        # bytearray (mutable, unhashable): inline, never dictionaried;
        # snapshot to bytes because the source may mutate before send.
        buf = self._buf
        n = len(b)
        if n >= BIG_THRESHOLD:
            buf.append(T_BIG)
            _w_uvarint(buf, n)
            self._emit_big(bytes(b))
            return
        buf.append(T_BYTES)
        _w_uvarint(buf, n)
        buf += b

    def _enc_memoryview(self, m: memoryview) -> None:
        if m.format != "B":
            m = m.cast("B")
        buf = self._buf
        n = len(m)
        if n >= BIG_THRESHOLD:
            # The zero-copy path for sys_readv-style buffer views: the
            # view rides in the segment list; only the final gather (or
            # a real writev) touches its bytes.
            buf.append(T_BIG)
            _w_uvarint(buf, n)
            self._emit_big(m)
            return
        buf.append(T_BYTES)
        _w_uvarint(buf, n)
        buf += m

    def _enc_tuple(self, t: tuple) -> None:
        buf = self._buf
        # Batch-level dictionary: a request's ``sqes`` (and a response's
        # ``cqes``) recur as whole tuples under a steady-state workload,
        # so intern the tuple itself — one REF replaces the entire batch
        # and the decoder returns one cached object.  Tuples of Sqe/Cqe
        # need an explicit content key (both hash by identity).
        if t:
            entry = self._etid.get(id(t))
            if entry is not None and entry[1] is t:
                eid = entry[0]
                buf.append(T_REF)
                if eid < 0x80:
                    buf.append(eid)
                else:
                    _w_uvarint(buf, eid)
                return
            first = type(t[0])
            if first is Sqe or first is Cqe:
                try:
                    # Column-wise keys: no per-element tuple builds, and
                    # the shapes (2-tuple for Sqe batches, 3-tuple for
                    # Cqe) cannot collide with each other or with the
                    # ("S"/"C", ...) single-entry keys below.
                    if first is Sqe:
                        key = (
                            tuple(map(_AG_OP, t)),
                            tuple(map(_AG_ARGS, t)),
                        )
                    else:
                        key = (
                            tuple(map(_AG_OP, t)),
                            tuple(map(_AG_RESULT, t)),
                            tuple(map(_AG_ERRNO, t)),
                        )
                    eid = self._evals.get(key)
                except (TypeError, AttributeError):
                    key = eid = None  # mixed batch or unhashable fields
                if eid is not None:
                    if len(self._etid) < VALUE_DICT_CAP:
                        self._etid[id(t)] = (eid, t)
                    buf.append(T_REF)
                    if eid < 0x80:
                        buf.append(eid)
                    else:
                        _w_uvarint(buf, eid)
                    return
                if key is not None:
                    if (
                        self._define(key)
                        and len(self._etid) < VALUE_DICT_CAP
                    ):
                        self._etid[id(t)] = (self._evals[key], t)
                    buf = self._buf
        buf.append(T_TUPLE)
        _w_uvarint(buf, len(t))
        enc_value = self._enc_value
        for item in t:
            enc_value(item)

    def _enc_list(self, items: list) -> None:
        # The two wave shapes the executors ship — [(shard_id,
        # ShardRequest), ...] and [ShardResponse, ...] — get vectorized
        # encodings: one type tag for the whole wave and an inlined
        # per-item loop instead of per-item dynamic dispatch.  Items that
        # don't fit the shape escape to the generic encoder via a
        # per-item flag byte, so the fast path never needs a pre-scan.
        if items and self._msg_by_type is not None:
            first = items[0]
            tf = type(first)
            if (
                tf is tuple
                and len(first) == 2
                and type(first[1]) is self._req_cls
            ):
                self._enc_wave(items)
                return
            if tf is self._resp_cls:
                self._enc_rwave(items)
                return
        buf = self._buf
        buf.append(T_LIST)
        _w_uvarint(buf, len(items))
        enc_value = self._enc_value
        for item in items:
            enc_value(item)

    def _enc_wave(self, items: list) -> None:
        buf = self._buf
        buf.append(T_WAVE)
        _w_uvarint(buf, len(items))
        RQ = self._req_cls
        enc_str = self._enc_str
        enc_tuple = self._enc_tuple
        for p in items:
            if type(p) is tuple and len(p) == 2 and type(p[1]) is RQ:
                shard_id, req = p
                seq = req.seq
                principal = req.principal
                sqes = req.sqes
                if (
                    type(shard_id) is int
                    and 0 <= shard_id
                    and type(seq) is int
                    and 0 <= seq
                    and type(principal) is str
                    and type(sqes) is tuple
                ):
                    buf = self._buf
                    buf.append(1)
                    if shard_id < 0x80:
                        buf.append(shard_id)
                    else:
                        _w_uvarint(buf, shard_id)
                    if seq < 0x80:
                        buf.append(seq)
                    else:
                        _w_uvarint(buf, seq)
                    enc_str(principal)
                    enc_tuple(sqes)
                    continue
            self._buf.append(0)
            self._enc_value(p)

    def _dec_wave(self, buf, pos: int):
        if self._msg_by_type is None:
            self._install_messages()
        n, pos = _r_uvarint(buf, pos)
        items = [None] * n
        RQ = self._req_cls
        new = RQ.__new__
        dvals = self._dvals
        dec_value = self._dec_value
        for i in range(n):
            if not buf[pos]:
                items[i], pos = dec_value(buf, pos + 1)
                continue
            shard_id = buf[pos + 1]
            pos += 2
            if shard_id >= 0x80:
                shard_id, pos = _r_uvarint(buf, pos - 1)
            seq = buf[pos]
            if seq < 0x80:
                pos += 1
            else:
                seq, pos = _r_uvarint(buf, pos)
            tag = buf[pos]
            if tag == T_REF and buf[pos + 1] < 0x80:
                principal = dvals[buf[pos + 1]]
                pos += 2
            else:
                principal, pos = dec_value(buf, pos)
            tag = buf[pos]
            if tag == T_REF and buf[pos + 1] < 0x80:
                sqes = dvals[buf[pos + 1]]
                pos += 2
            else:
                sqes, pos = dec_value(buf, pos)
            req = new(RQ)
            _OSA(req, "seq", seq)
            _OSA(req, "principal", principal)
            _OSA(req, "sqes", sqes)
            items[i] = (shard_id, req)
        return items, pos

    def _enc_rwave(self, items: list) -> None:
        buf = self._buf
        buf.append(T_RWAVE)
        _w_uvarint(buf, len(items))
        RS = self._resp_cls
        enc_tuple = self._enc_tuple
        enc_value = self._enc_value
        for resp in items:
            if type(resp) is RS:
                seq = resp.seq
                shard_id = resp.shard_id
                cqes = resp.cqes
                deferred = resp.deferred
                if (
                    type(seq) is int
                    and 0 <= seq
                    and type(shard_id) is int
                    and 0 <= shard_id
                    and type(cqes) is tuple
                    and type(deferred) is int
                    and 0 <= deferred
                ):
                    buf = self._buf
                    buf.append(1)
                    if seq < 0x80:
                        buf.append(seq)
                    else:
                        _w_uvarint(buf, seq)
                    if shard_id < 0x80:
                        buf.append(shard_id)
                    else:
                        _w_uvarint(buf, shard_id)
                    enc_tuple(cqes)
                    audit = resp.audit
                    if type(audit) is tuple and not audit:
                        buf = self._buf
                        buf.append(T_TUPLE)
                        buf.append(0)
                    else:
                        enc_value(audit)
                    traffic = resp.traffic
                    if type(traffic) is tuple and not traffic:
                        buf = self._buf
                        buf.append(T_TUPLE)
                        buf.append(0)
                    else:
                        enc_value(traffic)
                    buf = self._buf
                    if deferred < 0x80:
                        buf.append(deferred)
                    else:
                        _w_uvarint(buf, deferred)
                    continue
            self._buf.append(0)
            self._enc_value(resp)

    def _dec_rwave(self, buf, pos: int):
        if self._msg_by_type is None:
            self._install_messages()
        n, pos = _r_uvarint(buf, pos)
        items = [None] * n
        RS = self._resp_cls
        new = RS.__new__
        dvals = self._dvals
        dec_value = self._dec_value
        for i in range(n):
            if not buf[pos]:
                items[i], pos = dec_value(buf, pos + 1)
                continue
            seq = buf[pos + 1]
            pos += 2
            if seq >= 0x80:
                seq, pos = _r_uvarint(buf, pos - 1)
            shard_id = buf[pos]
            if shard_id < 0x80:
                pos += 1
            else:
                shard_id, pos = _r_uvarint(buf, pos)
            tag = buf[pos]
            if tag == T_REF and buf[pos + 1] < 0x80:
                cqes = dvals[buf[pos + 1]]
                pos += 2
            else:
                cqes, pos = dec_value(buf, pos)
            if buf[pos] == T_TUPLE and not buf[pos + 1]:
                audit = ()
                pos += 2
            else:
                audit, pos = dec_value(buf, pos)
            if buf[pos] == T_TUPLE and not buf[pos + 1]:
                traffic = ()
                pos += 2
            else:
                traffic, pos = dec_value(buf, pos)
            deferred = buf[pos]
            if deferred < 0x80:
                pos += 1
            else:
                deferred, pos = _r_uvarint(buf, pos)
            resp = new(RS)
            _OSA(resp, "seq", seq)
            _OSA(resp, "shard_id", shard_id)
            _OSA(resp, "cqes", cqes)
            _OSA(resp, "audit", audit)
            _OSA(resp, "traffic", traffic)
            _OSA(resp, "deferred", deferred)
            items[i] = resp
        return items, pos

    def _enc_dict(self, d: dict) -> None:
        buf = self._buf
        buf.append(T_DICT)
        _w_uvarint(buf, len(d))
        enc_value = self._enc_value
        for key, value in d.items():
            enc_value(key)
            enc_value(value)

    def _enc_sqe(self, sqe: Sqe) -> None:
        # Sqe hashes by identity, so the dictionary key is the value
        # tuple; unhashable args (mutable payloads) simply skip the
        # dictionary.
        buf = self._buf
        try:
            key = ("S", sqe.op) + sqe.args
            eid = self._evals.get(key)
        except TypeError:
            key = eid = None
        if eid is not None:
            buf.append(T_REF)
            _w_uvarint(buf, eid)
            return
        if key is not None:
            self._define(key)
        self._buf.append(T_SQE)
        self._enc_str(sqe.op)
        args = sqe.args
        _w_uvarint(self._buf, len(args))
        enc_value = self._enc_value
        for arg in args:
            enc_value(arg)

    def _enc_cqe(self, cqe: Cqe) -> None:
        buf = self._buf
        try:
            key = ("C", cqe.op, cqe.result, cqe.errno)
            eid = self._evals.get(key)
        except TypeError:
            key = eid = None
        if eid is not None:
            buf.append(T_REF)
            _w_uvarint(buf, eid)
            return
        if key is not None:
            self._define(key)
        self._buf.append(T_CQE)
        self._enc_str(cqe.op)
        self._enc_value(cqe.result)
        _w_uvarint(self._buf, cqe.errno)  # refetch: result may have split

    def _raw_label(self, label: Label) -> None:
        buf = self._buf
        tags = label.tags()
        _w_uvarint(buf, len(tags))
        for tag in tags:
            _w_uvarint(buf, tag.value)
            data = tag.name.encode("utf-8")
            _w_uvarint(buf, len(data))
            buf += data

    def _enc_label(self, label: Label) -> None:
        buf = self._buf
        eid = self._evals.get(label)
        if eid is not None:
            buf.append(T_REF)
            _w_uvarint(buf, eid)
            return
        self._define(label)
        self._buf.append(T_LABEL)
        self._raw_label(label)

    def _enc_labelpair(self, pair: LabelPair) -> None:
        buf = self._buf
        entry = self._elp.get(pair)
        epoch = self.label_epoch
        if entry is not None and entry[1] == epoch:
            counters.label_dict_hits += 1
            pair_id = entry[0]
            buf.append(T_LPREF)
            buf.append(pair_id >> 8)
            buf.append(pair_id & 0xFF)
            return
        counters.label_dict_misses += 1
        if entry is not None:
            # Epoch-stale: re-send the definition under the entry's
            # existing id (the decoder overwrites in place).
            pair_id = entry[0]
        elif self._next_lp < LABEL_DICT_CAP:
            pair_id = self._next_lp
            self._next_lp += 1
        else:
            buf.append(T_LPRAW)
            self._raw_label(pair.secrecy)
            self._raw_label(pair.integrity)
            return
        self._elp[pair] = (pair_id, epoch)
        buf.append(T_LPDEF)
        buf.append(pair_id >> 8)
        buf.append(pair_id & 0xFF)
        self._raw_label(pair.secrecy)
        self._raw_label(pair.integrity)

    def _enc_capset(self, caps: CapabilitySet) -> None:
        buf = self._buf
        buf.append(T_CAPSET)
        _w_uvarint(buf, len(caps))
        for cap in caps:  # iterates in canonical sort_key order
            _w_uvarint(buf, cap.tag.value)
            data = cap.tag.name.encode("utf-8")
            _w_uvarint(buf, len(data))
            buf += data
            buf.append(43 if cap.kind is CapType.PLUS else 45)  # '+' / '-'

    # -- decoder --------------------------------------------------------

    def _dec_value(self, buf, pos: int) -> tuple[object, int]:
        tag = buf[pos]
        try:
            fn = self._dec[tag]
        except IndexError:
            fn = None
        if fn is None:
            if (
                T_MESSAGE_BASE <= tag < _DEC_TABLE_SIZE
                and self._msg_by_type is None
            ):
                self._install_messages()
                fn = self._dec[tag]
            if fn is None:
                raise ValueError(f"unknown wire tag {tag}")
        return fn(buf, pos + 1)

    def _dec_none(self, buf, pos: int):
        return None, pos

    def _dec_true(self, buf, pos: int):
        return True, pos

    def _dec_false(self, buf, pos: int):
        return False, pos

    def _dec_int(self, buf, pos: int):
        u, pos = _r_uvarint(buf, pos)
        return (u >> 1) if not (u & 1) else -((u + 1) >> 1), pos

    def _dec_float(self, buf, pos: int):
        (x,) = _F64.unpack_from(buf, pos)
        return x, pos + 8

    def _dec_bytes(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        end = pos + n
        return bytes(buf[pos:end]), end

    def _dec_str(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        end = pos + n
        return str(buf[pos:end], "utf-8"), end

    def _dec_tuple(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        if n == 0:
            return (), pos
        items = [None] * n
        dec_value = self._dec_value
        for i in range(n):
            items[i], pos = dec_value(buf, pos)
        return tuple(items), pos

    def _dec_list(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        items = [None] * n
        dec_value = self._dec_value
        for i in range(n):
            items[i], pos = dec_value(buf, pos)
        return items, pos

    def _dec_dict(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        out: dict = {}
        dec_value = self._dec_value
        for _ in range(n):
            key, pos = dec_value(buf, pos)
            value, pos = dec_value(buf, pos)
            out[key] = value
        return out, pos

    def _dec_ref(self, buf, pos: int):
        eid = buf[pos]
        if eid < 0x80:
            return self._dvals[eid], pos + 1
        eid, pos = _r_uvarint(buf, pos)
        return self._dvals[eid], pos

    def _dec_def(self, buf, pos: int):
        eid, pos = _r_uvarint(buf, pos)
        obj, pos = self._dec_value(buf, pos)
        self._dvals[eid] = obj
        return obj, pos

    def _dec_lpref(self, buf, pos: int):
        return self._dlp[(buf[pos] << 8) | buf[pos + 1]], pos + 2

    def _dec_lpdef(self, buf, pos: int):
        pair_id = (buf[pos] << 8) | buf[pos + 1]
        pair, pos = self._dec_lpraw(buf, pos + 2)
        self._dlp[pair_id] = pair
        return pair, pos

    def _dec_lpraw(self, buf, pos: int):
        secrecy, pos = self._dec_label(buf, pos)
        integrity, pos = self._dec_label(buf, pos)
        return LabelPair(secrecy, integrity), pos

    def _dec_label(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        entries = []
        for _ in range(n):
            value, pos = _r_uvarint(buf, pos)
            ln, pos = _r_uvarint(buf, pos)
            end = pos + ln
            entries.append((value, str(buf[pos:end], "utf-8")))
            pos = end
        return Label.from_wire(entries), pos

    def _dec_sqe(self, buf, pos: int):
        op, pos = self._dec_value(buf, pos)
        n, pos = _r_uvarint(buf, pos)
        args = [None] * n
        dec_value = self._dec_value
        for i in range(n):
            args[i], pos = dec_value(buf, pos)
        # Slot-direct construction: Sqe.__init__ only assigns, and the
        # wire is trusted peer output, so skip the call-protocol cost.
        sqe = Sqe.__new__(Sqe)
        sqe.op = op
        sqe.args = tuple(args)
        return sqe, pos

    def _dec_cqe(self, buf, pos: int):
        op, pos = self._dec_value(buf, pos)
        result, pos = self._dec_value(buf, pos)
        errno, pos = _r_uvarint(buf, pos)
        cqe = Cqe.__new__(Cqe)
        cqe.op = op
        cqe.result = result
        cqe.errno = errno
        return cqe, pos

    def _dec_capset(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        caps = []
        for _ in range(n):
            value, pos = _r_uvarint(buf, pos)
            ln, pos = _r_uvarint(buf, pos)
            end = pos + ln
            name = str(buf[pos:end], "utf-8")
            kind = CapType.PLUS if buf[end] == 43 else CapType.MINUS
            caps.append(Capability(Tag(value, name), kind))
            pos = end + 1
        return CapabilitySet(caps), pos

    def _dec_pickle(self, buf, pos: int):
        n, pos = _r_uvarint(buf, pos)
        end = pos + n
        return pickle.loads(buf[pos:end]), end


def make_wire(wire: str = "binary"):
    """Build a wire codec by name (``"binary"`` or ``"pickle"``); codec
    instances pass through, so call sites can accept either."""
    if isinstance(wire, (PickleWire, BinaryWireCodec)):
        return wire
    if wire == "binary":
        return BinaryWireCodec()
    if wire == "pickle":
        return PickleWire()
    raise ValueError(f"unknown wire {wire!r}")


WIRE_MODES = ("binary", "pickle")


# ------------------------------------------------------ adaptive coalescer


#: Size assumed for a request when the caller has no hint: roughly one
#: steady-state binary-wire request.
DEFAULT_SIZE_HINT = 64


def request_size_hint(request) -> int:
    """Cheap wire-size estimate for a routed request (drives the
    coalescer's bytes threshold): a few bytes of framing per entry, plus
    large payload bytes, which dominate when present."""
    size = 8
    for sqe in getattr(request, "sqes", ()):
        size += 2
        for arg in sqe.args:
            if isinstance(arg, (bytes, bytearray, memoryview)):
                n = len(arg)
                size += n if n >= BIG_THRESHOLD else 2
    return size


class AdaptiveCoalescer:
    """Nagle-style adaptive wave formation for the cluster router.

    Given an open-loop arrival schedule (seconds) and per-request size
    hints, :meth:`plan` groups consecutive requests into dispatch waves:
    a wave opened at arrival ``t`` closes at ``t + window``, when its
    bytes reach ``target_bytes``, or at ``max_wave`` requests —
    whichever comes first.  The window adapts to the measured arrival
    rate (EWMA of inter-arrival gaps): the time to accumulate a
    ``target_bytes`` batch at the current rate, clamped to
    ``[min_window, max_window]``, so a hot workload batches aggressively
    while a trickle never waits longer than ``max_window``.

    Planning is a pure function of its inputs — timing estimates come
    from the *schedule*, never the host clock — so coalesced runs stay
    deterministic and replayable.  Batching only groups dispatch:
    routing and global sequencing happen per request before the plan is
    applied, which is why observables (and denials in particular) are
    byte-identical at every wave shape.
    """

    def __init__(
        self,
        *,
        target_bytes: int = 4096,
        min_window: float = 16e-6,
        max_window: float = 2e-3,
        max_wave: int = 64,
        alpha: float = 0.2,
    ) -> None:
        if target_bytes <= 0 or max_wave <= 0:
            raise ValueError("coalescer thresholds must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.target_bytes = target_bytes
        self.min_window = min_window
        self.max_window = max_window
        self.max_wave = max_wave
        self.alpha = alpha
        self.waves: list[int] = []
        self.windows: list[float] = []

    def plan(
        self, arrivals: Sequence[float], sizes: Optional[Sequence[int]] = None
    ) -> list[int]:
        """Return the wave lengths (summing to ``len(arrivals)``)."""
        n = len(arrivals)
        waves: list[int] = []
        windows: list[float] = []
        if n:
            if sizes is None:
                sizes = [DEFAULT_SIZE_HINT] * n
            elif len(sizes) != n:
                raise ValueError("sizes must match arrivals")
            ewma_dt: Optional[float] = None
            alpha = self.alpha
            i = 0
            while i < n:
                if ewma_dt is None:
                    window = self.min_window
                else:
                    batch = self.target_bytes / max(1, sizes[i])
                    window = min(
                        self.max_window, max(self.min_window, batch * ewma_dt)
                    )
                windows.append(window)
                deadline = arrivals[i] + window
                wave_bytes = 0
                j = i
                while j < n and j - i < self.max_wave:
                    if j > i:
                        dt = arrivals[j] - arrivals[j - 1]
                        ewma_dt = (
                            dt
                            if ewma_dt is None
                            else alpha * dt + (1.0 - alpha) * ewma_dt
                        )
                        if (
                            arrivals[j] > deadline
                            or wave_bytes + sizes[j] > self.target_bytes
                        ):
                            break
                    wave_bytes += sizes[j]
                    j += 1
                waves.append(j - i)
                i = j
        counters.coalesced_waves += sum(1 for w in waves if w >= 2)
        self.waves = waves
        self.windows = windows
        return waves

    def stats(self) -> dict:
        waves = self.waves
        return {
            "waves": len(waves),
            "coalesced_waves": sum(1 for w in waves if w >= 2),
            "requests": sum(waves),
            "max_wave": max(waves, default=0),
            "mean_wave": (sum(waves) / len(waves)) if waves else 0.0,
            "mean_window_us": (
                1e6 * sum(self.windows) / len(self.windows)
            ) if self.windows else 0.0,
        }
