"""A cooperative scheduler for simulated tasks.

The kernel's syscall layer is synchronous: callers invoke ``sys_*`` and
get an answer.  That is fine for single-task microbenchmarks (lmbench)
but cannot express a *server*: many tasks interleaving, readers blocking
until a writer produces data.  This module adds that layer without
touching the kernel's security semantics.

Task bodies are **generator functions** ``body(task)`` that ``yield``
operation descriptors (built by :func:`syscall`, :func:`read_blocking`,
:func:`recv_blocking`, :func:`submit`, :func:`fork`, :func:`yield_`) and
receive each operation's result via ``gen.send``; a failing syscall is
thrown into the generator as :class:`~repro.osim.task.SyscallError`.
The scheduler is strictly round-robin: one operation per scheduling
step, re-enqueue at the tail.

Blocking without a timing channel
---------------------------------
The delicate part is blocking reads.  Laminar's pipes report a denied
read as an empty read — blocking must not un-do that by making a denied
reader *sleep differently* from an empty-pipe reader.  Two rules keep
the cases observationally identical:

* A reader parks whenever its (hook-mediated) read attempt returned no
  data and the channel is not hung up — **whatever the reason** the
  attempt came back empty.  The scheduler never asks the security module
  anything; it cannot tell a denial from an empty queue.
* A parked reader is woken by the channel's ``version`` counter, which
  writers bump on **every** write attempt and on close, delivered or
  dropped (see :mod:`repro.osim.pipes`).  Wakeups are therefore a
  function of writer *activity* alone.  On wake the reader re-attempts
  the full syscall — same hooks, same counters — and re-parks if it is
  still empty-handed.

A denied reader thus parks, wakes, retries, and re-parks in exactly the
same pattern, with exactly the same syscall and hook counts, as a reader
of a genuinely empty pipe fed by the same writer (regression-tested in
``tests/test_osim_sched.py``).

Termination follows the kernel's discipline: a generator finishing (or
being killed) exits the task, which drops fd references but never hangs
up pipes — only an explicit last close of the write end does that — so
the scheduler adds no termination channel either.
"""

from __future__ import annotations

import types
from collections import deque
from typing import TYPE_CHECKING, Callable, Generator, Optional, Sequence

from ..core import CapabilitySet, LabelPair
from .task import SyscallError, Task

if TYPE_CHECKING:
    from .kernel import Cqe, Kernel, Sqe

#: Signals whose delivery terminates the target at its next scheduling
#: point (the simulator has no handlers; everything else is ignored).
SIGKILL = 9
SIGTERM = 15
_FATAL_SIGNALS = (SIGKILL, SIGTERM)

#: Default ceiling on scheduling steps for one :meth:`Scheduler.run`;
#: a backstop against runaway generators in tests and benchmarks.
DEFAULT_MAX_STEPS = 1_000_000


# -- operation descriptors (what task bodies yield) --------------------------


def syscall(name: str, *args: object) -> tuple:
    """One ordinary (non-blocking) system call: ``yield syscall("open",
    "/etc/passwd")`` resumes with the call's return value, or raises the
    call's :class:`SyscallError` inside the generator."""
    return ("syscall", name, args)


def read_blocking(fd: int, count: int = -1) -> tuple:
    """``sys_read`` that parks until data arrives or the channel hangs
    up.  On a regular file this is an ordinary read (files never block).
    On a pipe the task sleeps while the attempt yields ``b""`` and the
    pipe is open, waking on writer activity; a hangup resumes it with
    ``b""``."""
    return ("read_blocking", fd, count)


def recv_blocking(socket: object) -> tuple:
    """``sys_recv`` that parks until a message arrives or an endpoint
    closes; resumes with ``b""`` on hangup."""
    return ("recv_blocking", socket, None)


def submit(sqes: "Sequence[Sqe]") -> tuple:
    """One batched submission (:meth:`Kernel.sys_submit`): the whole
    batch executes in this task's single scheduling step, and the body
    resumes with the list of :class:`Cqe` completions."""
    return ("submit", sqes, None)


def fork(body: Callable[[Task], Generator], caps_subset=None) -> tuple:
    """``sys_fork`` plus scheduling: the child task runs ``body(child)``
    under this scheduler; the parent resumes with the child ``Task``."""
    return ("fork", body, caps_subset)


def yield_() -> tuple:
    """Voluntarily give up the processor for one round."""
    return ("yield", None, None)


class _Thread:
    """Scheduler-side state for one running generator."""

    __slots__ = (
        "task",
        "gen",
        "send_value",
        "throw_exc",
        "pending_op",
        "wait_obj",
        "seen_version",
    )

    def __init__(self, task: Task, gen: Generator) -> None:
        self.task = task
        self.gen = gen
        self.send_value: object = None
        self.throw_exc: Optional[BaseException] = None
        #: A blocking op to re-attempt before advancing the generator
        #: (set when a parked thread wakes).
        self.pending_op: Optional[tuple] = None
        self.wait_obj: object = None
        self.seen_version: int = 0


class Scheduler:
    """Round-robin cooperative scheduler over one :class:`Kernel`."""

    def __init__(self, kernel: "Kernel", trace: bool = False) -> None:
        self.kernel = kernel
        self._runq: deque[_Thread] = deque()
        self._parked: list[_Thread] = []
        self.steps = 0
        #: Tasks still parked when :meth:`run` gave up (no writer can
        #: ever wake them).  Deliberately *not* an error: a reader of a
        #: never-closed, never-written pipe simply sleeps forever.
        self.stuck: list[Task] = []
        #: Optional event trace ``(event, tid)`` — "run", "park", "wake",
        #: "exit", "killed".  Events record scheduling activity only,
        #: never data or verdicts; the timing-channel regression test
        #: asserts denied and empty readers produce identical traces.
        self.trace: Optional[list[tuple]] = [] if trace else None

    # -- task admission ------------------------------------------------------

    def spawn(
        self,
        body: Callable[[Task], Generator],
        task: Optional[Task] = None,
        *,
        name: str = "",
        labels: LabelPair = LabelPair.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
    ) -> Task:
        """Admit ``body(task)`` as a schedulable thread.  Creates a fresh
        kernel task unless one is supplied."""
        if task is None:
            task = self.kernel.spawn_task(
                name or body.__name__, labels=labels, caps=caps
            )
        gen = body(task)
        if not isinstance(gen, types.GeneratorType):
            raise TypeError(f"task body {body!r} must be a generator function")
        self._runq.append(_Thread(task, gen))
        return task

    # -- the run loop --------------------------------------------------------

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> list[Task]:
        """Drive all admitted threads to completion.

        Returns the list of tasks left permanently parked (usually
        empty).  Raises ``RuntimeError`` if ``max_steps`` scheduling
        steps were not enough — a livelock backstop for tests.
        """
        self.stuck = []
        try:
            while self._runq or self._parked:
                self._wake_ready()
                if not self._runq:
                    # Nobody runnable and nobody woke: every parked thread
                    # is waiting on a channel no runnable writer can touch.
                    self.stuck = [t.task for t in self._parked]
                    for thread in self._parked:
                        thread.gen.close()
                    self._parked.clear()
                    break
                if self.steps >= max_steps:
                    raise RuntimeError(
                        f"scheduler exceeded {max_steps} steps "
                        f"({len(self._runq)} runnable, {len(self._parked)} parked)"
                    )
                self.steps += 1
                self._step(self._runq.popleft())
        except BaseException as exc:
            # A KernelCrash (simulated power loss, repro.osim.faults) — or
            # any other non-syscall failure — takes the whole machine down:
            # every generator is closed (running their finally blocks, as
            # a real process teardown would not, but leaving them open
            # would leak ResourceWarnings across the sweep's thousands of
            # crashes) and the exception propagates to the harness, which
            # calls Kernel.crash()/remount().  SyscallError never reaches
            # here: _complete routes it into the issuing generator.
            for thread in list(self._runq) + self._parked:
                thread.gen.close()
            self._runq.clear()
            self._parked.clear()
            raise exc
        return self.stuck

    def _wake_ready(self) -> None:
        """Move parked threads whose wait channel saw activity (or whose
        task got a fatal signal) back to the run queue, preserving park
        order."""
        still_parked: list[_Thread] = []
        for thread in self._parked:
            signaled = any(
                signum in _FATAL_SIGNALS
                for signum, _ in thread.task.pending_signals
            )
            if signaled or thread.wait_obj.version != thread.seen_version:
                if self.trace is not None:
                    self.trace.append(("wake", thread.task.tid))
                thread.pending_op, thread.wait_obj = (
                    (None, None) if signaled else (thread.pending_op, None)
                )
                self._runq.append(thread)
            else:
                still_parked.append(thread)
        self._parked = still_parked

    def _step(self, thread: _Thread) -> None:
        task = thread.task
        for signum, _sender in task.pending_signals:
            if signum in _FATAL_SIGNALS:
                thread.gen.close()
                if task.alive:
                    self.kernel.sys_exit(task, 128 + signum)
                if self.trace is not None:
                    self.trace.append(("killed", task.tid))
                return
        if not task.alive:
            # Exited behind our back (e.g. a direct sys_exit from test
            # code); nothing further to run.
            thread.gen.close()
            return
        if self.trace is not None:
            self.trace.append(("run", task.tid))
        if thread.pending_op is not None:
            op, thread.pending_op = thread.pending_op, None
            self._dispatch(thread, op)
            return
        try:
            if thread.throw_exc is not None:
                exc, thread.throw_exc = thread.throw_exc, None
                op = thread.gen.throw(exc)
            else:
                value, thread.send_value = thread.send_value, None
                op = thread.gen.send(value)
        except StopIteration as stop:
            if task.alive:
                code = stop.value if isinstance(stop.value, int) else 0
                self.kernel.sys_exit(task, code)
            if self.trace is not None:
                self.trace.append(("exit", task.tid))
            return
        self._dispatch(thread, op)

    # -- op dispatch ---------------------------------------------------------

    def _dispatch(self, thread: _Thread, op: tuple) -> None:
        kind, a, b = op
        if kind == "read_blocking":
            self._do_read_blocking(thread, op, a, b)
        elif kind == "recv_blocking":
            self._do_recv_blocking(thread, op, a)
        elif kind == "syscall":
            self._do_syscall(thread, a, b)
        elif kind == "submit":
            self._complete(thread, self.kernel.sys_submit, thread.task, a)
        elif kind == "fork":
            self._do_fork(thread, a, b)
        elif kind == "yield":
            self._runq.append(thread)
        else:
            thread.throw_exc = TypeError(f"unknown scheduler op {kind!r}")
            self._runq.append(thread)

    def _complete(self, thread: _Thread, fn, *args) -> object:
        """Run a kernel call, routing the result or error back into the
        generator, and re-enqueue (unless the call ended the task)."""
        try:
            result = fn(*args)
        except SyscallError as exc:
            thread.throw_exc = exc
            result = None
        else:
            thread.send_value = result
        if thread.task.alive:
            self._runq.append(thread)
        else:
            thread.gen.close()
            if self.trace is not None:
                self.trace.append(("exit", thread.task.tid))
        return result

    def _do_syscall(self, thread: _Thread, name: str, args: tuple) -> None:
        fn = getattr(self.kernel, f"sys_{name}", None)
        if fn is None:
            thread.throw_exc = SyscallError(22, f"no such syscall {name!r}")
            self._runq.append(thread)
            return
        self._complete(thread, fn, thread.task, *args)

    def _do_fork(self, thread: _Thread, body, caps_subset) -> None:
        try:
            child = self.kernel.sys_fork(thread.task, caps_subset)
        except SyscallError as exc:
            thread.throw_exc = exc
        else:
            thread.send_value = child
            self._runq.append(_Thread(child, body(child)))
        self._runq.append(thread)

    def _do_read_blocking(
        self, thread: _Thread, op: tuple, fd: int, count: int
    ) -> None:
        task = thread.task
        try:
            data = self.kernel.sys_read(task, fd, count)
        except SyscallError as exc:
            thread.throw_exc = exc
            self._runq.append(thread)
            return
        pipe = getattr(task.fd_table[fd].inode, "pipe", None)
        if data or pipe is None or pipe.closed:
            thread.send_value = data
            self._runq.append(thread)
        else:
            self._park(thread, op, pipe)

    def _do_recv_blocking(self, thread: _Thread, op: tuple, socket) -> None:
        try:
            data = self.kernel.sys_recv(thread.task, socket)
        except SyscallError as exc:
            thread.throw_exc = exc
            self._runq.append(thread)
            return
        if data or socket.hungup:
            thread.send_value = data
            self._runq.append(thread)
        else:
            self._park(thread, op, socket)

    def _park(self, thread: _Thread, op: tuple, wait_obj) -> None:
        """Put the thread to sleep until ``wait_obj.version`` moves.  The
        attempt it just made ran the full syscall (hooks and all); on
        wake it will run the full syscall again — parking adds no
        security-relevant observable."""
        thread.pending_op = op
        thread.wait_obj = wait_obj
        thread.seen_version = wait_obj.version
        self._parked.append(thread)
        if self.trace is not None:
            self.trace.append(("park", thread.task.tid))
