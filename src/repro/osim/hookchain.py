"""Tier-2 for the OS: compile hot LSM hook chains into baked closures.

The kernel's hot syscalls run the same *hook chain* millions of times:
``sys_stat`` is a path walk (one ``inode_permission`` EXEC check per
traversed directory) followed by ``inode_getattr`` on the leaf;
``sys_open`` is the same walk followed by ``inode_permission`` with the
open mask; ``sys_read``/``sys_write`` on a regular file are a single
``file_permission`` check.  For a server re-touching the same paths and
descriptors, every verdict in the chain is structurally fixed — it can
only change when the task's labels change, an involved inode is
relabeled, the namespace mutates under the walked prefix, or the
security module itself is swapped.

This module is the OS analogue of the VM's tier-2 template JIT
(:mod:`repro.jit.tier2`), sharing its :func:`~repro.jit.tier2.bake_closure`
step: a profiler counts successful chains per key, and a hot chain is
compiled into an exec-generated closure whose *constants* are the
interned label-pair identities, the traversed inode objects, the
resolved leaf, and the hook counts to replay.  Replaying a baked chain
increments the module's ``hook_calls`` exactly as the interpreted chain
would, so the observable hook/audit record is byte-identical — the
compiled path is pure performance.

Deopt discipline (never silently stale), mirroring tier-2's epoch
guards:

* **task label changes** — the per-task ``label_epoch`` is in every
  chain key; a relabel makes old chains unreachable.
* **inode relabels** — each closure guards the interned label *identity*
  of every baked inode; a mismatch returns ``None`` and the entry is
  discarded (``hookchain_deopts``).
* **namespace mutation** — path chains record the kernel's
  ``_walk_gen`` at bake time and are discarded when it moves (unlink,
  mkdir, labeled directory creation).
* **cwd changes** — relative-path chains guard ``task.cwd`` identity.
* **security-policy swap** — the kernel bumps ``policy_epoch`` in
  ``_refresh_security_module``; the engine drops everything.
* **fast-path reconfiguration** — :func:`repro.core.fastpath.configure`
  / ``clear_caches`` bump a module-level config epoch (registered via
  ``register_cache`` exactly like the tier-2 code cache), retiring
  chains whose baked label identities may not survive an intern-table
  flush.

Only *successful* chains are ever baked (denials and ENOENT re-run the
full hook sequence every time, so denial counters, audit entries, and
error text never depend on compilation state), and only for security
modules whose relevant hooks are the known-pure implementations
(:func:`repro.osim.lsm.chain_bakeable_hooks`) — the same soundness
condition as the kernel's walk cache and submit memo.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core import fastpath
from ..core.fastpath import counters as _fp

if TYPE_CHECKING:
    from .filesystem import File, Inode
    from .kernel import Kernel
    from .task import Task

#: Successful occurrences of one chain key before it is compiled.
COMPILE_THRESHOLD = 8
#: Entry caps — wholesale clear on overflow, same discipline as the
#: kernel's walk cache (hot chains re-bake within a few operations).
MAX_CHAINS = 2048
MAX_PROFILE = 8192

#: Bumped by every ``fastpath.configure()`` / ``clear_caches()``:
#: compiled chains bake interned label identities, which a cache flush
#: may retire.  Engines compare lazily, so no per-kernel callback ever
#: leaks into the process-wide clearer list.
_config_epoch = 0


def _bump_config_epoch() -> None:
    global _config_epoch
    _config_epoch += 1


fastpath.register_cache(_bump_config_epoch)

#: Lazily resolved :func:`repro.jit.tier2.bake_closure` — importing the
#: jit package at module load would close an import cycle through
#: runtime.vm back to osim.kernel; by first compile time both packages
#: are fully initialized.
_bake_closure = None


def bake_closure(source: str, bindings: dict, entry: str, filename: str):
    global _bake_closure
    if _bake_closure is None:
        from ..jit.tier2 import bake_closure as _bc

        _bake_closure = _bc
    return _bake_closure(source, bindings, entry, filename)


def _compile_path_chain(
    observed: tuple,
    leaf: "Inode",
    leaf_hook: str,
    cwd: Optional["Inode"],
    seq: int,
) -> object:
    """Bake one walk+leaf chain: identity guards, count replay, leaf."""
    lines = ["def _chain(task, hook_calls):"]
    bindings: dict[str, object] = {}
    if cwd is not None:
        bindings["_cwd"] = cwd
        lines.append("    if task.cwd is not _cwd:")
        lines.append("        return None")
    for i, (inode, labels) in enumerate(observed):
        bindings[f"_d{i}"] = inode
        bindings[f"_dl{i}"] = labels
        lines.append(f"    if _d{i}.labels is not _dl{i}:")
        lines.append("        return None")
    bindings["_leaf"] = leaf
    bindings["_ll"] = leaf.labels
    lines.append("    if _leaf.labels is not _ll:")
    lines.append("        return None")
    nperm = len(observed) + (1 if leaf_hook == "inode_permission" else 0)
    if nperm:
        lines.append(f"    hook_calls['inode_permission'] += {nperm}")
    if leaf_hook != "inode_permission":
        lines.append(f"    hook_calls[{leaf_hook!r}] += 1")
    lines.append("    return _leaf")
    source = "\n".join(lines) + "\n"
    return bake_closure(source, bindings, "_chain", f"<hookchain:path:{seq}>")


_FD_CHAIN_SOURCE = (
    "def _chain(hook_calls):\n"
    "    if _inode.labels is not _labels:\n"
    "        return None\n"
    "    hook_calls['file_permission'] += 1\n"
    "    return True\n"
)


def _compile_fd_chain(file: "File", seq: int) -> object:
    bindings = {"_inode": file.inode, "_labels": file.inode.labels}
    return bake_closure(
        _FD_CHAIN_SOURCE, bindings, "_chain", f"<hookchain:fd:{seq}>"
    )


class HookChainEngine:
    """Profiler + chain cache + guard/deopt protocol for one kernel.

    Two chain kinds:

    * **path chains** — keyed ``((op, discriminator), tid, label_epoch,
      path)``; a hit replays the walk's ``inode_permission`` count plus
      the leaf hook and returns the resolved leaf inode, skipping the
      per-component traversal, name resolution, and hook dispatch.
    * **fd chains** — keyed ``(file, tid, label_epoch, write?)``; a hit
      replays one ``file_permission``.  The :class:`File` object itself
      is the key, so the entry pins it and the identity can never be
      recycled while the chain lives.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._config_epoch = _config_epoch
        self._policy_epoch = kernel.policy_epoch
        #: key -> (walk_gen at bake, closure)
        self._path_chains: dict[tuple, tuple] = {}
        #: key -> closure
        self._fd_chains: dict[tuple, object] = {}
        #: key -> successful-occurrence count (both chain kinds share it).
        self._profile: dict[tuple, int] = {}
        self._seq = 0

    def invalidate(self) -> None:
        """Drop every chain and profile (crash, remount, policy swap)."""
        self._path_chains.clear()
        self._fd_chains.clear()
        self._profile.clear()

    def _live(self) -> bool:
        """Revalidate the engine's epochs; ``False`` disables chains."""
        if not fastpath.flags.hook_chain_compile:
            return False
        policy = self.kernel.policy_epoch
        if self._config_epoch != _config_epoch or self._policy_epoch != policy:
            self.invalidate()
            self._config_epoch = _config_epoch
            self._policy_epoch = policy
        return True

    # -- path chains (walk prefix + leaf permission hook) ---------------------

    def lookup_path(self, op: tuple, task: "Task", path: str):
        """Replay a baked walk+leaf chain; returns the leaf inode, or
        ``None`` (cold, guard failure, or compilation disabled) meaning
        the caller must run the full interpreted chain."""
        if not self._live():
            return None
        key = (op, task.tid, task.security.label_epoch, path)
        entry = self._path_chains.get(key)
        if entry is None:
            return None
        gen, chain = entry
        if gen == self.kernel._walk_gen:
            inode = chain(task, self.kernel.security.hook_calls)
            if inode is not None:
                _fp.hookchain_hits += 1
                return inode
        del self._path_chains[key]
        _fp.hookchain_deopts += 1
        return None

    def profile_path(
        self,
        op: tuple,
        task: "Task",
        path: str,
        observed: tuple,
        leaf: "Inode",
        leaf_hook: str,
    ) -> None:
        """Record one successful interpreted chain; bake when hot."""
        if not self._live():
            return
        hooks = self.kernel._chain_hooks
        if "inode_permission" not in hooks or leaf_hook not in hooks:
            return
        key = (op, task.tid, task.security.label_epoch, path)
        prof = self._profile
        n = prof.get(key, 0) + 1
        if n < COMPILE_THRESHOLD:
            if len(prof) >= MAX_PROFILE:
                prof.clear()
            prof[key] = n
            return
        prof.pop(key, None)
        relative = not path.startswith("/") and task.cwd is not None
        self._seq += 1
        chain = _compile_path_chain(
            observed, leaf, leaf_hook, task.cwd if relative else None, self._seq
        )
        if len(self._path_chains) >= MAX_CHAINS:
            self._path_chains.clear()
        self._path_chains[key] = (self.kernel._walk_gen, chain)
        _fp.hookchain_compiles += 1

    # -- fd chains (file_permission on a held descriptor) ---------------------

    def replay_fd(self, task: "Task", file: "File", write: bool) -> bool:
        """Replay a baked ``file_permission``; ``False`` means the caller
        must run the real hook (cold, guard failure, or disabled)."""
        if not self._live():
            return False
        key = (file, task.tid, task.security.label_epoch, write)
        chain = self._fd_chains.get(key)
        if chain is None:
            return False
        if chain(self.kernel.security.hook_calls) is None:
            del self._fd_chains[key]
            _fp.hookchain_deopts += 1
            return False
        _fp.hookchain_hits += 1
        return True

    def profile_fd(self, task: "Task", file: "File", write: bool) -> None:
        if not self._live():
            return
        if "file_permission" not in self.kernel._chain_hooks:
            return
        key = (file, task.tid, task.security.label_epoch, write)
        prof = self._profile
        n = prof.get(key, 0) + 1
        if n < COMPILE_THRESHOLD:
            if len(prof) >= MAX_PROFILE:
                prof.clear()
            prof[key] = n
            return
        prof.pop(key, None)
        self._seq += 1
        if len(self._fd_chains) >= MAX_CHAINS:
            self._fd_chains.clear()
        self._fd_chains[key] = _compile_fd_chain(file, self._seq)
        _fp.hookchain_compiles += 1

    def stats(self) -> dict[str, int]:
        return {
            "path_chains": len(self._path_chains),
            "fd_chains": len(self._fd_chains),
            "profiled_keys": len(self._profile),
        }
