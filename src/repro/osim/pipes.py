"""Label-mediated, unreliable pipes (Section 5.2, "Pipes").

Laminar labels the inode associated with a pipe's message buffer.  A task
may read or write the pipe only if its labels are compatible — but the
failure semantics differ from every other object in the system:

* **Silent drops.**  An error code due to an incorrect label, or to a full
  buffer, can leak information, so undeliverable messages are silently
  dropped and the write appears to succeed.  Unreliable pipes are standard
  in OS DIFC implementations (Asbestos, Flume).
* **Non-blocking reads, no EOF.**  Standard pipes deliver EOF when the
  writer exits; if the exiting writer's labels forbid communication with
  the reader, even that one bit violates DIFC.  Reads therefore never block
  and never report end-of-file — pipelines with homogeneous labels can
  approximate traditional behavior with a timeout.

The cooperative scheduler (:mod:`repro.osim.sched`) adds *blocking* read
variants on top of this substrate without weakening either property:

* ``version`` is a monotonic event counter bumped by **every** write
  attempt (delivered, label-dropped, or capacity-dropped) and by close.
  A parked reader re-attempts its read only when the version moved, so
  the scheduler's wakeup pattern is a function of writer *activity*
  alone — never of label verdicts.  A reader whose labels forbid the
  pipe therefore parks, wakes, and re-parks in exactly the same pattern
  as a reader of an empty pipe.
* ``closed`` is an *explicit* hangup (the last ``sys_close`` of the
  write end).  Task exit deliberately does not close pipes — suppressing
  termination notification is how OS DIFC systems close the termination
  channel — and a hangup by a writer whose labels forbid the pipe is
  silently dropped, like any other undeliverable message.

Crash semantics (:mod:`repro.osim.faults`): pipes are **volatile**.  The
message queue, the version counter, and the pipe's anonymous inode live
in kernel RAM, never on the simulated disk, so a :class:`KernelCrash`
discards in-flight messages wholesale — message loss, not label
weakening, which is why pipes need no journal records and why
``check_recovery_invariants`` has nothing to say about them.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..core import LabelPair
from .filesystem import Inode, InodeType

if TYPE_CHECKING:
    from .lsm import SecurityModule
    from .task import Task

#: Default capacity in messages, standing in for the 64 KiB Linux pipe buffer.
DEFAULT_PIPE_CAPACITY = 64


def freeze(data) -> bytes:
    """Materialize a payload for enqueueing — without copying when the
    caller already handed over an immutable ``bytes``.  Mutable buffers
    (``bytearray``, ``memoryview``) are snapshotted once; everything else
    rides through by reference, hop after hop."""
    return data if type(data) is bytes else bytes(data)


class Pipe:
    """One pipe: a labeled inode plus a bounded message queue."""

    def __init__(
        self,
        labels: LabelPair = LabelPair.EMPTY,
        capacity: int = DEFAULT_PIPE_CAPACITY,
    ) -> None:
        self.inode = Inode(InodeType.PIPE, labels)
        self.inode.pipe = self  # type: ignore[attr-defined]
        self.capacity = capacity
        self.messages: deque[bytes] = deque()
        #: Dropped-message count.  *Not* observable through any syscall —
        #: exposing it would recreate the leak; it exists for tests and the
        #: bench harness, which play the role of an omniscient observer.
        #: O(1) state: a counter, never a log of the dropped payloads.
        self.dropped = 0
        #: Write-activity counter for the scheduler's wait queues.  Bumped
        #: on *every* write attempt and on close, independent of the label
        #: verdict, so parking/wakeup behavior cannot encode a check.
        self.version = 0
        #: Explicit hangup flag; see module docstring.
        self.closed = False

    def write(self, task: "Task", data, lsm: "SecurityModule") -> int:
        """Write a message.  Always appears to succeed (returns len(data));
        the message is silently dropped when the label check fails, the
        buffer is full, or the pipe has been hung up."""
        self.version += 1
        if not lsm.pipe_write_allowed(task, self.inode):
            self.dropped += 1
            return len(data)
        if self.closed or len(self.messages) >= self.capacity:
            self.dropped += 1
            return len(data)
        self.messages.append(freeze(data))
        return len(data)

    def read(self, task: "Task", lsm: "SecurityModule") -> bytes:
        """Non-blocking read of one message.  Returns ``b""`` when the pipe
        is empty *or* when the task's labels forbid reading — the two cases
        are indistinguishable by design."""
        if not lsm.pipe_read_allowed(task, self.inode):
            return b""
        if not self.messages:
            return b""
        return self.messages.popleft()

    def close(self, task: "Task", lsm: "SecurityModule") -> None:
        """Hang up the write side.  A hangup is a one-bit message to the
        readers, so it is mediated exactly like a write: a closer whose
        labels forbid the pipe drops the hangup silently.  The version
        bumps either way, keeping wakeup patterns verdict-independent."""
        self.version += 1
        if not lsm.pipe_write_allowed(task, self.inode):
            self.dropped += 1
            return
        self.closed = True

    def __len__(self) -> int:
        return len(self.messages)
