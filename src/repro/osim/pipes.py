"""Label-mediated, unreliable pipes (Section 5.2, "Pipes").

Laminar labels the inode associated with a pipe's message buffer.  A task
may read or write the pipe only if its labels are compatible — but the
failure semantics differ from every other object in the system:

* **Silent drops.**  An error code due to an incorrect label, or to a full
  buffer, can leak information, so undeliverable messages are silently
  dropped and the write appears to succeed.  Unreliable pipes are standard
  in OS DIFC implementations (Asbestos, Flume).
* **Non-blocking reads, no EOF.**  Standard pipes deliver EOF when the
  writer exits; if the exiting writer's labels forbid communication with
  the reader, even that one bit violates DIFC.  Reads therefore never block
  and never report end-of-file — pipelines with homogeneous labels can
  approximate traditional behavior with a timeout.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..core import LabelPair
from .filesystem import Inode, InodeType

if TYPE_CHECKING:
    from .lsm import SecurityModule
    from .task import Task

#: Default capacity in messages, standing in for the 64 KiB Linux pipe buffer.
DEFAULT_PIPE_CAPACITY = 64


class Pipe:
    """One pipe: a labeled inode plus a bounded message queue."""

    def __init__(
        self,
        labels: LabelPair = LabelPair.EMPTY,
        capacity: int = DEFAULT_PIPE_CAPACITY,
    ) -> None:
        self.inode = Inode(InodeType.PIPE, labels)
        self.inode.pipe = self  # type: ignore[attr-defined]
        self.capacity = capacity
        self.messages: deque[bytes] = deque()
        #: Dropped-message count.  *Not* observable through any syscall —
        #: exposing it would recreate the leak; it exists for tests and the
        #: bench harness, which play the role of an omniscient observer.
        self.dropped = 0

    def write(self, task: "Task", data: bytes, lsm: "SecurityModule") -> int:
        """Write a message.  Always appears to succeed (returns len(data));
        the message is silently dropped when the label check fails or the
        buffer is full."""
        if not lsm.pipe_write_allowed(task, self.inode):
            self.dropped += 1
            return len(data)
        if len(self.messages) >= self.capacity:
            self.dropped += 1
            return len(data)
        self.messages.append(bytes(data))
        return len(data)

    def read(self, task: "Task", lsm: "SecurityModule") -> bytes:
        """Non-blocking read of one message.  Returns ``b""`` when the pipe
        is empty *or* when the task's labels forbid reading — the two cases
        are indistinguishable by design."""
        if not lsm.pipe_read_allowed(task, self.inode):
            return b""
        if not self.messages:
            return b""
        return self.messages.popleft()

    def __len__(self) -> int:
        return len(self.messages)
