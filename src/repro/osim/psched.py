"""Parallel scheduler backend: task groups across a fork worker pool.

The PR 3 scheduler (:mod:`repro.osim.sched`) is cooperative and
single-threaded; this module is the wall-clock-scale backend beneath it.
The unit of parallelism is the **task group**: a set of tasks that share
fds, pipes, and files only with each other (one user's server+client
pair in the file-server workload).  Groups are partitioned across a
``multiprocessing`` fork pool by ``group_index % workers`` — a pure
function of the trace, never of verdicts or timing — and each group
runs to completion under an ordinary cooperative :class:`Scheduler`
inside its worker, so the generator task API (and the park/wake
discipline that keeps denied ≡ empty) is exactly the PR 3 code path.

Determinism is inherited from the PR 7 cluster machinery rather than
reinvented:

* **Replicated worlds.**  Generators cannot cross a process boundary,
  so every worker builds the *same* full world (identical setup
  sequence → identical tids, inode numbers, and tag values) and runs
  only its assigned groups' bodies.  Denial detail strings — which
  embed task names, labels, and inode numbers — therefore compare
  byte-for-byte across workers and against the single-process replay.
* **Deterministic merge.**  Each group's audit and traffic deltas are
  captured around its run and stamped with the group's global index
  (the ``(stamp, worker, local)`` triples of
  :class:`~repro.osim.sockets.TrafficLog`); the driver concatenates
  deltas in global group order and re-stamps 1..n, exactly like
  :meth:`repro.osim.cluster.Cluster.merged_audit`.  Because groups are
  fd-disjoint, a group's observables are independent of which other
  groups ran before it on the same kernel image — so the merged record
  is byte-identical to :func:`replay_cooperative` running every group
  sequentially on one kernel.
* **Per-worker seeding.**  Forked workers inherit the parent's RNG
  state; each worker reseeds under the deterministic rule of
  :func:`repro.osim.rpc.worker_seed`, so repeated runs are
  bit-reproducible.
* **Overlapped service time.**  In ``defer_work`` mode each worker
  sleeps off its groups' simulated syscall work (``work_ns`` per
  deferred iteration) after each group — sleeps overlap across worker
  processes regardless of host core count, exactly as service time
  overlaps across real cores.

Group bodies must not ``fork`` new kernel tasks at run time: a task id
allocated mid-run would depend on which groups ran earlier on that
worker's kernel image, breaking cross-executor byte parity.  (Bodies
built at world-build time may use any task created there.)
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core import fastpath
from ..core.audit import AuditEntry, AuditKind
from .kernel import Kernel
from .lamwire import make_wire
from .lsm import LaminarSecurityModule
from .rpc import Shutdown, seed_worker_rng, worker_seed
from .sched import DEFAULT_MAX_STEPS, Scheduler


@dataclass
class GroupHandle:
    """One schedulable task group, produced worker-side by the world's
    ``build(kernel)``.

    ``spawn(sched)`` admits the group's (already created) tasks and
    generator bodies to a cooperative scheduler; ``stats()`` returns a
    small picklable dict of group-local outcome numbers (ops served,
    pipe drops, bytes) read after the group ran."""

    name: str
    spawn: Callable[[Scheduler], None]
    stats: Optional[Callable[[], dict]] = None


@dataclass(frozen=True)
class GroupResult:
    """Observables of one completed task group (picklable)."""

    group: int
    worker: int
    name: str
    steps: int
    #: (kind value, subsystem, principal, detail) audit delta tuples.
    audit: tuple = ()
    #: ((stamp, worker, local), payload) traffic delta pairs.
    traffic: tuple = ()
    #: Sorted (hook name, count) denial-counter delta.
    denials: tuple = ()
    #: Sorted (hook name, count) hook-call delta.
    hooks: tuple = ()
    #: Tids left permanently parked (normally empty).
    stuck: tuple = ()
    #: Deferred simulated-work iterations the group accrued.
    deferred: int = 0
    #: Scheduling-event trace ``(event, tid)`` when tracing was on.
    sched_trace: tuple = ()
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PschedWorkerReport:
    """Final per-worker state, returned on shutdown."""

    worker_id: int
    seed: int
    groups_run: tuple = ()
    fastpath_counters: dict = field(default_factory=dict)


def _counter_delta(after: Counter, before: dict) -> tuple:
    return tuple(
        sorted(
            (name, count - before.get(name, 0))
            for name, count in after.items()
            if count - before.get(name, 0)
        )
    )


def run_group(
    kernel: Kernel,
    index: int,
    handle: GroupHandle,
    *,
    worker: int = 0,
    trace: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> GroupResult:
    """Run one group to completion under a cooperative scheduler and
    capture its observable deltas.  Shared by the fork workers and the
    sequential replay, so both sides' capture logic is one code path."""
    sched = Scheduler(kernel, trace=trace)
    handle.spawn(sched)
    log = kernel.net.transmitted
    log.stamp = index + 1  # group's global index = the merge stamp
    audit_entries = kernel.audit._entries
    audit_before = len(audit_entries)
    traffic_before = log.total_messages
    denials_before = dict(kernel.security.denials)
    hooks_before = dict(kernel.security.hook_calls)
    stuck = sched.run(max_steps)
    audit = tuple(
        (e.kind.value, e.subsystem, e.principal, e.detail)
        for e in audit_entries[audit_before:]
    )
    delta = log.total_messages - traffic_before
    traffic = tuple(log.stamped_tail(delta)) if delta else ()
    return GroupResult(
        group=index,
        worker=worker,
        name=handle.name,
        steps=sched.steps,
        audit=audit,
        traffic=traffic,
        denials=_counter_delta(kernel.security.denials, denials_before),
        hooks=_counter_delta(kernel.security.hook_calls, hooks_before),
        stuck=tuple(t.tid for t in stuck),
        deferred=kernel.drain_deferred_work(),
        sched_trace=tuple(sched.trace) if sched.trace is not None else (),
        stats=dict(handle.stats()) if handle.stats is not None else {},
    )


def boot_world(world, *, worker_id: int = 0, defer_work: bool = False):
    """Boot one kernel image and build the (replicated) world onto it.
    Build-time simulated work is always deferred and drained — boot cost
    is not service time."""
    make_security = getattr(world, "security_module", None)
    security = make_security() if make_security is not None else LaminarSecurityModule()
    kernel = Kernel(security)
    kernel.net.transmitted.worker_id = worker_id
    kernel.defer_work = True
    handles = list(world.build(kernel))
    kernel.drain_deferred_work()
    kernel.defer_work = defer_work
    return kernel, handles


def _psched_worker_main(
    conn, worker_id, indices, world, defer_work, work_ns, seed, trace,
    wire: str = "binary",
) -> None:
    """Entry point of a forked scheduler worker: reseed deterministically,
    build the full world, signal readiness, wait for "go", run the
    assigned groups in global-index order, ship results, report."""
    wseed = seed_worker_rng(seed, worker_id)
    codec = make_wire(wire)
    try:
        kernel, handles = boot_world(
            world, worker_id=worker_id, defer_work=defer_work
        )
        codec.bind_allocator(kernel.tags)
        # The fork inherited the parent's process-global fastpath counter
        # state; zero it so the shutdown report covers only this worker's
        # assigned groups (reports sum cleanly across the pool).
        fastpath.counters.reset()
        conn.send_bytes(codec.encode(("ready", worker_id)))
        codec.decode(conn.recv_bytes())  # "go" — the timing barrier
        results = []
        for index in indices:
            result = run_group(
                kernel, index, handles[index], worker=worker_id, trace=trace
            )
            if work_ns and result.deferred:
                time.sleep(result.deferred * work_ns * 1e-9)
            results.append(result)
        conn.send_bytes(codec.encode(("results", results)))
    except BaseException as exc:  # ship the failure; a silent EOF is opaque
        conn.send_bytes(codec.encode(("error", repr(exc))))
        raise
    while True:
        message, _ = codec.decode(conn.recv_bytes())
        if isinstance(message, Shutdown):
            conn.send_bytes(
                codec.encode(
                    PschedWorkerReport(
                        worker_id=worker_id,
                        seed=wseed,
                        groups_run=tuple(indices),
                        fastpath_counters=fastpath.counters.snapshot(),
                    )
                )
            )
            break
    conn.close()


class ParallelScheduler:
    """Run a group world across a worker pool with deterministic merge.

    ``world`` must expose ``group_count`` (int) and
    ``build(kernel) -> list[GroupHandle]`` building the identical world
    on every kernel image (and optionally ``security_module()``).

    ``executor``:

    * ``"fork"`` — one forked process per worker; workers build their
      world during construction (excluded from the timed window), run
      concurrently after a "go" barrier, and sleep off deferred
      simulated work so service time overlaps across processes.
    * ``"inline"`` — every group runs in this process on one kernel in
      global group order: the deterministic CI fallback *and* the
      single-threaded cooperative baseline (:func:`replay_cooperative`).
      Results still round-trip through the wire codec, so pickling of
      every observable is exercised identically.
    """

    def __init__(
        self,
        world,
        *,
        workers: int = 1,
        executor: str = "fork",
        defer_work: bool = False,
        work_ns: float = 0.0,
        seed: int = 0,
        trace: bool = False,
        wire: str = "binary",
    ) -> None:
        if executor not in ("fork", "inline"):
            raise ValueError(f"unknown executor {executor!r}")
        groups = int(world.group_count)
        self.world = world
        self.workers = max(1, min(workers, groups)) if groups else 1
        self.executor = executor
        self.defer_work = defer_work
        self.work_ns = work_ns
        self.seed = seed
        self.trace = trace
        self.wire = wire
        #: Parent-side codecs, one per worker pipe (wire dictionaries are
        #: per-connection); ``_codec`` doubles as the inline round-trip
        #: codec.
        self._codecs: list = []
        self._codec = make_wire(wire)
        self.group_count = groups
        #: group index -> worker id; a pure function of the trace.
        self.worker_of = {i: i % self.workers for i in range(groups)}
        self.results: list[GroupResult] = []
        self.reports: list[PschedWorkerReport] = []
        self.elapsed = 0.0
        self._conns: list = []
        self._procs: list = []
        self._kernel: Optional[Kernel] = None
        self._handles: list[GroupHandle] = []
        self._fp_base: dict = {}
        if executor == "inline":
            self._kernel, self._handles = boot_world(
                world, defer_work=defer_work
            )
            self._codec.bind_allocator(self._kernel.tags)
            # Inline shares the caller's process-global counters; report
            # the delta over this baseline so inline and fork reports
            # mean the same thing (this scheduler's groups only).
            self._fp_base = fastpath.counters.snapshot()
        else:
            self._start_workers()

    # -- fork pool -----------------------------------------------------------

    def _start_workers(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        assignment: list[list[int]] = [[] for _ in range(self.workers)]
        for index in range(self.group_count):
            assignment[self.worker_of[index]].append(index)
        for wid in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_psched_worker_main,
                args=(
                    child_conn,
                    wid,
                    assignment[wid],
                    self.world,
                    self.defer_work,
                    self.work_ns,
                    self.seed,
                    self.trace,
                    self.wire,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._codecs.append(make_wire(self.wire))
        for wid, conn in enumerate(self._conns):
            message, _ = self._codecs[wid].decode(conn.recv_bytes())
            if message[0] != "ready":
                raise RuntimeError(f"worker failed during boot: {message[1]}")

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> list[GroupResult]:
        """Run every group; returns results ordered by global group index.
        ``elapsed`` covers dispatch to last result received — world
        construction (and fork/boot) is excluded on both executors."""
        if self.executor == "inline":
            start = time.perf_counter()
            results = []
            for index in range(self.group_count):
                result = run_group(
                    self._kernel,
                    index,
                    self._handles[index],
                    worker=self.worker_of[index],
                    trace=self.trace,
                    max_steps=max_steps,
                )
                if self.work_ns and result.deferred:
                    time.sleep(result.deferred * self.work_ns * 1e-9)
                results.append(self._codec.decode(self._codec.encode(result))[0])
            self.elapsed = time.perf_counter() - start
            self.results = results
            return results
        start = time.perf_counter()
        for wid, conn in enumerate(self._conns):
            conn.send_bytes(self._codecs[wid].encode("go"))
        by_group: dict[int, GroupResult] = {}
        for wid, conn in enumerate(self._conns):
            message, _ = self._codecs[wid].decode(conn.recv_bytes())
            if message[0] == "error":
                raise RuntimeError(f"worker failed: {message[1]}")
            for result in message[1]:
                by_group[result.group] = result
        self.elapsed = time.perf_counter() - start
        self.results = [by_group[i] for i in sorted(by_group)]
        return self.results

    def shutdown(self) -> list[PschedWorkerReport]:
        if self.reports:
            return self.reports
        if self.executor == "inline":
            snap = fastpath.counters.snapshot()
            delta = {k: v - self._fp_base.get(k, 0) for k, v in snap.items()}
            self.reports = [
                PschedWorkerReport(
                    worker_id=0,
                    seed=worker_seed(self.seed, 0),
                    groups_run=tuple(range(self.group_count)),
                    fastpath_counters=delta,
                )
            ]
            return self.reports
        for wid, conn in enumerate(self._conns):
            conn.send_bytes(self._codecs[wid].encode(Shutdown()))
        for wid, conn in enumerate(self._conns):
            report, _ = self._codecs[wid].decode(conn.recv_bytes())
            self.reports.append(report)
            conn.close()
        for proc in self._procs:
            proc.join(timeout=30)
        return self.reports

    # -- deterministic observable merge --------------------------------------

    def merged_audit(self) -> list[str]:
        """Concatenate per-group audit deltas in global group order and
        re-stamp 1..n — byte-identical across executors and worker counts
        (and to the sequential replay) because groups are fd-disjoint."""
        items: list[tuple] = []
        for result in self.results:
            items.extend(result.audit)
        return [
            str(AuditEntry(seq, AuditKind(kind), subsystem, principal, detail))
            for seq, (kind, subsystem, principal, detail) in enumerate(items, 1)
        ]

    def merged_traffic(self) -> list:
        """Transmitted payloads in canonical ``(stamp, worker, local)``
        order; the stamp is the group index, so the order is a pure
        function of the trace."""
        entries: list[tuple] = []
        for result in self.results:
            entries.extend(result.traffic)
        entries.sort(key=lambda item: item[0][0])
        return [payload for _, payload in entries]

    def observables(self) -> dict:
        """The equivalence currency for the parallel ≡ cooperative tests:
        everything here must be identical across executors, worker
        counts, and repeated runs."""
        denials: Counter = Counter()
        hooks: Counter = Counter()
        for result in self.results:
            denials.update(dict(result.denials))
            hooks.update(dict(result.hooks))
        return {
            "audit": tuple(self.merged_audit()),
            "traffic": tuple(self.merged_traffic()),
            "denials": tuple(sorted(denials.items())),
            "hooks": tuple(sorted(hooks.items())),
            "pipe_drops": sum(
                r.stats.get("pipe_drops", 0) for r in self.results
            ),
            "ops": sum(r.stats.get("ops", 0) for r in self.results),
            "steps": sum(r.steps for r in self.results),
            "stuck": tuple(
                (r.group, r.stuck) for r in self.results if r.stuck
            ),
        }

    def aggregate(self) -> dict:
        """Cross-worker totals (fastpath counters above all) for the
        benchmark snapshot."""
        totals: Counter = Counter()
        for report in self.shutdown():
            totals.update(report.fastpath_counters)
        return {
            "fastpath": dict(totals),
            "deferred_work": sum(r.deferred for r in self.results),
            "seeds": {r.worker_id: r.seed for r in self.shutdown()},
        }


def replay_cooperative(
    world, *, trace: bool = False, max_steps: int = DEFAULT_MAX_STEPS
) -> ParallelScheduler:
    """The single-threaded cooperative baseline: every group, in global
    group order, on ONE kernel under the PR 3 scheduler.  Returns the
    (already run) inline ParallelScheduler whose merged observables are
    what every parallel run must reproduce byte-for-byte."""
    sched = ParallelScheduler(
        world, workers=1, executor="inline", defer_work=False, trace=trace
    )
    sched.run(max_steps)
    return sched
