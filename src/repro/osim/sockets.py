"""Sockets and the unlabeled network device.

The paper's motivating guarantee: a thread tainted with a secrecy tag can
no longer write to an unlabeled output "such as standard output or the
network".  The simulated network therefore consists of:

* :class:`Socket` — a labeled endpoint (a socket inode).  Like files,
  sockets take the label of their creating thread unless created inside a
  labeled security region.
* :class:`Network` — the unlabeled outside world.  Sending to a remote host
  is a flow from the task to an empty-labeled destination, so any secrecy
  taint blocks it (unless declassified first).

Loopback connections between two labeled sockets model trusted channels
between labeled threads of different processes.

Like pipes, sockets carry a ``version`` event counter (bumped by every
send attempt toward the endpoint and by close) so the cooperative
scheduler's blocking ``recv`` can park and wake without its wakeup
pattern ever depending on a label verdict.
"""

from __future__ import annotations

import heapq
from collections import deque
from operator import itemgetter
from typing import TYPE_CHECKING, Optional

from ..core import LabelPair
from .filesystem import Inode, InodeType
from .pipes import freeze
from .task import ENOENT, EPIPE, SyscallError

if TYPE_CHECKING:
    from .lsm import SecurityModule
    from .task import Task

#: Default retention bound for :class:`TrafficLog` (messages kept for the
#: omniscient observer; totals keep counting past it).
DEFAULT_TRAFFIC_LOG_CAP = 4096

_stamp_key = itemgetter(0)


class TrafficLog(list):
    """A capped, resettable append-only log of observed payloads.

    Tests and benchmarks play the omniscient observer ("did any secret
    byte escape?"), which historically meant unbounded ``list`` growth —
    a multi-hour throughput run would hold every transmitted payload
    alive.  ``TrafficLog`` keeps the list API (equality against plain
    lists, iteration, indexing) but retains at most ``cap`` recent
    payloads, trimming in amortized O(1) chunks, while ``total_messages``
    and ``total_bytes`` keep exact machine-wide totals.

    In a sharded cluster every worker has its own log; entries carry a
    ``(stamp, worker_id, local_seq)`` triple — ``stamp`` is the router's
    global request sequence number, set by the executor before each
    request runs — and :meth:`merge` reassembles the per-worker logs into
    one canonical order (stamp, then worker, then local order).  Because
    the stamp is assigned at routing time, the merged order is a pure
    function of the request trace, never of worker scheduling, which is
    what lets cluster-mode traffic compare byte-for-byte against a
    single-kernel replay.
    """

    def __init__(
        self, cap: int = DEFAULT_TRAFFIC_LOG_CAP, worker_id: int = 0
    ) -> None:
        super().__init__()
        self.cap = cap
        self.total_messages = 0
        self.total_bytes = 0
        #: Which cluster worker this log belongs to (0 standalone).
        self.worker_id = worker_id
        #: Current global stamp; the cluster executor sets it to the
        #: request's router-assigned sequence number before dispatch.
        self.stamp = 0
        #: Per-entry (stamp, worker_id, local_seq), parallel to the
        #: retained payloads and trimmed with them.
        self.stamps: list[tuple[int, int, int]] = []
        #: Cached stamp-sorted view (see :meth:`sorted_stamped`):
        #: invalidated by every mutation, so however many merges read
        #: this log between appends, the sort runs once per mutation
        #: epoch.  ``sort_count`` counts the actual sorts (the regression
        #: test's probe).
        self._sorted: Optional[list] = None
        self.sort_count = 0

    def append(self, payload) -> None:  # type: ignore[override]
        self.append_stamped(
            (self.stamp, self.worker_id, self.total_messages + 1), payload
        )

    def append_stamped(self, stamp: tuple[int, int, int], payload) -> None:
        """Append a payload under an externally produced stamp triple —
        how the cluster driver rebuilds a worker's log from the stamped
        deltas shipped in shard responses."""
        self.total_messages += 1
        self.total_bytes += len(payload)
        self.stamps.append(tuple(stamp))
        list.append(self, payload)
        # Trim in blocks so append stays amortized O(1): deleting from the
        # front of a list is O(n), so do it once per `cap` appends.
        if list.__len__(self) > 2 * self.cap:
            excess = list.__len__(self) - self.cap
            del self[:excess]
            del self.stamps[:excess]
        self._sorted = None

    def reset(self) -> None:
        """Drop retained payloads and zero the totals (benchmark arms)."""
        del self[:]
        self.stamps.clear()
        self.total_messages = 0
        self.total_bytes = 0
        self._sorted = None

    def stamped(self) -> list[tuple[tuple[int, int, int], object]]:
        """Retained entries with their stamps (merge-ready form)."""
        return list(zip(self.stamps, list(self)))

    def stamped_tail(
        self, delta: int
    ) -> list[tuple[tuple[int, int, int], object]]:
        """The last ``delta`` retained entries with stamps — O(delta),
        unlike ``stamped()[-delta:]``, which materialized the whole log
        on every per-request delta ship."""
        if delta <= 0:
            return []
        return list(zip(self.stamps[-delta:], self[-delta:]))

    def sorted_stamped(self) -> list[tuple[tuple[int, int, int], object]]:
        """Stamp-sorted retained entries, cached until the next mutation.

        :meth:`merge` used to re-sort every input log on every call —
        O(n log n) per merge even when nothing changed between merges.
        The sorted view is computed at most once per mutation epoch and
        shared by every merge that reads it."""
        cached = self._sorted
        if cached is None:
            cached = self.stamped()
            cached.sort(key=_stamp_key)
            self.sort_count += 1
            self._sorted = cached
        return cached

    @classmethod
    def merge(cls, logs: "list[TrafficLog]", cap: int = DEFAULT_TRAFFIC_LOG_CAP) -> "TrafficLog":
        """Deterministically merge per-worker logs.

        Canonical order: by (global stamp, worker_id, local sequence).
        The result is independent of the order ``logs`` are given in and
        of how requests interleaved across workers in wall-clock time —
        two runs of the same routed trace merge identically.  Inputs are
        consumed through their cached sorted views, so repeated merges of
        unchanged logs do no sorting at all — just an O(total) heap merge
        (ties resolved toward earlier inputs, exactly like the stable
        concatenate-and-sort this replaces)."""
        merged = cls(cap=cap)
        for _, payload in heapq.merge(
            *(log.sorted_stamped() for log in logs), key=_stamp_key
        ):
            merged.append(payload)
        # The merged view reports the union totals, not its own appends
        # (retention trimming on the inputs must not change the totals).
        merged.total_messages = sum(log.total_messages for log in logs)
        merged.total_bytes = sum(log.total_bytes for log in logs)
        return merged


class Socket:
    """A connected or listening socket endpoint."""

    def __init__(self, labels: LabelPair = LabelPair.EMPTY) -> None:
        self.inode = Inode(InodeType.SOCKET, labels)
        self.inode.socket = self  # type: ignore[attr-defined]
        self.peer: Optional["Socket"] = None
        self.rx: deque[bytes] = deque()
        #: Receive-side event counter: bumped by every send attempt toward
        #: this endpoint (delivered or silently dropped) and by close.
        self.version = 0
        self.closed = False

    def connect(self, other: "Socket") -> None:
        self.peer = other
        other.peer = self

    def send(self, task: "Task", data, lsm: "SecurityModule") -> int:
        """Send on a connected socket.  Unlike pipes, sockets report label
        denials as errors (the LSM raises) because both endpoints are
        labeled objects the sender already knows about."""
        lsm.socket_sendmsg(task, self.inode)
        if self.peer is None:
            raise SyscallError(EPIPE, "socket not connected")
        # Delivery into the peer is a flow from this socket to the peer
        # socket's label; mismatched endpoint labels drop silently, like
        # pipes, to avoid signaling.  The peer's version bumps either way
        # so blocked receivers wake on activity, never on verdicts.
        from ..core import can_flow

        self.peer.version += 1
        if not self.peer.closed and can_flow(self.inode.labels, self.peer.inode.labels):
            self.peer.rx.append(freeze(data))
        return len(data)

    def recv(self, task: "Task", lsm: "SecurityModule") -> bytes:
        lsm.socket_recvmsg(task, self.inode)
        if not self.rx:
            return b""
        return self.rx.popleft()

    def close(self) -> None:
        """Hang up this endpoint.  Both sides' blocked receivers wake: the
        closer stops receiving, the peer sees the connection end."""
        self.closed = True
        self.version += 1
        if self.peer is not None:
            self.peer.version += 1

    @property
    def hungup(self) -> bool:
        """True when no further delivery into ``rx`` is possible."""
        return self.closed or (self.peer is not None and self.peer.closed)


class Network:
    """The world outside the machine: an unlabeled sink/source.

    ``transmit`` is what the paper's examples mean by "broadcast on the
    network": writing to the empty label.  The traffic log lets tests and
    benchmarks assert that secret bytes never escaped; it is capped (with
    exact running totals) so long benchmark runs stay O(1) memory.
    """

    def __init__(self) -> None:
        self.inode = Inode(InodeType.DEVICE, LabelPair.EMPTY)
        self.transmitted: TrafficLog = TrafficLog()
        self._hosts: dict[str, deque[bytes]] = {}

    def transmit(self, task: "Task", data, lsm: "SecurityModule") -> int:
        """Send to an external host — a flow to the empty label."""
        lsm.socket_sendmsg(task, self.inode)
        self.transmitted.append(freeze(data))
        return len(data)

    def deliver_external(self, host: str, data) -> None:
        """Queue inbound traffic from an (unlabeled, low-integrity) host."""
        self._hosts.setdefault(host, deque()).append(freeze(data))

    def receive(self, task: "Task", host: str, lsm: "SecurityModule") -> bytes:
        """Receive from an external host — a flow from the empty label, so a
        task holding any integrity label must first drop it (no read down)."""
        lsm.socket_recvmsg(task, self.inode)
        queue = self._hosts.get(host)
        if not queue:
            raise SyscallError(ENOENT, f"no data from {host}")
        return queue.popleft()
