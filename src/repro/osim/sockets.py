"""Sockets and the unlabeled network device.

The paper's motivating guarantee: a thread tainted with a secrecy tag can
no longer write to an unlabeled output "such as standard output or the
network".  The simulated network therefore consists of:

* :class:`Socket` — a labeled endpoint (a socket inode).  Like files,
  sockets take the label of their creating thread unless created inside a
  labeled security region.
* :class:`Network` — the unlabeled outside world.  Sending to a remote host
  is a flow from the task to an empty-labeled destination, so any secrecy
  taint blocks it (unless declassified first).

Loopback connections between two labeled sockets model trusted channels
between labeled threads of different processes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..core import LabelPair
from .filesystem import Inode, InodeType
from .task import ENOENT, EPIPE, SyscallError

if TYPE_CHECKING:
    from .lsm import SecurityModule
    from .task import Task


class Socket:
    """A connected or listening socket endpoint."""

    def __init__(self, labels: LabelPair = LabelPair.EMPTY) -> None:
        self.inode = Inode(InodeType.SOCKET, labels)
        self.inode.socket = self  # type: ignore[attr-defined]
        self.peer: Optional["Socket"] = None
        self.rx: deque[bytes] = deque()

    def connect(self, other: "Socket") -> None:
        self.peer = other
        other.peer = self

    def send(self, task: "Task", data: bytes, lsm: "SecurityModule") -> int:
        """Send on a connected socket.  Unlike pipes, sockets report label
        denials as errors (the LSM raises) because both endpoints are
        labeled objects the sender already knows about."""
        lsm.socket_sendmsg(task, self.inode)
        if self.peer is None:
            raise SyscallError(EPIPE, "socket not connected")
        # Delivery into the peer is a flow from this socket to the peer
        # socket's label; mismatched endpoint labels drop silently, like
        # pipes, to avoid signaling.
        from ..core import can_flow

        if can_flow(self.inode.labels, self.peer.inode.labels):
            self.peer.rx.append(bytes(data))
        return len(data)

    def recv(self, task: "Task", lsm: "SecurityModule") -> bytes:
        lsm.socket_recvmsg(task, self.inode)
        if not self.rx:
            return b""
        return self.rx.popleft()


class Network:
    """The world outside the machine: an unlabeled sink/source.

    ``transmit`` is what the paper's examples mean by "broadcast on the
    network": writing to the empty label.  The traffic log lets tests and
    benchmarks assert that secret bytes never escaped.
    """

    def __init__(self) -> None:
        self.inode = Inode(InodeType.DEVICE, LabelPair.EMPTY)
        self.transmitted: list[bytes] = []
        self._hosts: dict[str, deque[bytes]] = {}

    def transmit(self, task: "Task", data: bytes, lsm: "SecurityModule") -> int:
        """Send to an external host — a flow to the empty label."""
        lsm.socket_sendmsg(task, self.inode)
        self.transmitted.append(bytes(data))
        return len(data)

    def deliver_external(self, host: str, data: bytes) -> None:
        """Queue inbound traffic from an (unlabeled, low-integrity) host."""
        self._hosts.setdefault(host, deque()).append(bytes(data))

    def receive(self, task: "Task", host: str, lsm: "SecurityModule") -> bytes:
        """Receive from an external host — a flow from the empty label, so a
        task holding any integrity label must first drop it (no read down)."""
        lsm.socket_recvmsg(task, self.inode)
        queue = self._hosts.get(host)
        if not queue:
            raise SyscallError(ENOENT, f"no data from {host}")
        return queue.popleft()
