"""Kernel tasks: the OS-side representation of principals.

In Laminar the principals are kernel threads; labels and capabilities are
stored in the opaque ``security`` field of ``task_struct`` (Section 5.2).
:class:`Task` mirrors that: it owns a :class:`~repro.core.Principal` (the
security field), a file-descriptor table, a working directory, and the
usual parent/child bookkeeping that ``fork`` maintains.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from ..core import CapabilitySet, LabelPair, Principal

if TYPE_CHECKING:
    from .filesystem import File, Inode


class Task:
    """One kernel thread.

    Tasks are created through :meth:`repro.osim.kernel.Kernel.spawn_task`
    (the boot/init path) or :meth:`repro.osim.kernel.Kernel.sys_fork`; the
    constructor itself performs no security checks.
    """

    def __init__(
        self,
        tid: int,
        name: str = "",
        user: str = "root",
        parent: Optional["Task"] = None,
        labels: LabelPair = LabelPair.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
    ) -> None:
        self.tid = tid
        self.name = name or f"task{tid}"
        self.user = user
        self.parent = parent
        #: Process group: tasks sharing a pgid share an address space.  The
        #: kernel assigns it in spawn_task/sys_fork/sys_spawn_thread.
        self.pgid: int = 0
        #: The LSM ``security`` field: labels + capabilities.
        self.security = Principal(self.name, labels, caps)
        self.alive = True
        self.exit_code: int | None = None
        #: fd -> open file description
        self.fd_table: dict[int, "File"] = {}
        self._next_fd = 3  # 0,1,2 notionally reserved for stdio
        #: Min-heap of closed descriptor numbers below ``_next_fd``.
        #: POSIX requires open() to return the lowest available fd;
        #: popping the heap gives that in O(log n) instead of scanning.
        self._free_fds: list[int] = []
        self.cwd: Optional["Inode"] = None
        #: Signals delivered and not yet consumed, as (signum, sender_tid).
        self.pending_signals: list[tuple[int, int]] = []
        #: Children created by fork, for wait/bookkeeping.
        self.children: list["Task"] = []

    # -- convenience accessors over the security field ---------------------

    @property
    def labels(self) -> LabelPair:
        return self.security.labels

    @property
    def capabilities(self) -> CapabilitySet:
        return self.security.capabilities

    # -- fd table -----------------------------------------------------------

    def install_fd(self, file: "File") -> int:
        if self._free_fds:
            fd = heapq.heappop(self._free_fds)
        else:
            fd = self._next_fd
            self._next_fd += 1
        self.fd_table[fd] = file
        file.refs += 1
        return fd

    def lookup_fd(self, fd: int) -> "File":
        try:
            return self.fd_table[fd]
        except KeyError:
            raise SyscallError(EBADF, f"bad file descriptor {fd}") from None

    def remove_fd(self, fd: int) -> "File":
        try:
            file = self.fd_table.pop(fd)
        except KeyError:
            raise SyscallError(EBADF, f"bad file descriptor {fd}") from None
        heapq.heappush(self._free_fds, fd)
        file.refs -= 1
        return file

    def __repr__(self) -> str:
        return f"Task(tid={self.tid}, name={self.name!r}, labels={self.labels!r})"


# -- errno-style error surface ----------------------------------------------

EPERM = 1
ENOENT = 2
EIO = 5
EBADF = 9
EACCES = 13
EEXIST = 17
ENOSPC = 28
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
EPIPE = 32
ENOTEMPTY = 39
ESRCH = 3
EAGAIN = 11

_ERRNO_NAMES = {
    EPERM: "EPERM",
    ENOENT: "ENOENT",
    EIO: "EIO",
    EBADF: "EBADF",
    EACCES: "EACCES",
    EEXIST: "EEXIST",
    ENOSPC: "ENOSPC",
    ENOTDIR: "ENOTDIR",
    EISDIR: "EISDIR",
    EINVAL: "EINVAL",
    EPIPE: "EPIPE",
    ENOTEMPTY: "ENOTEMPTY",
    ESRCH: "ESRCH",
    EAGAIN: "EAGAIN",
}


class SyscallError(Exception):
    """A system call failed with an errno, like a negative return in C.

    DIFC denials surface as ``EACCES``/``EPERM`` — except on pipes, where the
    paper mandates *silent drops* because an error code would itself leak.
    """

    def __init__(self, errno: int, message: str = "") -> None:
        self.errno = errno
        name = _ERRNO_NAMES.get(errno, str(errno))
        super().__init__(f"[{name}] {message}" if message else f"[{name}]")
