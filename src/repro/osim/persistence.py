"""Persistent capabilities and login (Section 4.4).

"The OS stores the persistent capabilities for each user in a file.  On
login, the OS gives the login shell all of the user's persistent
capabilities, just as it gives the shell access to the controlling
terminal."

The store lives at ``/etc/laminar/caps/<user>`` inside the simulated
filesystem, written with administrator integrity.  The wire format is nine
bytes per capability: 8 bytes of big-endian tag value + one kind byte
(``+`` or ``-``), so the file round-trips through
:meth:`~repro.osim.filesystem.Filesystem.remount` like any other data.

Revocation has no special mechanism ("Laminar does not innovate any
solutions"): to revoke, allocate a new tag and relabel the data; see
:func:`revoke_by_relabel`, which packages that idiom.
"""

from __future__ import annotations

from ..core import Capability, CapabilitySet, CapType, Label, LabelPair, Tag
from .filesystem import File, Inode, InodeType, OpenMode
from .kernel import Kernel
from .task import ENOENT, SyscallError, Task

_KIND_BYTES = {CapType.PLUS: b"+", CapType.MINUS: b"-"}
_BYTE_KINDS = {b"+": CapType.PLUS, b"-": CapType.MINUS}


def encode_capabilities(caps: CapabilitySet) -> bytes:
    """Serialize a capability set (9 bytes per capability, sorted)."""
    chunks = []
    for cap in caps:
        chunks.append(cap.tag.value.to_bytes(8, "big") + _KIND_BYTES[cap.kind])
    return b"".join(chunks)


def decode_capabilities(blob: bytes, kernel: Kernel) -> CapabilitySet:
    """Inverse of :func:`encode_capabilities`."""
    if len(blob) % 9:
        raise ValueError("corrupt capability file")
    caps = []
    for offset in range(0, len(blob), 9):
        value = int.from_bytes(blob[offset : offset + 8], "big")
        kind = _BYTE_KINDS[blob[offset + 8 : offset + 9]]
        tag = kernel.tags.lookup(value) or Tag(value)
        caps.append(Capability(tag, kind))
    return CapabilitySet(caps)


def _caps_dir(kernel: Kernel) -> Inode:
    return (
        kernel.fs.root.children["etc"].children["laminar"].children["caps"]
    )


def store_user_capabilities(kernel: Kernel, user: str, caps: CapabilitySet) -> None:
    """Write (or overwrite) a user's persistent capability file.  This is an
    administrative operation performed by the trusted store, so it writes
    through the filesystem directly rather than through a task's syscalls.

    The update is journaled (op ``capwrite``, full pre/post images) and the
    blob goes to disk in capability-sized chunks through the
    ``caps.block_write`` fault site, so a crash mid-write can leave a torn
    file — which recovery then rolls back or replays, and which ``login``
    quarantines if it ever surfaces anyway."""
    fs = kernel.fs
    directory = _caps_dir(kernel)
    blob = encode_capabilities(caps)
    if fs.faults is None:
        inode = directory.children.get(user)
        if inode is None:
            inode = Inode(InodeType.REGULAR, directory.labels, mode=0o600)
            fs.link_child(directory, user, inode)
        inode.data[:] = blob
        return
    kernel._fault_gate("journal.append")  # before any mutation: clean no-op
    inode = directory.children.get(user)
    created = False
    if inode is None:
        inode = Inode(InodeType.REGULAR, directory.labels, mode=0o600)
        fs.link_child(directory, user, inode)
        created = True
    old = None if created else bytes(inode.data)
    rec = fs.journal.begin("capwrite", ino=inode.ino, user=user, old=old, new=blob)

    def _store(value: bytes) -> None:
        inode.data[:] = value

    try:
        fs.blob_write(_store, blob, "caps.block_write", old=old or b"", block=9)
    except SyscallError:
        # Detected failure: restore the pre-state inline and abort.
        if created:
            directory.children.pop(user, None)
        else:
            inode.data[:] = old
        fs.journal.abort(rec)
        raise
    fs.journal.commit(rec)


def load_user_capabilities(kernel: Kernel, user: str) -> CapabilitySet:
    directory = _caps_dir(kernel)
    inode = directory.children.get(user)
    if inode is None:
        raise SyscallError(ENOENT, f"no capability file for {user}")
    file = File(inode, OpenMode.READ)
    return decode_capabilities(bytes(kernel.fs.read(file)), kernel)


def login(kernel: Kernel, user: str) -> Task:
    """Create a login shell holding all of the user's persistent
    capabilities.  Unknown users get an empty capability set (they can still
    run unlabeled programs).

    A capability file that fails to *parse* (truncated, torn — anything
    :func:`decode_capabilities` rejects) is quarantined: renamed to
    ``<user>.corrupt`` with administrator integrity and audited, and the
    login proceeds with empty persistent capabilities.  Failing closed
    (empty caps) is the only safe direction — guessing capabilities from a
    torn file could grant privilege the user never had."""
    try:
        caps = load_user_capabilities(kernel, user)
    except SyscallError:
        caps = CapabilitySet.EMPTY
    except ValueError:
        from .recovery import quarantine_capability_file

        quarantine_capability_file(kernel, user)
        caps = CapabilitySet.EMPTY
    return kernel.spawn_task(f"{user}-shell", user=user, caps=caps)


def grant_persistent(kernel: Kernel, user: str, caps: CapabilitySet) -> None:
    """Add capabilities to a user's persistent store (union with existing)."""
    try:
        existing = load_user_capabilities(kernel, user)
    except SyscallError:
        existing = CapabilitySet.EMPTY
    store_user_capabilities(kernel, user, existing.union(caps))


def revoke_by_relabel(
    kernel: Kernel,
    owner: Task,
    path: str,
    old_tag: Tag,
) -> Tag:
    """The paper's revocation idiom: allocate a new tag, relabel the data.

    The owner must hold both capabilities for the old tag (it needs ``-`` to
    read/declassify its own file and ``+`` to have labeled it).  Returns the
    new tag, whose capabilities the owner can now share selectively; holders
    of the *old* capability lose access because the data no longer carries
    the old tag.
    """
    owner.security.require_capability(old_tag, CapType.BOTH)
    new_tag, _ = kernel.sys_alloc_tag(owner, name=f"{old_tag}'")
    inode = kernel.fs.resolve(path, owner.cwd)
    secrecy = inode.labels.secrecy.without_tag(old_tag).with_tag(new_tag)
    # Journaled relabel: a crash mid-revocation must never leave the data
    # readable under the revoked tag *and* unreadable under the new one —
    # recovery lands on exactly the old or exactly the new label.
    kernel.fs.set_labels(inode, LabelPair(secrecy, inode.labels.integrity))
    return new_tag
