"""Deterministic fault injection for the simulated OS.

The paper's OS layer persists labels in extended attributes and per-user
capabilities in files (Sections 4.4 and 5.2), which means a *crash* is a
security event: a torn xattr write, a truncated capability file, or an
interrupted relabel could resurrect labeled data under a weaker label.
This module is the control plane for exercising exactly those windows.

Design goals, in order:

* **Deterministic.**  A fault is addressed by ``(site, occurrence)``:
  the *n*-th time execution crosses a named injection site.  Re-running
  the same workload with the same :class:`FaultPlan` fires the same
  fault at the same machine state, which is what makes the crash-point
  sweep in ``tests/test_crash_consistency.py`` exhaustive and what makes
  a nightly CI failure replayable from its seed (``lamc fsck --seed N``).
* **Zero-cost when disabled.**  The kernel and filesystem hold a
  ``faults`` attribute that is ``None`` by default; every hot path
  guards its injection with one attribute load and a ``None`` test.  No
  plan object, no site bookkeeping, no per-block write loop exists
  unless a plan is installed (asserted by the < 5 % regression bound on
  ``BENCH_os_throughput.json``).
* **Recording is the inverse of injection.**  A plan created with
  ``record=True`` fires nothing and logs every ``(site, occurrence)``
  crossing; the sweep harness runs the workload once in recording mode
  to enumerate the crash points it will then visit one by one.

Sites (the strings passed to :meth:`FaultPlan.fire`):

=====================  ====================================================
``syscall:<name>``      kernel syscall entry (``Kernel._count``)
``submit.boundary``     between entries of a ``sys_submit`` batch
``fs.block_write``      each simulated block of a file data write
``xattr.write``         each label xattr written by a journaled relabel
``caps.block_write``    each chunk of a capability-store file write
``journal.append``      immediately before a journal record is appended
``create.link``         between journal-begin and commit of a creation
=====================  ====================================================
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from typing import Iterable, Optional, Sequence


class FaultKind(enum.Enum):
    """What happens when a rule fires."""

    #: Power failure: volatile state is lost, disk keeps whatever the
    #: site had written so far.  Raised as :class:`KernelCrash`.
    CRASH = "crash"
    #: The operation fails with ``EIO`` before mutating anything.
    EIO = "eio"
    #: The operation fails with ``ENOSPC`` before mutating anything.
    ENOSPC = "enospc"
    #: A prefix of the data reaches the disk, then the operation fails
    #: with ``EIO`` (detected short write — the caller must roll back).
    SHORT_WRITE = "short-write"
    #: A non-prefix subset of the blocks reaches the disk, then the
    #: machine crashes — the multi-block torn-write case journaling
    #: exists to survive.
    TORN_WRITE = "torn-write"


class KernelCrash(Exception):
    """The simulated machine lost power at an injection site.

    Deliberately *not* a :class:`~repro.osim.task.SyscallError`: no
    syscall returns this, nothing in the kernel catches it, and the
    scheduler lets it propagate.  The test harness catches it, calls
    :meth:`Kernel.crash` to discard volatile state, and then
    :meth:`Kernel.remount` to run journal recovery.
    """

    def __init__(self, site: str, occurrence: int) -> None:
        self.site = site
        self.occurrence = occurrence
        super().__init__(f"simulated crash at {site}#{occurrence}")


class FaultRule:
    """One trigger: fire ``kind`` at a ``(site, occurrence)`` point.

    ``nth`` fires once, at exactly the *nth* crossing of ``site``;
    ``every`` fires repeatedly, at every multiple (the degraded-mode
    throughput workload uses this for a steady background EIO rate).
    ``site`` may end with ``*`` to prefix-match (``"syscall:*"``).
    """

    __slots__ = ("site", "kind", "nth", "every", "fired")

    def __init__(
        self,
        site: str,
        kind: FaultKind,
        nth: Optional[int] = None,
        every: Optional[int] = None,
    ) -> None:
        if (nth is None) == (every is None):
            raise ValueError("exactly one of nth/every must be given")
        self.site = site
        self.kind = kind
        self.nth = nth
        self.every = every
        self.fired = False

    def _matches_site(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def matches(self, site: str, occurrence: int) -> bool:
        if not self._matches_site(site):
            return False
        if self.nth is not None:
            return not self.fired and occurrence == self.nth
        return occurrence % self.every == 0

    def __repr__(self) -> str:
        when = f"nth={self.nth}" if self.nth is not None else f"every={self.every}"
        return f"FaultRule({self.site!r}, {self.kind.value}, {when})"


class FaultPlan:
    """A deterministic schedule of faults, shared by kernel + filesystem.

    The plan owns the per-site occurrence counters, so a single plan
    installed on one kernel sees a single global numbering of crossings
    — the same numbering a recording run produces.
    """

    def __init__(
        self, rules: Iterable[FaultRule] = (), record: bool = False
    ) -> None:
        self.rules = list(rules)
        #: site -> crossings so far.
        self.counts: Counter[str] = Counter()
        #: every (site, occurrence, kind) that actually fired.
        self.fired: list[tuple[str, int, FaultKind]] = []
        #: every (site, occurrence) crossing, kept only when recording.
        self.trace: list[tuple[str, int]] = [] if record else None
        self.record = record
        #: optional audit sink; installed by :meth:`Kernel.install_faults`
        #: so injections leave a TCB-visible record.
        self.audit = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def crash_at(cls, site: str, nth: int) -> "FaultPlan":
        """The sweep harness's unit: one crash at one point."""
        return cls([FaultRule(site, FaultKind.CRASH, nth=nth)])

    @classmethod
    def randomized(
        cls,
        seed: int,
        points: Sequence[tuple[str, int]],
        count: int,
        kinds: Sequence[FaultKind] = (
            FaultKind.CRASH,
            FaultKind.TORN_WRITE,
            FaultKind.SHORT_WRITE,
            FaultKind.EIO,
            FaultKind.ENOSPC,
        ),
    ) -> list["FaultPlan"]:
        """Derive ``count`` single-fault plans from a seed and a recorded
        crossing trace.  The selection is a pure function of ``seed``, so
        a failing nightly run is replayed by its printed seed alone."""
        rng = random.Random(seed)
        plans = []
        for _ in range(count):
            site, nth = points[rng.randrange(len(points))]
            kind = kinds[rng.randrange(len(kinds))]
            plans.append(cls([FaultRule(site, kind, nth=nth)]))
        return plans

    # -- the injection point --------------------------------------------------

    def fire(self, site: str) -> Optional[FaultKind]:
        """Record a crossing of ``site``; return the kind to inject (or
        ``None``).  Callers interpret the kind — only :data:`CRASH` has a
        uniform contract (raise :class:`KernelCrash` after applying
        whatever partial disk state the site models)."""
        n = self.counts[site] + 1
        self.counts[site] = n
        if self.trace is not None:
            self.trace.append((site, n))
        for rule in self.rules:
            if rule.matches(site, n):
                rule.fired = True
                self.fired.append((site, n, rule.kind))
                if self.audit is not None:
                    from ..core.audit import AuditKind

                    self.audit.record(
                        AuditKind.FAULT,
                        "faults",
                        site,
                        f"injected {rule.kind.value} at {site}#{n}",
                    )
                return rule.kind
        return None

    def crash(self, site: str, occurrence: Optional[int] = None) -> None:
        """Raise the crash for ``site`` (helper for injection sites)."""
        raise KernelCrash(site, occurrence or self.counts[site])

    # -- introspection --------------------------------------------------------

    @property
    def sites_seen(self) -> set[str]:
        return set(self.counts)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(rules={self.rules!r}, fired={len(self.fired)}, "
            f"record={self.record})"
        )
