"""The simulated kernel: tasks, system calls, and LSM mediation.

This module stands in for Linux 2.6.22 plus the ~500 lines of kernel
modifications the paper adds for its new system calls (Fig. 3).  The design
keeps Linux's layering: syscalls do the VFS/task work and call fixed LSM
hook points; the installed :class:`~repro.osim.lsm.SecurityModule` decides.
Swapping in the :class:`~repro.osim.lsm.NullSecurityModule` yields the
vanilla-Linux baseline used to normalize Table 2.

System-call surface
-------------------
Laminar's calls (Fig. 3): ``alloc_tag``, ``set_task_label``,
``drop_label_tcb``, ``drop_capabilities``, ``write_capability`` (+ its
receive side), ``create_file_labeled``, ``mkdir_labeled``.

POSIX subset used by lmbench and the applications: ``open``, ``read``,
``write``, ``close``, ``stat``, ``creat``, ``unlink``, ``mkdir``, ``fork``,
``spawn_thread``, ``exec``, ``exit``, ``kill``, ``pipe``, ``socket`` /
``connect`` / ``send`` / ``recv``, ``mmap`` + simulated protection faults.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterable, Optional, Sequence

from ..core import (
    AuditLog,
    CapabilitySet,
    Capability,
    Label,
    LabelPair,
    LabelType,
    Tag,
    TagAllocator,
    check_label_change,
)
from ..core import fastpath
from ..core.fastpath import counters as _fp_counters
from .faults import FaultKind, FaultPlan, KernelCrash
from .filesystem import (
    File,
    Filesystem,
    Inode,
    InodeType,
    OpenMode,
)
from .hookchain import HookChainEngine
from .lsm import LaminarSecurityModule, Mask, SecurityModule, chain_bakeable_hooks
from .pipes import Pipe
from .sockets import Network, Socket
from .task import (
    EBADF,
    EINVAL,
    EIO,
    ENOENT,
    ENOSPC,
    EPERM,
    ESRCH,
    SyscallError,
    Task,
)

#: Well-known tag value for the special ``tcb`` integrity tag (Section 4.4).
TCB_TAG = Tag(0, "tcb")


class Mapping:
    """A simulated memory mapping, for the lmbench mmap / prot-fault rows."""

    def __init__(self, file: File, mask: Mask) -> None:
        self.file = file
        self.mask = mask
        self.valid = True


class Sqe:
    """One submission-queue entry for :meth:`Kernel.sys_submit`
    (io_uring-style): an opcode naming a ``sys_`` call plus its
    positional arguments, e.g. ``Sqe("read", fd, 64)``."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, *args: object) -> None:
        self.op = op
        self.args = args

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Sqe)
            and self.op == other.op
            and self.args == other.args
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"Sqe({self.op!r}{', ' if inner else ''}{inner})"

    def __reduce__(self):
        # Constructor-based: slots have no __dict__ for default pickling,
        # and re-entering __init__ lets label arguments re-intern on the
        # receiving side (the cluster RPC framing pickles whole batches).
        return (Sqe, (self.op, *self.args))


class Cqe:
    """One completion-queue entry: the opcode it answers, the result (or
    ``None``), and the errno (0 on success).  A failing entry does not
    abort the rest of the batch — exactly io_uring's contract."""

    __slots__ = ("op", "result", "errno")

    def __init__(self, op: str, result: object, errno: int = 0) -> None:
        self.op = op
        self.result = result
        self.errno = errno

    @property
    def ok(self) -> bool:
        return self.errno == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cqe)
            and self.op == other.op
            and self.result == other.result
            and self.errno == other.errno
        )

    def __repr__(self) -> str:
        return f"Cqe({self.op!r}, {self.result!r}, errno={self.errno})"

    def __reduce__(self):
        return (Cqe, (self.op, self.result, self.errno))


class Kernel:
    """One booted machine image.

    Base costs: a real kernel's syscalls do vastly different amounts of
    non-security work (lmbench: null I/O 0.13 µs, stat 0.92 µs, fork 96 µs,
    exec 300 µs, mmap 6877 µs on the paper's testbed).  The simulator's
    Python bodies are nearly uniform, which would make the security module's
    fixed per-check cost look enormous on heavy calls and mild on light ones
    — the opposite of Table 2.  ``SYSCALL_WORK`` therefore charges each
    syscall a base amount of simulated kernel work (plain loop iterations)
    roughly proportional to the real cost ratios, scaled down to keep the
    suite fast.  Both security modules pay it identically; only the hook
    cost differs between vanilla and Laminar kernels.
    """

    #: Simulated base work per syscall, in loop iterations (~25 ns each).
    SYSCALL_WORK = {
        "read": 160,
        "write": 160,
        "open": 1200,
        "stat": 4000,
        "creat": 8000,
        "create_file_labeled": 8000,
        "mkdir": 8000,
        "mkdir_labeled": 8000,
        "unlink": 3500,
        "close": 80,
        "fork": 60000,
        "spawn_thread": 8000,
        "exec": 120000,
        "exit": 2000,
        "kill": 800,
        "pipe": 2000,
        "mmap": 100000,
        "prot_fault": 800,
        "chdir": 1200,
        "socket": 2000,
        "send": 400,
        "recv": 400,
        "transmit": 400,
        "readv": 160,
        "writev": 160,
        "submit": 100,
        "lseek": 120,
    }

    #: The user→kernel crossing share of each syscall's ``SYSCALL_WORK``
    #: (trap, register save/restore, entry/exit bookkeeping).  Batched
    #: submission (:meth:`sys_submit`) pays it **once per batch** instead
    #: of once per call — the io_uring argument: for 1-byte I/O the
    #: crossing dominates, which is also why Table 2's null-I/O row is the
    #: paper's outlier.  Single calls are unaffected: ``SYSCALL_WORK``
    #: already includes this share.
    SYSCALL_ENTRY_WORK = 100

    #: Extra simulated work per additional iovec segment in readv/writev.
    VECTOR_SEGMENT_WORK = 40

    def __init__(
        self,
        security: Optional[SecurityModule] = None,
        *,
        shard_id: int = 0,
    ) -> None:
        self.security = security if security is not None else LaminarSecurityModule()
        #: Which cluster shard this kernel is (0 for a standalone machine).
        #: Baked into every persistent submit-memo key so a verdict proved
        #: on one shard can never be replayed on another (see
        #: :meth:`sys_submit` and repro.osim.cluster).
        self.shard_id = shard_id
        #: Replication clock: the newest cluster replication event this
        #: kernel has applied (epoch-stamped invalidation — stale events
        #: are rejected).  0 means "never replicated".
        self.replication_epoch = 0
        #: fd/capability-store epoch: bumped whenever replication lands
        #: (capability stores, principal labels, or the tag namespace may
        #: have changed under running tasks).  Persistent permission memos
        #: key on it, so a memo recorded before a replication event is
        #: unreachable after it.
        self.fd_epoch = 0
        #: Simulated-work accounting mode.  ``False`` (default): syscalls
        #: burn their ``SYSCALL_WORK`` busy loops inline, exactly as
        #: before.  ``True``: the iterations are *accumulated* into
        #: ``deferred_work`` instead, and the execution driver pays them
        #: as wall-clock waits (the cluster worker sleeps them off after
        #: each request).  On a host with fewer cores than shards this is
        #: what lets multiprocessing workers overlap service time the way
        #: distinct machines would; observables are unaffected — only
        #: *when* the simulated work is paid changes.
        self.defer_work = False
        self.deferred_work = 0
        self.tags = TagAllocator(first=1)
        self.fs = Filesystem()
        #: Fault-injection plan (``repro.osim.faults``); ``None`` keeps
        #: every syscall on the unfaulted fast path — one attribute load
        #: and a ``None`` test is the entire disabled-mode cost.
        self.faults: Optional[FaultPlan] = None
        self.net = Network()
        # The network device inode joins the per-filesystem ino namespace:
        # anonymous inodes normally draw from a process-global counter, but
        # this one appears in audit details (denied transmits), which must
        # be byte-identical across shard boots and single-kernel replays.
        self.fs.adopt_inode(self.net.inode)
        self.tasks: dict[int, Task] = {}
        self._tid_counter = itertools.count(1)
        self._pgid_counter = itertools.count(1)
        self.syscall_counts: Counter[str] = Counter()
        #: Machine-wide audit log (TCB-internal; see repro.core.audit).
        self.audit = AuditLog()
        #: Path-walk verdict cache: (tid, label epoch, start, dirname) ->
        #: (namespace generation, hook count, ((inode, labels), ...)).
        #: Successful prefix walks only; see :meth:`_walk_checked`.
        self._walk_cache: dict[tuple, tuple] = {}
        #: Bumped on any event that can change what a path walk traverses
        #: or decides: unlink, mkdir, labeled creation of a directory, and
        #: security-module swap.  (Task label changes are covered by the
        #: per-task label epoch in the cache key; direct inode relabels by
        #: the per-entry label-identity revalidation.)
        self._walk_gen = 0
        #: Persistent success-only permission memo for :meth:`sys_submit`,
        #: surviving across batches: (shard_id, fd_epoch, tid, label_epoch,
        #: inode, write?) -> the inode's LabelPair identity at proof time.
        #: Hits replay the hook count; denials are never memoized; entries
        #: are revalidated against the inode's current label identity; and
        #: the shard/fd-epoch key components make memos unreplayable across
        #: shards or across capability-store replication events.
        self._submit_memo: dict[tuple, LabelPair] = {}
        #: Bumped on every security-module (re)install; the hook-chain
        #: engine compares it lazily, so a policy swap retires every
        #: baked chain without the kernel walking the engine's tables.
        self.policy_epoch = 0
        self._refresh_security_module()
        #: Tier-2 for the OS: hot (walk prefix, permission hook) chains
        #: baked into closures (:mod:`repro.osim.hookchain`).
        self.hookchain = HookChainEngine(self)
        #: Per-opcode batch work: SYSCALL_WORK minus the amortized entry
        #: share (floor 0 — close, for one, is mostly crossing cost).
        self._batch_work = {
            name: max(0, work - self.SYSCALL_ENTRY_WORK)
            for name, work in self.SYSCALL_WORK.items()
        }
        #: op -> bound sys_* method, for batch entries outside the inlined
        #: read/write fast path.  These run their full bodies (including
        #: their own ``_count``), so equivalence with sequential issue is
        #: by construction; only read/write shave the entry share.
        self._submit_generic = {
            op: getattr(self, f"sys_{op}") for op in self.SUBMIT_GENERIC_OPS
        }
        self._install_base_tree()

    def set_security_module(self, security: SecurityModule) -> None:
        """Swap the installed security module (benchmark arms do this to
        compare vanilla vs Laminar on one booted image).  Flushes the
        path-walk cache: cached verdicts belong to the old module."""
        self.security = security
        self._refresh_security_module()

    def _refresh_security_module(self) -> None:
        self.security.audit = self.audit
        self._walk_gen += 1
        self._walk_cache.clear()
        self._submit_memo.clear()
        self.policy_epoch += 1
        #: Hooks of this module safe to replay from baked chains (pure
        #: functions of interned labels); see repro.osim.hookchain.
        self._chain_hooks = chain_bakeable_hooks(self.security)
        # The walk cache replays a module's *decision* without re-running
        # its hook body, which is only sound for hook implementations
        # known to be pure functions of (task labels, inode labels).  A
        # subclass with its own inode_permission opts out automatically.
        impl = type(self.security).inode_permission
        self._walk_cacheable = impl in (
            SecurityModule.inode_permission,
            LaminarSecurityModule.inode_permission,
        )
        # Same purity requirement for the persistent submit memo, which
        # replays file_permission verdicts across batches.
        fimpl = type(self.security).file_permission
        self._perm_memo_ok = fimpl in (
            SecurityModule.file_permission,
            LaminarSecurityModule.file_permission,
        )

    # ------------------------------------------------------------------ boot

    def _install_base_tree(self) -> None:
        """Install-time layout (Section 5.2): system directories carry the
        administrator integrity label; /dev gets the null/zero devices; the
        persistent capability store lives under /etc/laminar."""
        self.admin_integrity = self.tags.alloc("sysadmin")
        #: Recovery's fiat most-restrictive tag: assigned to inodes whose
        #: persisted labels cannot be decoded after a crash.  Nobody is
        #: ever granted its capabilities, so quarantined data is readable
        #: by no principal (see repro.osim.recovery).
        self.quarantine_tag = self.tags.alloc("quarantine")
        admin = LabelPair(Label.EMPTY, Label.of(self.admin_integrity))
        self.fs.link_child(
            self.fs.root,
            "lost+found",
            Inode(InodeType.DIRECTORY, admin, mode=0o700),
        )
        for path in ("etc", "home", "dev", "tmp"):
            inode = Inode(InodeType.DIRECTORY, admin if path != "tmp" else LabelPair.EMPTY, mode=0o755)
            self.fs.link_child(self.fs.root, path, inode)
        self.fs.root.labels = admin
        self.fs.root._persist_labels()
        etc = self.fs.root.children["etc"]
        laminar_dir = Inode(InodeType.DIRECTORY, admin, mode=0o755)
        self.fs.link_child(etc, "laminar", laminar_dir)
        caps_dir = Inode(InodeType.DIRECTORY, admin, mode=0o700)
        self.fs.link_child(laminar_dir, "caps", caps_dir)
        dev = self.fs.root.children["dev"]
        for name in ("null", "zero", "console"):
            self.fs.link_child(dev, name, Inode(InodeType.DEVICE, LabelPair.EMPTY))
        #: init: the first task, fully trusted bootstrap principal.
        self.init_task = self.spawn_task("init", user="root")

    def spawn_task(
        self,
        name: str,
        user: str = "root",
        labels: LabelPair = LabelPair.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
        pgid: int | None = None,
    ) -> Task:
        """Create a task outside fork (boot, login, and test setup)."""
        tid = next(self._tid_counter)
        task = Task(tid, name=name, user=user, labels=labels, caps=caps)
        task.pgid = pgid if pgid is not None else next(self._pgid_counter)
        task.cwd = self.fs.root
        self.tasks[tid] = task
        return task

    # --------------------------------------------------------- small helpers

    def _count(self, name: str) -> None:
        if self.faults is not None:
            self._fault_gate(f"syscall:{name}")
        self.syscall_counts[name] += 1
        work = self.SYSCALL_WORK.get(name, 0)
        if self.defer_work:
            self.deferred_work += work
            return
        for _ in range(work):
            pass

    def _fault_gate(self, site: str) -> None:
        """Cross a fault site that models failure *before* any mutation:
        crash kinds raise :class:`KernelCrash`, detected kinds raise the
        corresponding :class:`SyscallError`, and a clean crossing is free.
        Callers guarantee ``self.faults is not None``."""
        faults = self.faults
        kind = faults.fire(site)
        if kind is None:
            return
        if kind is FaultKind.CRASH or kind is FaultKind.TORN_WRITE:
            faults.crash(site)
        if kind is FaultKind.ENOSPC:
            raise SyscallError(ENOSPC, f"simulated disk full at {site}")
        raise SyscallError(EIO, f"simulated I/O error at {site}")

    # ------------------------------------------------- faults and recovery

    def install_faults(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Arm (or with ``None`` disarm) a fault plan on this machine.  The
        kernel and the filesystem share the plan, so one global occurrence
        numbering covers every site — the numbering a recording run
        enumerates and a replaying run addresses."""
        self.faults = plan
        self.fs.faults = plan
        if plan is not None:
            plan.audit = self.audit
        return plan

    def crash(self) -> None:
        """Simulated power loss: every task dies, all volatile kernel state
        (fd tables, walk caches, the armed fault plan) is discarded.  The
        filesystem object — inode data, xattrs, the journal — survives:
        it is the disk."""
        for task in self.tasks.values():
            task.alive = False
            task.fd_table.clear()
            task.pending_signals.clear()
        self.tasks.clear()
        self.install_faults(None)
        self._walk_cache.clear()
        self._walk_gen += 1
        self._submit_memo.clear()
        self.hookchain.invalidate()

    def remount(self):
        """Mount after a crash (or cleanly): run journal recovery, then
        bring the machine back up with a fresh init task.  Returns the
        :class:`~repro.osim.recovery.RecoveryReport`."""
        from .recovery import recover  # deferred: recovery imports us

        report = recover(self)
        self._walk_cache.clear()
        self._walk_gen += 1
        self.hookchain.invalidate()
        if not self.tasks:
            self.init_task = self.spawn_task("init", user="root")
        return report

    def apply_replication(self, epoch: int) -> bool:
        """Note that a cluster replication event (capability stores,
        principal labels, tag namespace) has landed on this shard.

        Epoch-stamped invalidation: an event not newer than what this
        kernel already applied returns ``False`` and changes nothing, so
        re-delivered or reordered replication frames are harmless.  A
        fresh event bumps ``fd_epoch``, which orphans every persistent
        submit memo recorded under the previous capability-store state —
        the (shard, fd-epoch) keying that makes memo replay across
        replication lag impossible."""
        if epoch <= self.replication_epoch:
            return False
        self.replication_epoch = epoch
        self.fd_epoch += 1
        return True

    def _require_alive(self, task: Task) -> None:
        if not task.alive:
            raise SyscallError(ESRCH, f"{task.name} has exited")

    def _walk_checked(self, task: Task, path: str) -> Optional[tuple]:
        """Run the search-permission hook on every traversed directory.

        Returns the observed ``((inode, labels), ...)`` prefix when the
        walk ran on the cacheable fast path (the hook-chain profiler's
        raw material; see :mod:`repro.osim.hookchain`), else ``None`` —
        a ``None`` return means the chain must not be baked.

        Relative walks do *not* re-check the starting directory — holding
        it (as cwd / an open directory, openat-style) is the authorization,
        checked when it was obtained.  This is what makes the paper's
        relative-path discipline work for high-integrity tasks: a task at
        ``{I(t)}`` cannot re-read an unlabeled or admin-labeled directory
        (no read down), but it can keep resolving under a directory it
        opened before raising its integrity (Section 5.2's alternative to
        trusting the administrator's label on ``/``).

        **Fast path** (``fastpath.flags.path_walk_cache``): servers walk
        the same directory prefixes millions of times, and a walk verdict
        can only change when the task's labels change (label epoch, in the
        key), a traversed directory is relabeled (label identity,
        revalidated per hit), or the namespace mutates under the prefix
        (``_walk_gen``).  A hit replays the recorded hook count — the
        observable hook/audit record is byte-identical to an uncached
        walk — and skips the per-component traversal and LSM dispatch.
        Only fully successful walks are cached: denials and ENOENT re-run
        the full walk every time, so their audit entries, denial counters,
        and error text never depend on cache state."""
        security = self.security
        if not (self._walk_cacheable and fastpath.flags.path_walk_cache):
            components = self.fs.walk_components(path, task.cwd)
            relative = not path.startswith("/") and task.cwd is not None
            first = next(components, None)
            if first is not None and not relative:
                security.inode_permission(task, first, Mask.EXEC)
            for directory in components:
                security.inode_permission(task, directory, Mask.EXEC)
            return None
        relative = not path.startswith("/") and task.cwd is not None
        head, _, _leaf = path.rpartition("/")
        key = (
            task.tid,
            task.security.label_epoch,
            id(task.cwd) if relative else 0,
            relative,
            head,
        )
        entry = self._walk_cache.get(key)
        if entry is not None and entry[0] == self._walk_gen:
            _, nhooks, observed = entry
            for inode, labels in observed:
                if inode.labels is not labels:
                    break  # a traversed directory was relabeled: recheck
            else:
                _fp_counters.walk_hits += 1
                if nhooks:
                    security.hook_calls["inode_permission"] += nhooks
                return observed
        _fp_counters.walk_misses += 1
        components = self.fs.walk_components(path, task.cwd)
        first = next(components, None)
        observed: list[tuple] = []
        if first is not None and not relative:
            security.inode_permission(task, first, Mask.EXEC)
            observed.append((first, first.labels))
        for directory in components:
            security.inode_permission(task, directory, Mask.EXEC)
            observed.append((directory, directory.labels))
        if len(self._walk_cache) >= 4096:
            self._walk_cache.clear()
        recorded = tuple(observed)
        self._walk_cache[key] = (self._walk_gen, len(recorded), recorded)
        return recorded

    def sys_chdir(self, task: Task, path: str) -> None:
        """Change the working directory (the handle relative resolution
        hangs off).  Acquiring it requires search permission now."""
        self._count("chdir")
        self._require_alive(task)
        self._walk_checked(task, path)
        inode = self.fs.resolve(path, task.cwd)
        if not inode.is_dir:
            raise SyscallError(EINVAL, f"{path} is not a directory")
        self.security.inode_permission(task, inode, Mask.EXEC)
        task.cwd = inode

    # =============================================================== Fig. 3 =

    def sys_alloc_tag(self, task: Task, name: str = "") -> tuple[Tag, CapabilitySet]:
        """Allocate a fresh tag; the caller becomes its owner and receives
        both capabilities (written into ``caps`` in the C signature)."""
        self._count("alloc_tag")
        self._require_alive(task)
        tag = self.tags.alloc(name)
        granted = CapabilitySet.dual(tag)
        task.security.grant(granted)
        return tag, granted

    def sys_set_task_label(
        self, task: Task, label_type: LabelType, new_label: Label
    ) -> None:
        """Set the secrecy or integrity label of the calling principal.

        The kernel checks the explicit label-change rule against the task's
        *kernel-resident* capabilities — this is the call the VM issues at
        security-region entry/exit so the OS can mediate syscalls made
        inside the region (Section 4.4)."""
        self._count("set_task_label")
        self._require_alive(task)
        old = task.labels.get(label_type)
        check_label_change(old, new_label, task.capabilities, context=task.name)
        task.security.set_labels_unchecked(task.labels.replacing(label_type, new_label))

    def sys_drop_label_tcb(self, caller: Task, target_tid: int) -> None:
        """Drop the target thread's current labels without capability checks.

        Callable only by a thread carrying the special ``tcb`` integrity tag,
        and only on threads in the same address space (process group) — "the
        VM cannot drop the labels on other applications" (Section 4.4)."""
        self._count("drop_label_tcb")
        self._require_alive(caller)
        if TCB_TAG not in caller.labels.integrity:
            raise SyscallError(EPERM, f"{caller.name} lacks the tcb integrity tag")
        target = self.tasks.get(target_tid)
        if target is None:
            raise SyscallError(ESRCH, f"no task {target_tid}")
        if getattr(target, "pgid", None) != getattr(caller, "pgid", None):
            raise SyscallError(EPERM, "drop_label_tcb crosses address spaces")
        target.security.set_labels_unchecked(LabelPair.EMPTY)

    def sys_set_security_tcb(
        self,
        caller: Task,
        target_tid: int,
        labels: LabelPair,
        caps: CapabilitySet,
    ) -> None:
        """Set a thread's kernel-resident labels *and* capabilities without
        capability checks — the kernel half of the trusted VM thread's
        security-region save/restore ("the VM restores the labels and
        capabilities it had just before it entered the region",
        Section 4.4).  Like ``drop_label_tcb`` it demands the special
        ``tcb`` integrity tag and is confined to the caller's own address
        space, so a VM can never rewrite another application's labels."""
        self._count("set_security_tcb")
        self._require_alive(caller)
        if TCB_TAG not in caller.labels.integrity:
            raise SyscallError(EPERM, f"{caller.name} lacks the tcb integrity tag")
        target = self.tasks.get(target_tid)
        if target is None:
            raise SyscallError(ESRCH, f"no task {target_tid}")
        if target.pgid != caller.pgid:
            raise SyscallError(EPERM, "set_security_tcb crosses address spaces")
        target.security.set_labels_unchecked(labels)
        target.security.replace_capabilities(caps)

    def sys_drop_capabilities(
        self, task: Task, caps: Iterable[Capability]
    ) -> None:
        """Permanently drop capabilities from the calling principal.  (The
        ``tmp`` flag of the C API — suspension for the scope of a security
        region or a fork — is implemented by the VM's save/restore stack and
        by ``sys_fork``'s subset argument, so the kernel side is only the
        permanent drop.)"""
        self._count("drop_capabilities")
        self._require_alive(task)
        for cap in caps:
            task.security.drop_capability(cap.tag, cap.kind)

    def sys_write_capability(self, task: Task, cap: Capability, fd: int) -> None:
        """Send a capability to another thread via a pipe.

        The sending side checks the flow from the sender into the pipe; the
        receiving side (:meth:`sys_read_capability`) completes the
        kernel-mediated transfer.  A capability the sender does not hold
        cannot be sent."""
        self._count("write_capability")
        self._require_alive(task)
        if not task.security.holds(cap):
            raise SyscallError(EPERM, f"{task.name} does not hold {cap!r}")
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is None:
            raise SyscallError(EINVAL, "write_capability requires a pipe fd")
        if not self.security.pipe_write_allowed(task, pipe.inode):
            # Same silent-drop semantics as pipe data.
            pipe.dropped += 1
            return
        pipe.cap_messages = getattr(pipe, "cap_messages", [])
        pipe.cap_messages.append((task, cap))

    def sys_read_capability(self, task: Task, fd: int) -> Optional[Capability]:
        """Receive a capability sent with ``write_capability``.  Returns
        ``None`` when nothing is deliverable (indistinguishable from an
        empty pipe, by design)."""
        self._count("read_capability")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is None:
            raise SyscallError(EINVAL, "read_capability requires a pipe fd")
        if not self.security.pipe_read_allowed(task, pipe.inode):
            return None
        queue = getattr(pipe, "cap_messages", [])
        if not queue:
            return None
        sender, cap = queue[0]
        try:
            self.security.capability_transfer(sender, task)
        except SyscallError:
            return None
        queue.pop(0)
        task.security.grant(CapabilitySet([cap]))
        return cap

    def sys_create_file_labeled(
        self, task: Task, path: str, labels: LabelPair, mode: int = 0o644
    ) -> int:
        """Create a labeled file (Fig. 3) and return an open fd."""
        self._count("create_file_labeled")
        return self._create_labeled(task, path, labels, mode, InodeType.REGULAR)

    def sys_mkdir_labeled(
        self, task: Task, path: str, labels: LabelPair, mode: int = 0o755
    ) -> int:
        """Create a labeled directory (Fig. 3).  Returns 0."""
        self._count("mkdir_labeled")
        self._create_labeled(task, path, labels, mode, InodeType.DIRECTORY)
        return 0

    def _create_labeled(
        self,
        task: Task,
        path: str,
        labels: LabelPair,
        mode: int,
        itype: InodeType,
    ) -> int:
        self._require_alive(task)
        self._walk_checked(task, path)
        parent, name = self.fs.resolve_parent(path, task.cwd)
        if name is None:
            raise SyscallError(EINVAL, path)
        self.security.inode_create(task, parent, labels)
        inode = Inode(itype, labels, mode)
        self._journaled_link(parent, name, inode)
        if itype is InodeType.DIRECTORY:
            self._walk_gen += 1  # the namespace a walk traverses changed
            return 0
        file = File(inode, OpenMode.READ | OpenMode.WRITE)
        return task.install_fd(file)

    def _journaled_link(self, parent: Inode, name: str, inode: Inode) -> None:
        """Link a freshly created inode under a journal ``create`` record,
        so a crash between the link and the commit rolls the creation back
        (the paper's labeled-create must be atomic: a half-created labeled
        file with no durable record of its label would otherwise be
        recovered by guesswork)."""
        faults = self.faults
        if faults is None:
            self.fs.link_child(parent, name, inode)
            return
        # Adopt the inode into this filesystem's numbering *before* the
        # journal record references it — link_child would adopt anyway,
        # but by then the begin record would hold the provisional number.
        self.fs.adopt_inode(inode)
        self._fault_gate("journal.append")
        rec = self.fs.journal.begin(
            "create", parent_ino=parent.ino, name=name, ino=inode.ino
        )
        try:
            self.fs.link_child(parent, name, inode)
        except SyscallError:
            self.fs.journal.abort(rec)
            raise
        kind = faults.fire("create.link")
        if kind is not None:
            if kind is FaultKind.CRASH or kind is FaultKind.TORN_WRITE:
                # Uncommitted: recovery unlinks the orphan.
                faults.crash("create.link")
            parent.children.pop(name, None)  # detected: roll back inline
            self.fs.journal.abort(rec)
            if kind is FaultKind.ENOSPC:
                raise SyscallError(ENOSPC, "simulated disk full at create.link")
            raise SyscallError(EIO, "simulated I/O error at create.link")
        self.fs.journal.commit(rec)

    # ============================================================ POSIX-ish =

    def sys_open(self, task: Task, path: str, mode: str = "r") -> int:
        self._count("open")
        self._require_alive(task)
        flags = OpenMode.parse(mode)
        chain_op = ("open", flags.value)
        inode = self.hookchain.lookup_path(chain_op, task, path)
        if inode is None:
            observed = self._walk_checked(task, path)
            parent, name = self.fs.resolve_parent(path, task.cwd)
            inode = parent if name is None else parent.children.get(name)
            created = False
            if inode is None:
                if not flags & OpenMode.CREATE:
                    raise SyscallError(ENOENT, path)
                # Plain creat: the new file takes the creating thread's
                # labels (Section 4.5, "other system resources use the
                # label of their creating thread").
                labels = task.labels
                self.security.inode_create(task, parent, labels)
                inode = Inode(InodeType.REGULAR, labels)
                self._journaled_link(parent, name, inode)  # type: ignore[arg-type]
                created = True
            mask = Mask(0)
            if flags & OpenMode.READ:
                mask |= Mask.READ
            if flags & OpenMode.WRITE:
                mask |= Mask.WRITE
            self.security.inode_permission(task, inode, mask)
            # Only existing-file opens are bakeable: a chain that created
            # would have run inode_create, and the existing-file case is
            # reachable again only until an unlink (which bumps _walk_gen
            # and kills the chain).
            if observed is not None and not created:
                self.hookchain.profile_path(
                    chain_op, task, path, observed, inode, "inode_permission"
                )
        file = File(inode, flags)
        return task.install_fd(file)

    def sys_creat(self, task: Task, path: str) -> int:
        self._count("creat")
        return self.sys_open(task, path, "w")

    def sys_read(self, task: Task, fd: int, count: int = -1) -> bytes:
        self._count("read")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is not None:
            return pipe.read(task, self.security)
        if not self.hookchain.replay_fd(task, file, False):
            self.security.file_permission(task, file, Mask.READ)
            self.hookchain.profile_fd(task, file, False)
        if not file.readable():
            raise SyscallError(EBADF, "fd not open for reading")
        if file.inode.itype is InodeType.DEVICE:
            return b"\0" * max(count, 0)
        return self.fs.read(file, count)

    def sys_write(self, task: Task, fd: int, data: bytes) -> int:
        self._count("write")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is not None:
            return pipe.write(task, data, self.security)
        if not self.hookchain.replay_fd(task, file, True):
            self.security.file_permission(task, file, Mask.WRITE)
            self.hookchain.profile_fd(task, file, True)
        if not file.writable():
            raise SyscallError(EBADF, "fd not open for writing")
        if file.inode.itype is InodeType.DEVICE:
            return len(data)
        return self.fs.write(file, data)

    # -- vectored I/O (one syscall, one permission check, many segments) -----

    def sys_readv(self, task: Task, fd: int, counts: Sequence[int]) -> list[bytes]:
        """Scatter read: one syscall's worth of entry/permission cost for
        ``len(counts)`` segments.  On a pipe, each segment receives one
        message (or ``b""``), with per-message mediation like sys_read."""
        self._count("readv")
        self._extra_work(self.VECTOR_SEGMENT_WORK * max(0, len(counts) - 1))
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is not None:
            security = self.security
            return [pipe.read(task, security) for _ in counts]
        self.security.file_permission(task, file, Mask.READ)
        if not file.readable():
            raise SyscallError(EBADF, "fd not open for reading")
        if file.inode.itype is InodeType.DEVICE:
            return [b"\0" * max(count, 0) for count in counts]
        read = self.fs.read
        return [read(file, count) for count in counts]

    def sys_writev(self, task: Task, fd: int, buffers: Sequence[bytes]) -> int:
        """Gather write: one syscall for many segments.  Files get one
        permission check then contiguous writes; pipes deliver one message
        per segment, each silently droppable on its own."""
        self._count("writev")
        self._extra_work(self.VECTOR_SEGMENT_WORK * max(0, len(buffers) - 1))
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is not None:
            security = self.security
            return sum(pipe.write(task, data, security) for data in buffers)
        self.security.file_permission(task, file, Mask.WRITE)
        if not file.writable():
            raise SyscallError(EBADF, "fd not open for writing")
        if file.inode.itype is InodeType.DEVICE:
            return sum(len(data) for data in buffers)
        write = self.fs.write
        return sum(write(file, data) for data in buffers)

    def _extra_work(self, iterations: int) -> None:
        if self.defer_work:
            self.deferred_work += iterations
            return
        for _ in range(iterations):
            pass

    def drain_deferred_work(self) -> int:
        """Return and zero the accumulated deferred iterations (the
        execution driver converts them to wall-clock waits)."""
        work = self.deferred_work
        self.deferred_work = 0
        return work

    # -- batched submission (io_uring-style) ---------------------------------

    #: Data-plane opcodes sys_submit executes through the ordinary sys_*
    #: bodies.  Control-plane calls (label/capability changes, fork, exec,
    #: exit, kill) are deliberately NOT batchable: excluding them
    #: guarantees no entry of a batch can change the submitting task's
    #: aliveness or labels, which is what lets the batch hoist
    #: ``_require_alive`` and memoize per-inode permission verdicts.
    SUBMIT_GENERIC_OPS = (
        "open",
        "creat",
        "close",
        "stat",
        "unlink",
        "mkdir",
        "chdir",
        "pipe",
        "socket",
        "send",
        "recv",
        "transmit",
        "readv",
        "writev",
        "lseek",
    )

    def sys_submit(self, task: Task, sqes: Sequence[Sqe]) -> list[Cqe]:
        """Submit a batch of syscall descriptors; get a completion list.

        Semantics are io_uring's: entries execute in order, each entry
        completes with a result or an errno, and a failure does not abort
        the batch.  The security record — audit entries, denial counters,
        LSM hook counts, per-opcode syscall counts — is byte-identical to
        issuing the same calls sequentially (property-tested); only the
        *overhead* differs:

        * the user→kernel crossing (``SYSCALL_ENTRY_WORK``) is paid once
          per batch, not once per entry;
        * ``_require_alive`` is hoisted (sound: no batchable op changes
          aliveness);
        * hot read/write entries run through an inlined fast path with a
          per-batch fd→file memo and a *persistent* allowed-verdict memo
          (successes only — denials re-run the full hook so audit and
          denial counters never depend on memo state; hook counts are
          replayed on memo hits).  The memo survives across batches: it
          is keyed on (shard, fd-epoch, tid, label epoch, inode, mask)
          and each entry stores the inode's label identity at proof time,
          so task label changes, inode relabels, security-module swaps,
          crashes, and cluster capability-store replication each make the
          old entries unreachable or invalid.
        """
        self._count("submit")
        self._require_alive(task)
        faults = self.faults
        security = self.security
        counts = self.syscall_counts
        batch_work = self._batch_work
        defer = self.defer_work
        fs_read = self.fs.read
        fs_write = self.fs.write
        hook_calls = security.hook_calls
        file_permission = security.file_permission
        #: fd -> (file, pipe) resolved once per batch; dropped on close
        #: (the freed number may be reused by a later open in this batch).
        fd_memo: dict[int, tuple] = {}
        # Persistent success memo (see __init__).  The key prefix is
        # hoisted: no batchable op can change the submitting task's
        # aliveness or labels, and replication never lands mid-syscall.
        perm_memo = self._submit_memo
        memo_ok = self._perm_memo_ok
        kprefix = (self.shard_id, self.fd_epoch, task.tid, task.security.label_epoch)
        cqes: list[Cqe] = []
        for sqe in sqes:
            op = sqe.op
            if faults is not None:
                kind = faults.fire("submit.boundary")
                if kind is not None:
                    if kind is FaultKind.CRASH or kind is FaultKind.TORN_WRITE:
                        # Completions so far are lost with the rest of RAM.
                        faults.crash("submit.boundary")
                    # Detected error: fail this entry, keep the batch going
                    # (io_uring's contract — an errno completion, no abort).
                    errno = ENOSPC if kind is FaultKind.ENOSPC else EIO
                    cqes.append(Cqe(op, None, errno))
                    continue
            try:
                if op == "read":
                    fd, count = (sqe.args + (-1,))[:2]
                    counts["read"] += 1
                    if defer:
                        self.deferred_work += batch_work["read"]
                    else:
                        for _ in range(batch_work["read"]):
                            pass
                    cached = fd_memo.get(fd)
                    if cached is None:
                        file = task.lookup_fd(fd)
                        pipe = getattr(file.inode, "pipe", None)
                        fd_memo[fd] = (file, pipe)
                    else:
                        file, pipe = cached
                    if pipe is not None:
                        result = pipe.read(task, security)
                    else:
                        inode = file.inode
                        pkey = kprefix + (inode, False)
                        if perm_memo.get(pkey) is inode.labels:
                            hook_calls["file_permission"] += 1
                        else:
                            file_permission(task, file, Mask.READ)
                            if memo_ok:
                                if len(perm_memo) >= 4096:
                                    perm_memo.clear()
                                perm_memo[pkey] = inode.labels
                        if not file.readable():
                            raise SyscallError(EBADF, "fd not open for reading")
                        if inode.itype is InodeType.DEVICE:
                            result = b"\0" * max(count, 0)
                        else:
                            result = fs_read(file, count)
                elif op == "write":
                    fd, data = sqe.args
                    counts["write"] += 1
                    if defer:
                        self.deferred_work += batch_work["write"]
                    else:
                        for _ in range(batch_work["write"]):
                            pass
                    cached = fd_memo.get(fd)
                    if cached is None:
                        file = task.lookup_fd(fd)
                        pipe = getattr(file.inode, "pipe", None)
                        fd_memo[fd] = (file, pipe)
                    else:
                        file, pipe = cached
                    if pipe is not None:
                        result = pipe.write(task, data, security)
                    else:
                        inode = file.inode
                        pkey = kprefix + (inode, True)
                        if perm_memo.get(pkey) is inode.labels:
                            hook_calls["file_permission"] += 1
                        else:
                            file_permission(task, file, Mask.WRITE)
                            if memo_ok:
                                if len(perm_memo) >= 4096:
                                    perm_memo.clear()
                                perm_memo[pkey] = inode.labels
                        if not file.writable():
                            raise SyscallError(EBADF, "fd not open for writing")
                        if inode.itype is InodeType.DEVICE:
                            result = len(data)
                        else:
                            result = fs_write(file, data)
                elif op in self._submit_generic:
                    if op == "close":
                        fd_memo.pop(sqe.args[0], None)
                    result = self._submit_generic[op](task, *sqe.args)
                else:
                    raise SyscallError(
                        EINVAL, f"op {op!r} is not batchable via sys_submit"
                    )
            except SyscallError as exc:
                cqes.append(Cqe(op, None, exc.errno))
            else:
                cqes.append(Cqe(op, result, 0))
        return cqes

    def sys_lseek(self, task: Task, fd: int, offset: int) -> int:
        """Reposition an open file description (absolute offsets only).

        No LSM content hook fires: the offset is metadata of a
        description the task already holds; data access is checked at
        read/write time, exactly as in Linux."""
        self._count("lseek")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        if getattr(file.inode, "pipe", None) is not None:
            raise SyscallError(EINVAL, "cannot seek a pipe")
        if offset < 0:
            raise SyscallError(EINVAL, f"negative offset {offset}")
        file.offset = offset
        return offset

    def sys_close(self, task: Task, fd: int) -> None:
        self._count("close")
        file = task.remove_fd(fd)
        if file.refs == 0 and file.writable():
            # Last explicit close of a pipe's write end hangs the pipe up
            # (mediated like a write: see Pipe.close).  Task *exit* never
            # does this — termination notification stays suppressed.
            pipe: Pipe | None = getattr(file.inode, "pipe", None)
            if pipe is not None and not pipe.closed:
                pipe.close(task, self.security)

    def sys_stat(self, task: Task, path: str) -> dict[str, object]:
        self._count("stat")
        self._require_alive(task)
        chain_op = ("stat", 0)
        inode = self.hookchain.lookup_path(chain_op, task, path)
        if inode is None:
            observed = self._walk_checked(task, path)
            inode = self.fs.resolve(path, task.cwd)
            self.security.inode_getattr(task, inode)
            if observed is not None:
                self.hookchain.profile_path(
                    chain_op, task, path, observed, inode, "inode_getattr"
                )
        return {
            "ino": inode.ino,
            "type": inode.itype.value,
            "size": inode.size,
            "mode": inode.mode,
            "nlink": inode.nlink,
        }

    def sys_unlink(self, task: Task, path: str) -> None:
        self._count("unlink")
        self._require_alive(task)
        self._walk_checked(task, path)
        parent, name = self.fs.resolve_parent(path, task.cwd)
        if name is None:
            raise SyscallError(EINVAL, path)
        victim = parent.children.get(name)
        if victim is None:
            raise SyscallError(ENOENT, path)
        self.security.inode_unlink(task, parent, victim)
        self.fs.unlink_child(parent, name)
        self._walk_gen += 1  # the namespace a walk traverses changed

    def sys_mkdir(self, task: Task, path: str, mode: int = 0o755) -> None:
        self._count("mkdir")
        self._create_labeled(task, path, task.labels, mode, InodeType.DIRECTORY)

    # -- processes and threads -------------------------------------------------

    def sys_fork(
        self, parent: Task, caps_subset: Optional[CapabilitySet] = None
    ) -> Task:
        """Fork: the child inherits the parent's labels and a *subset* of its
        capabilities (all of them by default) — "when a new principal is
        created, its capabilities are a subset of its immediate parent"."""
        self._count("fork")
        self._require_alive(parent)
        caps = parent.capabilities if caps_subset is None else caps_subset
        if not caps.is_subset_of(parent.capabilities):
            raise SyscallError(EPERM, "fork capability subset exceeds parent's")
        child = self.spawn_task(
            f"{parent.name}-child",
            user=parent.user,
            labels=parent.labels,
            caps=caps,
        )
        child.parent = parent
        child.cwd = parent.cwd
        parent.children.append(child)
        self.security.task_alloc(parent, child)
        return child

    def sys_spawn_thread(
        self, parent: Task, caps_subset: Optional[CapabilitySet] = None
    ) -> Task:
        """Create a thread in the same address space (same pgid); labels and
        capability subsetting work exactly like fork."""
        self._count("spawn_thread")
        child = self.sys_fork(parent, caps_subset)
        child.pgid = parent.pgid
        return child

    def sys_exec(self, task: Task, path: str) -> None:
        """Execute a program image: requires read+exec on the file, which in
        particular enforces "the server cannot execute or read a plugin that
        has an integrity label lower than its own" (Section 3.3)."""
        self._count("exec")
        self._require_alive(task)
        self._walk_checked(task, path)
        inode = self.fs.resolve(path, task.cwd)
        self.security.inode_permission(task, inode, Mask.READ | Mask.EXEC)
        # The image replaces the address space; fds and security state persist.
        task.name = f"{task.name}!{path.rsplit('/', 1)[-1]}"

    def sys_exit(self, task: Task, code: int = 0) -> None:
        self._count("exit")
        task.alive = False
        task.exit_code = code
        for fd in list(task.fd_table):
            task.fd_table.pop(fd).refs -= 1
        # Deliberately *no* notification of peers: suppressing termination
        # notification is how OS DIFC systems close the termination channel.

    def sys_kill(self, sender: Task, target_tid: int, signum: int) -> None:
        self._count("kill")
        self._require_alive(sender)
        target = self.tasks.get(target_tid)
        if target is None or not target.alive:
            # ESRCH for a *visible* missing task would be fine, but a task
            # the sender cannot observe must look identical to a missing
            # one; the single error code guarantees that.
            raise SyscallError(ESRCH, f"no task {target_tid}")
        self.security.task_kill(sender, target, signum)
        target.pending_signals.append((signum, sender.tid))

    # -- pipes ---------------------------------------------------------------------

    def sys_pipe(
        self, task: Task, labels: Optional[LabelPair] = None
    ) -> tuple[int, int]:
        """Create a pipe labeled with the creating thread's labels (or an
        explicit pair).  Returns (read_fd, write_fd)."""
        self._count("pipe")
        self._require_alive(task)
        pipe = Pipe(labels if labels is not None else task.labels)
        read_end = File(pipe.inode, OpenMode.READ)
        write_end = File(pipe.inode, OpenMode.WRITE)
        return task.install_fd(read_end), task.install_fd(write_end)

    def share_fd(self, donor: Task, fd: int, recipient: Task) -> int:
        """Duplicate an open fd into another task's table (what fork's fd
        inheritance or SCM_RIGHTS passing would do).  The *use* of the fd is
        still checked per-operation, so sharing grants nothing by itself —
        the paper's argument for not needing Flume's endpoints."""
        file = donor.lookup_fd(fd)
        return recipient.install_fd(file)

    # -- sockets ---------------------------------------------------------------------

    def sys_socket(self, task: Task, labels: Optional[LabelPair] = None) -> Socket:
        self._count("socket")
        self._require_alive(task)
        return Socket(labels if labels is not None else task.labels)

    def sys_send(self, task: Task, socket: Socket, data: bytes) -> int:
        self._count("send")
        return socket.send(task, data, self.security)

    def sys_recv(self, task: Task, socket: Socket) -> bytes:
        self._count("recv")
        return socket.recv(task, self.security)

    def sys_transmit(self, task: Task, data: bytes) -> int:
        """Send to the outside network (the unlabeled world)."""
        self._count("transmit")
        return self.net.transmit(task, data, self.security)

    # -- memory (lmbench rows) ----------------------------------------------------------

    def sys_mmap(self, task: Task, fd: int, mask: Mask = Mask.READ) -> Mapping:
        self._count("mmap")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        self.security.mmap_file(task, file, mask)
        return Mapping(file, mask)

    def fault_protection(self, task: Task, mapping: Mapping) -> None:
        """A protection fault re-validates the mapping against the (possibly
        changed) task labels, the way HiStar-style page protections would."""
        self._count("prot_fault")
        if not mapping.valid:
            raise SyscallError(EINVAL, "dead mapping")
        self.security.mmap_file(task, mapping.file, mapping.mask)
