"""The simulated kernel: tasks, system calls, and LSM mediation.

This module stands in for Linux 2.6.22 plus the ~500 lines of kernel
modifications the paper adds for its new system calls (Fig. 3).  The design
keeps Linux's layering: syscalls do the VFS/task work and call fixed LSM
hook points; the installed :class:`~repro.osim.lsm.SecurityModule` decides.
Swapping in the :class:`~repro.osim.lsm.NullSecurityModule` yields the
vanilla-Linux baseline used to normalize Table 2.

System-call surface
-------------------
Laminar's calls (Fig. 3): ``alloc_tag``, ``set_task_label``,
``drop_label_tcb``, ``drop_capabilities``, ``write_capability`` (+ its
receive side), ``create_file_labeled``, ``mkdir_labeled``.

POSIX subset used by lmbench and the applications: ``open``, ``read``,
``write``, ``close``, ``stat``, ``creat``, ``unlink``, ``mkdir``, ``fork``,
``spawn_thread``, ``exec``, ``exit``, ``kill``, ``pipe``, ``socket`` /
``connect`` / ``send`` / ``recv``, ``mmap`` + simulated protection faults.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterable, Optional

from ..core import (
    AuditLog,
    CapabilitySet,
    Capability,
    Label,
    LabelPair,
    LabelType,
    Tag,
    TagAllocator,
    check_label_change,
)
from .filesystem import (
    File,
    Filesystem,
    Inode,
    InodeType,
    OpenMode,
)
from .lsm import LaminarSecurityModule, Mask, SecurityModule
from .pipes import Pipe
from .sockets import Network, Socket
from .task import (
    EBADF,
    EINVAL,
    ENOENT,
    EPERM,
    ESRCH,
    SyscallError,
    Task,
)

#: Well-known tag value for the special ``tcb`` integrity tag (Section 4.4).
TCB_TAG = Tag(0, "tcb")


class Mapping:
    """A simulated memory mapping, for the lmbench mmap / prot-fault rows."""

    def __init__(self, file: File, mask: Mask) -> None:
        self.file = file
        self.mask = mask
        self.valid = True


class Kernel:
    """One booted machine image.

    Base costs: a real kernel's syscalls do vastly different amounts of
    non-security work (lmbench: null I/O 0.13 µs, stat 0.92 µs, fork 96 µs,
    exec 300 µs, mmap 6877 µs on the paper's testbed).  The simulator's
    Python bodies are nearly uniform, which would make the security module's
    fixed per-check cost look enormous on heavy calls and mild on light ones
    — the opposite of Table 2.  ``SYSCALL_WORK`` therefore charges each
    syscall a base amount of simulated kernel work (plain loop iterations)
    roughly proportional to the real cost ratios, scaled down to keep the
    suite fast.  Both security modules pay it identically; only the hook
    cost differs between vanilla and Laminar kernels.
    """

    #: Simulated base work per syscall, in loop iterations (~25 ns each).
    SYSCALL_WORK = {
        "read": 160,
        "write": 160,
        "open": 1200,
        "stat": 4000,
        "creat": 8000,
        "create_file_labeled": 8000,
        "mkdir": 8000,
        "mkdir_labeled": 8000,
        "unlink": 3500,
        "close": 80,
        "fork": 60000,
        "spawn_thread": 8000,
        "exec": 120000,
        "exit": 2000,
        "kill": 800,
        "pipe": 2000,
        "mmap": 100000,
        "prot_fault": 800,
        "chdir": 1200,
        "socket": 2000,
        "send": 400,
        "recv": 400,
        "transmit": 400,
    }

    def __init__(self, security: Optional[SecurityModule] = None) -> None:
        self.security = security if security is not None else LaminarSecurityModule()
        self.tags = TagAllocator(first=1)
        self.fs = Filesystem()
        self.net = Network()
        self.tasks: dict[int, Task] = {}
        self._tid_counter = itertools.count(1)
        self._pgid_counter = itertools.count(1)
        self.syscall_counts: Counter[str] = Counter()
        #: Machine-wide audit log (TCB-internal; see repro.core.audit).
        self.audit = AuditLog()
        self.security.audit = self.audit
        self._install_base_tree()

    # ------------------------------------------------------------------ boot

    def _install_base_tree(self) -> None:
        """Install-time layout (Section 5.2): system directories carry the
        administrator integrity label; /dev gets the null/zero devices; the
        persistent capability store lives under /etc/laminar."""
        self.admin_integrity = self.tags.alloc("sysadmin")
        admin = LabelPair(Label.EMPTY, Label.of(self.admin_integrity))
        for path in ("etc", "home", "dev", "tmp"):
            inode = Inode(InodeType.DIRECTORY, admin if path != "tmp" else LabelPair.EMPTY, mode=0o755)
            self.fs.link_child(self.fs.root, path, inode)
        self.fs.root.labels = admin
        self.fs.root._persist_labels()
        etc = self.fs.root.children["etc"]
        laminar_dir = Inode(InodeType.DIRECTORY, admin, mode=0o755)
        self.fs.link_child(etc, "laminar", laminar_dir)
        caps_dir = Inode(InodeType.DIRECTORY, admin, mode=0o700)
        self.fs.link_child(laminar_dir, "caps", caps_dir)
        dev = self.fs.root.children["dev"]
        for name in ("null", "zero", "console"):
            self.fs.link_child(dev, name, Inode(InodeType.DEVICE, LabelPair.EMPTY))
        #: init: the first task, fully trusted bootstrap principal.
        self.init_task = self.spawn_task("init", user="root")

    def spawn_task(
        self,
        name: str,
        user: str = "root",
        labels: LabelPair = LabelPair.EMPTY,
        caps: CapabilitySet = CapabilitySet.EMPTY,
        pgid: int | None = None,
    ) -> Task:
        """Create a task outside fork (boot, login, and test setup)."""
        tid = next(self._tid_counter)
        task = Task(tid, name=name, user=user, labels=labels, caps=caps)
        task.pgid = pgid if pgid is not None else next(self._pgid_counter)
        task.cwd = self.fs.root
        self.tasks[tid] = task
        return task

    # --------------------------------------------------------- small helpers

    def _count(self, name: str) -> None:
        self.syscall_counts[name] += 1
        for _ in range(self.SYSCALL_WORK.get(name, 0)):
            pass

    def _require_alive(self, task: Task) -> None:
        if not task.alive:
            raise SyscallError(ESRCH, f"{task.name} has exited")

    def _walk_checked(self, task: Task, path: str) -> None:
        """Run the search-permission hook on every traversed directory.

        Relative walks do *not* re-check the starting directory — holding
        it (as cwd / an open directory, openat-style) is the authorization,
        checked when it was obtained.  This is what makes the paper's
        relative-path discipline work for high-integrity tasks: a task at
        ``{I(t)}`` cannot re-read an unlabeled or admin-labeled directory
        (no read down), but it can keep resolving under a directory it
        opened before raising its integrity (Section 5.2's alternative to
        trusting the administrator's label on ``/``)."""
        components = self.fs.walk_components(path, task.cwd)
        relative = not path.startswith("/") and task.cwd is not None
        first = next(components, None)
        if first is not None and not relative:
            self.security.inode_permission(task, first, Mask.EXEC)
        for directory in components:
            self.security.inode_permission(task, directory, Mask.EXEC)

    def sys_chdir(self, task: Task, path: str) -> None:
        """Change the working directory (the handle relative resolution
        hangs off).  Acquiring it requires search permission now."""
        self._count("chdir")
        self._require_alive(task)
        self._walk_checked(task, path)
        inode = self.fs.resolve(path, task.cwd)
        if not inode.is_dir:
            raise SyscallError(EINVAL, f"{path} is not a directory")
        self.security.inode_permission(task, inode, Mask.EXEC)
        task.cwd = inode

    # =============================================================== Fig. 3 =

    def sys_alloc_tag(self, task: Task, name: str = "") -> tuple[Tag, CapabilitySet]:
        """Allocate a fresh tag; the caller becomes its owner and receives
        both capabilities (written into ``caps`` in the C signature)."""
        self._count("alloc_tag")
        self._require_alive(task)
        tag = self.tags.alloc(name)
        granted = CapabilitySet.dual(tag)
        task.security.grant(granted)
        return tag, granted

    def sys_set_task_label(
        self, task: Task, label_type: LabelType, new_label: Label
    ) -> None:
        """Set the secrecy or integrity label of the calling principal.

        The kernel checks the explicit label-change rule against the task's
        *kernel-resident* capabilities — this is the call the VM issues at
        security-region entry/exit so the OS can mediate syscalls made
        inside the region (Section 4.4)."""
        self._count("set_task_label")
        self._require_alive(task)
        old = task.labels.get(label_type)
        check_label_change(old, new_label, task.capabilities, context=task.name)
        task.security.set_labels_unchecked(task.labels.replacing(label_type, new_label))

    def sys_drop_label_tcb(self, caller: Task, target_tid: int) -> None:
        """Drop the target thread's current labels without capability checks.

        Callable only by a thread carrying the special ``tcb`` integrity tag,
        and only on threads in the same address space (process group) — "the
        VM cannot drop the labels on other applications" (Section 4.4)."""
        self._count("drop_label_tcb")
        self._require_alive(caller)
        if TCB_TAG not in caller.labels.integrity:
            raise SyscallError(EPERM, f"{caller.name} lacks the tcb integrity tag")
        target = self.tasks.get(target_tid)
        if target is None:
            raise SyscallError(ESRCH, f"no task {target_tid}")
        if getattr(target, "pgid", None) != getattr(caller, "pgid", None):
            raise SyscallError(EPERM, "drop_label_tcb crosses address spaces")
        target.security.set_labels_unchecked(LabelPair.EMPTY)

    def sys_set_security_tcb(
        self,
        caller: Task,
        target_tid: int,
        labels: LabelPair,
        caps: CapabilitySet,
    ) -> None:
        """Set a thread's kernel-resident labels *and* capabilities without
        capability checks — the kernel half of the trusted VM thread's
        security-region save/restore ("the VM restores the labels and
        capabilities it had just before it entered the region",
        Section 4.4).  Like ``drop_label_tcb`` it demands the special
        ``tcb`` integrity tag and is confined to the caller's own address
        space, so a VM can never rewrite another application's labels."""
        self._count("set_security_tcb")
        self._require_alive(caller)
        if TCB_TAG not in caller.labels.integrity:
            raise SyscallError(EPERM, f"{caller.name} lacks the tcb integrity tag")
        target = self.tasks.get(target_tid)
        if target is None:
            raise SyscallError(ESRCH, f"no task {target_tid}")
        if target.pgid != caller.pgid:
            raise SyscallError(EPERM, "set_security_tcb crosses address spaces")
        target.security.set_labels_unchecked(labels)
        target.security.replace_capabilities(caps)

    def sys_drop_capabilities(
        self, task: Task, caps: Iterable[Capability]
    ) -> None:
        """Permanently drop capabilities from the calling principal.  (The
        ``tmp`` flag of the C API — suspension for the scope of a security
        region or a fork — is implemented by the VM's save/restore stack and
        by ``sys_fork``'s subset argument, so the kernel side is only the
        permanent drop.)"""
        self._count("drop_capabilities")
        self._require_alive(task)
        for cap in caps:
            task.security.drop_capability(cap.tag, cap.kind)

    def sys_write_capability(self, task: Task, cap: Capability, fd: int) -> None:
        """Send a capability to another thread via a pipe.

        The sending side checks the flow from the sender into the pipe; the
        receiving side (:meth:`sys_read_capability`) completes the
        kernel-mediated transfer.  A capability the sender does not hold
        cannot be sent."""
        self._count("write_capability")
        self._require_alive(task)
        if not task.security.holds(cap):
            raise SyscallError(EPERM, f"{task.name} does not hold {cap!r}")
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is None:
            raise SyscallError(EINVAL, "write_capability requires a pipe fd")
        if not self.security.pipe_write_allowed(task, pipe.inode):
            # Same silent-drop semantics as pipe data.
            pipe.dropped += 1
            return
        pipe.cap_messages = getattr(pipe, "cap_messages", [])
        pipe.cap_messages.append((task, cap))

    def sys_read_capability(self, task: Task, fd: int) -> Optional[Capability]:
        """Receive a capability sent with ``write_capability``.  Returns
        ``None`` when nothing is deliverable (indistinguishable from an
        empty pipe, by design)."""
        self._count("read_capability")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is None:
            raise SyscallError(EINVAL, "read_capability requires a pipe fd")
        if not self.security.pipe_read_allowed(task, pipe.inode):
            return None
        queue = getattr(pipe, "cap_messages", [])
        if not queue:
            return None
        sender, cap = queue[0]
        try:
            self.security.capability_transfer(sender, task)
        except SyscallError:
            return None
        queue.pop(0)
        task.security.grant(CapabilitySet([cap]))
        return cap

    def sys_create_file_labeled(
        self, task: Task, path: str, labels: LabelPair, mode: int = 0o644
    ) -> int:
        """Create a labeled file (Fig. 3) and return an open fd."""
        self._count("create_file_labeled")
        return self._create_labeled(task, path, labels, mode, InodeType.REGULAR)

    def sys_mkdir_labeled(
        self, task: Task, path: str, labels: LabelPair, mode: int = 0o755
    ) -> int:
        """Create a labeled directory (Fig. 3).  Returns 0."""
        self._count("mkdir_labeled")
        self._create_labeled(task, path, labels, mode, InodeType.DIRECTORY)
        return 0

    def _create_labeled(
        self,
        task: Task,
        path: str,
        labels: LabelPair,
        mode: int,
        itype: InodeType,
    ) -> int:
        self._require_alive(task)
        self._walk_checked(task, path)
        parent, name = self.fs.resolve_parent(path, task.cwd)
        if name is None:
            raise SyscallError(EINVAL, path)
        self.security.inode_create(task, parent, labels)
        inode = Inode(itype, labels, mode)
        self.fs.link_child(parent, name, inode)
        if itype is InodeType.DIRECTORY:
            return 0
        file = File(inode, OpenMode.READ | OpenMode.WRITE)
        return task.install_fd(file)

    # ============================================================ POSIX-ish =

    def sys_open(self, task: Task, path: str, mode: str = "r") -> int:
        self._count("open")
        self._require_alive(task)
        flags = OpenMode.parse(mode)
        self._walk_checked(task, path)
        parent, name = self.fs.resolve_parent(path, task.cwd)
        inode = parent if name is None else parent.children.get(name)
        if inode is None:
            if not flags & OpenMode.CREATE:
                raise SyscallError(ENOENT, path)
            # Plain creat: the new file takes the creating thread's labels
            # (Section 4.5, "other system resources use the label of their
            # creating thread").
            labels = task.labels
            self.security.inode_create(task, parent, labels)
            inode = Inode(InodeType.REGULAR, labels)
            self.fs.link_child(parent, name, inode)  # type: ignore[arg-type]
        mask = Mask(0)
        if flags & OpenMode.READ:
            mask |= Mask.READ
        if flags & OpenMode.WRITE:
            mask |= Mask.WRITE
        self.security.inode_permission(task, inode, mask)
        file = File(inode, flags)
        return task.install_fd(file)

    def sys_creat(self, task: Task, path: str) -> int:
        self._count("creat")
        return self.sys_open(task, path, "w")

    def sys_read(self, task: Task, fd: int, count: int = -1) -> bytes:
        self._count("read")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is not None:
            return pipe.read(task, self.security)
        self.security.file_permission(task, file, Mask.READ)
        if not file.readable():
            raise SyscallError(EBADF, "fd not open for reading")
        if file.inode.itype is InodeType.DEVICE:
            return b"\0" * max(count, 0)
        return self.fs.read(file, count)

    def sys_write(self, task: Task, fd: int, data: bytes) -> int:
        self._count("write")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        pipe: Pipe | None = getattr(file.inode, "pipe", None)
        if pipe is not None:
            return pipe.write(task, data, self.security)
        self.security.file_permission(task, file, Mask.WRITE)
        if not file.writable():
            raise SyscallError(EBADF, "fd not open for writing")
        if file.inode.itype is InodeType.DEVICE:
            return len(data)
        return self.fs.write(file, data)

    def sys_close(self, task: Task, fd: int) -> None:
        self._count("close")
        task.remove_fd(fd)

    def sys_stat(self, task: Task, path: str) -> dict[str, object]:
        self._count("stat")
        self._require_alive(task)
        self._walk_checked(task, path)
        inode = self.fs.resolve(path, task.cwd)
        self.security.inode_getattr(task, inode)
        return {
            "ino": inode.ino,
            "type": inode.itype.value,
            "size": inode.size,
            "mode": inode.mode,
            "nlink": inode.nlink,
        }

    def sys_unlink(self, task: Task, path: str) -> None:
        self._count("unlink")
        self._require_alive(task)
        self._walk_checked(task, path)
        parent, name = self.fs.resolve_parent(path, task.cwd)
        if name is None:
            raise SyscallError(EINVAL, path)
        victim = parent.children.get(name)
        if victim is None:
            raise SyscallError(ENOENT, path)
        self.security.inode_unlink(task, parent, victim)
        self.fs.unlink_child(parent, name)

    def sys_mkdir(self, task: Task, path: str, mode: int = 0o755) -> None:
        self._count("mkdir")
        self._create_labeled(task, path, task.labels, mode, InodeType.DIRECTORY)

    # -- processes and threads -------------------------------------------------

    def sys_fork(
        self, parent: Task, caps_subset: Optional[CapabilitySet] = None
    ) -> Task:
        """Fork: the child inherits the parent's labels and a *subset* of its
        capabilities (all of them by default) — "when a new principal is
        created, its capabilities are a subset of its immediate parent"."""
        self._count("fork")
        self._require_alive(parent)
        caps = parent.capabilities if caps_subset is None else caps_subset
        if not caps.is_subset_of(parent.capabilities):
            raise SyscallError(EPERM, "fork capability subset exceeds parent's")
        child = self.spawn_task(
            f"{parent.name}-child",
            user=parent.user,
            labels=parent.labels,
            caps=caps,
        )
        child.parent = parent
        child.cwd = parent.cwd
        parent.children.append(child)
        self.security.task_alloc(parent, child)
        return child

    def sys_spawn_thread(
        self, parent: Task, caps_subset: Optional[CapabilitySet] = None
    ) -> Task:
        """Create a thread in the same address space (same pgid); labels and
        capability subsetting work exactly like fork."""
        self._count("spawn_thread")
        child = self.sys_fork(parent, caps_subset)
        child.pgid = parent.pgid
        return child

    def sys_exec(self, task: Task, path: str) -> None:
        """Execute a program image: requires read+exec on the file, which in
        particular enforces "the server cannot execute or read a plugin that
        has an integrity label lower than its own" (Section 3.3)."""
        self._count("exec")
        self._require_alive(task)
        self._walk_checked(task, path)
        inode = self.fs.resolve(path, task.cwd)
        self.security.inode_permission(task, inode, Mask.READ | Mask.EXEC)
        # The image replaces the address space; fds and security state persist.
        task.name = f"{task.name}!{path.rsplit('/', 1)[-1]}"

    def sys_exit(self, task: Task, code: int = 0) -> None:
        self._count("exit")
        task.alive = False
        task.exit_code = code
        for fd in list(task.fd_table):
            task.fd_table.pop(fd)
        # Deliberately *no* notification of peers: suppressing termination
        # notification is how OS DIFC systems close the termination channel.

    def sys_kill(self, sender: Task, target_tid: int, signum: int) -> None:
        self._count("kill")
        self._require_alive(sender)
        target = self.tasks.get(target_tid)
        if target is None or not target.alive:
            # ESRCH for a *visible* missing task would be fine, but a task
            # the sender cannot observe must look identical to a missing
            # one; the single error code guarantees that.
            raise SyscallError(ESRCH, f"no task {target_tid}")
        self.security.task_kill(sender, target, signum)
        target.pending_signals.append((signum, sender.tid))

    # -- pipes ---------------------------------------------------------------------

    def sys_pipe(
        self, task: Task, labels: Optional[LabelPair] = None
    ) -> tuple[int, int]:
        """Create a pipe labeled with the creating thread's labels (or an
        explicit pair).  Returns (read_fd, write_fd)."""
        self._count("pipe")
        self._require_alive(task)
        pipe = Pipe(labels if labels is not None else task.labels)
        read_end = File(pipe.inode, OpenMode.READ)
        write_end = File(pipe.inode, OpenMode.WRITE)
        return task.install_fd(read_end), task.install_fd(write_end)

    def share_fd(self, donor: Task, fd: int, recipient: Task) -> int:
        """Duplicate an open fd into another task's table (what fork's fd
        inheritance or SCM_RIGHTS passing would do).  The *use* of the fd is
        still checked per-operation, so sharing grants nothing by itself —
        the paper's argument for not needing Flume's endpoints."""
        file = donor.lookup_fd(fd)
        return recipient.install_fd(file)

    # -- sockets ---------------------------------------------------------------------

    def sys_socket(self, task: Task, labels: Optional[LabelPair] = None) -> Socket:
        self._count("socket")
        self._require_alive(task)
        return Socket(labels if labels is not None else task.labels)

    def sys_send(self, task: Task, socket: Socket, data: bytes) -> int:
        self._count("send")
        return socket.send(task, data, self.security)

    def sys_recv(self, task: Task, socket: Socket) -> bytes:
        self._count("recv")
        return socket.recv(task, self.security)

    def sys_transmit(self, task: Task, data: bytes) -> int:
        """Send to the outside network (the unlabeled world)."""
        self._count("transmit")
        return self.net.transmit(task, data, self.security)

    # -- memory (lmbench rows) ----------------------------------------------------------

    def sys_mmap(self, task: Task, fd: int, mask: Mask = Mask.READ) -> Mapping:
        self._count("mmap")
        self._require_alive(task)
        file = task.lookup_fd(fd)
        self.security.mmap_file(task, file, mask)
        return Mapping(file, mask)

    def fault_protection(self, task: Task, mapping: Mapping) -> None:
        """A protection fault re-validates the mapping against the (possibly
        changed) task labels, the way HiStar-style page protections would."""
        self._count("prot_fault")
        if not mapping.valid:
            raise SyscallError(EINVAL, "dead mapping")
        self.security.mmap_file(task, mapping.file, mapping.mask)
